"""Structured compiler diagnostics and the error hierarchy.

Production deployments drive the compiler behind SPFlow's Python API
("a single API call", paper Section IV-A1), so a defect anywhere in the
compile/execute path must surface as *actionable data*, not a bare
traceback. This module provides:

- :class:`Diagnostic` — a structured record (severity, stable error
  code, pipeline stage, pass name, op path into the IR) describing one
  event;
- :class:`DiagnosticLog` — an ordered collector attached to compiler
  entry points;
- the :class:`CompilerError` hierarchy — every failure raised out of the
  pipeline carries its :class:`Diagnostic`, so callers can tell *which*
  pass or stage broke without parsing messages;
- :func:`dump_reproducer` — writes the offending IR (generic textual
  form) plus the active :class:`~repro.compiler.pipeline.CompilerOptions`
  to an artifact directory, producing a self-contained reproducer for
  bug reports.

The module deliberately imports nothing from :mod:`repro.ir` so that the
IR layer (pass manager, verifier) can depend on it without cycles.
"""

from __future__ import annotations

import contextlib
import contextvars
import dataclasses
import enum
import itertools
import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional


class Severity(enum.Enum):
    """Severity of a diagnostic, ordered from least to most severe."""

    NOTE = "note"
    WARNING = "warning"
    ERROR = "error"
    FATAL = "fatal"

    def __str__(self) -> str:
        return self.value


class ErrorCode:
    """Stable machine-readable codes (stringly-typed, grep-friendly)."""

    INVALID_OPTIONS = "invalid-options"
    VERIFY_FAILED = "verify-failed"
    ANALYSIS_FAILED = "static-analysis-failed"
    PASS_FAILED = "pass-failed"
    STAGE_FAILED = "stage-failed"
    CODEGEN_FAILED = "codegen-failed"
    EXECUTION_FAILED = "execution-failed"
    QUERY_NAN = "query-variable-nan"
    KERNEL_NAN = "kernel-nan"
    DEVICE_OOM = "device-oom"
    DEVICE_OOM_RETRY = "device-oom-retry"
    CHUNK_RETRY = "chunk-retry"
    FALLBACK_CPU = "fallback-cpu-kernel"
    FALLBACK_INTERPRETER = "fallback-interpreter"
    FAULT_INJECTED = "fault-injected"
    DIVERGENCE = "differential-divergence"
    IR_FUZZ_FAILED = "ir-fuzz-failed"
    # Serving-runtime codes (repro.serving).
    DEADLINE_EXCEEDED = "deadline-exceeded"
    ADMISSION_REJECTED = "admission-rejected"
    BREAKER_OPEN = "circuit-breaker-open"
    EXECUTABLE_CLOSED = "executable-closed"
    MODEL_SWAPPED = "model-swapped"
    MODEL_NOT_FOUND = "model-not-found"


@dataclass
class Diagnostic:
    """One structured diagnostic event.

    Attributes:
        severity: how bad it is.
        code: stable identifier from :class:`ErrorCode`.
        message: human-readable description.
        stage: pipeline stage name (as recorded by the stage driver),
            e.g. ``"cpu-lowering"`` or ``"codegen"``.
        pass_name: IR pass name when the failure happened inside a
            :class:`~repro.ir.passes.PassManager` run.
        op_path: path into the IR naming the offending operation, e.g.
            ``"builtin.module/lo_spn.kernel#0/lo_spn.task#1/arith.addf#3"``.
        target: compilation target the event relates to ("cpu"/"gpu").
        detail: free-form extra data (exception repr, retry counts, ...).
    """

    severity: Severity
    code: str
    message: str
    stage: Optional[str] = None
    pass_name: Optional[str] = None
    op_path: Optional[str] = None
    target: Optional[str] = None
    detail: Dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        """One-line human-readable form."""
        where = []
        if self.target:
            where.append(f"target={self.target}")
        if self.stage:
            where.append(f"stage={self.stage}")
        if self.pass_name:
            where.append(f"pass={self.pass_name}")
        if self.op_path:
            where.append(f"at={self.op_path}")
        location = f" [{', '.join(where)}]" if where else ""
        return f"{self.severity}: {self.code}: {self.message}{location}"

    def to_dict(self) -> Dict[str, Any]:
        data = dataclasses.asdict(self)
        data["severity"] = str(self.severity)
        return data


# --- request-scoped diagnostic context ---------------------------------------------

#: Ambient key/value annotations attached to every diagnostic emitted
#: while a :func:`diagnostic_context` is active. Backed by a
#: ``contextvars.ContextVar`` so concurrent server threads (and asyncio
#: tasks) each see only their own request's context.
_DIAGNOSTIC_CONTEXT: contextvars.ContextVar[Dict[str, Any]] = contextvars.ContextVar(
    "repro_diagnostic_context", default={}
)


@contextlib.contextmanager
def diagnostic_context(**fields: Any):
    """Annotate all diagnostics emitted inside the block.

    The serving runtime wraps each request/batch in
    ``diagnostic_context(request_id=..., model=...)`` so a chunk-retry
    warning deep inside the runtime can be traced back to the request
    that triggered it. Nested contexts merge (inner wins on key clash).
    """
    merged = dict(_DIAGNOSTIC_CONTEXT.get())
    merged.update(fields)
    token = _DIAGNOSTIC_CONTEXT.set(merged)
    try:
        yield merged
    finally:
        _DIAGNOSTIC_CONTEXT.reset(token)


def current_diagnostic_context() -> Dict[str, Any]:
    """The active request-scoped annotations (empty outside any context)."""
    return dict(_DIAGNOSTIC_CONTEXT.get())


class DiagnosticLog:
    """Ordered collection of diagnostics for one compiler/executor.

    Thread-safe for concurrent :meth:`emit` (the serving runtime shares
    one log across batcher workers). Diagnostics emitted inside a
    :func:`diagnostic_context` are annotated with the active request
    scope under ``detail["context"]``.
    """

    def __init__(self):
        self._diagnostics: List[Diagnostic] = []

    def emit(self, diagnostic: Diagnostic) -> Diagnostic:
        scope = _DIAGNOSTIC_CONTEXT.get()
        if scope and "context" not in diagnostic.detail:
            diagnostic.detail["context"] = dict(scope)
        self._diagnostics.append(diagnostic)
        return diagnostic

    def extend(self, diagnostics) -> None:
        for diagnostic in diagnostics:
            self.emit(diagnostic)

    def clear(self) -> None:
        self._diagnostics.clear()

    @property
    def last(self) -> Optional[Diagnostic]:
        return self._diagnostics[-1] if self._diagnostics else None

    def errors(self) -> List[Diagnostic]:
        return [
            d
            for d in self._diagnostics
            if d.severity in (Severity.ERROR, Severity.FATAL)
        ]

    def by_code(self, code: str) -> List[Diagnostic]:
        return [d for d in self._diagnostics if d.code == code]

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(list(self._diagnostics))

    def __len__(self) -> int:
        return len(self._diagnostics)

    def __getitem__(self, index):
        return self._diagnostics[index]

    def report(self) -> str:
        return "\n".join(d.render() for d in self._diagnostics)


# --- error hierarchy ---------------------------------------------------------------


class CompilerError(Exception):
    """Base class for structured compile/execute failures.

    Every instance carries a :class:`Diagnostic` (``.diagnostic``) and,
    when a reproducer was dumped, the path to it (``.reproducer_path``).
    """

    default_code = ErrorCode.STAGE_FAILED

    def __init__(
        self,
        message: str,
        diagnostic: Optional[Diagnostic] = None,
        reproducer_path: Optional[str] = None,
    ):
        super().__init__(message)
        self.diagnostic = diagnostic or Diagnostic(
            severity=Severity.ERROR, code=self.default_code, message=message
        )
        self.reproducer_path = reproducer_path

    @property
    def stage(self) -> Optional[str]:
        return self.diagnostic.stage

    @property
    def pass_name(self) -> Optional[str]:
        return self.diagnostic.pass_name

    def __str__(self) -> str:
        base = super().__str__()
        if self.reproducer_path:
            return f"{base} (reproducer: {self.reproducer_path})"
        return base


class OptionsError(CompilerError, ValueError):
    """Invalid user-facing compiler configuration.

    Subclasses ``ValueError`` for backward compatibility with callers
    that predate the structured hierarchy.
    """

    default_code = ErrorCode.INVALID_OPTIONS


class PassError(CompilerError):
    """An IR pass raised, or verification failed right after it."""

    default_code = ErrorCode.PASS_FAILED


class StageError(CompilerError):
    """A pipeline stage (frontend, lowering, codegen, ...) failed."""

    default_code = ErrorCode.STAGE_FAILED


class ExecutionError(CompilerError):
    """A compiled kernel failed (raised, or produced invalid output)."""

    default_code = ErrorCode.EXECUTION_FAILED


class DeviceError(ExecutionError):
    """The (simulated) GPU device failed, e.g. out of device memory."""

    default_code = ErrorCode.DEVICE_OOM


class FallbackExhaustedError(CompilerError):
    """Every rung of the degradation cascade failed."""

    default_code = ErrorCode.EXECUTION_FAILED


class DeadlineError(ExecutionError, TimeoutError):
    """A per-request/per-batch deadline expired before completion.

    Subclasses :class:`TimeoutError` so generic timeout handling works,
    while carrying the structured :class:`Diagnostic` of the hierarchy.
    """

    default_code = ErrorCode.DEADLINE_EXCEEDED


class ExecutableClosedError(ExecutionError, RuntimeError):
    """An :class:`~repro.runtime.executable.Executable` was invoked after
    (or concurrently with) :meth:`close`.

    Subclasses :class:`RuntimeError` for backward compatibility with
    callers that predate the structured hierarchy.
    """

    default_code = ErrorCode.EXECUTABLE_CLOSED


class AdmissionError(CompilerError):
    """The serving admission layer rejected a request (backpressure).

    Carries ``retry_after_s`` — the client-facing hint for when capacity
    is expected to free up (maps to HTTP 429 ``Retry-After``).
    """

    default_code = ErrorCode.ADMISSION_REJECTED

    def __init__(
        self,
        message: str,
        diagnostic: Optional[Diagnostic] = None,
        retry_after_s: float = 0.05,
    ):
        super().__init__(message, diagnostic=diagnostic)
        self.retry_after_s = retry_after_s


# --- reproducer dumps --------------------------------------------------------------

#: Environment variable overriding the default artifact directory.
ARTIFACT_ENV_VAR = "SPNC_ARTIFACT_DIR"

_dump_counter = itertools.count()


def artifact_directory(configured: Optional[str] = None) -> str:
    """Resolve the reproducer artifact directory.

    Priority: explicit ``configured`` value (e.g.
    ``CompilerOptions.artifact_dir``) > ``$SPNC_ARTIFACT_DIR`` > a
    ``spnc-artifacts`` folder under the system temp directory.
    """
    if configured:
        return configured
    env = os.environ.get(ARTIFACT_ENV_VAR)
    if env:
        return env
    return os.path.join(tempfile.gettempdir(), "spnc-artifacts")


def _options_to_dict(options: Any) -> Dict[str, Any]:
    if options is None:
        return {}
    if dataclasses.is_dataclass(options) and not isinstance(options, type):
        return dataclasses.asdict(options)
    if isinstance(options, dict):
        return dict(options)
    return {"repr": repr(options)}


def dump_reproducer(
    diagnostic: Diagnostic,
    module_text: Optional[str] = None,
    options: Any = None,
    artifact_dir: Optional[str] = None,
) -> Optional[str]:
    """Write a self-contained reproducer for a failure to disk.

    Produces ``<dir>/<stage>-<pid>-<n>/`` containing ``module.mlir``
    (the offending IR in generic textual form, when available),
    ``options.json`` (the active compiler configuration) and
    ``diagnostic.json``. Returns the directory path, or ``None`` when
    writing failed — a reproducer dump must never mask the original
    error, so all I/O errors are swallowed.
    """
    try:
        root = artifact_directory(artifact_dir)
        label = diagnostic.stage or diagnostic.pass_name or "failure"
        label = "".join(c if c.isalnum() or c in "-_" else "_" for c in label)
        path = os.path.join(root, f"{label}-{os.getpid()}-{next(_dump_counter)}")
        os.makedirs(path, exist_ok=True)
        if module_text is not None:
            with open(os.path.join(path, "module.mlir"), "w") as handle:
                handle.write(module_text)
        with open(os.path.join(path, "options.json"), "w") as handle:
            json.dump(_options_to_dict(options), handle, indent=2, default=repr)
        with open(os.path.join(path, "diagnostic.json"), "w") as handle:
            json.dump(diagnostic.to_dict(), handle, indent=2, default=repr)
        return path
    except OSError:
        return None


def diagnostic_from_exception(
    error: BaseException,
    *,
    code: str = ErrorCode.STAGE_FAILED,
    stage: Optional[str] = None,
    pass_name: Optional[str] = None,
    target: Optional[str] = None,
) -> Diagnostic:
    """Build a Diagnostic from an arbitrary exception, preserving any
    structured information a :class:`CompilerError` already carries."""
    if isinstance(error, CompilerError):
        inner = error.diagnostic
        return Diagnostic(
            severity=inner.severity,
            code=inner.code,
            message=inner.message,
            stage=stage or inner.stage,
            pass_name=pass_name or inner.pass_name,
            op_path=inner.op_path,
            target=target or inner.target,
            detail=dict(inner.detail),
        )
    op_path = getattr(error, "op_path", None)
    return Diagnostic(
        severity=Severity.ERROR,
        code=code,
        message=f"{type(error).__name__}: {error}",
        stage=stage,
        pass_name=pass_name,
        op_path=op_path,
        target=target,
        detail={"exception_type": type(error).__name__},
    )
