"""Synthetic MNIST-like image data (Application 2 substitute).

The RAT-SPN experiments in the paper classify MNIST / fashion-MNIST.
Offline, we synthesize digit-like data: each class is defined by a random
smooth prototype image; samples are noisy, randomly shifted copies. The
data only needs to (a) be image-shaped, (b) carry class structure strong
enough that trained RAT-SPN weights separate the classes, and (c) feed
the compile/execution-time experiments, which are insensitive to pixel
semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


@dataclass
class ImageDatasetConfig:
    num_classes: int = 10
    side: int = 8  # images are side x side; MNIST itself would be 28
    train_per_class: int = 200
    test_samples: int = 1000
    noise: float = 0.35
    seed: int = 11

    @property
    def num_features(self) -> int:
        return self.side * self.side


@dataclass
class ImageDataset:
    config: ImageDatasetConfig
    train: np.ndarray
    train_labels: np.ndarray
    test: np.ndarray
    test_labels: np.ndarray


def _smooth_prototype(rng: np.random.Generator, side: int) -> np.ndarray:
    """A random prototype image with local spatial correlation."""
    raw = rng.normal(0.0, 1.0, size=(side, side))
    kernel = np.array([0.25, 0.5, 0.25])
    for axis in (0, 1):
        raw = np.apply_along_axis(
            lambda row: np.convolve(row, kernel, mode="same"), axis, raw
        )
    return raw * 2.0


def generate_image_dataset(config: ImageDatasetConfig = None) -> ImageDataset:
    config = config or ImageDatasetConfig()
    rng = np.random.default_rng(config.seed)
    prototypes = [
        _smooth_prototype(rng, config.side) for _ in range(config.num_classes)
    ]

    def draw(labels: np.ndarray) -> np.ndarray:
        out = np.empty((labels.size, config.num_features))
        for i, label in enumerate(labels):
            image = prototypes[label]
            shift = rng.integers(-1, 2, size=2)
            shifted = np.roll(image, shift, axis=(0, 1))
            noisy = shifted + rng.normal(0.0, config.noise, size=shifted.shape)
            out[i] = noisy.ravel()
        return out

    train_labels = np.repeat(
        np.arange(config.num_classes), config.train_per_class
    )
    rng.shuffle(train_labels)
    train = draw(train_labels)

    test_labels = rng.integers(0, config.num_classes, size=config.test_samples)
    test = draw(test_labels)

    return ImageDataset(
        config=config,
        train=train.astype(np.float32),
        train_labels=train_labels,
        test=test.astype(np.float32),
        test_labels=test_labels,
    )
