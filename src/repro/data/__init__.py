"""Synthetic dataset generators standing in for the paper's workloads."""

from .images import ImageDataset, ImageDatasetConfig, generate_image_dataset
from .speaker import (
    SpeakerDataset,
    SpeakerDatasetConfig,
    generate_speaker_dataset,
    train_speaker_spns,
)

__all__ = [
    "ImageDataset",
    "ImageDatasetConfig",
    "generate_image_dataset",
    "SpeakerDataset",
    "SpeakerDatasetConfig",
    "generate_speaker_dataset",
    "train_speaker_spns",
]
