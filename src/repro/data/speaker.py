"""Synthetic speaker-identification dataset (Application 1 substitute).

The paper evaluates on SPNs from Nicolson et al.'s robust automatic
speaker identification: per-speaker SPNs over 26-dimensional speech
feature vectors (MFSC features), evaluated on clean samples and on noisy
samples with marginalized (missing) features.

The original corpus is not available offline, so this module synthesizes
speech-like data with the same relevant structure: each speaker is a
random mixture of Gaussians over 26 correlated features, clean samples
draw directly from the speaker's mixture, and noisy samples additionally
mask a random subset of features with NaN (the compiler's marginalization
convention). Per-speaker SPNs are then learned with LearnSPN, yielding
graphs in the paper's reported size range (~2.5k operations, roughly half
Gaussian leaves).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from ..spn.learning import LearnSPNOptions, learn_spn
from ..spn.nodes import Node

NUM_FEATURES = 26


@dataclass
class SpeakerDatasetConfig:
    """Configuration for the synthetic speaker-ID data generator."""

    num_speakers: int = 5
    num_features: int = NUM_FEATURES
    train_samples_per_speaker: int = 400
    clean_samples: int = 2000
    noisy_samples: int = 4000
    mixture_components: int = 4
    noise_missing_fraction: float = 0.3
    seed: int = 7


@dataclass
class SpeakerDataset:
    """Generated data plus the per-speaker ground-truth mixture parameters."""

    config: SpeakerDatasetConfig
    train: List[np.ndarray]  # per speaker [n, features]
    clean: np.ndarray  # [clean_samples, features] float32
    clean_labels: np.ndarray
    noisy: np.ndarray  # [noisy_samples, features] with NaN holes, float32
    noisy_labels: np.ndarray


def _speaker_mixture(rng: np.random.Generator, config: SpeakerDatasetConfig):
    """Random GMM parameters for one speaker (means, scales, base correlation)."""
    k = config.mixture_components
    means = rng.normal(0.0, 2.0, size=(k, config.num_features))
    scales = rng.uniform(0.4, 1.2, size=(k, config.num_features))
    weights = rng.dirichlet(np.ones(k))
    # A shared low-rank direction induces feature correlations, making the
    # LearnSPN row-clustering / independence splits non-trivial.
    direction = rng.normal(0.0, 1.0, size=config.num_features)
    return means, scales, weights, direction


def _draw(rng, means, scales, weights, direction, count: int) -> np.ndarray:
    k, features = means.shape
    components = rng.choice(k, size=count, p=weights)
    noise = rng.normal(0.0, 1.0, size=(count, features))
    shared = rng.normal(0.0, 1.0, size=(count, 1)) * direction[None, :] * 0.5
    return means[components] + noise * scales[components] + shared


def generate_speaker_dataset(config: SpeakerDatasetConfig = None) -> SpeakerDataset:
    """Generate train/clean/noisy splits for all speakers."""
    config = config or SpeakerDatasetConfig()
    rng = np.random.default_rng(config.seed)
    mixtures = [_speaker_mixture(rng, config) for _ in range(config.num_speakers)]

    train = [
        _draw(rng, *mix, config.train_samples_per_speaker) for mix in mixtures
    ]

    def draw_labeled(total: int) -> Tuple[np.ndarray, np.ndarray]:
        labels = rng.integers(0, config.num_speakers, size=total)
        samples = np.empty((total, config.num_features))
        for speaker in range(config.num_speakers):
            mask = labels == speaker
            if mask.any():
                samples[mask] = _draw(rng, *mixtures[speaker], int(mask.sum()))
        return samples, labels

    clean, clean_labels = draw_labeled(config.clean_samples)
    noisy, noisy_labels = draw_labeled(config.noisy_samples)
    holes = rng.random(noisy.shape) < config.noise_missing_fraction
    noisy = noisy.copy()
    noisy[holes] = np.nan

    return SpeakerDataset(
        config=config,
        train=train,
        clean=clean.astype(np.float32),
        clean_labels=clean_labels,
        noisy=noisy.astype(np.float32),
        noisy_labels=noisy_labels,
    )


def train_speaker_spns(
    dataset: SpeakerDataset, options: LearnSPNOptions = None
) -> List[Node]:
    """Learn one SPN per speaker from the training split.

    The default LearnSPN options are tuned to produce graphs around the
    paper's reported average size (~2.5k operations, ~49 % Gaussian
    leaves).
    """
    options = options or LearnSPNOptions(
        min_instances=25,
        independence_threshold=0.3,
        num_clusters=2,
        leaf_kind="gaussian",
        max_depth=14,
    )
    return [learn_spn(split, options) for split in dataset.train]
