"""Seedable random generation of SPNs, queries and input batches.

This is *library* code, not test scaffolding: the differential oracle
(:mod:`repro.testing.oracle`), the ``python -m repro fuzz`` CLI command
and the property-based tests all draw from the same generators, so a
failing fuzz case is always reproducible from ``(seed, index)`` alone.

Three layers:

- :class:`SPNGenerator` — random valid (complete & decomposable) SPN
  graphs over Gaussian/categorical/histogram leaves, in *balanced*,
  *deep* (long alternating sum/product chains) and *wide* (high-arity
  mixtures) shapes, plus multi-head lists for classifier kernels;
- :class:`CaseGenerator` — full differential-test cases: an SPN, a
  query (batch size, input dtype, marginal support, accuracy bound) and
  an input batch seeded with adversarial structure: NaN (marginalized)
  evidence, out-of-domain category values, extreme magnitudes, zero
  probability buckets and tail batch sizes W-1/W/W+1 around the
  compiled chunk width;
- thin `hypothesis <https://hypothesis.readthedocs.io>`_ strategy
  wrappers (:func:`leaf_nodes`, :func:`random_spns`) so property-based
  tests reuse the exact same generator instead of maintaining a
  duplicate strategy definition. Hypothesis is imported lazily — the
  library core has no test-framework dependency.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..spn.nodes import Categorical, Gaussian, Histogram, Leaf, Node, Product, Sum, leaves
from ..spn.query import (
    ConditionalProbability,
    Expectation,
    JointProbability,
    MPEQuery,
    Query,
    SampleQuery,
)

#: Probability that a generated input batch carries each adversarial
#: feature. Tuned so a ~200-case fuzz run exercises every combination.
NAN_ROW_SHARE = 0.25
OUT_OF_DOMAIN_SHARE = 0.15
EXTREME_SHARE = 0.1

#: Magnitude used for "extreme value" injections. Large enough to push
#: Gaussian log densities far out (~-1e7) yet representable in f32 log
#: space on every backend.
EXTREME_MAGNITUDE = 1.0e4

LEAF_KINDS = ("gaussian", "categorical", "histogram")
SHAPES = ("balanced", "deep", "wide")

#: All query modalities the case generator can produce. Every kind is a
#: pure function of ``(seed, index)`` — the fuzz CLI and the nightly CI
#: matrix iterate this tuple.
QUERY_CASE_KINDS = ("joint", "mpe", "sample", "conditional", "expectation")


def _rng_from(seed) -> np.random.Generator:
    return seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)


class SPNGenerator:
    """Random valid SPN structures from a seeded RNG."""

    def __init__(
        self,
        seed: Union[int, Sequence[int], np.random.Generator] = 0,
        max_features: int = 5,
        max_depth: int = 3,
        allow_zero_probabilities: bool = True,
    ):
        self.rng = _rng_from(seed)
        self.max_features = max_features
        self.max_depth = max_depth
        self.allow_zero_probabilities = allow_zero_probabilities

    # -- leaves ------------------------------------------------------------------

    def leaf(self, variable: int, kind: Optional[str] = None) -> Leaf:
        kind = kind or self.rng.choice(LEAF_KINDS)
        if kind == "gaussian":
            return self.gaussian(variable)
        if kind == "categorical":
            return self.categorical(variable)
        return self.histogram(variable)

    def gaussian(self, variable: int) -> Gaussian:
        mean = float(self.rng.uniform(-5.0, 5.0))
        stdev = float(self.rng.uniform(0.1, 3.0))
        return Gaussian(variable, mean, stdev)

    def _bucket_masses(self, count: int) -> np.ndarray:
        masses = self.rng.uniform(0.05, 1.0, size=count)
        if self.allow_zero_probabilities and self.rng.random() < 0.2:
            # A zero-probability bucket: exercises exact -inf (categorical)
            # and the epsilon floor (histogram) on every backend.
            masses[self.rng.integers(0, count)] = 0.0
        total = masses.sum()
        return masses / (total if total > 0 else 1.0)

    def categorical(self, variable: int) -> Categorical:
        count = int(self.rng.integers(2, 6))
        return Categorical(variable, self._bucket_masses(count))

    def histogram(self, variable: int) -> Histogram:
        buckets = int(self.rng.integers(2, 6))
        # Compiled lowering requires uniform bucket widths.
        lo = float(self.rng.uniform(-2.0, 1.0))
        width = float(self.rng.uniform(0.5, 2.0))
        bounds = [lo + width * i for i in range(buckets + 1)]
        return Histogram(variable, bounds, self._bucket_masses(buckets))

    # -- structures --------------------------------------------------------------

    def spn(
        self,
        max_features: Optional[int] = None,
        max_depth: Optional[int] = None,
        shape: Optional[str] = None,
    ) -> Tuple[Node, int]:
        """A random valid SPN; returns ``(root, num_features)``."""
        max_features = max_features or self.max_features
        max_depth = max_depth or self.max_depth
        shape = shape or self.rng.choice(SHAPES)
        if shape == "deep":
            return self._deep_spn(max_depth)
        if shape == "wide":
            return self._wide_spn(max_features)
        return self._balanced_spn(max_features, max_depth)

    def multi_head(self, heads: int = 2, **kwargs) -> Tuple[List[Node], int]:
        """Per-class SPNs over one shared feature set (classifier heads)."""
        first, num_features = self.spn(**kwargs)
        roots = [first]
        for _ in range(heads - 1):
            root = self._over_scope(tuple(range(num_features)), depth=0,
                                    max_depth=self.max_depth)
            roots.append(root)
        return roots, num_features

    def _balanced_spn(self, max_features: int, max_depth: int) -> Tuple[Node, int]:
        num_features = int(self.rng.integers(2, max_features + 1))
        scope = tuple(range(num_features))
        return self._over_scope(scope, 0, max_depth), num_features

    def _over_scope(self, scope: Tuple[int, ...], depth: int, max_depth: int) -> Node:
        if len(scope) == 1:
            return self.leaf(scope[0])
        if depth >= max_depth:
            return Product([self.leaf(v) for v in scope])
        if self.rng.random() < 0.5:
            arity = int(self.rng.integers(2, 4))
            children = [
                self._over_scope(scope, depth + 1, max_depth) for _ in range(arity)
            ]
            weights = self.rng.uniform(0.1, 1.0, size=arity)
            return Sum(children, weights)
        split = int(self.rng.integers(1, len(scope)))
        left, right = scope[:split], scope[split:]
        return Product(
            [
                self._over_scope(left, depth + 1, max_depth),
                self._over_scope(right, depth + 1, max_depth),
            ]
        )

    def _deep_spn(self, max_depth: int) -> Tuple[Node, int]:
        """An alternating sum/product chain (stresses value-range decay)."""
        levels = int(self.rng.integers(max(3, max_depth), max_depth + 5))
        node: Node = Product([self.leaf(0), self.leaf(1)])
        for _ in range(levels):
            alt = Product([self.leaf(0), self.leaf(1)])
            weights = self.rng.uniform(0.1, 1.0, size=2)
            node = Sum([node, alt], weights)
        return node, 2

    def _wide_spn(self, max_features: int) -> Tuple[Node, int]:
        """A high-arity mixture of full factorizations."""
        num_features = int(self.rng.integers(2, max_features + 1))
        arity = int(self.rng.integers(4, 9))
        children = [
            Product([self.leaf(v) for v in range(num_features)])
            for _ in range(arity)
        ]
        weights = self.rng.uniform(0.05, 1.0, size=arity)
        return Sum(children, weights), num_features


# --- differential-test cases ---------------------------------------------------


@dataclasses.dataclass
class Case:
    """One differential-test case: model + query + concrete input batch."""

    seed: int
    index: int
    spn: Node
    num_features: int
    query: Query
    inputs: np.ndarray
    label: str = ""
    #: Execute-time RNG seed for sample-query cases (pure function of
    #: the case identity, so replays are bit-reproducible).
    sample_seed: int = 0

    @property
    def name(self) -> str:
        return f"case(seed={self.seed}, index={self.index})"

    def replace(self, **changes) -> "Case":
        return dataclasses.replace(self, **changes)

    def describe(self) -> str:
        from ..spn.nodes import num_nodes

        marks = []
        if self.query.kind != "joint":
            marks.append(f"query={self.query.kind}")
        if np.isnan(self.inputs).any():
            marks.append("nan-evidence")
        if self.label:
            marks.append(self.label)
        flags = f" [{', '.join(marks)}]" if marks else ""
        return (
            f"{self.name}: {num_nodes(self.spn)} nodes, "
            f"{self.num_features} features, batch {self.inputs.shape[0]} "
            f"(W={self.query.batch_size}, {self.query.input_dtype}"
            f"{', marginal' if self.query.support_marginal else ''})"
            f"{flags}"
        )


class CaseGenerator:
    """Derives independent, reproducible cases from ``(seed, index)``."""

    def __init__(
        self,
        seed: int = 0,
        max_features: int = 5,
        max_depth: int = 3,
        query_kinds: Sequence[str] = ("joint",),
    ):
        self.seed = int(seed)
        self.max_features = max_features
        self.max_depth = max_depth
        unknown = sorted(set(query_kinds) - set(QUERY_CASE_KINDS))
        if unknown:
            raise ValueError(
                f"unknown query kind(s) {', '.join(unknown)}; "
                f"available: {', '.join(QUERY_CASE_KINDS)}"
            )
        self.query_kinds = tuple(query_kinds)

    def case(self, index: int) -> Case:
        # Round-robin over the requested modalities so even a short fuzz
        # run covers each one; the case stays a pure (seed, index)
        # function because the kind depends on the index alone.
        kind = self.query_kinds[index % len(self.query_kinds)]
        return self.query_case(index, kind)

    def query_case(self, index: int, kind: str) -> Case:
        """A differential case for one query modality at ``(seed, index)``."""
        rng = np.random.default_rng([self.seed, index])
        structure = SPNGenerator(
            rng, max_features=self.max_features, max_depth=self.max_depth
        )
        shape = str(rng.choice(SHAPES))
        spn, num_features = structure.spn(shape=shape)
        batch_width = int(rng.choice([1, 2, 4, 8, 16, 32]))
        input_dtype = str(rng.choice(["f32", "f32", "f64"]))
        # Sometimes request an accuracy bound: routes format selection
        # through the full error analysis instead of the depth heuristic.
        relative_error = float(rng.choice([0.0, 0.0, 0.0, 1e-6, 1e-9]))
        inputs, used_nan = self._inputs(rng, spn, num_features, batch_width)
        inputs, query, used_nan = self._shape_for_kind(
            rng, kind, index, inputs, num_features, used_nan,
            batch_size=batch_width,
            input_dtype=input_dtype,
            relative_error=relative_error,
        )
        inputs = inputs.astype(np.float32 if input_dtype == "f32" else np.float64)
        return Case(
            seed=self.seed,
            index=index,
            spn=spn,
            num_features=num_features,
            query=query,
            inputs=inputs,
            label=shape,
            sample_seed=index,
        )

    def _shape_for_kind(
        self,
        rng: np.random.Generator,
        kind: str,
        index: int,
        inputs: np.ndarray,
        num_features: int,
        used_nan: bool,
        **query_kwargs,
    ) -> Tuple[np.ndarray, Query, bool]:
        """Adjust the evidence pattern and build the query descriptor.

        Per-modality structure: MPE/sample/expectation cases lean on NaN
        (missing) evidence — including fully-observed and all-NaN-row
        extremes at fixed index strides — while conditional cases split
        the features into an observed query set and a (possibly NaN)
        evidence remainder.
        """
        if kind == "joint":
            return inputs, JointProbability(
                # NaN evidence means "marginalize": cases carrying NaN
                # compile with marginal support, matching the API-level
                # auto-routing.
                support_marginal=used_nan, **query_kwargs
            ), used_nan
        if kind == "conditional":
            count = int(rng.integers(1, num_features + 1))
            variables = tuple(
                sorted(rng.choice(num_features, size=count, replace=False))
            )
            # NaN is legal on evidence features only; scrub the query set.
            query_columns = np.asarray(variables, dtype=int)
            column = inputs[:, query_columns]
            inputs[:, query_columns] = np.where(np.isnan(column), 0.0, column)
            query = ConditionalProbability(
                query_variables=variables, **query_kwargs
            )
            return inputs, query, bool(np.isnan(inputs).any())
        # The completion/sampling/moment modalities: richer missingness.
        if index % 5 == 0:
            inputs = np.where(np.isnan(inputs), 0.0, inputs)  # fully observed
        else:
            extra = rng.random(inputs.shape) < 0.4
            inputs[extra] = np.nan
            if index % 7 == 0 and inputs.shape[0] > 0:
                inputs[rng.integers(0, inputs.shape[0])] = np.nan  # all-NaN row
        if kind == "mpe":
            return inputs, MPEQuery(**query_kwargs), True
        if kind == "sample":
            return inputs, SampleQuery(**query_kwargs), True
        query = Expectation(moment=int(rng.choice([1, 2])), **query_kwargs)
        return inputs, query, True

    def cases(self, count: int, start: int = 0) -> Iterator[Case]:
        for index in range(start, start + count):
            yield self.case(index)

    # -- inputs ------------------------------------------------------------------

    def _inputs(
        self,
        rng: np.random.Generator,
        spn: Node,
        num_features: int,
        batch_width: int,
    ) -> Tuple[np.ndarray, bool]:
        # Tail sizes 1 / W-1 / W / W+1 around the compiled chunk width,
        # plus a multi-chunk batch.
        candidates = [1, max(1, batch_width - 1), batch_width, batch_width + 1,
                      3 * batch_width + 5]
        batch = int(rng.choice(candidates))
        data = np.empty((batch, num_features), dtype=np.float64)
        by_variable: dict = {}
        for leaf in leaves(spn):
            by_variable.setdefault(leaf.variable, []).append(leaf)
        for variable in range(num_features):
            choices = by_variable.get(variable)
            leaf = choices[rng.integers(0, len(choices))] if choices else None
            data[:, variable] = self._column(rng, leaf, batch)
        used_nan = False
        if rng.random() < NAN_ROW_SHARE:
            # Marginalize random entries; occasionally a fully-NaN row
            # (probability one everywhere — log-likelihood exactly 0).
            mask = rng.random(data.shape) < 0.3
            if rng.random() < 0.25:
                mask[rng.integers(0, batch)] = True
            if mask.any():
                data[mask] = np.nan
                used_nan = True
        return data, used_nan

    def _column(self, rng, leaf, batch: int) -> np.ndarray:
        if isinstance(leaf, Categorical):
            count = len(leaf.probabilities)
            column = rng.integers(0, count, size=batch).astype(np.float64)
            out = rng.random(batch) < OUT_OF_DOMAIN_SHARE
            # Out-of-domain discrete evidence: above the bucket count,
            # negative, and fractional spillover — all probability zero.
            column[out] = rng.choice(
                [float(count), count + 3.0, -1.0, -0.4, count + 0.5], size=out.sum()
            )
            return column
        if isinstance(leaf, Histogram):
            lo, hi = leaf.bounds[0], leaf.bounds[-1]
            column = rng.uniform(lo - 0.5, hi + 0.5, size=batch)
            return column
        mean = leaf.mean if isinstance(leaf, Gaussian) else 0.0
        stdev = leaf.stdev if isinstance(leaf, Gaussian) else 1.0
        column = rng.normal(mean, stdev * 1.5, size=batch)
        extreme = rng.random(batch) < EXTREME_SHARE
        column[extreme] = rng.choice(
            [EXTREME_MAGNITUDE, -EXTREME_MAGNITUDE], size=extreme.sum()
        )
        return column


# --- hypothesis strategy wrappers ----------------------------------------------


def leaf_nodes(variable: int):
    """Hypothesis strategy: a random leaf over ``variable``."""
    from hypothesis import strategies as st

    return st.integers(0, 2**32 - 1).map(
        lambda seed: SPNGenerator(seed).leaf(variable)
    )


def random_spns(
    max_features: int = 4,
    max_depth: int = 3,
    allow_zero_probabilities: bool = False,
):
    """Hypothesis strategy: ``(root, num_features)`` of a random valid SPN.

    Drop-in replacement for the old test-local strategy module; the
    heavy lifting is delegated to :class:`SPNGenerator`, so hypothesis
    shrinks over the seed and every draw stays reproducible. Zero
    probability buckets (exact ``-inf`` log densities) are off by
    default — properties like "finite in support" rely on that.
    """
    from hypothesis import strategies as st

    return st.integers(0, 2**32 - 1).map(
        lambda seed: SPNGenerator(
            seed,
            max_features=max_features,
            max_depth=max_depth,
            allow_zero_probabilities=allow_zero_probabilities,
        ).spn()
    )
