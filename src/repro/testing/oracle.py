"""Cross-backend differential-testing oracle and IR fuzzer.

Every compiled configuration of the same SPN query — CPU scalar, CPU
fixed-lane and whole-batch vectorized, GPU simulator, partitioned,
different optimization levels, the IR interpreter — must compute the
same log-likelihoods as the reference NumPy evaluator, up to the
floating-point error bounds predicted by
:mod:`repro.compiler.error_analysis`. This module turns that invariant
into an executable oracle:

- :class:`DifferentialOracle` runs a :class:`~repro.testing.generators.Case`
  through every configured backend and compares against the reference
  under calibrated tolerances. On divergence it *shrinks* the case
  (single failing row, sum nodes collapsed to single children while the
  divergence persists) and dumps a self-contained reproducer —
  ``module.mlir``, ``options.json``, ``diagnostic.json``, ``model.spnb``,
  ``inputs.npy`` and a README with the replay command — through the
  :mod:`repro.diagnostics` artifact machinery (``$SPNC_ARTIFACT_DIR``).
- :class:`IRFuzzer` stresses the IR layer itself: print → parse →
  reprint must be a fixed point on fully lowered modules, and random
  permutations of the target-independent pass pipeline must preserve
  interpreter semantics.

``python -m repro fuzz N --seed S`` (and the nightly CI job) drive both.
"""

from __future__ import annotations

import dataclasses
import json
import os
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..compiler.bufferization import (
    bufferize,
    insert_deallocations,
    remove_result_copies,
)
from ..compiler.cpu.lowering import CPULoweringOptions, lower_kernel_to_cpu
from ..compiler.error_analysis import UNIT_ROUNDOFF, analyze_error
from ..compiler.frontend import build_hispn_module
from ..compiler.lower_to_lospn import decide_computation_type, lower_to_lospn
from ..compiler.pipeline import CompilerOptions, compile_spn
from ..diagnostics import (
    Diagnostic,
    ErrorCode,
    Severity,
    artifact_directory,
    dump_reproducer,
)
from ..dialects import hispn
from ..ir import parse_module, print_op, verify
from ..ir.interpreter import Interpreter
from ..ir.pipeline_spec import parse_pipeline
from ..spn.inference import conditional_log_likelihood, expectation, log_likelihood
from ..spn.mpe import max_log_likelihood, mpe
from ..spn.nodes import (
    Categorical,
    Gaussian,
    Histogram,
    Node,
    Product,
    Sum,
    leaves,
    num_nodes,
)
from ..spn.query import JointProbability, Query
from ..spn.serialization import serialize_to_file
from .generators import QUERY_CASE_KINDS, Case, CaseGenerator

#: Safety factor applied to the analytic error bounds. The bounds are
#: first-order worst-case estimates over a *modeled* input domain;
#: real inputs (extreme magnitudes, cancellation patterns) can exceed
#: them by a small constant factor without indicating a semantic bug.
#: Calibrated empirically: across seeded fuzz runs the worst observed
#: gap stays a factor ~4 below the raw bound, so 8 keeps real headroom
#: while still flagging any semantic deviation.
TOLERANCE_SAFETY = 8.0

#: Absolute floor of the log-space tolerance — two f64 reference-grade
#: evaluations of the same tiny graph still differ by a few ulps.
TOLERANCE_FLOOR = 1e-9

#: The interpreter walks scalar IR one Python op at a time; cap the rows
#: it replays per case so fuzzing stays fast. Divergences are per-row,
#: so a prefix is as good a witness as the full batch.
INTERPRETER_ROW_LIMIT = 8

#: Expectation queries compare in *linear* space (moments are not
#: probabilities): both sides run the same f64 (likelihood, moment)
#: recursion, differing only in association order, so a modest relative
#: tolerance plus an absolute floor for near-cancelled moments suffices.
EXPECTATION_RTOL = 1e-5
EXPECTATION_ATOL = 1e-8

#: Default accuracy budget for structure-suite fuzzing (`fuzz
#: --structure-opt`): generous enough that prune/compress actually fire
#: on generated cases, small enough that a semantic bug (not a budgeted
#: approximation) still stands out.
DEFAULT_STRUCTURE_BUDGET = 0.05

#: Execution configurations the structure suite is crossed with: the
#: budget must hold on every backend, not just the one that compiled
#: fastest (cpu off/lanes/batch and the GPU simulator).
STRUCTURE_EXECUTION_CONFIGS: Tuple[Tuple[str, Dict[str, object]], ...] = (
    ("cpu-off", {"vectorize": "off", "opt_level": 1}),
    ("cpu-lanes", {"vectorize": "lanes", "opt_level": 1}),
    ("cpu-batch", {"vectorize": "batch", "opt_level": 2}),
    ("gpu-sim", {"target": "gpu"}),
)

#: Structure-suite pass names the fuzzer permutes.
STRUCTURE_PASS_NAMES = ("cse", "prune", "compress")


def clamp_to_modeled_domain(spn: Node, inputs: np.ndarray) -> np.ndarray:
    """Project inputs onto the modeled leaf domain of the lossy passes.

    The accuracy budget of prune/compress is proven over the same
    bounded domain the error analysis models — every Gaussian leaf
    within :data:`~repro.compiler.error_analysis.GAUSSIAN_DOMAIN_SIGMAS`
    standard deviations of its mean, every histogram leaf within its
    bucket bounds (see :mod:`repro.compiler.structure.ranges`). Outside
    it the log-space bound has no meaning (the linear-space error is
    still bounded by the dropped mass, but log-likelihoods diverge), so
    the oracle's budget enforcement clips each continuous feature into
    the intersection of its leaves' domains. NaN (marginalized) entries
    and categorical features pass through unchanged.
    """
    from ..compiler.error_analysis import GAUSSIAN_DOMAIN_SIGMAS

    # Histogram clamp edges live on the f32 grid, one f32 ulp inside the
    # covered range: a clamped value that lands exactly on a bucket
    # bound after an f32 round-trip (kernels may compute in f32 even for
    # f64 inputs) would sit in-range for the f64 reference but
    # out-of-range for the f32 kernel — a representation edge, not a
    # structure-pass defect. One f32 ulp inside is exactly representable
    # in both precisions and strictly inside the range in both.
    f32 = np.float32
    lows: Dict[int, float] = {}
    highs: Dict[int, float] = {}
    for leaf in leaves(spn):
        if isinstance(leaf, Gaussian):
            radius = GAUSSIAN_DOMAIN_SIGMAS * leaf.stdev
            low, high = leaf.mean - radius, leaf.mean + radius
        elif isinstance(leaf, Histogram):
            low = float(np.nextafter(f32(leaf.bounds[0]), f32(np.inf)))
            high = float(np.nextafter(f32(leaf.bounds[-1]), f32(-np.inf)))
        else:
            continue
        variable = leaf.variable
        lows[variable] = max(lows.get(variable, -np.inf), low)
        highs[variable] = min(highs.get(variable, np.inf), high)
    if not lows:
        return inputs
    clamped = np.array(inputs, dtype=np.float64, copy=True)
    for variable, low in lows.items():
        column = clamped[:, variable]
        clamped[:, variable] = np.clip(column, low, highs[variable])
    return clamped.astype(inputs.dtype)


@dataclasses.dataclass(frozen=True)
class ConfigSpec:
    """One execution configuration the oracle compares against reference."""

    name: str
    kind: str = "compiled"  # "compiled" | "interpreter"
    options: Dict[str, object] = dataclasses.field(default_factory=dict)
    row_limit: Optional[int] = None

    def compiler_options(self, artifact_dir: Optional[str] = None) -> CompilerOptions:
        return CompilerOptions(fallback="raise", artifact_dir=artifact_dir,
                               **self.options)


#: The default configuration matrix: every CPU vectorization strategy,
#: the opt-level extremes, graph partitioning, the GPU simulator and the
#: IR interpreter.
DEFAULT_CONFIGS: Tuple[ConfigSpec, ...] = (
    ConfigSpec("cpu-o0-scalar", options={"vectorize": "off", "opt_level": 0}),
    ConfigSpec("cpu-o1-lanes", options={"vectorize": "lanes", "opt_level": 1}),
    ConfigSpec("cpu-o2-batch", options={"vectorize": "batch", "opt_level": 2}),
    ConfigSpec(
        "cpu-o3-partitioned",
        options={"vectorize": "batch", "opt_level": 3, "max_partition_size": 6},
    ),
    # Parallel execution must be invisible in the results: sharding a
    # batch across pool workers and pipelining GPU chunks over streams
    # are pure scheduling decisions, bit-identical to the single-worker
    # / single-stream runs at every chunk and tail size.
    ConfigSpec(
        "cpu-o2-batch-sharded",
        options={"vectorize": "batch", "opt_level": 2, "num_threads": 4},
    ),
    # Partition-level task parallelism (analysis-gated): independent
    # partitions of the task graph run concurrently on the worker pool;
    # the proof comes from the memory-access summaries and the results
    # must stay bit-identical to serial execution.
    ConfigSpec(
        "cpu-o2-partition-parallel",
        options={
            "vectorize": "batch",
            "opt_level": 2,
            "max_partition_size": 6,
            "partition_parallel": True,
            "num_threads": 4,
        },
    ),
    ConfigSpec("gpu-sim", options={"target": "gpu"}),
    ConfigSpec("gpu-sim-pipelined", options={"target": "gpu", "streams": 4}),
    ConfigSpec("interpreter", kind="interpreter", row_limit=INTERPRETER_ROW_LIMIT),
)


@dataclasses.dataclass
class Divergence:
    """A confirmed disagreement between a backend and the reference."""

    case: Case
    config: str
    reference: np.ndarray
    observed: np.ndarray
    tolerance: np.ndarray
    reproducer_path: Optional[str] = None
    error: Optional[str] = None

    @property
    def worst_row(self) -> int:
        return int(np.argmax(self._gap()))

    @property
    def max_gap(self) -> float:
        return float(np.max(self._gap()))

    def _gap(self) -> np.ndarray:
        with np.errstate(invalid="ignore"):
            diff = np.abs(self.observed - self.reference)
        # Structural mismatches (one-sided inf/NaN) rank above any
        # numeric gap so shrinking homes in on them first.
        diff = np.where(np.isnan(diff), np.inf, diff)
        both_nan = np.isnan(self.observed) & np.isnan(self.reference)
        both_neg_inf = np.isneginf(self.observed) & np.isneginf(self.reference)
        diff = np.where(both_nan | both_neg_inf, 0.0, diff)
        if diff.ndim > 1:
            # Multi-column modalities (MPE [score, completions...],
            # expectation moments): rank rows by their worst column.
            diff = diff.reshape(diff.shape[0], -1).max(axis=1)
        return diff

    def describe(self) -> str:
        if self.error is not None:
            return f"{self.config} failed on {self.case.name}: {self.error}"
        row = self.worst_row
        return (
            f"{self.config} diverges from reference on {self.case.describe()}: "
            f"row {row}: {self.observed[row]!r} vs {self.reference[row]!r} "
            f"(tolerance {self.tolerance[row]:.3e})"
        )


@dataclasses.dataclass
class FuzzReport:
    """Outcome of a fuzzing run."""

    cases_run: int = 0
    configs_compared: int = 0
    divergences: List[Divergence] = dataclasses.field(default_factory=list)
    ir_failures: List[str] = dataclasses.field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences and not self.ir_failures

    def summary(self) -> str:
        lines = [
            f"fuzz: {self.cases_run} case(s), "
            f"{self.configs_compared} backend comparison(s), "
            f"{len(self.divergences)} divergence(s), "
            f"{len(self.ir_failures)} IR failure(s)"
        ]
        for divergence in self.divergences:
            lines.append(f"  DIVERGENCE: {divergence.describe()}")
            if divergence.reproducer_path:
                lines.append(f"    reproducer: {divergence.reproducer_path}")
        for failure in self.ir_failures:
            lines.append(f"  IR: {failure}")
        return "\n".join(lines)


def compute_tolerance(
    spn: Node, query: Query, reference: np.ndarray
) -> np.ndarray:
    """Per-row comparison tolerance in log space.

    Calibrated from the compiler's own error analysis: the bound of the
    format the type decision actually selects, plus the f64-log bound
    the reference evaluation is subject to, scaled by
    :data:`TOLERANCE_SAFETY`. A relative term covers log magnitudes far
    outside the modeled leaf domain (adversarial extreme inputs), where
    representation error alone grows with ``|log p|``.

    Query-kind scaling: a conditional is the *difference* of two such
    evaluations, so its tolerance doubles; an MPE score replaces sums by
    maxima (no accumulation growth), so the joint bound is conservative
    and reused as-is.
    """
    module = build_hispn_module(spn, query)
    query_op_names = set(hispn.QUERY_OP_NAMES.values())
    query_op = next(
        op
        for op in module.body_block.ops
        if op.op_name in query_op_names
    )
    decision = decide_computation_type(query_op, use_log_space=True)
    estimates = analyze_error(query_op)
    width = decision.float_type.width
    space = "log" if decision.use_log_space else "linear"
    selected = estimates[f"f{width}-{space}"]
    baseline = estimates["f64-log"]
    atol = TOLERANCE_SAFETY * (
        selected.max_relative_error + baseline.max_relative_error
    )
    atol = max(atol, TOLERANCE_FLOOR)
    # |log p| beyond the modeled range: one unit roundoff per represented
    # log value, accumulated over the graph's add chain.
    rtol = TOLERANCE_SAFETY * UNIT_ROUNDOFF[width] * max(num_nodes(spn), 8)
    if query.kind == "conditional":
        atol, rtol = 2.0 * atol, 2.0 * rtol
    with np.errstate(invalid="ignore"):
        magnitude = np.where(np.isfinite(reference), np.abs(reference), 0.0)
    return atol + rtol * magnitude


def outputs_match(
    observed: np.ndarray,
    reference: np.ndarray,
    tolerance: np.ndarray,
    nan_agrees: bool = False,
) -> np.ndarray:
    """Per-row agreement under the log-space comparison rules.

    ``-inf == -inf`` (probability zero on both sides) is agreement; a
    one-sided ``-inf`` or any NaN is a structural divergence regardless
    of tolerance. With ``nan_agrees=True`` a *two-sided* NaN also counts
    as agreement — conditional and expectation queries define NaN as a
    legitimate answer (zero-probability evidence, out-of-scope
    features), so only a one-sided NaN diverges there.
    """
    observed = np.asarray(observed, dtype=np.float64)
    reference = np.asarray(reference, dtype=np.float64)
    both_neg_inf = np.isneginf(observed) & np.isneginf(reference)
    both_nan = np.isnan(observed) & np.isnan(reference)
    structurally_bad = (
        np.isnan(observed)
        | np.isnan(reference)
        | (np.isneginf(observed) ^ np.isneginf(reference))
    )
    with np.errstate(invalid="ignore"):
        close = np.abs(observed - reference) <= tolerance
    agreed = both_neg_inf | (~structurally_bad & close)
    if nan_agrees:
        agreed = agreed | both_nan
    return agreed


def run_interpreter(case: Case, row_limit: Optional[int] = None) -> np.ndarray:
    """Evaluate a case by interpreting the fully lowered scalar IR."""
    return _interpret_lowered(_lowered_module(case, "off"), case, row_limit)


class DifferentialOracle:
    """Compares every configured backend against the reference evaluator."""

    def __init__(
        self,
        configs: Sequence[ConfigSpec] = DEFAULT_CONFIGS,
        artifact_dir: Optional[str] = None,
        shrink: bool = True,
        dump_reproducers: bool = True,
        log: Optional[Callable[[str], None]] = None,
    ):
        self.configs = tuple(configs)
        self.artifact_dir = artifact_dir
        self.shrink = shrink
        self.dump_reproducers = dump_reproducers
        self.log = log or (lambda message: None)
        self.comparisons = 0
        #: Extra absolute tolerance added on top of the calibrated
        #: floating-point bounds — the structure checks set this to the
        #: accuracy budget of the lossy passes under test, so shrinking
        #: re-verification uses the same budgeted comparison.
        self.extra_tolerance = 0.0

    # -- execution ---------------------------------------------------------------

    def run_config(self, spec: ConfigSpec, case: Case) -> np.ndarray:
        if spec.kind == "interpreter":
            return run_interpreter(case, spec.row_limit)
        options = spec.compiler_options(self.artifact_dir)
        result = compile_spn(case.spn, case.query, options)
        inputs = case.inputs
        if spec.row_limit is not None:
            inputs = inputs[:spec.row_limit]
        # Every backend satisfies the common Executable contract, so the
        # oracle runs and releases kernels uniformly — no target cases.
        with result.executable as executable:
            if case.query.kind == "sample":
                values = executable.execute(inputs, seed=case.sample_seed)
            else:
                values = executable(inputs)
        return np.asarray(values, dtype=np.float64)

    # -- per-modality reference + comparison --------------------------------------

    def _reference_and_tolerance(
        self, case: Case
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Row-major reference output and comparison tolerance for a case.

        Shapes by kind: joint/conditional ``[batch]``; MPE
        ``[batch, 1 + F]`` (score column, then the completed features);
        expectation ``[batch, F]`` with elementwise tolerance.
        """
        reference, tolerance = self._base_reference_and_tolerance(case)
        if self.extra_tolerance:
            tolerance = tolerance + self.extra_tolerance
        return reference, tolerance

    def _base_reference_and_tolerance(
        self, case: Case
    ) -> Tuple[np.ndarray, np.ndarray]:
        data = case.inputs.astype(np.float64)
        kind = case.query.kind
        if kind == "mpe":
            completions, scores = mpe(case.spn, data)
            reference = np.column_stack([scores, completions])
            return reference, compute_tolerance(case.spn, case.query, scores)
        if kind == "conditional":
            reference = conditional_log_likelihood(
                case.spn, data, case.query.query_variables
            )
            return reference, compute_tolerance(case.spn, case.query, reference)
        if kind == "expectation":
            reference = expectation(case.spn, data, moment=case.query.moment)
            with np.errstate(invalid="ignore"):
                tolerance = EXPECTATION_ATOL + EXPECTATION_RTOL * np.abs(reference)
            return reference, tolerance
        reference = log_likelihood(
            case.spn, data, marginal=case.query.support_marginal
        )
        return reference, compute_tolerance(case.spn, case.query, reference)

    def _compare(
        self,
        case: Case,
        observed: np.ndarray,
        reference: np.ndarray,
        tolerance: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-row agreement plus the row-major observed representation."""
        kind = case.query.kind
        if kind == "mpe":
            observed = np.atleast_2d(observed)
            scores, completions = observed[0], observed[1:].T
            ref_scores, ref_completions = reference[:, 0], reference[:, 1:]
            ok = outputs_match(scores, ref_scores, tolerance)
            exact = np.all(completions == ref_completions, axis=1)
            tied = ok & ~exact
            if tied.any():
                # The compiled argmax may legally break a (near-)tie the
                # other way; the completion is correct iff rescoring it
                # with the reference max-product evaluator achieves the
                # reference maximum within tolerance.
                rescored = max_log_likelihood(case.spn, completions[tied])
                rows = np.flatnonzero(tied)
                ok[rows] = outputs_match(
                    rescored, ref_scores[tied], tolerance[tied]
                )
            return ok, np.column_stack([scores, completions])
        if kind == "conditional":
            return outputs_match(
                observed, reference, tolerance, nan_agrees=True
            ), observed
        if kind == "expectation":
            observed = np.atleast_2d(observed).T
            match = outputs_match(observed, reference, tolerance, nan_agrees=True)
            return match.all(axis=1), observed
        return outputs_match(observed, reference, tolerance), observed

    def check_case(self, case: Case) -> List[Divergence]:
        """Run one case through every backend; shrink and dump failures."""
        if case.query.kind == "sample":
            return self._check_sample_case(case)
        reference, tolerance = self._reference_and_tolerance(case)
        divergences: List[Divergence] = []
        for spec in self.configs:
            if spec.kind == "interpreter" and case.query.kind != "joint":
                # The scalar-IR replay rung only understands the joint
                # kernel layout; the other modalities are checked against
                # the repro.spn reference implementations instead.
                continue
            self.comparisons += 1
            divergence = self._check_config(spec, case, reference, tolerance)
            if divergence is not None:
                if self.shrink and divergence.error is None:
                    divergence = self._shrink(spec, divergence)
                if self.dump_reproducers:
                    divergence.reproducer_path = self._dump(spec, divergence)
                divergences.append(divergence)
                self.log(divergence.describe())
        return divergences

    def _check_config(
        self,
        spec: ConfigSpec,
        case: Case,
        reference: np.ndarray,
        tolerance: np.ndarray,
    ) -> Optional[Divergence]:
        limit = spec.row_limit
        ref = reference[:limit] if limit is not None else reference
        tol = tolerance[:limit] if limit is not None else tolerance
        try:
            observed = self.run_config(spec, case)
        except Exception as error:  # a backend crash is a divergence too
            return Divergence(
                case=case,
                config=spec.name,
                reference=ref,
                observed=np.full_like(ref, np.nan),
                tolerance=tol,
                error=f"{type(error).__name__}: {error}",
            )
        ok, observed_rows = self._compare(case, observed, ref, tol)
        if ok.all():
            return None
        return Divergence(
            case=case, config=spec.name, reference=ref,
            observed=np.asarray(observed_rows, dtype=np.float64), tolerance=tol,
        )

    # -- sampling invariants -------------------------------------------------------

    def _check_sample_case(self, case: Case) -> List[Divergence]:
        """Sampling has no pointwise reference; check its invariants.

        Per configuration: seeded determinism (same seed ⇒ bit-identical
        samples), bit-exact pass-through of observed evidence, finite
        sampled values, and membership in the leaf supports (integer
        categories in range, histogram draws within bounds).
        Distributional goodness-of-fit lives in the differential test
        suite, where the model is controlled.
        """
        divergences: List[Divergence] = []
        rows = case.inputs.shape[0]
        for spec in self.configs:
            if spec.kind != "compiled":
                continue
            self.comparisons += 1
            error = self._sample_config_error(spec, case)
            if error is None:
                continue
            divergence = Divergence(
                case=case,
                config=spec.name,
                reference=np.zeros(rows),
                observed=np.full(rows, np.nan),
                tolerance=np.zeros(rows),
                error=error,
            )
            if self.dump_reproducers:
                divergence.reproducer_path = self._dump(spec, divergence)
            divergences.append(divergence)
            self.log(divergence.describe())
        return divergences

    def _sample_config_error(self, spec: ConfigSpec, case: Case) -> Optional[str]:
        try:
            first = self.run_config(spec, case)
            second = self.run_config(spec, case)
        except Exception as error:
            return f"{type(error).__name__}: {error}"
        if not np.array_equal(first, second):
            return "seeded sampling not deterministic (same seed, different samples)"
        samples = np.atleast_2d(first).T
        original = case.inputs.astype(np.float64)
        observed_mask = ~np.isnan(original)
        if not np.array_equal(samples[observed_mask], original[observed_mask]):
            return "observed evidence not preserved bit-exactly in samples"
        if not np.isfinite(samples).all():
            return "non-finite sampled values"
        return self._support_violation(case, samples, observed_mask)

    @staticmethod
    def _support_violation(
        case: Case, samples: np.ndarray, observed_mask: np.ndarray
    ) -> Optional[str]:
        by_variable: Dict[int, list] = {}
        for leaf in leaves(case.spn):
            by_variable.setdefault(leaf.variable, []).append(leaf)
        for variable, choices in by_variable.items():
            column = samples[~observed_mask[:, variable], variable]
            if column.size == 0:
                continue
            if all(isinstance(leaf, Categorical) for leaf in choices):
                count = max(len(leaf.probabilities) for leaf in choices)
                ok = (column == np.round(column)) & (column >= 0) & (column < count)
                if not ok.all():
                    return (
                        f"sampled categorical value outside support for "
                        f"variable {variable}"
                    )
            elif all(isinstance(leaf, Histogram) for leaf in choices):
                lo = min(leaf.bounds[0] for leaf in choices)
                hi = max(leaf.bounds[-1] for leaf in choices)
                if not ((column >= lo) & (column <= hi)).all():
                    return (
                        f"sampled histogram value outside bounds for "
                        f"variable {variable}"
                    )
        return None

    # -- shrinking ---------------------------------------------------------------

    def _shrink(self, spec: ConfigSpec, divergence: Divergence) -> Divergence:
        """Minimize a failing case while the divergence persists.

        Two scope-preserving reductions: keep only the single worst
        input row, then repeatedly collapse sum nodes to one of their
        children (sum children share the parent scope, so validity and
        the feature count are untouched).
        """
        case = divergence.case
        row = divergence.worst_row
        candidate = case.replace(inputs=case.inputs[row:row + 1])
        shrunk = self._recheck(spec, candidate) or divergence

        improved = True
        while improved:
            improved = False
            for target in _sum_nodes(shrunk.case.spn):
                for child in target.children:
                    smaller = _replace_node(shrunk.case.spn, target, child)
                    if smaller is shrunk.case.spn:
                        continue
                    candidate = shrunk.case.replace(spn=smaller)
                    reduced = self._recheck(spec, candidate)
                    if reduced is not None:
                        shrunk = reduced
                        improved = True
                        break
                if improved:
                    break
        return shrunk

    def _recheck(self, spec: ConfigSpec, case: Case) -> Optional[Divergence]:
        try:
            reference, tolerance = self._reference_and_tolerance(case)
            return self._check_config(spec, case, reference, tolerance)
        except Exception:
            # A reduction that breaks the harness itself is not a valid
            # smaller witness; keep the current one.
            return None

    # -- reproducer dumps --------------------------------------------------------

    def _dump(self, spec: ConfigSpec, divergence: Divergence) -> Optional[str]:
        case = divergence.case
        diagnostic = Diagnostic(
            severity=Severity.ERROR,
            code=ErrorCode.DIVERGENCE,
            message=divergence.describe(),
            stage="differential-test",
            target=str(spec.options.get("target", "cpu")),
            detail={
                "config": spec.name,
                "seed": case.seed,
                "index": case.index,
                "max_gap": None if divergence.error else divergence.max_gap,
            },
        )
        module_text = None
        try:
            module_text = print_op(
                lower_to_lospn(build_hispn_module(case.spn, case.query))
            )
        except Exception:
            pass
        options = None
        if spec.kind == "compiled":
            try:
                options = spec.compiler_options(self.artifact_dir)
            except Exception:
                options = dict(spec.options)
        path = dump_reproducer(
            diagnostic,
            module_text=module_text,
            options=options,
            artifact_dir=self.artifact_dir,
        )
        if path is None:
            return None
        try:
            serialize_to_file(
                case.spn, case.query, os.path.join(path, "model.spnb")
            )
            np.save(os.path.join(path, "inputs.npy"), case.inputs)
            with open(os.path.join(path, "README.txt"), "w") as handle:
                handle.write(
                    f"Differential divergence: {spec.name} vs reference\n"
                    f"case: seed={case.seed} index={case.index}\n\n"
                    "Replay the failing configuration:\n"
                    f"  python -m repro run model.spnb inputs.npy {_replay_flags(spec)}\n\n"
                    "Reference values:\n"
                    f"  {divergence.reference.tolist()}\n"
                    "Observed values:\n"
                    f"  {divergence.observed.tolist()}\n"
                )
        except OSError:
            pass
        return path

    # -- structure-suite verification ---------------------------------------------

    def check_structure_case(
        self,
        case: Case,
        suite: str,
        accuracy_budget: float = DEFAULT_STRUCTURE_BUDGET,
        execution_configs: Sequence[
            Tuple[str, Dict[str, object]]
        ] = STRUCTURE_EXECUTION_CONFIGS,
    ) -> List[Divergence]:
        """Verify one structure-suite spelling against the uncompressed
        reference, across the execution-configuration matrix.

        ``suite`` is a ``structure_opt`` spec ("cse", "prune,cse",
        "cse,prune,compress", ...). CSE is exact, so a suite without a
        lossy pass is held to the reference tolerance; suites containing
        prune/compress get ``accuracy_budget`` of additional absolute
        log-likelihood slack — the budget is the *semantic contract* of
        those passes, and this check is what enforces it. Divergences
        shrink and dump reproducers exactly like backend divergences.
        """
        lossy = any(name != "cse" for name in suite.split(","))
        budget = accuracy_budget if lossy else 0.0
        if lossy:
            # The budget is a modeled-domain contract: lossy drops are
            # proven over bounded leaf domains, so enforcement projects
            # the inputs into that domain first (CSE-only suites stay
            # bit-exact on arbitrary inputs and are checked unclamped).
            case = case.replace(
                inputs=clamp_to_modeled_domain(case.spn, case.inputs)
            )
        divergences: List[Divergence] = []
        previous = self.extra_tolerance
        self.extra_tolerance = budget
        try:
            reference, tolerance = self._reference_and_tolerance(case)
            for name, options in execution_configs:
                spec = ConfigSpec(
                    f"{name}+structure[{suite}]",
                    options={
                        **options,
                        "structure_opt": suite,
                        "accuracy_budget": budget,
                    },
                )
                self.comparisons += 1
                divergence = self._check_config(spec, case, reference, tolerance)
                if divergence is not None:
                    if self.shrink and divergence.error is None:
                        divergence = self._shrink(spec, divergence)
                    if self.dump_reproducers:
                        divergence.reproducer_path = self._dump(spec, divergence)
                    divergences.append(divergence)
                    self.log(divergence.describe())
        finally:
            self.extra_tolerance = previous
        return divergences

    def fuzz_structure(
        self,
        count: int,
        seed: int = 0,
        start: int = 0,
        accuracy_budget: float = DEFAULT_STRUCTURE_BUDGET,
        max_features: int = 5,
        max_depth: int = 3,
        report: Optional[FuzzReport] = None,
    ) -> FuzzReport:
        """Permute the structure suite over generated cases.

        Each case gets a random non-empty subset of the suite passes in
        a random order (``fuzz --structure-opt``); semantic preservation
        is asserted exactly for CSE-only spellings and within
        ``accuracy_budget`` when prune/compress participate. Compression
        needs a positive budget to be legal, so it only enters the draw
        when one is available.
        """
        report = report or FuzzReport()
        generator = CaseGenerator(
            seed=seed, max_features=max_features, max_depth=max_depth
        )
        names = [
            name
            for name in STRUCTURE_PASS_NAMES
            if name != "compress" or accuracy_budget > 0
        ]
        for case in generator.cases(count, start=start):
            rng = np.random.default_rng([seed, case.index, 0x57])
            chosen = [n for n in names if rng.random() < 0.5] or [
                names[int(rng.integers(len(names)))]
            ]
            rng.shuffle(chosen)
            suite = ",".join(chosen)
            report.cases_run += 1
            report.divergences.extend(
                self.check_structure_case(
                    case, suite, accuracy_budget=accuracy_budget
                )
            )
        report.configs_compared = self.comparisons
        return report

    # -- fuzzing loop ------------------------------------------------------------

    def fuzz(
        self,
        count: int,
        seed: int = 0,
        start: int = 0,
        max_features: int = 5,
        max_depth: int = 3,
        ir_share: float = 0.25,
        query_kinds: Sequence[str] = ("joint",),
        report: Optional[FuzzReport] = None,
    ) -> FuzzReport:
        """Run ``count`` generated cases (plus interleaved IR fuzzing).

        ``query_kinds`` selects the modality mix (round-robin over the
        tuple; see :data:`~repro.testing.generators.QUERY_CASE_KINDS`).
        IR round-trip/permutation fuzzing rides on joint cases only —
        its interpreter baseline replays the joint kernel layout.
        """
        report = report or FuzzReport()
        generator = CaseGenerator(
            seed=seed, max_features=max_features, max_depth=max_depth,
            query_kinds=query_kinds,
        )
        ir_fuzzer = IRFuzzer(artifact_dir=self.artifact_dir)
        ir_every = max(1, int(round(1.0 / ir_share))) if ir_share > 0 else 0
        for case in generator.cases(count, start=start):
            report.cases_run += 1
            report.divergences.extend(self.check_case(case))
            if (
                ir_every
                and case.index % ir_every == 0
                and case.query.kind == "joint"
            ):
                report.ir_failures.extend(ir_fuzzer.fuzz_case(case))
        report.configs_compared = self.comparisons
        return report


def _replay_flags(spec: ConfigSpec) -> str:
    options = spec.options
    flags = []
    if options.get("target"):
        flags.append(f"--target {options['target']}")
    if "opt_level" in options:
        flags.append(f"--opt {options['opt_level']}")
    if "vectorize" in options:
        flags.append(f"--vectorize {options['vectorize']}")
    if options.get("max_partition_size") is not None:
        flags.append(f"--partition {options['max_partition_size']}")
    if options.get("structure_opt"):
        flags.append(f"--structure-opt {options['structure_opt']}")
    if options.get("accuracy_budget"):
        flags.append(f"--accuracy-budget {options['accuracy_budget']}")
    return " ".join(flags)


def _sum_nodes(root: Node) -> List[Sum]:
    found: List[Sum] = []
    seen = set()

    def walk(node: Node) -> None:
        if id(node) in seen:
            return
        seen.add(id(node))
        if isinstance(node, Sum):
            found.append(node)
        for child in getattr(node, "children", ()):
            walk(child)

    walk(root)
    return found


def _replace_node(root: Node, target: Node, replacement: Node) -> Node:
    """Rebuild the tree with ``target`` swapped for ``replacement``."""
    if root is target:
        return replacement
    if isinstance(root, Sum):
        children = [_replace_node(c, target, replacement) for c in root.children]
        if all(a is b for a, b in zip(children, root.children)):
            return root
        return Sum(children, root.weights)
    if isinstance(root, Product):
        children = [_replace_node(c, target, replacement) for c in root.children]
        if all(a is b for a, b in zip(children, root.children)):
            return root
        return Product(children)
    return root


# --- IR-layer fuzzing ----------------------------------------------------------

#: Pass names whose permutations must preserve semantics.
PERMUTABLE_PASSES = ("canonicalize", "cse", "dce", "licm")


class IRFuzzer:
    """Print/parse round-trip and pass-permutation fuzzing."""

    def __init__(
        self,
        artifact_dir: Optional[str] = None,
        dump_reproducers: bool = True,
    ):
        self.artifact_dir = artifact_dir
        self.dump_reproducers = dump_reproducers

    def fuzz_case(self, case: Case) -> List[str]:
        failures: List[str] = []
        rng = np.random.default_rng([case.seed, case.index, 0xFE])
        vectorize = str(rng.choice(["off", "lanes", "batch"]))
        try:
            lowered = _lowered_module(case, vectorize)
        except Exception as error:
            failures.append(
                f"{case.name}: lowering ({vectorize}) failed: "
                f"{type(error).__name__}: {error}"
            )
            self._dump(case, failures[-1], None)
            return failures
        failures.extend(self.check_roundtrip(case, lowered, vectorize))
        failures.extend(self.check_pass_permutation(case, rng))
        return failures

    def check_roundtrip(self, case: Case, module, label: str) -> List[str]:
        """print → parse → reprint must be a fixed point, and verify."""
        first = print_op(module)
        try:
            reparsed = parse_module(first)
            verify(reparsed)
            second = print_op(reparsed)
        except Exception as error:
            message = (
                f"{case.name}: round-trip ({label}) failed: "
                f"{type(error).__name__}: {error}"
            )
            self._dump(case, message, first)
            return [message]
        if second != first:
            message = f"{case.name}: reprint ({label}) is not a fixed point"
            self._dump(case, message, first + "\n// --- reprint ---\n" + second)
            return [message]
        return []

    def check_pass_permutation(self, case: Case, rng) -> List[str]:
        """A random pass-pipeline permutation must preserve semantics."""
        order = list(PERMUTABLE_PASSES)
        rng.shuffle(order)
        # Random subset too — passes must not rely on a predecessor.
        keep = max(1, int(rng.integers(1, len(order) + 1)))
        spec = ",".join(order[:keep])
        try:
            baseline = run_interpreter(case, INTERPRETER_ROW_LIMIT)
            module = _lowered_module(case, "off")
            # "every-pass" runs the structural verifier *and* the static
            # analyses (buffer safety, range, lint, concurrency) after
            # each pass, so a pass that produces invalid-but-interpretable
            # IR fails structurally instead of surfacing only as a
            # numeric divergence downstream.
            parse_pipeline(spec, verify_each="every-pass").run(module)
            after = _interpret_lowered(module, case, INTERPRETER_ROW_LIMIT)
        except Exception as error:
            message = (
                f"{case.name}: pipeline [{spec}] failed: "
                f"{type(error).__name__}: {error}"
            )
            self._dump(case, message, None)
            return [message]
        match = outputs_match(
            after, baseline, np.full_like(baseline, TOLERANCE_FLOOR)
        )
        if not match.all():
            message = (
                f"{case.name}: pipeline [{spec}] changed interpreter "
                f"results: {after.tolist()} vs {baseline.tolist()}"
            )
            self._dump(case, message, print_op(module))
            return [message]
        return []

    def _dump(self, case: Case, message: str, module_text: Optional[str]):
        if not self.dump_reproducers:
            return None
        diagnostic = Diagnostic(
            severity=Severity.ERROR,
            code=ErrorCode.IR_FUZZ_FAILED,
            message=message,
            stage="ir-fuzz",
            detail={"seed": case.seed, "index": case.index},
        )
        return dump_reproducer(
            diagnostic, module_text=module_text, artifact_dir=self.artifact_dir
        )


def _lowered_module(case: Case, vectorize: str):
    module = lower_to_lospn(build_hispn_module(case.spn, case.query))
    module = bufferize(module)
    remove_result_copies(module)
    insert_deallocations(module)
    return lower_kernel_to_cpu(module, CPULoweringOptions(vectorize=vectorize))


def _interpret_lowered(
    lowered, case: Case, row_limit: Optional[int]
) -> np.ndarray:
    from ..backends.cpu.codegen import numpy_dtype
    from ..dialects.func import lookup_function

    kernel = lookup_function(lowered, "spn_kernel")
    if kernel is None:
        raise ValueError("lowered module has no 'spn_kernel' function")
    input_type, result_type = kernel.arg_types[0], kernel.arg_types[-1]
    x = np.ascontiguousarray(
        case.inputs[:row_limit], dtype=numpy_dtype(input_type.element_type)
    )
    out = np.empty(
        (result_type.shape[0] or 1, x.shape[0]),
        dtype=numpy_dtype(result_type.element_type),
    )
    Interpreter(lowered).call(kernel.sym_name, x, out)
    return out[0]
