"""Deterministic fault injection for the compile/execute path.

The robustness test-suite needs to exercise degradation paths — a pass
that raises mid-pipeline, a kernel that produces NaNs, a simulated
device that runs out of memory — *deterministically*. This module is
the single switchboard: production code calls the cheap ``maybe_*`` /
``*_active`` hooks (no-ops when nothing is armed), and tests arm faults
through context managers::

    with inject_pass_failure("cse"):
        CPUCompiler(fallback="interpret").log_likelihood(spn, x)

    with inject_kernel_nan():
        ...  # compiled kernels poison their output with NaN

    with inject_gpu_oom(after_n_launches=1):
        ...  # the 2nd GPU kernel launch raises OutOfDeviceMemory

Hooks are consulted from:

- :meth:`repro.ir.passes.PassManager.run` (per-pass),
- the stage driver in :mod:`repro.compiler.pipeline` (per-stage; stage
  names such as ``"codegen"`` or ``"gpu-lowering"`` match too),
- the generated-kernel entry in :class:`repro.runtime.executable.CPUExecutable`
  and :class:`repro.runtime.gpu_executable.GPUExecutable`,
- :meth:`repro.gpusim.simulator.GPUSimulator.launch` (device OOM).

Matching for pass/stage names is case-insensitive containment: arming
``"cse"`` fires on the pass named ``cse`` and on pipeline stages named
``cse`` / ``cse-2`` / ``lospn-cse``. Faults are process-global and meant
for single-threaded test orchestration; the kernel-NaN flag is a plain
read, safe to consult from runtime worker threads.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional


class FaultInjectionError(RuntimeError):
    """Default exception raised by an armed pass/stage fault."""


@dataclass
class _PassFault:
    name: str
    exception: Optional[Callable[[], BaseException]] = None
    #: Remaining number of times this fault fires; ``None`` = unlimited
    #: while armed.
    remaining: Optional[int] = None
    fired: int = 0

    def matches(self, actual: str) -> bool:
        return self.name.lower() in actual.lower()

    def trigger(self, actual: str) -> None:
        if self.remaining is not None:
            if self.remaining <= 0:
                return
            self.remaining -= 1
        self.fired += 1
        if self.exception is not None:
            raise self.exception()
        raise FaultInjectionError(
            f"injected failure in pass/stage '{actual}' "
            f"(armed as '{self.name}')"
        )


@dataclass
class _GpuOomFault:
    after_n_launches: int = 0
    count: int = 1
    fired: int = 0

    def should_fire(self, launches_completed: int) -> bool:
        if self.fired >= self.count:
            return False
        return launches_completed >= self.after_n_launches


@dataclass
class _KernelFault:
    """Raises at the generated-kernel entry (a simulated runtime crash)."""

    exception: Optional[Callable[[], BaseException]] = None
    #: Remaining times this fault fires; ``None`` = every call while armed.
    remaining: Optional[int] = None
    fired: int = 0

    def trigger(self, entry_name: str) -> None:
        if self.remaining is not None:
            if self.remaining <= 0:
                return
            self.remaining -= 1
        self.fired += 1
        if self.exception is not None:
            raise self.exception()
        raise FaultInjectionError(
            f"injected kernel failure executing '{entry_name}'"
        )


@dataclass
class _FaultState:
    pass_faults: List[_PassFault] = field(default_factory=list)
    kernel_nan: int = 0
    gpu_oom: Optional[_GpuOomFault] = None
    kernel_faults: List[_KernelFault] = field(default_factory=list)
    #: Seconds each kernel/chunk invocation sleeps (simulated slow chunk).
    chunk_delay_s: float = 0.0
    #: Rows each shard's range is extended past its end (overlapping
    #: shard plans; the concurrency analysis-vs-runtime agreement tests).
    shard_overlap_rows: int = 0


_STATE = _FaultState()


def reset() -> None:
    """Disarm every fault (used by test teardown)."""
    global _STATE
    _STATE = _FaultState()


@contextmanager
def no_faults():
    """Context manager guaranteeing a clean fault state inside."""
    saved = _STATE
    reset()
    try:
        yield
    finally:
        globals()["_STATE"] = saved


# --- pass / stage failures ---------------------------------------------------------


@contextmanager
def inject_pass_failure(
    name: str,
    exception: Optional[Callable[[], BaseException]] = None,
    times: Optional[int] = None,
):
    """Arm a failure for any pass or pipeline stage matching ``name``.

    Args:
        name: case-insensitive substring matched against pass and stage
            names ("cse", "codegen", "gpu-lowering", ...).
        exception: zero-arg callable producing the exception to raise;
            defaults to :class:`FaultInjectionError`.
        times: fire at most this many times (``None`` = every match
            while armed).
    """
    fault = _PassFault(name=name, exception=exception, remaining=times)
    _STATE.pass_faults.append(fault)
    try:
        yield fault
    finally:
        if fault in _STATE.pass_faults:
            _STATE.pass_faults.remove(fault)


def maybe_fail_pass(actual_name: str) -> None:
    """Hook: raise if a fault is armed for this pass/stage name."""
    if not _STATE.pass_faults:
        return
    for fault in list(_STATE.pass_faults):
        if fault.matches(actual_name):
            fault.trigger(actual_name)


#: Stage names share the pass switchboard; alias for readability.
maybe_fail_stage = maybe_fail_pass


# --- kernel NaN poisoning ----------------------------------------------------------


@contextmanager
def inject_kernel_nan():
    """Arm NaN poisoning of compiled-kernel outputs (CPU and GPU)."""
    _STATE.kernel_nan += 1
    try:
        yield
    finally:
        _STATE.kernel_nan -= 1


def kernel_nan_active() -> bool:
    """Hook: whether generated-kernel outputs should be NaN-poisoned."""
    return _STATE.kernel_nan > 0


# --- kernel raises (runtime crash) -------------------------------------------------


@contextmanager
def inject_kernel_failure(
    exception: Optional[Callable[[], BaseException]] = None,
    times: Optional[int] = None,
):
    """Arm an exception at the compiled-kernel entry point (CPU and GPU).

    Unlike :func:`inject_pass_failure` (compile-time), this simulates a
    *runtime* crash of an already-compiled kernel — the signal the
    serving runtime's circuit breaker and retry policy react to.

    Args:
        exception: zero-arg callable producing the exception to raise;
            defaults to :class:`FaultInjectionError`.
        times: fire at most this many times (``None`` = every execution
            while armed) — a finite ``times`` models a transient fault
            that a bounded retry can ride out.
    """
    fault = _KernelFault(exception=exception, remaining=times)
    _STATE.kernel_faults.append(fault)
    try:
        yield fault
    finally:
        if fault in _STATE.kernel_faults:
            _STATE.kernel_faults.remove(fault)


def maybe_fail_kernel(entry_name: str) -> None:
    """Hook: raise if a kernel-failure fault is armed."""
    if not _STATE.kernel_faults:
        return
    for fault in list(_STATE.kernel_faults):
        fault.trigger(entry_name)


# --- slow chunks -------------------------------------------------------------------


@contextmanager
def inject_slow_chunks(seconds: float):
    """Arm a per-chunk execution delay (simulated slow/overloaded kernel).

    Every generated-kernel chunk invocation sleeps ``seconds`` while
    armed — the fault that exercises deadline propagation and p99-tail
    behaviour in the serving tests. Nested contexts accumulate.
    """
    _STATE.chunk_delay_s += seconds
    try:
        yield
    finally:
        _STATE.chunk_delay_s -= seconds


def maybe_delay_chunk() -> None:
    """Hook: sleep if a slow-chunk fault is armed (no-op otherwise)."""
    delay = _STATE.chunk_delay_s
    if delay > 0.0:
        import time

        time.sleep(delay)


@contextmanager
def inject_overlapping_shards(rows: int = 1):
    """Arm a deliberately broken shard plan: every chunk's row range is
    extended ``rows`` past its end (clamped to the batch), so adjacent
    shards write overlapping output rows. The statically-detectable
    counterpart is :func:`repro.ir.analysis.check_shard_plan`; the
    agreement tests assert the analysis flags exactly the plans this
    fault makes the runtime race on.
    """
    _STATE.shard_overlap_rows += rows
    try:
        yield
    finally:
        _STATE.shard_overlap_rows -= rows


def maybe_overlap_shards(ranges, total):
    """Hook: corrupt a shard plan if the overlap fault is armed."""
    rows = _STATE.shard_overlap_rows
    if rows <= 0 or len(ranges) <= 1:
        return ranges
    return [
        (start, min(total, end + rows)) if end < total else (start, end)
        for start, end in ranges
    ]


# --- simulated device OOM ----------------------------------------------------------


@contextmanager
def inject_gpu_oom(after_n_launches: int = 0, count: int = 1):
    """Arm simulated device-OOM on GPU kernel launches.

    The fault fires on launch *attempts* once ``after_n_launches``
    launches have completed successfully, raising
    :class:`repro.gpusim.device.OutOfDeviceMemory` at most ``count``
    times. With the simulator's halved-block-size retry loop, a
    ``count`` smaller than the retry budget degrades transparently; a
    large ``count`` exhausts the retries and escalates to the fallback
    cascade.
    """
    fault = _GpuOomFault(after_n_launches=after_n_launches, count=count)
    previous = _STATE.gpu_oom
    _STATE.gpu_oom = fault
    try:
        yield fault
    finally:
        _STATE.gpu_oom = previous


def maybe_fail_gpu_launch(launches_completed: int) -> None:
    """Hook: raise OutOfDeviceMemory if a device-OOM fault is due."""
    fault = _STATE.gpu_oom
    if fault is None or not fault.should_fire(launches_completed):
        return
    fault.fired += 1
    from ..gpusim.device import OutOfDeviceMemory

    raise OutOfDeviceMemory(
        f"injected device OOM on launch attempt "
        f"(after {launches_completed} completed launches)"
    )


def active_faults() -> Dict[str, object]:
    """Introspection helper for diagnostics/tests."""
    return {
        "pass_faults": [f.name for f in _STATE.pass_faults],
        "kernel_nan": _STATE.kernel_nan > 0,
        "gpu_oom": _STATE.gpu_oom,
        "kernel_faults": len(_STATE.kernel_faults),
        "chunk_delay_s": _STATE.chunk_delay_s,
        "shard_overlap_rows": _STATE.shard_overlap_rows,
    }
