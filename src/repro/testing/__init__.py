"""Test-support utilities: deterministic fault injection.

Nothing in here runs in production paths unless explicitly armed via the
context managers in :mod:`repro.testing.faults`.
"""

from .faults import (
    FaultInjectionError,
    inject_gpu_oom,
    inject_kernel_nan,
    inject_pass_failure,
    no_faults,
)

__all__ = [
    "FaultInjectionError",
    "inject_gpu_oom",
    "inject_kernel_nan",
    "inject_pass_failure",
    "no_faults",
]
