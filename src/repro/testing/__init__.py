"""Test-support utilities: fault injection, generators, the oracle.

- :mod:`repro.testing.faults` — deterministic fault injection; nothing
  here runs in production paths unless explicitly armed via its context
  managers.
- :mod:`repro.testing.generators` — seedable random SPN/query/input
  generation for differential testing and property-based tests.
- :mod:`repro.testing.oracle` — the cross-backend differential oracle
  and IR fuzzer behind ``python -m repro fuzz``.

``generators`` and ``oracle`` are intentionally *not* imported here:
the compiler pipeline imports :mod:`repro.testing.faults`, and the
oracle imports the pipeline — importing it eagerly would be a cycle.
"""

from .faults import (
    FaultInjectionError,
    inject_gpu_oom,
    inject_kernel_nan,
    inject_pass_failure,
    no_faults,
)

__all__ = [
    "FaultInjectionError",
    "inject_gpu_oom",
    "inject_kernel_nan",
    "inject_pass_failure",
    "no_faults",
]
