"""``python -m repro`` — the command-line driver (see tools/cli.py)."""

import sys

from .tools.cli import main

if __name__ == "__main__":
    sys.exit(main())
