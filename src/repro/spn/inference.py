"""Reference SPN inference (the correctness oracle).

Implements batched bottom-up evaluation over the DAG with NumPy,
supporting joint probability and marginal inference. Marginalized
features are encoded as NaN in the input (matching the compiler's
``supportMarginal`` convention): a leaf whose evidence is missing
contributes probability 1 (log 0). The compiled entry points in
:mod:`repro.api` implement the same NaN rule, auto-routing batches
with NaN evidence to a marginal-supporting kernel.

Out-of-domain discrete evidence (a categorical value outside
``[0, K)``) has probability zero — the same rule the compiled
backends emit, see :class:`repro.spn.nodes.Categorical`.

Every compiled kernel — CPU scalar, CPU vectorized, GPU — is validated
against :func:`log_likelihood` in the tests.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from .nodes import Leaf, Node, Product, Sum, topological_order


def log_likelihood(root: Node, data: np.ndarray, marginal: Optional[bool] = None) -> np.ndarray:
    """Batched log joint/marginal probability of each row of ``data``.

    Args:
        root: SPN root node.
        data: array of shape [batch, num_features].
        marginal: treat NaN entries as marginalized. Defaults to
            auto-detection (enabled when the data contains NaNs).

    Returns:
        Array of shape [batch] with log probabilities.
    """
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2:
        raise ValueError("data must have shape [batch, num_features]")
    if marginal is None:
        marginal = bool(np.isnan(data).any())

    values: Dict[int, np.ndarray] = {}
    for node in topological_order(root):
        if isinstance(node, Leaf):
            column = data[:, node.variable]
            if marginal:
                missing = np.isnan(column)
                # Evaluate with a safe placeholder, then zero out the
                # contribution of marginalized features.
                safe = np.where(missing, 0.0, column)
                ll = node.log_density(safe)
                ll = np.where(missing, 0.0, ll)
            else:
                ll = node.log_density(column)
            values[id(node)] = ll
        elif isinstance(node, Product):
            acc = values[id(node.children[0])].copy()
            for child in node.children[1:]:
                acc += values[id(child)]
            values[id(node)] = acc
        elif isinstance(node, Sum):
            stacked = np.stack([values[id(c)] for c in node.children], axis=0)
            log_weights = np.log(np.asarray(node.weights))[:, None]
            shifted = stacked + log_weights
            peak = np.max(shifted, axis=0)
            # log-sum-exp with -inf guard: rows where all terms are -inf.
            with np.errstate(invalid="ignore"):
                summed = np.sum(np.exp(shifted - peak), axis=0)
            result = peak + np.log(summed)
            result = np.where(np.isneginf(peak), -np.inf, result)
            values[id(node)] = result
        else:  # pragma: no cover - guarded by the node class hierarchy
            raise TypeError(f"unknown node type {type(node).__name__}")
    return values[id(root)]


def likelihood(root: Node, data: np.ndarray, marginal: Optional[bool] = None) -> np.ndarray:
    """Linear-space probability of each row (exp of :func:`log_likelihood`)."""
    return np.exp(log_likelihood(root, data, marginal=marginal))


def classify(roots, data: np.ndarray) -> np.ndarray:
    """Pick, per sample, the class whose SPN assigns the highest likelihood.

    This is the speaker-identification / RAT-SPN decision rule: one SPN per
    class, argmax over the per-class log likelihoods.
    """
    scores = np.stack([log_likelihood(root, data) for root in roots], axis=1)
    return np.argmax(scores, axis=1)
