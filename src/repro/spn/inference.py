"""Reference SPN inference (the correctness oracle).

Implements batched bottom-up evaluation over the DAG with NumPy,
supporting joint probability and marginal inference. Marginalized
features are encoded as NaN in the input (matching the compiler's
``supportMarginal`` convention): a leaf whose evidence is missing
contributes probability 1 (log 0). The compiled entry points in
:mod:`repro.api` implement the same NaN rule, auto-routing batches
with NaN evidence to a marginal-supporting kernel.

Out-of-domain discrete evidence (a categorical value outside
``[0, K)``) has probability zero — the same rule the compiled
backends emit, see :class:`repro.spn.nodes.Categorical`.

Every compiled kernel — CPU scalar, CPU vectorized, GPU — is validated
against :func:`log_likelihood` in the tests.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from .moments import categorical_moment, gaussian_moment, histogram_moment
from .nodes import Categorical, Gaussian, Histogram, Leaf, Node, Product, Sum, topological_order


def log_likelihood(root: Node, data: np.ndarray, marginal: Optional[bool] = None) -> np.ndarray:
    """Batched log joint/marginal probability of each row of ``data``.

    Args:
        root: SPN root node.
        data: array of shape [batch, num_features].
        marginal: treat NaN entries as marginalized. Defaults to
            auto-detection (enabled when the data contains NaNs).

    Returns:
        Array of shape [batch] with log probabilities.
    """
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2:
        raise ValueError("data must have shape [batch, num_features]")
    if marginal is None:
        marginal = bool(np.isnan(data).any())

    values: Dict[int, np.ndarray] = {}
    for node in topological_order(root):
        if isinstance(node, Leaf):
            column = data[:, node.variable]
            if marginal:
                missing = np.isnan(column)
                # Evaluate with a safe placeholder, then zero out the
                # contribution of marginalized features.
                safe = np.where(missing, 0.0, column)
                ll = node.log_density(safe)
                ll = np.where(missing, 0.0, ll)
            else:
                ll = node.log_density(column)
            values[id(node)] = ll
        elif isinstance(node, Product):
            acc = values[id(node.children[0])].copy()
            for child in node.children[1:]:
                acc += values[id(child)]
            values[id(node)] = acc
        elif isinstance(node, Sum):
            stacked = np.stack([values[id(c)] for c in node.children], axis=0)
            log_weights = np.log(np.asarray(node.weights))[:, None]
            shifted = stacked + log_weights
            peak = np.max(shifted, axis=0)
            # log-sum-exp with -inf guard: rows where all terms are -inf.
            with np.errstate(invalid="ignore"):
                summed = np.sum(np.exp(shifted - peak), axis=0)
            result = peak + np.log(summed)
            result = np.where(np.isneginf(peak), -np.inf, result)
            values[id(node)] = result
        else:  # pragma: no cover - guarded by the node class hierarchy
            raise TypeError(f"unknown node type {type(node).__name__}")
    return values[id(root)]


def likelihood(root: Node, data: np.ndarray, marginal: Optional[bool] = None) -> np.ndarray:
    """Linear-space probability of each row (exp of :func:`log_likelihood`)."""
    return np.exp(log_likelihood(root, data, marginal=marginal))


def conditional_log_likelihood(
    root: Node, data: np.ndarray, query_variables: Sequence[int]
) -> np.ndarray:
    """Batched ``log P(Q = q | E = e)`` for a fixed query-variable set.

    ``query_variables`` indexes the features interpreted as the query
    ``Q``; all remaining features are evidence ``E``. Evidence NaNs are
    marginalized; a NaN on a query feature is an error (there is no
    defined conditional for an unobserved query value).

    Computed as ``log P(q, e) - log P(e)``, the second term obtained by
    marginalizing the query features out. Rows with zero-probability
    evidence (``log P(e) = -inf``) yield NaN — the conditional is
    undefined there — matching the compiled kernels.
    """
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2:
        raise ValueError("data must have shape [batch, num_features]")
    query_variables = sorted({int(v) for v in query_variables})
    if not query_variables:
        raise ValueError("need at least one query variable")
    if max(query_variables) >= data.shape[1]:
        raise ValueError("query variable out of range for the data")
    if np.isnan(data[:, query_variables]).any():
        raise ValueError("query variables must be observed (non-NaN)")

    joint = log_likelihood(root, data, marginal=True)
    evidence_only = data.copy()
    evidence_only[:, query_variables] = np.nan
    evidence = log_likelihood(root, evidence_only, marginal=True)
    with np.errstate(invalid="ignore"):
        return joint - evidence


def _leaf_moment(leaf: Leaf, moment: int) -> float:
    if isinstance(leaf, Gaussian):
        return gaussian_moment(leaf.mean, leaf.stdev, moment)
    if isinstance(leaf, Categorical):
        return categorical_moment(leaf.probabilities, moment)
    if isinstance(leaf, Histogram):
        return histogram_moment(leaf.bounds, leaf.densities, moment)
    raise TypeError(f"unknown leaf type {type(leaf).__name__}")  # pragma: no cover


def expectation(root: Node, evidence: np.ndarray, moment: int = 1) -> np.ndarray:
    """Posterior raw moments ``E[X_v^m | e]`` per row and feature.

    NaN features are unobserved (the moment is taken under the SPN
    posterior given the remaining evidence); observed features return
    their observed value raised to the ``moment``-th power. Features
    outside the root scope come back NaN. Rows whose evidence has zero
    probability yield NaN.

    Implemented with the standard (likelihood, moment) pair recursion in
    linear space: ``M_v(leaf on v) = x_v^m * L(leaf)`` (with the leaf's
    closed-form moment substituted for missing evidence and ``L = 1``),
    products multiply the sibling likelihoods in, sums mix with their
    weights, and ``E[X_v^m | e] = M_v(root) / L(root)``.
    """
    if moment not in (1, 2):
        raise ValueError("only moments 1 and 2 are supported")
    evidence = np.asarray(evidence, dtype=np.float64)
    if evidence.ndim != 2:
        raise ValueError("evidence must have shape [batch, num_features]")
    num_rows, num_features = evidence.shape

    lik: Dict[int, np.ndarray] = {}
    mom: Dict[Tuple[int, int], np.ndarray] = {}
    for node in topological_order(root):
        if isinstance(node, Leaf):
            column = evidence[:, node.variable]
            missing = np.isnan(column)
            safe = np.where(missing, 0.0, column)
            density = np.exp(node.log_density(safe))
            lik[id(node)] = np.where(missing, 1.0, density)
            observed_m = safe**moment
            substituted = np.where(missing, _leaf_moment(node, moment), observed_m)
            mom[(id(node), node.variable)] = substituted * lik[id(node)]
        elif isinstance(node, Product):
            acc = lik[id(node.children[0])].copy()
            for child in node.children[1:]:
                acc = acc * lik[id(child)]
            lik[id(node)] = acc
            for variable in node.scope:
                value = None
                for child in node.children:
                    factor = mom.get((id(child), variable), lik[id(child)])
                    value = factor if value is None else value * factor
                mom[(id(node), variable)] = value
        elif isinstance(node, Sum):
            weights = np.asarray(node.weights)
            lik[id(node)] = sum(
                w * lik[id(c)] for c, w in zip(node.children, weights)
            )
            for variable in node.scope:
                mom[(id(node), variable)] = sum(
                    w * mom.get((id(c), variable), lik[id(c)])
                    for c, w in zip(node.children, weights)
                )
        else:  # pragma: no cover - closed hierarchy
            raise TypeError(f"unknown node type {type(node).__name__}")

    out = np.full((num_rows, num_features), np.nan)
    denominator = lik[id(root)]
    with np.errstate(divide="ignore", invalid="ignore"):
        for variable in root.scope:
            if variable < num_features:
                out[:, variable] = mom[(id(root), variable)] / denominator
    out[~np.isfinite(denominator) | (denominator <= 0.0)] = np.nan
    return out


def classify(roots, data: np.ndarray) -> np.ndarray:
    """Pick, per sample, the class whose SPN assigns the highest likelihood.

    This is the speaker-identification / RAT-SPN decision rule: one SPN per
    class, argmax over the per-class log likelihoods.
    """
    scores = np.stack([log_likelihood(root, data) for root in roots], axis=1)
    return np.argmax(scores, axis=1)
