"""Probabilistic query descriptors.

A query bundles what the user wants computed, over how many samples per
chunk (``batch_size``, an optimization hint used for vector/block sizing
and runtime chunking), and the input element type. It is what the
frontend serializes alongside the SPN graph for the compiler.

Five modalities are expressible (matching the SPN literature's query
taxonomy — Poon & Domingos 2011, SPFlow's ``Inference``/``mpe`` APIs):

=====================  =======================================================
descriptor             computes, per input row
=====================  =======================================================
:class:`JointProbability`       joint/marginal log-likelihood ``log P(e)``
:class:`MPEQuery`               most probable explanation: argmax completion of
                                missing (NaN) features + max-product score
:class:`SampleQuery`            seeded ancestral sample of missing features
                                conditioned on the observed ones
:class:`ConditionalProbability` ``log P(Q = q | E = e)`` for a fixed
                                compile-time query-variable set
:class:`Expectation`            per-feature raw moments ``E[X_v^m | e]``
=====================  =======================================================

All descriptors are frozen dataclasses: they are hashable compile keys
and participate in the compile-cache fingerprint.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from ..ir.types import FloatType, Type, f32, f64


_DTYPE_BY_NAME = {"f32": f32, "f64": f64}


@dataclass(frozen=True)
class Query:
    """Base class of all query descriptors.

    Attributes:
        batch_size: samples per processing chunk (optimization hint only;
            compiled kernels accept arbitrary batch lengths).
        input_dtype: "f32" or "f64" input feature encoding.
        support_marginal: treat NaN features as missing and marginalize
            them at the leaves (joint queries only; the other modalities
            define their own NaN semantics and ignore this flag).
        relative_error: reserved accuracy knob (the paper's Python API
            exposes it; our lowering always selects log-space f32/f64 by
            graph depth, see ``lower_to_lospn``).
    """

    #: Stable query-kind name ("joint", "mpe", ...); class attribute.
    kind = "joint"

    batch_size: int = 4096
    input_dtype: str = "f32"
    support_marginal: bool = False
    relative_error: float = 0.0

    def __post_init__(self):
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if self.input_dtype not in _DTYPE_BY_NAME:
            raise ValueError(f"unsupported input dtype '{self.input_dtype}'")

    @property
    def input_type(self) -> FloatType:
        return _DTYPE_BY_NAME[self.input_dtype]


@dataclass(frozen=True)
class JointProbability(Query):
    """A joint-probability query over fully (or partially) observed samples."""

    kind = "joint"


@dataclass(frozen=True)
class MPEQuery(Query):
    """Most Probable Explanation: max-product upward pass + argmax traceback.

    NaN input features are treated as missing; the compiled kernel
    completes them with their most probable values given the observed
    evidence and reports the max-product log score of the completion.
    """

    kind = "mpe"


@dataclass(frozen=True)
class SampleQuery(Query):
    """Seeded ancestral sampling, conditioned on observed features.

    NaN input features are sampled top-down (sum-node children chosen
    with probability proportional to ``w_k * P_k(evidence)`` via the
    Gumbel-max trick on host-supplied noise columns); observed features
    pass through unchanged. An all-NaN row draws an unconditional sample.
    The random seed is an *execute-time* parameter so one compiled kernel
    serves arbitrarily many reproducible sampling runs.
    """

    kind = "sample"


@dataclass(frozen=True)
class ConditionalProbability(Query):
    """``log P(Q = q | E = e)`` for a fixed query-variable set.

    ``query_variables`` names the feature indices interpreted as the
    query ``Q``; every other feature is evidence ``E``. NaN is legal only
    on evidence features (marginalized); a NaN query feature is a
    structured error at execute time.
    """

    kind = "conditional"

    query_variables: Tuple[int, ...] = ()

    def __post_init__(self):
        super().__post_init__()
        variables = tuple(sorted({int(v) for v in self.query_variables}))
        if not variables:
            raise ValueError("conditional query needs at least one query variable")
        if variables[0] < 0:
            raise ValueError("query variables must be non-negative feature indices")
        object.__setattr__(self, "query_variables", variables)


@dataclass(frozen=True)
class Expectation(Query):
    """Per-feature raw moments ``E[X_v^m | e]`` under the SPN posterior.

    Observed features return their observed value (``m == 1``) or its
    ``m``-th power; NaN features return the posterior moment given the
    evidence. Lowered in linear space (f64) since moments are not
    probabilities.
    """

    kind = "expectation"

    moment: int = 1

    def __post_init__(self):
        super().__post_init__()
        if self.moment not in (1, 2):
            raise ValueError("only moments 1 and 2 are supported")


#: All query descriptor classes, keyed by their stable kind name.
QUERY_KINDS = {
    cls.kind: cls
    for cls in (JointProbability, MPEQuery, SampleQuery, ConditionalProbability, Expectation)
}
