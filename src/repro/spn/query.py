"""Probabilistic query descriptors.

A query bundles what the user wants computed (joint or marginal log
likelihood), over how many samples per chunk (``batch_size``, an
optimization hint used for vector/block sizing and runtime chunking), and
the input element type. It is what the frontend serializes alongside the
SPN graph for the compiler.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.types import FloatType, Type, f32, f64


_DTYPE_BY_NAME = {"f32": f32, "f64": f64}


@dataclass(frozen=True)
class JointProbability:
    """A joint-probability query over fully (or partially) observed samples.

    Attributes:
        batch_size: samples per processing chunk (optimization hint only;
            compiled kernels accept arbitrary batch lengths).
        input_dtype: "f32" or "f64" input feature encoding.
        support_marginal: treat NaN features as missing and marginalize
            them at the leaves.
        relative_error: reserved accuracy knob (the paper's Python API
            exposes it; our lowering always selects log-space f32/f64 by
            graph depth, see ``lower_to_lospn``).
    """

    batch_size: int = 4096
    input_dtype: str = "f32"
    support_marginal: bool = False
    relative_error: float = 0.0

    def __post_init__(self):
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if self.input_dtype not in _DTYPE_BY_NAME:
            raise ValueError(f"unsupported input dtype '{self.input_dtype}'")

    @property
    def input_type(self) -> FloatType:
        return _DTYPE_BY_NAME[self.input_dtype]
