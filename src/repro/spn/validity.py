"""Validity checks for SPN graphs: completeness and decomposability.

A valid (tractable) SPN requires:

- **completeness**: all children of a sum node share the same scope, and
- **decomposability**: children of a product node have pairwise disjoint
  scopes.

These two properties are what make single-pass bottom-up inference exact,
so every structure produced by learning or RAT construction is validated
against them in the test suite.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List

from .nodes import Node, Product, Sum, topological_order


class InvalidSPNError(ValueError):
    """Raised when an SPN violates completeness or decomposability."""


def check_completeness(root: Node) -> List[str]:
    """Return a list of completeness violations (empty when valid)."""
    errors: List[str] = []
    scopes: Dict[int, FrozenSet[int]] = {}
    for node in topological_order(root):
        scopes[id(node)] = node.scope
        if isinstance(node, Sum):
            first = scopes[id(node.children[0])]
            for child in node.children[1:]:
                if scopes[id(child)] != first:
                    errors.append(
                        f"sum node {node.id}: child scopes differ "
                        f"({sorted(first)} vs {sorted(scopes[id(child)])})"
                    )
                    break
    return errors


def check_decomposability(root: Node) -> List[str]:
    """Return a list of decomposability violations (empty when valid)."""
    errors: List[str] = []
    scopes: Dict[int, FrozenSet[int]] = {}
    for node in topological_order(root):
        scopes[id(node)] = node.scope
        if isinstance(node, Product):
            union: set = set()
            total = 0
            for child in node.children:
                child_scope = scopes[id(child)]
                union.update(child_scope)
                total += len(child_scope)
            if total != len(union):
                errors.append(f"product node {node.id}: child scopes overlap")
    return errors


def is_valid(root: Node) -> bool:
    return not check_completeness(root) and not check_decomposability(root)


def assert_valid(root: Node) -> None:
    """Raise :class:`InvalidSPNError` if the SPN is not complete/decomposable."""
    errors = check_completeness(root) + check_decomposability(root)
    if errors:
        raise InvalidSPNError("; ".join(errors))
