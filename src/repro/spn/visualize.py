"""Graphviz (DOT) export of SPN graphs and compiled-pipeline artifacts.

``to_dot`` renders an SPN DAG in the style of the paper's Fig. 1: circled
``+`` for sums (edges labeled with weights), ``×`` for products, and the
distribution family for leaves. The output is plain DOT text — no
graphviz installation required to produce it.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .nodes import Categorical, Gaussian, Histogram, Leaf, Node, Product, Sum, topological_order


def _leaf_label(leaf: Leaf) -> str:
    if isinstance(leaf, Gaussian):
        return f"N(x{leaf.variable}; {leaf.mean:.2g}, {leaf.stdev:.2g})"
    if isinstance(leaf, Categorical):
        return f"Cat(x{leaf.variable}; K={len(leaf.probabilities)})"
    if isinstance(leaf, Histogram):
        return f"Hist(x{leaf.variable}; B={len(leaf.densities)})"
    return f"leaf(x{leaf.variable})"  # pragma: no cover - closed hierarchy


def to_dot(root: Node, graph_name: str = "spn", max_nodes: Optional[int] = None) -> str:
    """Render the SPN rooted at ``root`` as a DOT digraph.

    ``max_nodes`` truncates huge graphs (RAT-SPNs) with an ellipsis node
    so the output stays renderable.
    """
    order = topological_order(root)
    truncated = False
    if max_nodes is not None and len(order) > max_nodes:
        order = order[-max_nodes:]  # keep the root-side of the graph
        truncated = True
    kept = {id(node) for node in order}

    lines: List[str] = [
        f"digraph {graph_name} {{",
        "  rankdir=TB;",
        '  node [fontname="Helvetica"];',
    ]
    names: Dict[int, str] = {}
    for i, node in enumerate(order):
        name = f"n{i}"
        names[id(node)] = name
        if isinstance(node, Sum):
            lines.append(f'  {name} [shape=circle, label="+"];')
        elif isinstance(node, Product):
            lines.append(f'  {name} [shape=circle, label="&times;"];')
        else:
            lines.append(f'  {name} [shape=box, label="{_leaf_label(node)}"];')
    if truncated:
        lines.append('  trunc [shape=plaintext, label="..."];')

    for node in order:
        parent = names[id(node)]
        if isinstance(node, Sum):
            for child, weight in zip(node.children, node.weights):
                if id(child) in kept:
                    lines.append(
                        f'  {parent} -> {names[id(child)]} [label="{weight:.3g}"];'
                    )
                else:
                    lines.append(f"  {parent} -> trunc;")
        else:
            for child in node.children:
                if id(child) in kept:
                    lines.append(f"  {parent} -> {names[id(child)]};")
                elif truncated:
                    lines.append(f"  {parent} -> trunc;")
    lines.append("}")
    return "\n".join(lines)


def write_dot(root: Node, path: str, **kwargs) -> None:
    with open(path, "w") as handle:
        handle.write(to_dot(root, **kwargs))
