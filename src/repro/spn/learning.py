"""Structure and weight learning for SPNs.

Implements a LearnSPN-style recursive algorithm (Gens & Domingos):

1. If only one variable remains, fit a univariate leaf.
2. Try to split the variable set into independent groups (pairwise
   absolute-correlation threshold + connected components) → Product node.
3. Otherwise cluster the rows (k-means) → Sum node with weights
   proportional to cluster sizes.
4. When too few rows remain, fall back to a naive factorization of all
   variables into leaves.

Also provides EM-style weight learning on a fixed structure, used for
fine-tuning the RAT-SPN mixtures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from .inference import log_likelihood
from .nodes import Categorical, Gaussian, Histogram, Leaf, Node, Product, Sum, topological_order


@dataclass
class LearnSPNOptions:
    """Tuning knobs for :func:`learn_spn`."""

    min_instances: int = 40
    independence_threshold: float = 0.25
    num_clusters: int = 2
    leaf_kind: str = "gaussian"  # "gaussian" | "histogram" | "auto"
    histogram_buckets: int = 12
    min_stdev: float = 1e-3
    max_depth: int = 16
    seed: int = 0


# --- helpers -------------------------------------------------------------------


def kmeans(data: np.ndarray, k: int, rng: np.random.Generator, iters: int = 25) -> np.ndarray:
    """Plain Lloyd's k-means, returning a cluster label per row."""
    n = data.shape[0]
    if n <= k:
        return np.arange(n) % k
    centers = data[rng.choice(n, size=k, replace=False)].astype(np.float64)
    labels = np.zeros(n, dtype=np.int64)
    for _ in range(iters):
        distances = ((data[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
        new_labels = np.argmin(distances, axis=1)
        if np.array_equal(new_labels, labels):
            break
        labels = new_labels
        for j in range(k):
            mask = labels == j
            if mask.any():
                centers[j] = data[mask].mean(axis=0)
    # Guard against empty clusters: reassign arbitrary points.
    for j in range(k):
        if not (labels == j).any():
            labels[rng.integers(0, n)] = j
    return labels


def independent_groups(data: np.ndarray, threshold: float) -> List[List[int]]:
    """Group columns into connected components of |corr| > threshold."""
    cols = data.shape[1]
    if cols == 1:
        return [[0]]
    with np.errstate(invalid="ignore"):
        corr = np.corrcoef(data, rowvar=False)
    corr = np.nan_to_num(corr, nan=0.0)
    adjacency = np.abs(corr) > threshold
    seen = set()
    groups: List[List[int]] = []
    for start in range(cols):
        if start in seen:
            continue
        stack = [start]
        component: List[int] = []
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            component.append(node)
            for other in range(cols):
                if other != node and adjacency[node, other] and other not in seen:
                    stack.append(other)
        groups.append(sorted(component))
    return groups


def fit_leaf(column: np.ndarray, variable: int, options: LearnSPNOptions) -> Leaf:
    """Fit a univariate leaf to a data column."""
    kind = options.leaf_kind
    if kind == "auto":
        values = np.unique(column[~np.isnan(column)])
        integral = np.all(values == np.round(values)) and values.size <= 32
        kind = "categorical" if integral else "gaussian"
    if kind == "gaussian":
        mean = float(np.nanmean(column)) if column.size else 0.0
        stdev = float(np.nanstd(column)) if column.size else 1.0
        return Gaussian(variable, mean, max(stdev, options.min_stdev))
    if kind == "categorical":
        values = column[~np.isnan(column)].astype(np.int64)
        k = int(values.max()) + 1 if values.size else 2
        counts = np.bincount(values, minlength=max(k, 2)).astype(np.float64)
        counts += 1.0  # Laplace smoothing
        return Categorical(variable, counts / counts.sum())
    if kind == "histogram":
        finite = column[~np.isnan(column)]
        lo = float(finite.min()) if finite.size else 0.0
        hi = float(finite.max()) if finite.size else 1.0
        if hi <= lo:
            hi = lo + 1.0
        buckets = options.histogram_buckets
        bounds = np.linspace(lo, hi + 1e-9, buckets + 1)
        counts, _ = np.histogram(finite, bins=bounds)
        masses = (counts + 0.5) / (counts.sum() + 0.5 * buckets)
        return Histogram(variable, bounds, masses)
    raise ValueError(f"unknown leaf kind '{options.leaf_kind}'")


# --- LearnSPN -------------------------------------------------------------------


def learn_spn(
    data: np.ndarray,
    options: Optional[LearnSPNOptions] = None,
    variables: Optional[Sequence[int]] = None,
) -> Node:
    """Learn an SPN structure + parameters from data.

    Args:
        data: [rows, num_features] training matrix.
        options: learning configuration.
        variables: global variable indices of the columns (defaults to
            0..num_features-1).
    """
    options = options or LearnSPNOptions()
    data = np.asarray(data, dtype=np.float64)
    if variables is None:
        variables = list(range(data.shape[1]))
    rng = np.random.default_rng(options.seed)
    return _learn(data, list(variables), options, rng, depth=0, force_cluster=True)


def _naive_factorization(
    data: np.ndarray, variables: List[int], options: LearnSPNOptions
) -> Node:
    leaf_nodes = [
        fit_leaf(data[:, i], var, options) for i, var in enumerate(variables)
    ]
    if len(leaf_nodes) == 1:
        return leaf_nodes[0]
    return Product(leaf_nodes)


def _learn(
    data: np.ndarray,
    variables: List[int],
    options: LearnSPNOptions,
    rng: np.random.Generator,
    depth: int,
    force_cluster: bool = False,
) -> Node:
    if len(variables) == 1:
        return fit_leaf(data[:, 0], variables[0], options)
    if data.shape[0] < options.min_instances or depth >= options.max_depth:
        return _naive_factorization(data, variables, options)

    if not force_cluster:
        groups = independent_groups(data, options.independence_threshold)
        if len(groups) > 1:
            children = [
                _learn(
                    data[:, group],
                    [variables[i] for i in group],
                    options,
                    rng,
                    depth + 1,
                )
                for group in groups
            ]
            return Product(children)

    labels = kmeans(data, options.num_clusters, rng)
    children: List[Node] = []
    weights: List[float] = []
    for cluster in range(options.num_clusters):
        mask = labels == cluster
        if not mask.any():
            continue
        children.append(
            _learn(data[mask], list(variables), options, rng, depth + 1)
        )
        weights.append(float(mask.sum()))
    if len(children) == 1:
        return children[0]
    return Sum(children, weights)


# --- EM weight learning -----------------------------------------------------------


def em_weight_update(root: Node, data: np.ndarray, iterations: int = 3) -> None:
    """In-place EM updates of all sum-node weights on a fixed structure.

    Uses the standard soft-assignment E-step: the responsibility of child c
    at sum node s is w_c * L_c / L_s per sample, accumulated over the batch.
    """
    data = np.asarray(data, dtype=np.float64)
    order = topological_order(root)
    for _ in range(iterations):
        values: Dict[int, np.ndarray] = {}
        for node in order:
            if isinstance(node, Leaf):
                values[id(node)] = node.log_density(data[:, node.variable])
            elif isinstance(node, Product):
                acc = values[id(node.children[0])].copy()
                for child in node.children[1:]:
                    acc += values[id(child)]
                values[id(node)] = acc
            else:
                stacked = np.stack([values[id(c)] for c in node.children], axis=0)
                logw = np.log(np.asarray(node.weights))[:, None]
                shifted = stacked + logw
                peak = np.max(shifted, axis=0)
                values[id(node)] = peak + np.log(np.exp(shifted - peak).sum(axis=0))
        for node in order:
            if isinstance(node, Sum):
                stacked = np.stack([values[id(c)] for c in node.children], axis=0)
                logw = np.log(np.asarray(node.weights))[:, None]
                log_resp = stacked + logw - values[id(node)][None, :]
                resp = np.exp(np.nan_to_num(log_resp, neginf=-745.0)).sum(axis=1)
                resp = np.maximum(resp, 1e-8)
                node.weights = list(resp / resp.sum())


def mean_log_likelihood(root: Node, data: np.ndarray) -> float:
    """Average log likelihood of the data under the SPN."""
    return float(np.mean(log_likelihood(root, data)))
