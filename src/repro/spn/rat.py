"""Random Tensorized SPNs (RAT-SPNs) per Peharz et al. [13].

RAT-SPNs sidestep structure learning by instantiating a *random region
graph*: the full variable set is recursively split into two random,
balanced parts (``depth`` times, repeated for ``num_repetitions``
replicas). Each leaf region receives ``num_input_distributions``
univariate input distributions per variable (factorized); each internal
region holds ``num_sums`` sum nodes whose children are the cross products
of the child regions' nodes; the root region holds one sum node per
class.

The construction matches the paper's second application (Section V-B): a
separate (large) SPN per output class, sharing the same random structure
with different weights — the stress-test workload for graph partitioning
and compile-time exploration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .learning import em_weight_update
from .nodes import Gaussian, Node, Product, Sum


@dataclass
class RatSpnConfig:
    """Structural hyper-parameters of a RAT-SPN.

    Defaults give a laptop-scale stress SPN (~20-40k nodes per class);
    scale ``num_repetitions``/``num_sums`` up to approach the paper's
    ~340k-node models.
    """

    num_features: int = 64
    num_classes: int = 10
    depth: int = 3
    num_repetitions: int = 8
    num_sums: int = 8
    num_input_distributions: int = 4
    seed: int = 0


class _Region:
    """A region (variable subset) in the region graph."""

    __slots__ = ("variables", "children_pairs")

    def __init__(self, variables: Tuple[int, ...]):
        self.variables = variables
        # Each entry is a (left, right) partition of this region.
        self.children_pairs: List[Tuple["_Region", "_Region"]] = []


def _random_binary_tree(
    variables: Tuple[int, ...], depth: int, rng: np.random.Generator
) -> _Region:
    region = _Region(variables)
    if depth == 0 or len(variables) < 2:
        return region
    perm = list(variables)
    rng.shuffle(perm)
    mid = len(perm) // 2
    left = _random_binary_tree(tuple(sorted(perm[:mid])), depth - 1, rng)
    right = _random_binary_tree(tuple(sorted(perm[mid:])), depth - 1, rng)
    region.children_pairs.append((left, right))
    return region


def _build_region_nodes(
    region: _Region,
    config: RatSpnConfig,
    rng: np.random.Generator,
    is_root: bool,
) -> List[Node]:
    """Construct the SPN nodes representing one region (bottom-up)."""
    if not region.children_pairs:
        # Leaf region: num_input_distributions factorized Gaussian products.
        nodes: List[Node] = []
        for _ in range(config.num_input_distributions):
            gaussians = [
                Gaussian(
                    var,
                    mean=float(rng.normal(0.0, 1.0)),
                    stdev=float(rng.uniform(0.5, 1.5)),
                )
                for var in region.variables
            ]
            nodes.append(Product(gaussians) if len(gaussians) > 1 else gaussians[0])
        return nodes

    products: List[Node] = []
    for left, right in region.children_pairs:
        left_nodes = _build_region_nodes(left, config, rng, is_root=False)
        right_nodes = _build_region_nodes(right, config, rng, is_root=False)
        for ln in left_nodes:
            for rn in right_nodes:
                products.append(Product([ln, rn]))

    count = config.num_classes if is_root else config.num_sums
    sums: List[Node] = []
    for _ in range(count):
        weights = rng.dirichlet(np.ones(len(products)))
        sums.append(Sum(products, weights))
    return sums


def build_rat_spn(config: Optional[RatSpnConfig] = None) -> List[Node]:
    """Construct a RAT-SPN; returns one root (Sum) per class.

    All classes share the same structure (children), differing only in the
    root/sum weights — matching the paper's observation that "the random
    structure for both tasks is identical and only the weights differ".
    """
    config = config or RatSpnConfig()
    rng = np.random.default_rng(config.seed)
    variables = tuple(range(config.num_features))

    # The root region merges products from all repetitions.
    root_products: List[Node] = []
    for _ in range(config.num_repetitions):
        tree = _random_binary_tree(variables, config.depth, rng)
        if not tree.children_pairs:
            raise ValueError("RAT-SPN needs depth >= 1 and >= 2 features")
        left, right = tree.children_pairs[0]
        left_nodes = _build_region_nodes(left, config, rng, is_root=False)
        right_nodes = _build_region_nodes(right, config, rng, is_root=False)
        for ln in left_nodes:
            for rn in right_nodes:
                root_products.append(Product([ln, rn]))

    roots: List[Node] = []
    for _ in range(config.num_classes):
        weights = rng.dirichlet(np.ones(len(root_products)))
        roots.append(Sum(root_products, weights))
    return roots


def train_rat_spn(
    roots: Sequence[Node],
    data: np.ndarray,
    labels: np.ndarray,
    em_iterations: int = 2,
) -> None:
    """EM weight training of a RAT-SPN (generative, per class heads).

    Two phases, respecting the shared structure: the *internal* sum
    weights (shared by all class heads) are fit with EM over the full
    training set; then each class head's root weights are fit on that
    class's samples only, which is what separates the classes.
    """
    data = np.asarray(data, dtype=np.float64)
    labels = np.asarray(labels)

    # Phase 0: data-driven leaf initialization (the usual EM warm start):
    # each Gaussian leaf's mean is drawn from the empirical distribution
    # of its variable, its stdev from the column spread.
    from .nodes import Gaussian as GaussianLeaf, topological_order as _topo

    rng = np.random.default_rng(0xA11CE)
    stds = np.maximum(data.std(axis=0), 1e-3)
    for node in _topo(roots[0]):
        if isinstance(node, GaussianLeaf):
            node.mean = float(data[rng.integers(0, data.shape[0]), node.variable])
            node.stdev = float(stds[node.variable] * rng.uniform(0.7, 1.3))

    # Phase 1: shared internal weights on all data (use head 0 as the
    # traversal root — all heads share the same children).
    em_weight_update(roots[0], data, iterations=em_iterations)

    # Phase 2: per-class root-only weight updates. All children are
    # evaluated in one shared bottom-up pass per class.
    from .inference import log_likelihood  # noqa: F401  (documented API)
    from .nodes import Leaf, Product as ProductNode, Sum as SumNode, topological_order

    def children_log_likelihoods(root: Node, class_data: np.ndarray) -> np.ndarray:
        values = {}
        for node in topological_order(root):
            if isinstance(node, Leaf):
                values[id(node)] = node.log_density(class_data[:, node.variable])
            elif isinstance(node, ProductNode):
                acc = values[id(node.children[0])].copy()
                for child in node.children[1:]:
                    acc += values[id(child)]
                values[id(node)] = acc
            elif node is not root and isinstance(node, SumNode):
                stacked = np.stack([values[id(c)] for c in node.children], axis=0)
                with np.errstate(divide="ignore"):
                    logw = np.log(np.asarray(node.weights))[:, None]
                shifted = stacked + logw
                peak = np.max(shifted, axis=0)
                values[id(node)] = peak + np.log(np.exp(shifted - peak).sum(axis=0))
        return np.stack([values[id(c)] for c in root.children], axis=0)

    for cls, root in enumerate(roots):
        class_data = data[labels == cls]
        if class_data.shape[0] == 0:
            continue
        child_ll = children_log_likelihoods(root, class_data)
        for _ in range(max(em_iterations, 1)):
            with np.errstate(divide="ignore"):
                shifted = child_ll + np.log(np.asarray(root.weights))[:, None]
            peak = np.max(shifted, axis=0)
            log_total = peak + np.log(np.exp(shifted - peak).sum(axis=0))
            resp = np.exp(shifted - log_total[None, :]).sum(axis=1)
            resp = np.maximum(resp, 1e-8)
            root.weights = list(resp / resp.sum())
