"""SPN graph representation (the SPFlow-equivalent substrate).

A Sum-Product Network is a rooted DAG of :class:`Sum`, :class:`Product`
and leaf nodes (:class:`Gaussian`, :class:`Categorical`,
:class:`Histogram`). Each node has a *scope*: the set of feature indices
it defines a distribution over.

The module also provides graph utilities shared by training, inference
and compilation: topological ordering, node/scope queries, and structural
statistics matching the paper's reporting (operation counts, share of
Gaussian leaves, DAG depth).
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

import numpy as np

_node_counter = itertools.count()


class Node:
    """Base class of all SPN nodes.

    The DAG structure (children) is immutable after construction —
    parameters (weights, leaf params) may change during training, but
    edges never do. Scopes are therefore cached: without the cache, the
    recursive scope computation re-expands shared sub-DAGs exponentially
    on heavily shared structures such as RAT-SPNs.
    """

    __slots__ = ("id", "children", "_scope", "__weakref__")

    def __init__(self, children: Sequence["Node"] = ()):
        self.id = next(_node_counter)
        self.children: List[Node] = list(children)
        self._scope: Optional[FrozenSet[int]] = None

    @property
    def scope(self) -> FrozenSet[int]:
        if self._scope is None:
            # Fill caches bottom-up, iteratively (deep graphs would blow
            # the recursion limit).
            for node in topological_order(self):
                if node._scope is None:
                    node._scope = node._compute_scope()
        return self._scope

    def _compute_scope(self) -> FrozenSet[int]:
        raise NotImplementedError

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} id={self.id}>"


class Sum(Node):
    """A weighted mixture of child distributions over a shared scope."""

    __slots__ = ("weights",)

    def __init__(self, children: Sequence[Node], weights: Sequence[float]):
        if len(children) != len(weights):
            raise ValueError("sum node needs one weight per child")
        if not children:
            raise ValueError("sum node needs at least one child")
        weights = np.asarray(weights, dtype=np.float64)
        if np.any(weights < 0):
            raise ValueError("sum weights must be non-negative")
        total = float(weights.sum())
        if total <= 0:
            raise ValueError("sum weights must not all be zero")
        super().__init__(children)
        self.weights: List[float] = [float(w) / total for w in weights]

    def _compute_scope(self) -> FrozenSet[int]:
        return frozenset().union(*(c._scope for c in self.children))


class Product(Node):
    """A factorization of independent child distributions."""

    __slots__ = ()

    def __init__(self, children: Sequence[Node]):
        if not children:
            raise ValueError("product node needs at least one child")
        super().__init__(children)

    def _compute_scope(self) -> FrozenSet[int]:
        return frozenset().union(*(c._scope for c in self.children))


class Leaf(Node):
    """Base class of univariate leaf distributions."""

    __slots__ = ("variable",)

    def __init__(self, variable: int):
        super().__init__(())
        self.variable = int(variable)
        self._scope = frozenset((self.variable,))

    def _compute_scope(self) -> FrozenSet[int]:
        return self._scope

    def log_density(self, values: np.ndarray) -> np.ndarray:
        """Vectorized log density/mass for an array of feature values."""
        raise NotImplementedError


class Gaussian(Leaf):
    """A univariate Gaussian leaf."""

    __slots__ = ("mean", "stdev")

    def __init__(self, variable: int, mean: float, stdev: float):
        if stdev <= 0:
            raise ValueError("Gaussian stdev must be positive")
        super().__init__(variable)
        self.mean = float(mean)
        self.stdev = float(stdev)

    def log_density(self, values: np.ndarray) -> np.ndarray:
        norm = -0.5 * np.log(2.0 * np.pi) - np.log(self.stdev)
        z = (values - self.mean) / self.stdev
        return norm - 0.5 * z * z


class Categorical(Leaf):
    """A categorical leaf over values ``0..K-1``.

    The leaf's domain is the half-open interval ``[0, K)``: values are
    truncated to their integer bucket, and any value outside the domain
    (negative, ``>= K``, or non-numeric) has probability zero. This
    out-of-domain rule is the single definition shared by the reference
    evaluator, the IR interpreter and every compiled backend — the
    differential oracle (:mod:`repro.testing.oracle`) checks they agree.
    """

    __slots__ = ("probabilities",)

    def __init__(self, variable: int, probabilities: Sequence[float]):
        probs = np.asarray(probabilities, dtype=np.float64)
        if probs.ndim != 1 or probs.size == 0:
            raise ValueError("categorical needs a non-empty 1-D probability vector")
        if np.any(probs < 0):
            raise ValueError("categorical probabilities must be non-negative")
        total = probs.sum()
        if total <= 0:
            raise ValueError("categorical probabilities must not all be zero")
        super().__init__(variable)
        self.probabilities: List[float] = list(probs / total)

    def log_density(self, values: np.ndarray) -> np.ndarray:
        table = np.asarray(self.probabilities)
        values = np.asarray(values, dtype=np.float64)
        with np.errstate(invalid="ignore"):
            in_domain = (values >= 0.0) & (values < float(len(table)))
        safe = np.where(in_domain, values, 0.0)
        idx = safe.astype(np.int64)
        with np.errstate(divide="ignore"):
            result = np.log(table[idx])
        return np.where(in_domain, result, -np.inf)


class Histogram(Leaf):
    """A histogram leaf: piecewise-constant mass over value buckets.

    Bucket ``i`` covers ``[bounds[i], bounds[i+1])``; values outside the
    covered range receive a tiny epsilon mass to avoid -inf likelihoods,
    mirroring SPFlow's behaviour.
    """

    EPSILON = 1e-12

    __slots__ = ("bounds", "densities")

    def __init__(self, variable: int, bounds: Sequence[float], densities: Sequence[float]):
        bounds_arr = np.asarray(bounds, dtype=np.float64)
        dens = np.asarray(densities, dtype=np.float64)
        if len(bounds_arr) != len(dens) + 1:
            raise ValueError("histogram needs len(bounds) == len(densities) + 1")
        if np.any(np.diff(bounds_arr) <= 0):
            raise ValueError("histogram bounds must be strictly increasing")
        if np.any(dens < 0):
            raise ValueError("histogram densities must be non-negative")
        super().__init__(variable)
        self.bounds: List[float] = list(bounds_arr)
        self.densities: List[float] = list(dens)

    def log_density(self, values: np.ndarray) -> np.ndarray:
        bounds = np.asarray(self.bounds)
        dens = np.asarray(self.densities)
        idx = np.searchsorted(bounds, values, side="right") - 1
        out_of_range = (idx < 0) | (idx >= len(dens))
        idx = np.clip(idx, 0, len(dens) - 1)
        result = dens[idx]
        result = np.where(out_of_range, self.EPSILON, result)
        with np.errstate(divide="ignore"):
            return np.log(np.maximum(result, self.EPSILON))


# --- graph utilities ---------------------------------------------------------


def topological_order(root: Node) -> List[Node]:
    """Children-before-parents ordering of all nodes reachable from root."""
    order: List[Node] = []
    visited = set()
    stack: List[Tuple[Node, bool]] = [(root, False)]
    while stack:
        node, expanded = stack.pop()
        if expanded:
            order.append(node)
            continue
        if id(node) in visited:
            continue
        visited.add(id(node))
        stack.append((node, True))
        for child in node.children:
            if id(child) not in visited:
                stack.append((child, False))
    return order


def all_nodes(root: Node) -> List[Node]:
    return topological_order(root)


def leaves(root: Node) -> List[Leaf]:
    return [n for n in topological_order(root) if isinstance(n, Leaf)]


def num_nodes(root: Node) -> int:
    return len(topological_order(root))


def depth(root: Node) -> int:
    """Longest path from root to a leaf (leaf alone has depth 0)."""
    depths: Dict[int, int] = {}
    for node in topological_order(root):
        if node.is_leaf:
            depths[id(node)] = 0
        else:
            depths[id(node)] = 1 + max(depths[id(c)] for c in node.children)
    return depths[id(root)]


class GraphStatistics:
    """Node-count statistics as reported in the paper's evaluation."""

    def __init__(self, root: Node):
        nodes = topological_order(root)
        self.num_nodes = len(nodes)
        self.num_sums = sum(1 for n in nodes if isinstance(n, Sum))
        self.num_products = sum(1 for n in nodes if isinstance(n, Product))
        self.num_leaves = sum(1 for n in nodes if isinstance(n, Leaf))
        self.num_gaussians = sum(1 for n in nodes if isinstance(n, Gaussian))
        self.num_features = len(root.scope)
        self.depth = depth(root)

    @property
    def gaussian_share(self) -> float:
        return self.num_gaussians / max(self.num_nodes, 1)

    def __repr__(self) -> str:
        return (
            f"GraphStatistics(nodes={self.num_nodes}, sums={self.num_sums}, "
            f"products={self.num_products}, leaves={self.num_leaves}, "
            f"features={self.num_features}, depth={self.depth})"
        )


def structurally_equal(a: Node, b: Node) -> bool:
    """Deep structural equality of two SPN graphs (shared subgraphs respected)."""
    mapping: Dict[int, int] = {}

    def visit(x: Node, y: Node) -> bool:
        if id(x) in mapping:
            return mapping[id(x)] == id(y)
        mapping[id(x)] = id(y)
        if type(x) is not type(y):
            return False
        if isinstance(x, Gaussian):
            return (
                x.variable == y.variable
                and np.isclose(x.mean, y.mean)
                and np.isclose(x.stdev, y.stdev)
            )
        if isinstance(x, Categorical):
            return x.variable == y.variable and np.allclose(
                x.probabilities, y.probabilities
            )
        if isinstance(x, Histogram):
            return (
                x.variable == y.variable
                and np.allclose(x.bounds, y.bounds)
                and np.allclose(x.densities, y.densities)
            )
        if len(x.children) != len(y.children):
            return False
        if isinstance(x, Sum) and not np.allclose(x.weights, y.weights):
            return False
        return all(visit(cx, cy) for cx, cy in zip(x.children, y.children))

    return visit(a, b)
