"""Binary serialization of SPN graphs and queries.

The paper uses a custom Cap'n Proto based binary format to hand SPNs from
the SPFlow frontend to the compiler (SPFlow itself has no binary format).
This module plays the same role with a compact struct-packed format:

====================  =============================================
section               layout (little endian)
====================  =============================================
header                magic ``SPNB``, version u16, reserved u16
query                 kind u8, batch_size u32, num_features u32,
                      dtype u8 (0=f32, 1=f64), support_marginal u8
graph                 node_count u32, then per node a tag byte and a
                      type-specific payload; children are referenced
                      by their (already emitted) topological index
root                  root node index u32
====================  =============================================

Shared subgraphs are preserved exactly: each node is emitted once and
referenced by index, so the DAG (not a tree expansion) round-trips.
"""

from __future__ import annotations

import io
import struct
from typing import BinaryIO, Dict, List, Tuple, Union

from .nodes import Categorical, Gaussian, Histogram, Node, Product, Sum, topological_order
from .query import (
    ConditionalProbability,
    Expectation,
    JointProbability,
    MPEQuery,
    Query,
    SampleQuery,
)

MAGIC = b"SPNB"
VERSION = 2

_TAG_GAUSSIAN = 1
_TAG_CATEGORICAL = 2
_TAG_HISTOGRAM = 3
_TAG_SUM = 4
_TAG_PRODUCT = 5

_QUERY_KIND_JOINT = 0
_QUERY_KIND_MPE = 1
_QUERY_KIND_SAMPLE = 2
_QUERY_KIND_CONDITIONAL = 3
_QUERY_KIND_EXPECTATION = 4

#: Query-kind codes by descriptor class. Kinds > 0 append a kind-specific
#: payload after the fixed query record (see serialize); v2 readers that
#: predate them reject the kind byte rather than misparse.
_QUERY_KIND_CODES = {
    JointProbability: _QUERY_KIND_JOINT,
    MPEQuery: _QUERY_KIND_MPE,
    SampleQuery: _QUERY_KIND_SAMPLE,
    ConditionalProbability: _QUERY_KIND_CONDITIONAL,
    Expectation: _QUERY_KIND_EXPECTATION,
}

_DTYPE_CODES = {"f32": 0, "f64": 1}
_DTYPE_NAMES = {code: name for name, code in _DTYPE_CODES.items()}


class SerializationError(ValueError):
    """Raised on malformed binary SPN payloads."""


def _write(stream: BinaryIO, fmt: str, *values) -> None:
    stream.write(struct.pack("<" + fmt, *values))


def _read(stream: BinaryIO, fmt: str) -> Tuple:
    size = struct.calcsize("<" + fmt)
    payload = stream.read(size)
    if len(payload) != size:
        raise SerializationError("unexpected end of SPN payload")
    return struct.unpack("<" + fmt, payload)


def serialize(root: Node, query: Query, stream: BinaryIO = None) -> bytes:
    """Serialize an SPN + query to bytes (and optionally into a stream)."""
    kind = _QUERY_KIND_CODES.get(type(query))
    if kind is None:
        raise SerializationError(
            f"cannot serialize query type {type(query).__name__}"
        )
    buffer = io.BytesIO()
    _write(buffer, "4sHH", MAGIC, VERSION, 0)

    num_features = max(root.scope) + 1
    _write(
        buffer,
        "BIIBBd",
        kind,
        query.batch_size,
        num_features,
        _DTYPE_CODES[query.input_dtype],
        int(query.support_marginal),
        query.relative_error,
    )
    # Kind-specific payloads (absent for joint/mpe/sample).
    if isinstance(query, ConditionalProbability):
        variables = list(query.query_variables)
        _write(buffer, "I", len(variables))
        _write(buffer, f"{len(variables)}I", *variables)
    elif isinstance(query, Expectation):
        _write(buffer, "B", query.moment)

    order = topological_order(root)
    index: Dict[int, int] = {id(node): i for i, node in enumerate(order)}
    _write(buffer, "I", len(order))
    for node in order:
        if isinstance(node, Gaussian):
            _write(buffer, "BIdd", _TAG_GAUSSIAN, node.variable, node.mean, node.stdev)
        elif isinstance(node, Categorical):
            probs = node.probabilities
            _write(buffer, "BII", _TAG_CATEGORICAL, node.variable, len(probs))
            _write(buffer, f"{len(probs)}d", *probs)
        elif isinstance(node, Histogram):
            _write(buffer, "BII", _TAG_HISTOGRAM, node.variable, len(node.densities))
            _write(buffer, f"{len(node.bounds)}d", *node.bounds)
            _write(buffer, f"{len(node.densities)}d", *node.densities)
        elif isinstance(node, Sum):
            children = [index[id(c)] for c in node.children]
            _write(buffer, "BI", _TAG_SUM, len(children))
            _write(buffer, f"{len(children)}I", *children)
            _write(buffer, f"{len(children)}d", *node.weights)
        elif isinstance(node, Product):
            children = [index[id(c)] for c in node.children]
            _write(buffer, "BI", _TAG_PRODUCT, len(children))
            _write(buffer, f"{len(children)}I", *children)
        else:  # pragma: no cover - node hierarchy is closed
            raise SerializationError(f"cannot serialize node type {type(node).__name__}")
    _write(buffer, "I", index[id(root)])

    payload = buffer.getvalue()
    if stream is not None:
        stream.write(payload)
    return payload


def deserialize(payload: Union[bytes, BinaryIO]) -> Tuple[Node, Query]:
    """Reconstruct (root, query) from the binary format."""
    stream = io.BytesIO(payload) if isinstance(payload, (bytes, bytearray)) else payload

    magic, version, _ = _read(stream, "4sHH")
    if magic != MAGIC:
        raise SerializationError("bad magic: not an SPN binary payload")
    if version != VERSION:
        raise SerializationError(f"unsupported SPN binary version {version}")

    (
        kind,
        batch_size,
        num_features,
        dtype_code,
        support_marginal,
        relative_error,
    ) = _read(stream, "BIIBBd")
    if dtype_code not in _DTYPE_NAMES:
        raise SerializationError(f"unknown dtype code {dtype_code}")
    common = dict(
        batch_size=batch_size,
        input_dtype=_DTYPE_NAMES[dtype_code],
        support_marginal=bool(support_marginal),
        relative_error=relative_error,
    )
    if kind == _QUERY_KIND_JOINT:
        query = JointProbability(**common)
    elif kind == _QUERY_KIND_MPE:
        query = MPEQuery(**common)
    elif kind == _QUERY_KIND_SAMPLE:
        query = SampleQuery(**common)
    elif kind == _QUERY_KIND_CONDITIONAL:
        (count,) = _read(stream, "I")
        variables = _read(stream, f"{count}I")
        query = ConditionalProbability(**common, query_variables=tuple(variables))
    elif kind == _QUERY_KIND_EXPECTATION:
        (moment,) = _read(stream, "B")
        query = Expectation(**common, moment=moment)
    else:
        raise SerializationError(f"unknown query kind {kind}")

    (node_count,) = _read(stream, "I")
    nodes: List[Node] = []
    for _ in range(node_count):
        (tag,) = _read(stream, "B")
        if tag == _TAG_GAUSSIAN:
            variable, mean, stdev = _read(stream, "Idd")
            nodes.append(Gaussian(variable, mean, stdev))
        elif tag == _TAG_CATEGORICAL:
            variable, count = _read(stream, "II")
            probs = _read(stream, f"{count}d")
            nodes.append(Categorical(variable, list(probs)))
        elif tag == _TAG_HISTOGRAM:
            variable, count = _read(stream, "II")
            bounds = _read(stream, f"{count + 1}d")
            densities = _read(stream, f"{count}d")
            nodes.append(Histogram(variable, list(bounds), list(densities)))
        elif tag == _TAG_SUM:
            (count,) = _read(stream, "I")
            children_idx = _read(stream, f"{count}I")
            weights = _read(stream, f"{count}d")
            nodes.append(Sum([nodes[i] for i in children_idx], list(weights)))
        elif tag == _TAG_PRODUCT:
            (count,) = _read(stream, "I")
            children_idx = _read(stream, f"{count}I")
            nodes.append(Product([nodes[i] for i in children_idx]))
        else:
            raise SerializationError(f"unknown node tag {tag}")

    (root_index,) = _read(stream, "I")
    if root_index >= len(nodes):
        raise SerializationError("root index out of range")
    root = nodes[root_index]
    if max(root.scope) + 1 != num_features:
        raise SerializationError(
            f"query claims {num_features} features, graph needs {max(root.scope) + 1}"
        )
    return root, query


def serialize_to_file(root: Node, query: Query, path: str) -> None:
    with open(path, "wb") as handle:
        serialize(root, query, handle)


def deserialize_from_file(path: str) -> Tuple[Node, Query]:
    with open(path, "rb") as handle:
        return deserialize(handle)
