"""Closed-form leaf statistics shared by reference and compiled paths.

Modes (density argmax) and raw moments of the univariate leaf families,
expressed over raw parameter arrays. Both the reference implementations
(:mod:`repro.spn.mpe`, :mod:`repro.spn.inference`) and the compiler's
query-plan builder (:mod:`repro.compiler.lower_to_lospn`) call these, so
the substitution constants baked into compiled kernels are bit-identical
to what the reference computes.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def gaussian_mode(mean: float, stdev: float) -> float:
    return float(mean)


def categorical_mode(probabilities: Sequence[float]) -> float:
    return float(int(np.argmax(np.asarray(probabilities))))


def histogram_mode(bounds: Sequence[float], densities: Sequence[float]) -> float:
    bucket = int(np.argmax(np.asarray(densities)))
    return 0.5 * (bounds[bucket] + bounds[bucket + 1])


def gaussian_moment(mean: float, stdev: float, moment: int) -> float:
    if moment == 1:
        return float(mean)
    return float(mean * mean + stdev * stdev)


def categorical_moment(probabilities: Sequence[float], moment: int) -> float:
    probs = np.asarray(probabilities, dtype=np.float64)
    support = np.arange(len(probs), dtype=np.float64)
    return float(np.sum(probs * support**moment))


def histogram_moment(
    bounds: Sequence[float], densities: Sequence[float], moment: int
) -> float:
    """Raw moment of the normalized piecewise-uniform histogram density."""
    bounds_arr = np.asarray(bounds, dtype=np.float64)
    dens = np.asarray(densities, dtype=np.float64)
    lo, hi = bounds_arr[:-1], bounds_arr[1:]
    masses = dens * (hi - lo)
    total = masses.sum()
    if total <= 0:  # degenerate all-zero histogram; fall back to midpoints
        masses = (hi - lo) / (hi - lo).sum()
    else:
        masses = masses / total
    if moment == 1:
        per_bucket = 0.5 * (lo + hi)
    else:
        per_bucket = (lo * lo + lo * hi + hi * hi) / 3.0
    return float(np.sum(masses * per_bucket))
