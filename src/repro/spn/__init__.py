"""SPN frontend substrate: graphs, validity, inference, learning, RAT-SPNs.

This package is the SPFlow-equivalent: users model or learn Sum-Product
Networks here and hand them (plus a query) to :mod:`repro.compiler`.
"""

from .inference import (
    classify,
    conditional_log_likelihood,
    expectation,
    likelihood,
    log_likelihood,
)
from .learning import (
    LearnSPNOptions,
    em_weight_update,
    fit_leaf,
    independent_groups,
    kmeans,
    learn_spn,
    mean_log_likelihood,
)
from .nodes import (
    Categorical,
    Gaussian,
    GraphStatistics,
    Histogram,
    Leaf,
    Node,
    Product,
    Sum,
    all_nodes,
    depth,
    leaves,
    num_nodes,
    structurally_equal,
    topological_order,
)
from .mpe import max_log_likelihood, mpe
from .query import (
    QUERY_KINDS,
    ConditionalProbability,
    Expectation,
    JointProbability,
    MPEQuery,
    Query,
    SampleQuery,
)
from .rat import RatSpnConfig, build_rat_spn, train_rat_spn
from .sampling import conditional_sample, sample
from .serialization import (
    SerializationError,
    deserialize,
    deserialize_from_file,
    serialize,
    serialize_to_file,
)
from .validity import (
    InvalidSPNError,
    assert_valid,
    check_completeness,
    check_decomposability,
    is_valid,
)

__all__ = [
    "classify",
    "conditional_log_likelihood",
    "expectation",
    "likelihood",
    "log_likelihood",
    "LearnSPNOptions",
    "em_weight_update",
    "fit_leaf",
    "independent_groups",
    "kmeans",
    "learn_spn",
    "mean_log_likelihood",
    "Categorical",
    "Gaussian",
    "GraphStatistics",
    "Histogram",
    "Leaf",
    "Node",
    "Product",
    "Sum",
    "all_nodes",
    "depth",
    "leaves",
    "num_nodes",
    "structurally_equal",
    "topological_order",
    "max_log_likelihood",
    "mpe",
    "QUERY_KINDS",
    "ConditionalProbability",
    "Expectation",
    "JointProbability",
    "MPEQuery",
    "Query",
    "SampleQuery",
    "conditional_sample",
    "sample",
    "RatSpnConfig",
    "build_rat_spn",
    "train_rat_spn",
    "SerializationError",
    "deserialize",
    "deserialize_from_file",
    "serialize",
    "serialize_to_file",
    "InvalidSPNError",
    "assert_valid",
    "check_completeness",
    "check_decomposability",
    "is_valid",
]
