"""Most-probable-explanation (MPE) inference.

Beyond the joint/marginal queries the compiler accelerates, SPNs answer
MPE queries with the same single-pass tractability (the max-product
semiring): given partial evidence, find the most probable completion of
the missing features.

Implementation: a bottom-up *max-product* pass (sum nodes take the max
over weighted children instead of the weighted sum), followed by a
top-down traceback selecting, at every sum node, the arg-max child and,
at every leaf with missing evidence, the leaf's mode.

Missing evidence is encoded as NaN, matching the marginalization
convention used everywhere else in this package.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from .nodes import Categorical, Gaussian, Histogram, Leaf, Node, Product, Sum, topological_order


def _leaf_mode(leaf: Leaf) -> float:
    """The feature value maximizing the leaf's density."""
    if isinstance(leaf, Gaussian):
        return leaf.mean
    if isinstance(leaf, Categorical):
        return float(int(np.argmax(leaf.probabilities)))
    if isinstance(leaf, Histogram):
        bucket = int(np.argmax(leaf.densities))
        return 0.5 * (leaf.bounds[bucket] + leaf.bounds[bucket + 1])
    raise TypeError(f"unknown leaf type {type(leaf).__name__}")  # pragma: no cover


def _leaf_max_log_density(leaf: Leaf) -> float:
    return float(leaf.log_density(np.array([_leaf_mode(leaf)]))[0])


def max_log_likelihood(root: Node, data: np.ndarray) -> np.ndarray:
    """Bottom-up max-product pass: log of the best completion per row."""
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2:
        raise ValueError("data must have shape [batch, num_features]")
    values: Dict[int, np.ndarray] = {}
    for node in topological_order(root):
        if isinstance(node, Leaf):
            column = data[:, node.variable]
            missing = np.isnan(column)
            safe = np.where(missing, 0.0, column)
            ll = node.log_density(safe)
            values[id(node)] = np.where(missing, _leaf_max_log_density(node), ll)
        elif isinstance(node, Product):
            acc = values[id(node.children[0])].copy()
            for child in node.children[1:]:
                acc += values[id(child)]
            values[id(node)] = acc
        elif isinstance(node, Sum):
            stacked = np.stack([values[id(c)] for c in node.children], axis=0)
            with np.errstate(divide="ignore"):
                logw = np.log(np.asarray(node.weights))[:, None]
            values[id(node)] = np.max(stacked + logw, axis=0)
        else:  # pragma: no cover - closed hierarchy
            raise TypeError(f"unknown node type {type(node).__name__}")
    return values[id(root)]


def mpe(root: Node, evidence: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Complete missing (NaN) features with their most probable values.

    Returns ``(completions, max_log_likelihood)``: the input rows with
    NaNs replaced by the MPE assignment, plus the max-product log score
    of each completion.
    """
    evidence = np.asarray(evidence, dtype=np.float64)
    if evidence.ndim != 2:
        raise ValueError("evidence must have shape [batch, num_features]")

    # Bottom-up pass with cached per-node scores (vectorized over rows).
    values: Dict[int, np.ndarray] = {}
    order = topological_order(root)
    for node in order:
        if isinstance(node, Leaf):
            column = evidence[:, node.variable]
            missing = np.isnan(column)
            safe = np.where(missing, 0.0, column)
            ll = node.log_density(safe)
            values[id(node)] = np.where(missing, _leaf_max_log_density(node), ll)
        elif isinstance(node, Product):
            acc = values[id(node.children[0])].copy()
            for child in node.children[1:]:
                acc += values[id(child)]
            values[id(node)] = acc
        else:
            stacked = np.stack([values[id(c)] for c in node.children], axis=0)
            with np.errstate(divide="ignore"):
                logw = np.log(np.asarray(node.weights))[:, None]
            values[id(node)] = np.max(stacked + logw, axis=0)

    completions = evidence.copy()

    # Top-down traceback per row (the arg-max tree selection).
    def trace(node: Node, row: int) -> None:
        if isinstance(node, Leaf):
            if np.isnan(evidence[row, node.variable]):
                completions[row, node.variable] = _leaf_mode(node)
            return
        if isinstance(node, Product):
            for child in node.children:
                trace(child, row)
            return
        best_child, best_score = None, -np.inf
        for child, weight in zip(node.children, node.weights):
            logw = np.log(weight) if weight > 0 else -np.inf
            score = logw + values[id(child)][row]
            if score > best_score:
                best_child, best_score = child, score
        trace(best_child, row)

    for row in range(evidence.shape[0]):
        trace(root, row)

    return completions, values[id(root)]
