"""Ancestral sampling from Sum-Product Networks.

SPNs are generative: sampling follows the DAG top-down — at a sum node
a child is drawn according to the mixture weights, at a product node all
children are visited, and at a leaf a value is drawn from the univariate
distribution. Conditional sampling fixes observed (non-NaN) features and
draws sum-node branches from the *posterior* child responsibilities
given the evidence.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from .nodes import Categorical, Gaussian, Histogram, Leaf, Node, Product, Sum, topological_order


def _sample_leaf(leaf: Leaf, rng: np.random.Generator) -> float:
    if isinstance(leaf, Gaussian):
        return float(rng.normal(leaf.mean, leaf.stdev))
    if isinstance(leaf, Categorical):
        return float(rng.choice(len(leaf.probabilities), p=leaf.probabilities))
    if isinstance(leaf, Histogram):
        probs = np.asarray(leaf.densities) / np.sum(leaf.densities)
        bucket = rng.choice(len(probs), p=probs)
        return float(rng.uniform(leaf.bounds[bucket], leaf.bounds[bucket + 1]))
    raise TypeError(f"unknown leaf type {type(leaf).__name__}")  # pragma: no cover


def sample(root: Node, num_samples: int, rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Draw unconditional samples; returns [num_samples, num_features]."""
    rng = rng or np.random.default_rng()
    num_features = max(root.scope) + 1
    out = np.full((num_samples, num_features), np.nan)

    def descend(node: Node, row: int) -> None:
        if isinstance(node, Leaf):
            out[row, node.variable] = _sample_leaf(node, rng)
        elif isinstance(node, Product):
            for child in node.children:
                descend(child, row)
        elif isinstance(node, Sum):
            child = node.children[rng.choice(len(node.children), p=node.weights)]
            descend(child, row)
        else:  # pragma: no cover
            raise TypeError(f"unknown node type {type(node).__name__}")

    for row in range(num_samples):
        descend(root, row)
    return out


def conditional_sample(
    root: Node,
    evidence: np.ndarray,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Sample completions of NaN features conditioned on the observed ones.

    At each sum node the branch is drawn from the posterior
    responsibilities ``w_k * L_k(evidence) / Σ ...`` computed by one
    bottom-up (marginalized) likelihood pass.
    """
    rng = rng or np.random.default_rng()
    evidence = np.asarray(evidence, dtype=np.float64)
    if evidence.ndim != 2:
        raise ValueError("evidence must have shape [batch, num_features]")

    # Bottom-up marginal likelihood of the evidence under every node.
    values: Dict[int, np.ndarray] = {}
    for node in topological_order(root):
        if isinstance(node, Leaf):
            column = evidence[:, node.variable]
            missing = np.isnan(column)
            safe = np.where(missing, 0.0, column)
            ll = node.log_density(safe)
            values[id(node)] = np.where(missing, 0.0, ll)
        elif isinstance(node, Product):
            acc = values[id(node.children[0])].copy()
            for child in node.children[1:]:
                acc += values[id(child)]
            values[id(node)] = acc
        else:
            stacked = np.stack([values[id(c)] for c in node.children], axis=0)
            with np.errstate(divide="ignore"):
                logw = np.log(np.asarray(node.weights))[:, None]
            shifted = stacked + logw
            peak = np.max(shifted, axis=0)
            with np.errstate(invalid="ignore"):
                values[id(node)] = peak + np.log(np.exp(shifted - peak).sum(axis=0))

    out = evidence.copy()

    def descend(node: Node, row: int) -> None:
        if isinstance(node, Leaf):
            if np.isnan(evidence[row, node.variable]):
                out[row, node.variable] = _sample_leaf(node, rng)
            return
        if isinstance(node, Product):
            for child in node.children:
                descend(child, row)
            return
        with np.errstate(divide="ignore"):
            scores = np.array(
                [
                    (np.log(w) if w > 0 else -np.inf) + values[id(c)][row]
                    for c, w in zip(node.children, node.weights)
                ]
            )
        peak = scores.max()
        if not np.isfinite(peak):
            probs = np.asarray(node.weights)
        else:
            probs = np.exp(scores - peak)
            probs /= probs.sum()
        descend(node.children[rng.choice(len(probs), p=probs)], row)

    for row in range(evidence.shape[0]):
        descend(root, row)
    return out
