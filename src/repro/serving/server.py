"""The thread-pool-backed async inference server.

Request lifecycle (every request gets exactly one terminal outcome)::

    submit ──admission──▶ bounded queue ──batcher──▶ kernel batch ──▶ ok
       │                      │                          │
       ├─ queue full ────▶ rejected (retry-after)        ├─ kernel fault → bounded
       ├─ unknown model ─▶ ModelNotFoundError            │   backoff retry → breaker
       └─ dead deadline ─▶ expired                       │   → interpreter (degraded)
                              │                          └─ deadline → expired
                              ├─ expired while queued ─▶ expired
                              └─ client cancelled ─────▶ cancelled (skipped)

Robustness decisions:

- **Admission first.** A request that cannot be served in bounded time
  is rejected *synchronously* with a ``retry_after_s`` hint instead of
  queueing unboundedly (see :mod:`repro.serving.admission`).
- **Deadlines propagate.** A request deadline caps queue wait, batch
  formation and kernel execution — down to
  :meth:`ChunkedExecutor.run <repro.runtime.threadpool.ChunkedExecutor.run>`
  chunk scheduling — so slow chunks fail bounded, not late.
- **Degradation over failure.** Compiled-kernel faults are retried with
  bounded backoff + jitter; repeated faults trip the per-model
  :class:`~repro.serving.admission.CircuitBreaker` and traffic is served
  by the reference interpreter (correct, slower, flagged ``degraded``)
  until a half-open probe proves the kernel healthy again.
- **Swap never drops.** Hot model swap routes new batches to the new
  version while in-flight batches finish on their leased version;
  the old kernel is closed only after its leases drain.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import InvalidStateError
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..diagnostics import (
    AdmissionError,
    DeadlineError,
    Diagnostic,
    DiagnosticLog,
    ErrorCode,
    ExecutionError,
    Severity,
    diagnostic_context,
    diagnostic_from_exception,
)
from ..runtime.threadpool import RetryPolicy
from .admission import (
    BreakerConfig,
    CircuitBreaker,
    ModelNotFoundError,
    QueueClosedError,
    RequestQueue,
)
from .batcher import (
    BatchPolicy,
    DynamicBatcher,
    Request,
    ServingResult,
    canonical_query_args,
)
from .health import ServerStats
from .registry import ModelRegistry, ModelVersion


@dataclass(frozen=True)
class ServerConfig:
    """Tuning of the serving runtime (all robustness knobs in one place)."""

    #: Dynamic batching: max rows per kernel call / max coalescing wait.
    max_batch: int = 1024
    max_wait_us: int = 2000
    #: Bounded per-model request queue (admission rejects beyond this).
    queue_capacity: int = 1024
    #: Default per-request timeout; ``None`` = no deadline unless given.
    default_timeout_s: Optional[float] = None
    #: Bounded-backoff retry for transient compiled-kernel faults.
    retry: RetryPolicy = RetryPolicy(
        max_retries=2, backoff_base=0.002, backoff_max=0.05, jitter=0.25
    )
    #: Per-model circuit breaker configuration.
    breaker: BreakerConfig = BreakerConfig()
    #: Batcher workers per model (each forms and runs whole batches).
    workers_per_model: int = 1
    #: Runtime worker threads each *compiled kernel* shards coalesced
    #: batches across (forwarded as ``num_threads`` to the compiler
    #: unless the publish call overrides it). Distinct from
    #: ``workers_per_model``: that many batches form concurrently,
    #: each of which fans out over this many kernel threads.
    kernel_threads: int = 1
    #: Per-model cap on *concurrently executing* kernel batches
    #: (``None`` = unbounded, i.e. ``workers_per_model``). Composes
    #: with admission control: workers beyond the cap block at the
    #: gate, queue depth grows, and the bounded queue starts rejecting
    #: with retry-after hints — parallelism pressure becomes
    #: back-pressure instead of oversubscription.
    max_parallel_batches: Optional[int] = None
    #: How long shutdown/swap waits for in-flight work to drain.
    drain_timeout_s: float = 10.0

    def __post_init__(self) -> None:
        if self.kernel_threads < 1:
            raise ValueError("kernel_threads must be >= 1")
        if self.max_parallel_batches is not None and self.max_parallel_batches < 1:
            raise ValueError("max_parallel_batches must be >= 1 or None")


class _ModelState:
    """Per-model serving machinery: queue, workers, breaker, stats."""

    def __init__(self, name: str, config: ServerConfig):
        self.name = name
        self.queue = RequestQueue(config.queue_capacity)
        self.breaker = CircuitBreaker(config.breaker)
        self.stats = ServerStats()
        self.workers: List[threading.Thread] = []
        #: Bounds concurrently *executing* kernel batches for this model
        #: (``None`` = no cap beyond the worker count).
        self.kernel_gate: Optional[threading.BoundedSemaphore] = (
            None
            if config.max_parallel_batches is None
            else threading.BoundedSemaphore(config.max_parallel_batches)
        )


class InferenceServer:
    """Async inference over a registry of compiled models.

    Thread-pool-backed: :meth:`submit` returns a
    :class:`concurrent.futures.Future` resolving to a
    :class:`~repro.serving.batcher.ServingResult`; :meth:`infer` is the
    blocking convenience wrapper. See the module docstring for the
    request lifecycle and robustness guarantees.
    """

    def __init__(
        self,
        config: Optional[ServerConfig] = None,
        registry: Optional[ModelRegistry] = None,
    ):
        self.config = config or ServerConfig()
        self.diagnostics = DiagnosticLog()
        self.registry = registry or ModelRegistry(diagnostics=self.diagnostics)
        self.batcher = DynamicBatcher(
            BatchPolicy(
                max_batch=self.config.max_batch, max_wait_us=self.config.max_wait_us
            )
        )
        #: Whole-server aggregate stats (per-model stats in health()).
        self.stats = ServerStats()
        self._models: Dict[str, _ModelState] = {}
        self._lock = threading.Lock()
        self._closed = False
        self._retirers: List[threading.Thread] = []
        self._started_at = time.time()

    # -- model management --------------------------------------------------------

    def publish(self, name: str, spn, compiler=None, **compiler_options) -> ModelVersion:
        """Compile and serve ``spn`` as ``name`` (hot swap if it exists).

        The previous version (if any) is drained and unloaded in the
        background; in-flight requests against it complete normally.
        The server's :attr:`ServerConfig.kernel_threads` is forwarded
        as the compiler's ``num_threads`` default, so coalesced batches
        execute sharded across runtime workers; an explicit
        ``num_threads=...`` (or a pre-built ``compiler``) overrides it.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("server is closed")
        if compiler is None:
            compiler_options.setdefault("num_threads", self.config.kernel_threads)
        version = self.registry.publish(name, spn, compiler=compiler, **compiler_options)
        with self._lock:
            state = self._models.get(name)
            if state is None:
                state = self._models[name] = _ModelState(name, self.config)
                self._start_workers(state)
        previous = version.previous
        if previous is not None:
            self._retire_async(previous)
        return version

    def swap(self, name: str, spn, **kwargs) -> ModelVersion:
        """Hot-swap an existing model (raises for unknown names)."""
        with self._lock:
            if name not in self._models:
                raise ModelNotFoundError(f"cannot swap unknown model '{name}'")
        return self.publish(name, spn, **kwargs)

    def unload(self, name: str) -> None:
        """Stop serving ``name``: flush its queue with clean rejections,
        drain in-flight batches, release the kernel."""
        with self._lock:
            state = self._models.pop(name, None)
        if state is None:
            raise ModelNotFoundError(f"unknown model '{name}'")
        self._stop_state(state, reason=f"model '{name}' unloaded")
        self.registry.unload(name, drain_timeout=self.config.drain_timeout_s)

    def _start_workers(self, state: _ModelState) -> None:
        for index in range(max(1, self.config.workers_per_model)):
            worker = threading.Thread(
                target=self._worker_loop,
                args=(state,),
                name=f"serving-{state.name}-{index}",
                daemon=True,
            )
            state.workers.append(worker)
            worker.start()

    def _retire_async(self, version: ModelVersion) -> None:
        """Drain-before-unload of a swapped-out version, off-thread."""

        def retire():
            if not ModelRegistry.retire(version, self.config.drain_timeout_s):
                self.diagnostics.emit(
                    Diagnostic(
                        severity=Severity.WARNING,
                        code=ErrorCode.MODEL_SWAPPED,
                        message=(
                            f"drain of '{version.name}' v{version.version} timed "
                            f"out after {self.config.drain_timeout_s}s; kernel "
                            "left open"
                        ),
                    )
                )

        thread = threading.Thread(
            target=retire, name=f"retire-{version.name}-v{version.version}", daemon=True
        )
        with self._lock:
            # Prune finished retirers so frequent swaps on a long-lived
            # server do not accumulate dead Thread objects.
            self._retirers = [t for t in self._retirers if t.is_alive()]
            self._retirers.append(thread)
        thread.start()

    # -- request entry points ----------------------------------------------------

    def submit(
        self,
        name: str,
        rows,
        timeout_s: Optional[float] = None,
        *,
        query: str = "joint",
        query_variables=(),
        moment: int = 1,
        seed: int = 0,
    ):
        """Admit one request; returns a Future of :class:`ServingResult`.

        ``rows`` is one row ``[features]`` or a small batch
        ``[k, features]``. ``query`` selects the modality ("joint",
        "mpe", "sample", "conditional", "expectation");
        ``query_variables`` (conditional), ``moment`` (expectation) and
        ``seed`` (sample) parameterize it. Requests of different
        modalities share the queue but batch separately — the batcher
        partitions by query, so mixed traffic coalesces per kind.
        Raises synchronously on admission failure:
        :class:`~repro.serving.admission.ModelNotFoundError`,
        :class:`~repro.diagnostics.AdmissionError` (queue full /
        closed, with ``retry_after_s``), ``ValueError`` (bad shape or
        query parameters) or
        :class:`~repro.diagnostics.DeadlineError` (deadline already
        infeasible at submit).
        """
        with self._lock:
            closed = self._closed
            state = self._models.get(name)
        if state is None:
            if not closed:
                raise ModelNotFoundError(f"unknown model '{name}'")
            state = None
        if closed:
            raise AdmissionError(
                "server is shutting down", retry_after_s=self.config.drain_timeout_s
            )

        version = self.registry.current(name)
        rows = np.asarray(rows)
        single_row = rows.ndim == 1
        if single_row:
            rows = rows.reshape(1, -1)
        if rows.ndim != 2 or rows.shape[1] != version.num_features:
            raise ValueError(
                f"expected [{version.num_features}] features per row, "
                f"got shape {rows.shape}"
            )
        query_args = canonical_query_args(query, query_variables, moment)
        # Build the descriptor once to validate synchronously (unknown
        # kind, empty conditional set, unsupported moment) — the caller
        # gets a ValueError at submit, not a failed Future later.
        version.query_for(query, query_args)

        timeout = self.config.default_timeout_s if timeout_s is None else timeout_s
        deadline = None if timeout is None else time.monotonic() + timeout
        request = Request(
            model=name,
            rows=rows,
            deadline=deadline,
            single_row=single_row,
            query=query,
            query_args=query_args,
            seed=int(seed),
        )
        if request.expired():
            self._record_arrival(state, accepted=True)
            error = self._deadline_error(request, where="at admission")
            self._finish_error(state, request, error, outcome="expired")
            raise error

        try:
            accepted = state.queue.offer(request)
        except QueueClosedError:
            # close()/unload() won the race after our closed check above:
            # reject with the same structured shutdown semantics the
            # synchronous path documents (HTTP 503, not a bare 500).
            self._record_arrival(state, accepted=False)
            raise AdmissionError(
                f"model '{name}' is shutting down",
                retry_after_s=self.config.drain_timeout_s,
            ) from None
        if not accepted:
            self._record_arrival(state, accepted=False)
            retry_after = self._retry_after_hint(state)
            raise AdmissionError(
                f"queue for model '{name}' is full "
                f"({state.queue.capacity} pending); retry after "
                f"{retry_after:.3f}s",
                retry_after_s=retry_after,
            )
        self._record_arrival(state, accepted=True)
        return request.future

    def infer(
        self,
        name: str,
        rows,
        timeout_s: Optional[float] = None,
        *,
        query: str = "joint",
        query_variables=(),
        moment: int = 1,
        seed: int = 0,
    ) -> np.ndarray:
        """Blocking inference; returns the query's values.

        Single-row submits get a scalar-shaped result (``[...]`` with
        the row axis squeezed), mirroring direct kernel calls. Values
        keep the kernel layout (rows on the last axis): ``[rows]`` for
        joint/conditional, ``[1 + F, rows]`` for MPE (score row first),
        ``[F, rows]`` for sample/expectation.
        """
        future = self.submit(
            name,
            rows,
            timeout_s=timeout_s,
            query=query,
            query_variables=query_variables,
            moment=moment,
            seed=seed,
        )
        result: ServingResult = future.result(
            timeout=None if timeout_s is None else timeout_s + self.config.drain_timeout_s
        )
        values = result.values
        return values[..., 0] if np.asarray(rows).ndim == 1 else values

    def _retry_after_hint(self, state: _ModelState) -> float:
        batches_pending = state.queue.depth / max(1, self.config.max_batch)
        hint = (batches_pending + 1.0) * max(self.batcher.policy.max_wait_s, 0.001)
        return min(max(hint, 0.005), 1.0)

    # -- outcome bookkeeping (exactly one per request) ---------------------------

    def _record_arrival(self, state: _ModelState, accepted: bool) -> None:
        state.stats.record_arrival(accepted)
        self.stats.record_arrival(accepted)

    def _finish_ok(
        self,
        state: _ModelState,
        request: Request,
        values: np.ndarray,
        degraded: bool,
        version: int,
    ) -> None:
        if request.finished:
            return
        request.finished = True
        latency = time.monotonic() - request.submitted_at
        result = ServingResult(
            values=values,
            degraded=degraded,
            model_version=version,
            latency_s=latency,
            query=request.query,
        )
        try:
            request.future.set_result(result)
        except InvalidStateError:
            # The client cancelled the pending Future (its terminal
            # outcome); account for it so no request goes missing.
            state.stats.record_outcome("cancelled", latency_s=latency)
            self.stats.record_outcome("cancelled", latency_s=latency)
            return
        state.stats.record_outcome("ok", latency_s=latency, degraded=degraded)
        self.stats.record_outcome("ok", latency_s=latency, degraded=degraded)

    def _finish_error(
        self, state: _ModelState, request: Request, error: Exception, outcome: str
    ) -> None:
        if request.finished:
            return
        request.finished = True
        latency = time.monotonic() - request.submitted_at
        try:
            request.future.set_exception(error)
        except InvalidStateError:
            outcome = "cancelled"
        state.stats.record_outcome(outcome, latency_s=latency)
        self.stats.record_outcome(outcome, latency_s=latency)

    def _finish_cancelled(self, state: _ModelState, request: Request) -> None:
        """Terminal outcome for a request whose Future the client
        cancelled while it was queued (the cancellation already
        delivered ``CancelledError`` to the caller)."""
        if request.finished:
            return
        request.finished = True
        latency = time.monotonic() - request.submitted_at
        state.stats.record_outcome("cancelled", latency_s=latency)
        self.stats.record_outcome("cancelled", latency_s=latency)

    @staticmethod
    def _deadline_error(request: Request, where: str) -> DeadlineError:
        message = (
            f"request {request.request_id} for '{request.model}' exceeded "
            f"its deadline {where}"
        )
        return DeadlineError(
            message,
            diagnostic=Diagnostic(
                severity=Severity.ERROR,
                code=ErrorCode.DEADLINE_EXCEEDED,
                message=message,
                stage="serving",
                detail={"request_id": request.request_id},
            ),
        )

    # -- the batcher worker ------------------------------------------------------

    def _worker_loop(self, state: _ModelState) -> None:
        while True:
            batch, expired = self.batcher.next_batch(state.queue)
            for request in expired:
                self._finish_error(
                    state,
                    request,
                    self._deadline_error(request, where="while queued"),
                    outcome="expired",
                )
            if batch is None:
                # No live request this round: either shutdown, or the
                # batcher surfaced queued expiries (just delivered
                # above) and went back to waiting.
                if state.queue.closed:
                    return
                continue
            # Transition each Future to RUNNING so a late client
            # cancel() can no longer race our set_result/set_exception;
            # requests already cancelled while queued are dropped here
            # with a 'cancelled' outcome instead of burning kernel time.
            live = []
            for request in batch:
                if request.future.set_running_or_notify_cancel():
                    live.append(request)
                else:
                    self._finish_cancelled(state, request)
            # Partition by feature width *and* query modality: a hot
            # swap can change num_features while old-width requests sit
            # queued (uniform-width groups keep concat well-defined and
            # fail mismatches cleanly per group), and different query
            # kinds — or conditionals over different variable sets —
            # are different compiled kernels, so mixed-modality traffic
            # coalesces per kind, never across kinds.
            for group in self._partition(live):
                try:
                    self._process_batch(state, group)
                except Exception as error:
                    # The worker must survive any batch: fail the
                    # group's requests and keep serving. A dead worker
                    # would strand every future behind it.
                    self.diagnostics.emit(
                        diagnostic_from_exception(
                            error, code=ErrorCode.EXECUTION_FAILED
                        )
                    )
                    for request in group:
                        self._finish_error(state, request, error, outcome="failed")

    @staticmethod
    def _partition(batch: List[Request]) -> List[List[Request]]:
        groups: Dict[tuple, List[Request]] = {}
        for request in batch:
            key = (request.rows.shape[1], request.batch_key)
            groups.setdefault(key, []).append(request)
        return list(groups.values())

    def _process_batch(self, state: _ModelState, batch: List[Request]) -> None:
        if not batch:
            return
        inputs = DynamicBatcher.concat(batch)
        deadlines = [r.deadline for r in batch if r.deadline is not None]
        deadline = min(deadlines) if deadlines else None
        state.stats.record_batch(inputs.shape[0])
        self.stats.record_batch(inputs.shape[0])
        with diagnostic_context(
            model=state.name, request_ids=[r.request_id for r in batch]
        ):
            try:
                version = self.registry.acquire(state.name)
            except ModelNotFoundError as error:
                for request in batch:
                    self._finish_error(state, request, error, outcome="failed")
                return
            if inputs.shape[1] != version.num_features:
                # Stranded by a swap that changed the schema: reject
                # cleanly without charging the kernel or the breaker.
                version.release()
                error = ExecutionError(
                    f"request feature width {inputs.shape[1]} does not match "
                    f"model '{state.name}' v{version.version} "
                    f"({version.num_features} features)"
                )
                for request in batch:
                    self._finish_error(state, request, error, outcome="failed")
                return
            gate = state.kernel_gate
            if gate is not None and not self._acquire_gate(gate, deadline):
                version.release()
                error = self._gate_deadline_error(state, batch)
                for request in batch:
                    self._finish_error(state, request, error, outcome="expired")
                return
            try:
                # The group shares one modality (it is part of the
                # batching key); joint batches with NaN evidence reroute
                # to the marginal-supporting kernel here.
                query = version.query_for(
                    batch[0].query, batch[0].query_args, inputs=inputs
                )
                outputs, degraded = self._execute_resilient(
                    state, version, inputs, deadline, query, batch[0].seed
                )
            except DeadlineError as error:
                for request in batch:
                    self._finish_error(state, request, error, outcome="expired")
                return
            except Exception as error:
                for request in batch:
                    self._finish_error(state, request, error, outcome="failed")
                return
            finally:
                version.release()
                if gate is not None:
                    gate.release()
        for request, piece in zip(batch, DynamicBatcher.split(batch, outputs)):
            if request.expired():
                # The deadline is a contract: a result computed too late
                # (e.g. slow chunks on the single-chunk path, where the
                # executor cannot preempt a running kernel) is not
                # delivered as a success.
                self._finish_error(
                    state,
                    request,
                    self._deadline_error(request, where="before delivery"),
                    outcome="expired",
                )
            else:
                self._finish_ok(
                    state, request, piece, degraded, version.version
                )

    @staticmethod
    def _acquire_gate(
        gate: threading.BoundedSemaphore, deadline: Optional[float]
    ) -> bool:
        """Take a kernel-parallelism slot, waiting no longer than the
        batch's deadline allows. Returns ``False`` when the deadline
        expires first — the batch then fails *expired*, the same terminal
        outcome a slow kernel would have produced."""
        if deadline is None:
            gate.acquire()
            return True
        remaining = deadline - time.monotonic()
        return remaining > 0 and gate.acquire(timeout=remaining)

    def _gate_deadline_error(
        self, state: _ModelState, batch: List[Request]
    ) -> DeadlineError:
        message = (
            f"deadline exceeded waiting for a kernel-parallelism slot on "
            f"model '{state.name}' "
            f"(max_parallel_batches={self.config.max_parallel_batches})"
        )
        return DeadlineError(
            message,
            diagnostic=Diagnostic(
                severity=Severity.ERROR,
                code=ErrorCode.DEADLINE_EXCEEDED,
                message=message,
                stage="serving",
                detail={"request_ids": [r.request_id for r in batch]},
            ),
        )

    # -- the degradation ladder --------------------------------------------------

    def _execute_resilient(
        self,
        state: _ModelState,
        version: ModelVersion,
        inputs: np.ndarray,
        deadline: Optional[float],
        query,
        seed: int,
    ):
        """Compiled kernel (with retries) → interpreter. Returns
        ``(outputs, degraded)`` or raises the terminal error."""
        if state.breaker.allow_request():
            try:
                outputs = self._run_compiled(
                    state, version, inputs, deadline, query, seed
                )
                state.breaker.record_success()
                return outputs, False
            except DeadlineError:
                # Out of time, not necessarily a kernel defect: surface
                # the deadline without charging the breaker.
                raise
            except Exception as error:
                if self._is_caller_error(error):
                    # Malformed input (NaN on a conditional query
                    # variable): the caller's bug, not a kernel defect —
                    # don't charge the breaker, don't degrade (the
                    # interpreter would reject it too).
                    raise
                state.breaker.record_failure()
                self.diagnostics.emit(
                    diagnostic_from_exception(
                        error,
                        code=ErrorCode.EXECUTION_FAILED,
                        target=version.executable.target,
                    )
                )
                if state.breaker.state == CircuitBreaker.OPEN:
                    self.diagnostics.emit(
                        Diagnostic(
                            severity=Severity.WARNING,
                            code=ErrorCode.BREAKER_OPEN,
                            message=(
                                f"circuit breaker for '{state.name}' opened after "
                                "repeated kernel failures; serving degraded "
                                "(reference interpreter)"
                            ),
                            target=version.executable.target,
                        )
                    )
        else:
            state.stats.record_breaker_short_circuit()
            self.stats.record_breaker_short_circuit()
        if deadline is not None and time.monotonic() >= deadline:
            raise DeadlineError(
                "deadline exceeded before interpreter fallback could run"
            )
        # The always-correct rung: SPFlow-equivalent reference semantics.
        outputs = version.interpret(inputs, query, seed=seed)
        return outputs, True

    @staticmethod
    def _is_caller_error(error: BaseException) -> bool:
        diagnostic = getattr(error, "diagnostic", None)
        return diagnostic is not None and diagnostic.code == ErrorCode.QUERY_NAN

    def _run_compiled(
        self,
        state: _ModelState,
        version: ModelVersion,
        inputs: np.ndarray,
        deadline: Optional[float],
        query,
        seed: int,
    ) -> np.ndarray:
        policy = self.config.retry
        attempt = 0
        while True:
            if deadline is not None and time.monotonic() >= deadline:
                raise DeadlineError("deadline exceeded before kernel execution")
            try:
                # Lazy per-modality compile (first request of a kind on
                # this version) happens inside the retry/breaker ladder,
                # so a failing query lowering degrades to the reference
                # interpreter instead of erroring the batch.
                executable = version.executable_for(query)
                if query.kind == "sample":
                    outputs = executable.execute(
                        inputs, deadline=deadline, seed=seed
                    )
                else:
                    outputs = executable.execute(inputs, deadline=deadline)
                if query.kind in ("conditional", "expectation"):
                    # NaN is a defined answer for these modalities
                    # (zero-probability evidence, off-scope features),
                    # never a kernel-defect signal.
                    return outputs
                if np.isnan(outputs).any():
                    raise ExecutionError(
                        f"compiled kernel for '{state.name}' produced NaN results",
                        diagnostic=Diagnostic(
                            severity=Severity.ERROR,
                            code=ErrorCode.KERNEL_NAN,
                            message="NaN results from compiled kernel",
                            stage="execute",
                            target=version.executable.target,
                        ),
                    )
                return outputs
            except DeadlineError:
                raise
            except Exception as error:
                if self._is_caller_error(error) or attempt >= policy.max_retries:
                    # A caller error (NaN query variable) is
                    # deterministic: retrying cannot change the answer.
                    raise
                delay = policy.delay(attempt)
                if deadline is not None and time.monotonic() + delay >= deadline:
                    raise DeadlineError(
                        "deadline exceeded during kernel retry backoff"
                    ) from error
                if delay > 0.0:
                    time.sleep(delay)
                attempt += 1
                state.stats.record_retry()
                self.stats.record_retry()

    # -- health / shutdown -------------------------------------------------------

    def health(self) -> Dict[str, object]:
        """Machine-readable health: queue depths, batch histogram,
        latency quantiles, breaker states, degraded-mode flags."""
        with self._lock:
            states = dict(self._models)
            closed = self._closed
        models = {}
        any_degraded = False
        for name, state in states.items():
            breaker = state.breaker.describe()
            degraded_mode = breaker["state"] != CircuitBreaker.CLOSED
            any_degraded = any_degraded or degraded_mode
            try:
                version = self.registry.current(name).describe()
            except ModelNotFoundError:  # pragma: no cover - unload race
                version = None
            models[name] = {
                "version": version,
                "queue_depth": state.queue.depth,
                "queue_capacity": state.queue.capacity,
                "breaker": breaker,
                "degraded_mode": degraded_mode,
                **state.stats.snapshot(),
            }
        status = "closed" if closed else ("degraded" if any_degraded else "ok")
        return {
            "status": status,
            "uptime_s": time.time() - self._started_at,
            "batch_policy": {
                "max_batch": self.config.max_batch,
                "max_wait_us": self.config.max_wait_us,
            },
            "parallelism": {
                "workers_per_model": self.config.workers_per_model,
                "kernel_threads": self.config.kernel_threads,
                "max_parallel_batches": self.config.max_parallel_batches,
            },
            "totals": self.stats.snapshot(),
            "models": models,
        }

    def _stop_state(self, state: _ModelState, reason: str) -> None:
        pending = state.queue.close(flush=True)
        for request in pending:
            self._finish_error(
                state,
                request,
                AdmissionError(reason, retry_after_s=self.config.drain_timeout_s),
                outcome="rejected",
            )
        for worker in state.workers:
            worker.join(timeout=self.config.drain_timeout_s)

    def close(self, drain: bool = True) -> None:
        """Shut down; every pending request still gets a terminal outcome.

        ``drain=True`` serves out queued requests first; ``drain=False``
        flushes them with clean rejections.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            states = list(self._models.values())
            self._models.clear()
        for state in states:
            if drain:
                # Stop admissions (closed flag already set), let workers
                # drain the queue, then close it so they exit.
                deadline = time.monotonic() + self.config.drain_timeout_s
                while state.queue.depth > 0 and time.monotonic() < deadline:
                    time.sleep(0.001)
                state.queue.close(flush=False)
                for worker in state.workers:
                    worker.join(timeout=self.config.drain_timeout_s)
                # Anything left after the timeout gets a clean rejection.
                for request in state.queue.close(flush=True):
                    self._finish_error(
                        state,
                        request,
                        AdmissionError("server is shutting down"),
                        outcome="rejected",
                    )
            else:
                self._stop_state(state, reason="server is shutting down")
        with self._lock:
            retirers = list(self._retirers)
            self._retirers.clear()
        for thread in retirers:
            thread.join(timeout=self.config.drain_timeout_s)
        self.registry.close(drain_timeout=self.config.drain_timeout_s)

    def __enter__(self) -> "InferenceServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
