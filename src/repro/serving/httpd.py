"""Thin stdlib HTTP facade over :class:`~repro.serving.server.InferenceServer`.

Endpoints (JSON in/out, no dependencies beyond the standard library):

- ``GET /healthz`` — full health snapshot (queue depths, batch-size
  histogram, p50/p99 latency, breaker states, degraded-mode flags);
  status 200 while serving, 503 once closed.
- ``GET /models`` — registered model names and current versions.
- ``POST /v1/models/<name>:predict`` — body
  ``{"inputs": [[...], ...], "timeout_ms": 250}``; responds
  ``{"outputs": [...], "degraded": false, "model_version": 1}``.
  Optional query-modality fields: ``"query"`` ("joint" default, "mpe",
  "sample", "conditional", "expectation"), ``"query_variables"``
  (conditional), ``"moment"`` (expectation) and ``"seed"`` (sample).

Error mapping keeps the admission semantics visible to clients:
queue-full backpressure is ``429`` with a ``Retry-After`` header,
deadline expiry is ``504``, unknown models are ``404`` — a rejected
request is a *protocol answer*, never a dropped connection.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

import numpy as np

from ..diagnostics import AdmissionError, DeadlineError, ErrorCode, ExecutionError
from .admission import ModelNotFoundError
from .server import InferenceServer


class ServingHTTPServer(ThreadingHTTPServer):
    """HTTP server bound to one :class:`InferenceServer`."""

    daemon_threads = True

    def __init__(self, address: Tuple[str, int], inference_server: InferenceServer):
        super().__init__(address, _Handler)
        self.inference_server = inference_server


class _Handler(BaseHTTPRequestHandler):
    server: ServingHTTPServer

    # -- plumbing ----------------------------------------------------------------

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # keep the serving process quiet; stats live in /healthz

    def _send_json(self, status: int, payload: dict, headers: Optional[dict] = None):
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for key, value in (headers or {}).items():
            self.send_header(key, value)
        self.end_headers()
        self.wfile.write(body)

    # -- endpoints ---------------------------------------------------------------

    def do_GET(self):  # noqa: N802 - stdlib naming
        server = self.server.inference_server
        if self.path in ("/healthz", "/health", "/stats"):
            health = server.health()
            status = 503 if health["status"] == "closed" else 200
            self._send_json(status, health)
        elif self.path == "/models":
            self._send_json(
                200,
                {
                    name: server.registry.current(name).describe()
                    for name in server.registry.names()
                },
            )
        else:
            self._send_json(404, {"error": f"unknown path '{self.path}'"})

    def do_POST(self):  # noqa: N802 - stdlib naming
        prefix, sep, action = self.path.partition(":")
        if not (prefix.startswith("/v1/models/") and action == "predict"):
            self._send_json(404, {"error": f"unknown path '{self.path}'"})
            return
        name = prefix[len("/v1/models/") :]
        try:
            length = int(self.headers.get("Content-Length", "0"))
            request = json.loads(self.rfile.read(length) or b"{}")
            inputs = np.asarray(request["inputs"], dtype=np.float64)
            timeout_ms = request.get("timeout_ms")
            timeout_s = None if timeout_ms is None else float(timeout_ms) / 1e3
            query = str(request.get("query", "joint"))
            query_variables = request.get("query_variables", ())
            moment = int(request.get("moment", 1))
            seed = int(request.get("seed", 0))
        except (KeyError, ValueError, TypeError, json.JSONDecodeError) as error:
            self._send_json(400, {"error": f"bad request: {error}"})
            return
        server = self.server.inference_server
        try:
            future = server.submit(
                name,
                inputs,
                timeout_s=timeout_s,
                query=query,
                query_variables=query_variables,
                moment=moment,
                seed=seed,
            )
            result = future.result()
        except ModelNotFoundError as error:
            self._send_json(404, {"error": str(error)})
        except AdmissionError as error:
            self._send_json(
                429,
                {"error": str(error), "retry_after_s": error.retry_after_s},
                headers={"Retry-After": f"{error.retry_after_s:.3f}"},
            )
        except DeadlineError as error:
            self._send_json(504, {"error": str(error)})
        except ValueError as error:
            self._send_json(400, {"error": str(error)})
        except ExecutionError as error:
            diagnostic = getattr(error, "diagnostic", None)
            if diagnostic is not None and diagnostic.code == ErrorCode.QUERY_NAN:
                # NaN on a conditional query variable: the client's bug
                # (a protocol answer), not a server failure.
                self._send_json(400, {"error": str(error)})
            else:
                self._send_json(500, {"error": f"{type(error).__name__}: {error}"})
        except Exception as error:  # both degradation rungs failed
            self._send_json(500, {"error": f"{type(error).__name__}: {error}"})
        else:
            self._send_json(
                200,
                {
                    "outputs": np.asarray(result.values).tolist(),
                    "degraded": result.degraded,
                    "model_version": result.model_version,
                    "latency_ms": result.latency_s * 1e3,
                    "query": result.query,
                },
            )


def serve_http(
    server: InferenceServer, host: str = "127.0.0.1", port: int = 8080
) -> ServingHTTPServer:
    """Start the HTTP facade on a background thread; returns the bound
    :class:`ServingHTTPServer` (``.server_address`` has the real port —
    pass ``port=0`` to let the OS pick one)."""
    httpd = ServingHTTPServer((host, port), server)
    thread = threading.Thread(
        target=httpd.serve_forever, name="serving-http", daemon=True
    )
    thread.start()
    return httpd
