"""Serving observability: counters, batch histogram, latency quantiles.

Every request gets *exactly one* terminal outcome — ``ok``,
``rejected`` (admission backpressure), ``expired`` (deadline),
``failed`` (both rungs of the degradation ladder errored) or
``cancelled`` (the client cancelled the pending Future, e.g. after a
``result(timeout=...)`` timeout). The stats surface makes that
auditable: :meth:`ServerStats.lost` computes the accounting identity
``arrived - terminal - in_flight``, which the fault-injection load
tests (and the CI smoke job) assert to be zero.
"""

from __future__ import annotations

import threading
from collections import Counter, deque
from typing import Deque, Dict, List, Optional

#: Terminal outcome labels (exactly one per request).
OUTCOMES = ("ok", "rejected", "expired", "failed", "cancelled")


def percentile(values: List[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]); 0.0 on empty input."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, int(round(q / 100.0 * (len(ordered) - 1)))))
    return ordered[rank]


class ServerStats:
    """Thread-safe counters for one model (or the whole server).

    Latencies are kept in a bounded reservoir (most recent
    ``reservoir_size`` completions) so long-running servers report
    *current* p50/p99, not a lifetime average diluted by history.
    """

    def __init__(self, reservoir_size: int = 4096):
        self._lock = threading.Lock()
        self._arrived = 0
        self._in_flight = 0
        self._outcomes = Counter()
        self._degraded = 0
        self._retries = 0
        self._breaker_short_circuits = 0
        self._batches = 0
        self._batch_sizes = Counter()
        self._latencies: Deque[float] = deque(maxlen=reservoir_size)

    # -- recording ---------------------------------------------------------------

    def record_arrival(self, accepted: bool) -> None:
        with self._lock:
            self._arrived += 1
            if accepted:
                self._in_flight += 1
            else:
                self._outcomes["rejected"] += 1

    def record_outcome(
        self, outcome: str, latency_s: Optional[float] = None, degraded: bool = False
    ) -> None:
        """Terminal outcome of a previously accepted request."""
        if outcome not in OUTCOMES:
            raise ValueError(f"unknown outcome '{outcome}'")
        with self._lock:
            self._outcomes[outcome] += 1
            self._in_flight -= 1
            if degraded:
                self._degraded += 1
            if latency_s is not None:
                self._latencies.append(latency_s)

    def record_batch(self, size: int) -> None:
        with self._lock:
            self._batches += 1
            self._batch_sizes[size] += 1

    def record_retry(self, count: int = 1) -> None:
        with self._lock:
            self._retries += count

    def record_breaker_short_circuit(self) -> None:
        with self._lock:
            self._breaker_short_circuits += 1

    # -- reading -----------------------------------------------------------------

    @property
    def arrived(self) -> int:
        with self._lock:
            return self._arrived

    @property
    def in_flight(self) -> int:
        with self._lock:
            return self._in_flight

    def outcome(self, name: str) -> int:
        with self._lock:
            return self._outcomes[name]

    def lost(self) -> int:
        """The accounting identity: requests with no terminal outcome
        that are not in flight. Must be zero at all times."""
        with self._lock:
            terminal = sum(self._outcomes.values())
            return self._arrived - terminal - self._in_flight

    def degraded_fraction(self) -> float:
        with self._lock:
            completed = self._outcomes["ok"]
            return (self._degraded / completed) if completed else 0.0

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            latencies = list(self._latencies)
            outcomes = {name: self._outcomes[name] for name in OUTCOMES}
            terminal = sum(outcomes.values())
            completed = outcomes["ok"]
            return {
                "arrived": self._arrived,
                "in_flight": self._in_flight,
                "outcomes": outcomes,
                "lost": self._arrived - terminal - self._in_flight,
                "degraded": self._degraded,
                "degraded_fraction": (
                    (self._degraded / completed) if completed else 0.0
                ),
                "retries": self._retries,
                "breaker_short_circuits": self._breaker_short_circuits,
                "batches": self._batches,
                "batch_size_histogram": dict(sorted(self._batch_sizes.items())),
                "mean_batch_size": (
                    (sum(s * c for s, c in self._batch_sizes.items()) / self._batches)
                    if self._batches
                    else 0.0
                ),
                "latency_ms": {
                    "count": len(latencies),
                    "p50": percentile(latencies, 50) * 1e3,
                    "p99": percentile(latencies, 99) * 1e3,
                    "max": (max(latencies) * 1e3) if latencies else 0.0,
                },
            }
