"""Admission control: bounded queues, backpressure and circuit breaking.

The robustness rules of the serving layer live here:

- **Bounded queues, explicit backpressure.** :class:`RequestQueue` has
  a hard capacity; when it is full, :meth:`RequestQueue.offer` fails
  *synchronously* and the server rejects the request with a structured
  :class:`~repro.diagnostics.AdmissionError` carrying a
  ``retry_after_s`` hint — never unbounded buffering, which converts
  overload into unbounded latency for everyone.
- **Circuit breaking.** :class:`CircuitBreaker` counts consecutive
  kernel failures per model; past the threshold it *opens* and traffic
  is short-circuited down the degradation ladder (reference
  interpreter) without touching the faulty kernel. After a cooldown it
  goes *half-open*, letting a limited number of probe batches through;
  a probe success closes it again, a probe failure re-opens it.

Both are plain thread-safe state machines with no policy of their own —
the :class:`~repro.serving.server.InferenceServer` wires them to the
degradation ladder and the stats surface.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional

from ..diagnostics import CompilerError, ErrorCode


class ModelNotFoundError(CompilerError, KeyError):
    """A request named a model the registry does not know."""

    default_code = ErrorCode.MODEL_NOT_FOUND


class QueueClosedError(RuntimeError):
    """``offer`` raced ``close``: the queue shut down between admission
    checks. Callers translate this into a structured rejection."""


class RequestQueue:
    """Bounded FIFO of pending requests with blocking take.

    ``offer`` never blocks (admission must answer immediately under
    overload); ``take`` blocks until an item arrives, the timeout
    elapses, or the queue is closed.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._items: Deque = deque()
        self._cond = threading.Condition()
        self._closed = False

    @property
    def depth(self) -> int:
        with self._cond:
            return len(self._items)

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    def offer(self, item) -> bool:
        """Enqueue; False when full (backpressure), raises
        :class:`QueueClosedError` when closed."""
        with self._cond:
            if self._closed:
                raise QueueClosedError("queue is closed")
            if len(self._items) >= self.capacity:
                return False
            self._items.append(item)
            self._cond.notify()
            return True

    def take(self, timeout: Optional[float] = None):
        """Dequeue one item; ``None`` on timeout or when closed empty."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while not self._items:
                if self._closed:
                    return None
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return None
                self._cond.wait(remaining)
            return self._items.popleft()

    def take_nowait(self):
        with self._cond:
            return self._items.popleft() if self._items else None

    def close(self, flush: bool = True) -> List:
        """Close the queue (no further ``offer``).

        ``flush=True`` removes and returns the still-pending items so
        the caller can give each a terminal outcome — requests are never
        silently dropped. ``flush=False`` leaves them for takers to
        drain; ``take`` returns ``None`` once the queue runs empty.
        """
        with self._cond:
            self._closed = True
            pending: List = []
            if flush:
                pending = list(self._items)
                self._items.clear()
            self._cond.notify_all()
        return pending


@dataclass(frozen=True)
class BreakerConfig:
    """Tuning of the per-model circuit breaker."""

    #: Consecutive compiled-path failures that trip the breaker open.
    failure_threshold: int = 3
    #: Seconds the breaker stays open before allowing half-open probes.
    cooldown_s: float = 0.25
    #: Probe batches admitted while half-open (one success closes).
    half_open_probes: int = 1


class CircuitBreaker:
    """Per-model closed → open → half-open failure breaker."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(self, config: Optional[BreakerConfig] = None):
        self.config = config or BreakerConfig()
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probes_issued = 0
        #: Number of times the breaker tripped open (observability).
        self.trip_count = 0

    @property
    def state(self) -> str:
        with self._lock:
            self._maybe_half_open_locked()
            return self._state

    def _maybe_half_open_locked(self) -> None:
        if (
            self._state == self.OPEN
            and time.monotonic() - self._opened_at >= self.config.cooldown_s
        ):
            self._state = self.HALF_OPEN
            self._probes_issued = 0

    def allow_request(self) -> bool:
        """Whether the compiled path may be attempted right now."""
        with self._lock:
            self._maybe_half_open_locked()
            if self._state == self.CLOSED:
                return True
            if self._state == self.HALF_OPEN:
                if self._probes_issued < self.config.half_open_probes:
                    self._probes_issued += 1
                    return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            if self._state != self.CLOSED:
                self._state = self.CLOSED
                self._probes_issued = 0

    def record_failure(self) -> None:
        with self._lock:
            self._consecutive_failures += 1
            if self._state == self.HALF_OPEN:
                self._trip_locked()
            elif (
                self._state == self.CLOSED
                and self._consecutive_failures >= self.config.failure_threshold
            ):
                self._trip_locked()

    def _trip_locked(self) -> None:
        self._state = self.OPEN
        self._opened_at = time.monotonic()
        self._probes_issued = 0
        self.trip_count += 1

    def force_open(self) -> None:
        """Trip the breaker manually (ops escape hatch / tests)."""
        with self._lock:
            self._trip_locked()

    def describe(self) -> dict:
        with self._lock:
            self._maybe_half_open_locked()
            return {
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "trip_count": self.trip_count,
            }
