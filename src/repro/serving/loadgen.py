"""Poisson load generator and the serving benchmark harness.

Drives an :class:`~repro.serving.server.InferenceServer` with open-loop
Poisson arrivals (exponential inter-arrival times at a target rate —
the canonical model of independent user traffic), records one terminal
outcome per request, and reports QPS, p50/p99 latency and the degraded
fraction. The report also carries the zero-lost-requests accounting
identity (``lost = sent - terminal``), which the fault-injection tests
and the CI smoke job assert to be exactly zero.

Also provides the *naive* baseline — one-request-per-kernel-call, no
batching — so ``BENCH_serving.json`` measures what dynamic batching
actually buys at equal traffic.
"""

from __future__ import annotations

import random
import threading
import time
from collections import Counter
from typing import Callable, Dict, List, Optional

import numpy as np

from ..diagnostics import AdmissionError, DeadlineError
from .health import percentile
from .server import InferenceServer


def poisson_load(
    server: InferenceServer,
    model: str,
    rows: np.ndarray,
    rate_qps: float,
    duration_s: float,
    seed: int = 0,
    timeout_s: Optional[float] = None,
    on_tick: Optional[Callable[[int], None]] = None,
) -> Dict[str, object]:
    """Submit Poisson traffic against ``server`` and account for every
    request. Returns the report dict (see module docstring).

    ``rows`` is a pool of input rows cycled through by the generator.
    """
    if rate_qps <= 0:
        raise ValueError("rate_qps must be positive")
    rng = random.Random(seed)
    outcomes: Counter = Counter()
    latencies: List[float] = []
    degraded = [0]
    lock = threading.Lock()
    inflight = [0]

    def settle(outcome: str, latency: Optional[float] = None, was_degraded=False):
        with lock:
            outcomes[outcome] += 1
            inflight[0] -= 1
            if latency is not None:
                latencies.append(latency)
            if was_degraded:
                degraded[0] += 1

    sent = 0
    start = time.monotonic()
    end = start + duration_s
    # Open-loop arrivals: the schedule is absolute, so when this thread
    # falls behind (e.g. starved by a busy kernel holding the GIL) it
    # catches up with a burst instead of silently lowering the offered
    # rate — the server being slow must never slow the clients down.
    next_arrival = start + rng.expovariate(rate_qps)
    while next_arrival < end:
        while True:
            now = time.monotonic()
            if now >= next_arrival:
                break
            time.sleep(min(next_arrival - now, 0.01))
        next_arrival += rng.expovariate(rate_qps)
        row = rows[sent % len(rows)]
        submitted_at = time.monotonic()
        sent += 1
        with lock:
            inflight[0] += 1
        try:
            future = server.submit(model, row, timeout_s=timeout_s)
        except AdmissionError:
            settle("rejected")
        except DeadlineError:
            settle("expired")
        except Exception:
            settle("failed")
        else:

            def on_done(f, submitted_at=submitted_at):
                try:
                    result = f.result()
                except DeadlineError:
                    settle("expired")
                except Exception:
                    settle("failed")
                else:
                    settle(
                        "ok",
                        latency=time.monotonic() - submitted_at,
                        was_degraded=result.degraded,
                    )

            future.add_done_callback(on_done)
        if on_tick is not None:
            on_tick(sent)
    elapsed = time.monotonic() - start

    # Drain: every submitted request must reach a terminal outcome.
    drain_deadline = time.monotonic() + max(10.0, 4 * (timeout_s or 1.0))
    while time.monotonic() < drain_deadline:
        with lock:
            if inflight[0] == 0:
                break
        time.sleep(0.005)

    with lock:
        terminal = sum(outcomes.values())
        report = {
            "rate_qps": rate_qps,
            "duration_s": elapsed,
            "sent": sent,
            "outcomes": {k: outcomes[k] for k in ("ok", "rejected", "expired", "failed")},
            "lost": sent - terminal,
            "achieved_qps": outcomes["ok"] / elapsed if elapsed > 0 else 0.0,
            "degraded": degraded[0],
            "degraded_fraction": (degraded[0] / outcomes["ok"]) if outcomes["ok"] else 0.0,
            "latency_ms": {
                "count": len(latencies),
                "p50": percentile(latencies, 50) * 1e3,
                "p99": percentile(latencies, 99) * 1e3,
            },
        }
    return report


def naive_baseline(
    log_likelihood: Callable[[np.ndarray], np.ndarray],
    rows: np.ndarray,
    num_requests: int,
) -> Dict[str, object]:
    """One-request-per-kernel-call baseline (no batching, no queueing).

    ``log_likelihood`` is called with a single-row [1, features] matrix
    per request — exactly what a server without a dynamic batcher would
    do — and per-request latency/QPS are measured over the same traffic
    volume the batched run sees.
    """
    latencies: List[float] = []
    start = time.monotonic()
    for index in range(num_requests):
        row = rows[index % len(rows)].reshape(1, -1)
        t0 = time.monotonic()
        log_likelihood(row)
        latencies.append(time.monotonic() - t0)
    elapsed = time.monotonic() - start
    return {
        "sent": num_requests,
        "duration_s": elapsed,
        "achieved_qps": num_requests / elapsed if elapsed > 0 else 0.0,
        "latency_ms": {
            "count": len(latencies),
            "p50": percentile(latencies, 50) * 1e3,
            "p99": percentile(latencies, 99) * 1e3,
        },
    }
