"""Dynamic batching: coalesce small requests into whole-batch kernels.

The whole-batch vectorized kernels (PR 2) amortize per-call overhead
over thousands of rows; a single-row request wastes them. The
:class:`DynamicBatcher` closes the gap: a worker blocks for the first
pending request, then keeps admitting more until either ``max_batch``
rows are collected or ``max_wait_us`` has elapsed since the first one —
the classic max-batch + max-wait coalescing policy. Under load the
batch fills instantly (throughput mode); a lone request waits at most
``max_wait_us`` (bounded added latency).

Expired requests are separated out at collection time so a request
whose deadline passed while queued gets its terminal outcome
(deadline error) immediately instead of burning kernel time.

Mixed query modalities coalesce into the *same* queue but never into
the same kernel call: each request carries its query kind (plus the
kind-specific compile parameters) and the server partitions collected
batches by :attr:`Request.batch_key`, so a burst of joint, MPE and
conditional traffic forms one kernel batch per modality. Sampling
requests additionally key on their own identity — the kernel's noise
columns are row-position-dependent, so coalescing two seeded requests
would make each one's samples depend on co-batched traffic instead of
only on ``(seed, evidence)``.
"""

from __future__ import annotations

import itertools
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from .admission import RequestQueue

_request_ids = itertools.count(1)


def canonical_query_args(kind: str, query_variables=(), moment: int = 1) -> tuple:
    """The kind-specific compile parameters, in canonical (hashable) form.

    This is the modality half of the batching key: two requests coalesce
    into one kernel call only when their ``(kind, args)`` agree, because
    e.g. conditionals over different query-variable sets are different
    compiled kernels.
    """
    if kind == "conditional":
        return tuple(sorted({int(v) for v in query_variables}))
    if kind == "expectation":
        return (int(moment),)
    return ()


@dataclass
class ServingResult:
    """Terminal success payload delivered through ``Request.future``."""

    #: Per-request results, rows always on the last axis: ``[rows]`` for
    #: joint/conditional, ``[heads, rows]`` for multi-head joint,
    #: ``[1 + F, rows]`` for MPE, ``[F, rows]`` for sample/expectation.
    values: np.ndarray
    #: True when served by the interpreter degradation rung.
    degraded: bool
    #: Model version that produced the values.
    model_version: int
    #: End-to-end latency (submit → completion), seconds.
    latency_s: float
    #: Query modality that produced the values.
    query: str = "joint"


@dataclass
class Request:
    """One admitted inference request travelling through the server."""

    model: str
    #: Always [rows, features]; single-row submits are wrapped.
    rows: np.ndarray
    #: Absolute ``time.monotonic()`` deadline, or None.
    deadline: Optional[float]
    future: "Future[ServingResult]" = field(default_factory=Future)
    submitted_at: float = field(default_factory=time.monotonic)
    request_id: int = field(default_factory=lambda: next(_request_ids))
    #: True when the caller submitted a single row (result is squeezed).
    single_row: bool = False
    #: Query modality ("joint", "mpe", "sample", "conditional",
    #: "expectation"); part of the batching key.
    query: str = "joint"
    #: Canonical kind-specific compile parameters (conditional query
    #: variables, expectation moment); see :func:`canonical_query_args`.
    query_args: tuple = ()
    #: RNG seed for sampling requests (execute-time parameter).
    seed: int = 0
    #: Set by the server the moment a terminal outcome is recorded, so
    #: error paths that overlap (worker guard after a partial batch)
    #: cannot double-count a request. Only the owning worker writes it.
    finished: bool = False

    @property
    def num_rows(self) -> int:
        return self.rows.shape[0]

    @property
    def batch_key(self) -> tuple:
        """Coalescing key: requests sharing it may run as one kernel call.

        Sampling requests are never coalesced across requests (the key
        includes the request id): the kernel's Gumbel-noise columns are
        drawn per row *position*, so a request's samples must depend only
        on its own ``(seed, evidence)``, not on co-batched traffic.
        """
        if self.query == "sample":
            return (self.query, self.query_args, self.seed, self.request_id)
        return (self.query, self.query_args)

    def expired(self, now: Optional[float] = None) -> bool:
        return self.deadline is not None and (now or time.monotonic()) >= self.deadline


@dataclass(frozen=True)
class BatchPolicy:
    """Coalescing policy: batch caps and the bounded wait."""

    #: Max rows per kernel invocation.
    max_batch: int = 1024
    #: Max microseconds the first request of a batch waits for company.
    max_wait_us: int = 2000

    def __post_init__(self):
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.max_wait_us < 0:
            raise ValueError("max_wait_us must be >= 0")

    @property
    def max_wait_s(self) -> float:
        return self.max_wait_us / 1e6


class DynamicBatcher:
    """Forms batches from a :class:`RequestQueue` under a
    :class:`BatchPolicy`."""

    def __init__(self, policy: Optional[BatchPolicy] = None):
        self.policy = policy or BatchPolicy()

    def next_batch(
        self, queue: RequestQueue
    ) -> Tuple[Optional[List[Request]], List[Request]]:
        """Collect the next batch (blocking).

        Returns ``(batch, expired)``: ``expired`` are requests whose
        deadline passed while queued — they need a terminal deadline
        outcome, not kernel time. ``batch`` is ``None`` when there is
        no live request to serve right now: either the queue was
        closed, or only expired requests were drained (callers must
        deliver their outcomes immediately, not wait for live
        traffic). Check ``queue.closed`` to distinguish the two.
        """
        expired: List[Request] = []
        first = self._take_live(queue, expired)
        if first is None:
            return None, expired
        batch = [first]
        rows = first.num_rows
        wait_until = time.monotonic() + self.policy.max_wait_s
        while rows < self.policy.max_batch:
            remaining = wait_until - time.monotonic()
            if remaining > 0:
                request = queue.take(timeout=remaining)
            else:
                request = queue.take_nowait()
            if request is None:
                break
            if request.expired():
                expired.append(request)
                continue
            batch.append(request)
            rows += request.num_rows
        return batch, expired

    @staticmethod
    def _take_live(queue: RequestQueue, expired: List[Request]) -> Optional[Request]:
        """Block for the first request that is not already expired.

        Once an expired request has been drained, this must not block
        again on an empty queue — its deadline outcome would be held
        hostage until unrelated live traffic arrived. Return with no
        live request instead so the caller delivers the expiries now.
        """
        while True:
            request = queue.take()
            if request is None:
                return None
            if request.expired():
                expired.append(request)
                if queue.depth == 0:
                    return None
                continue
            return request

    @staticmethod
    def concat(batch: List[Request]) -> np.ndarray:
        """Stack the batch's rows into one [total_rows, features] matrix."""
        if len(batch) == 1:
            return batch[0].rows
        return np.concatenate([request.rows for request in batch], axis=0)

    @staticmethod
    def split(batch: List[Request], outputs: np.ndarray) -> List[np.ndarray]:
        """Slice the batched kernel output back into per-request views.

        ``outputs`` is [rows] for single-head kernels or [heads, rows]
        for multi-head; rows are always the last axis.
        """
        pieces: List[np.ndarray] = []
        offset = 0
        for request in batch:
            pieces.append(outputs[..., offset : offset + request.num_rows])
            offset += request.num_rows
        return pieces
