"""Versioned registry of compiled models with drain-before-unload.

Each published model becomes a :class:`ModelVersion`: the compiled
kernel plus its SPN (for the interpreter degradation rung), an
auto-incrementing version number and the compiled artifact's identity —
``CompilerOptions.cache_fingerprint()`` — so two versions compiled from
identical configurations are recognizably the same kernel.

Hot swap is lease-based: execution paths :meth:`~ModelRegistry.acquire`
the current version (taking a lease) and release it when the batch
completes. :meth:`~ModelRegistry.swap` atomically redirects new traffic
to the new version, then the old version is *drained* — swapped out of
the routing table first, closed only after its lease count reaches
zero — so in-flight batches finish on the kernel they started on and
no request is ever dropped by a swap.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional

import numpy as np

from ..api import CPUCompiler, _CompilerBase
from ..diagnostics import (
    Diagnostic,
    DiagnosticLog,
    ErrorCode,
    Severity,
)
from ..spn import inference, sampling
from ..spn.mpe import mpe as reference_mpe
from ..spn.query import QUERY_KINDS, Query
from .admission import ModelNotFoundError


class ModelVersion:
    """One published (compiled) version of a named model.

    Holds the compiled joint executable (the fast path), the compiler
    that produced it (so the other query modalities — MPE, sampling,
    conditional, expectation — compile lazily on their first request,
    through the same registered pass pipeline), and the source SPN (the
    always-correct interpreter rung of the degradation ladder).
    """

    def __init__(
        self,
        name: str,
        version: int,
        spn,
        compilation,
        fingerprint: tuple,
        use_log_space: bool = True,
        compiler: Optional[_CompilerBase] = None,
    ):
        self.name = name
        self.version = version
        self.spn = spn
        self.compilation = compilation
        #: ``CompilerOptions.cache_fingerprint()`` of the compiled kernel.
        self.fingerprint = fingerprint
        self.use_log_space = use_log_space
        self.compiler = compiler
        self.created_at = time.time()
        self._leases = 0
        self._retired = False
        self._cond = threading.Condition()
        # Per-query-descriptor compilations, seeded with the base (joint)
        # kernel; other modalities land here on first use.
        self._compile_lock = threading.Lock()
        self._compilations: Dict[Query, object] = {}
        if compiler is not None:
            self._compilations[compiler._default_query()] = compilation

    # -- execution surface -------------------------------------------------------

    @property
    def executable(self):
        return self.compilation.executable

    @property
    def num_features(self) -> int:
        return self.executable.signature.num_features

    def query_for(
        self,
        kind: str,
        query_args: tuple = (),
        inputs: Optional[np.ndarray] = None,
    ) -> Query:
        """Build (and validate) the query descriptor for one batch.

        ``query_args`` is the canonical kind-specific parameter tuple
        (see :func:`~repro.serving.batcher.canonical_query_args`). Joint
        batches containing NaN evidence are rerouted to a
        marginal-supporting kernel, mirroring the direct-API behaviour.
        Raises ``ValueError`` for unknown kinds or invalid parameters.
        """
        if self.compiler is None:
            raise ValueError(
                "this model version was published without a compiler; "
                "only joint queries are servable"
            )
        if kind == "joint":
            query = self.compiler._default_query()
            if inputs is not None:
                query = self.compiler._query_for(inputs, query)
            return query
        cls = QUERY_KINDS.get(kind)
        if cls is None:
            raise ValueError(
                f"unknown query kind '{kind}' "
                f"(expected one of {sorted(QUERY_KINDS)})"
            )
        if kind == "conditional":
            if query_args and query_args[-1] >= self.num_features:
                raise ValueError(
                    f"conditional query variable {query_args[-1]} out of "
                    f"range for a {self.num_features}-feature model"
                )
            return cls(
                batch_size=self.compiler.batch_size, query_variables=query_args
            )
        if kind == "expectation":
            moment = query_args[0] if query_args else 1
            return cls(batch_size=self.compiler.batch_size, moment=moment)
        return cls(batch_size=self.compiler.batch_size)

    def executable_for(self, query: Optional[Query] = None):
        """The compiled executable serving ``query`` (lazily compiled).

        The base (joint) kernel is compiled at publish; the other
        modalities — and the marginal-supporting joint variant — compile
        on their first request through the compiler's single-flight
        cache, then stay resident for the life of this version.
        """
        if query is None:
            return self.executable
        with self._compile_lock:
            compilation = self._compilations.get(query)
            if compilation is None:
                compilation = self.compiler.compile(self.spn, query)
                self._compilations[query] = compilation
        return compilation.executable

    def interpret(
        self,
        inputs: np.ndarray,
        query: Optional[Query] = None,
        seed: Optional[int] = None,
    ) -> np.ndarray:
        """Reference evaluation (the degraded rung), any modality.

        SPFlow-equivalent semantics (:mod:`repro.spn`) — slow but always
        correct, even when the compiled kernel is faulting. Outputs are
        shaped exactly like the compiled kernel's (rows on the last
        axis) so batch slicing downstream is modality-agnostic.
        """
        data = np.asarray(inputs, dtype=np.float64)
        kind = "joint" if query is None else query.kind
        if kind == "mpe":
            completions, scores = reference_mpe(self.spn, data)
            if not self.use_log_space:
                scores = np.exp(scores)
            return np.concatenate([scores[None, :], completions.T], axis=0)
        if kind == "sample":
            rng = np.random.default_rng(0 if seed is None else seed)
            return sampling.conditional_sample(self.spn, data, rng).T
        if kind == "conditional":
            return inference.conditional_log_likelihood(
                self.spn, data, query.query_variables
            )
        if kind == "expectation":
            return inference.expectation(self.spn, data, moment=query.moment).T
        output = inference.log_likelihood(self.spn, data)
        return output if self.use_log_space else np.exp(output)

    # -- lease lifecycle ---------------------------------------------------------

    @property
    def leases(self) -> int:
        with self._cond:
            return self._leases

    @property
    def retired(self) -> bool:
        with self._cond:
            return self._retired

    def _acquire(self) -> None:
        with self._cond:
            self._leases += 1

    def release(self) -> None:
        with self._cond:
            self._leases -= 1
            if self._leases <= 0:
                self._cond.notify_all()

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until no execution holds a lease; True when drained."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while self._leases > 0:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._cond.wait(remaining)
            return True

    def close(self) -> None:
        """Release every compiled kernel's resources (post-drain).

        Covers the base joint kernel and any lazily compiled query
        modalities, deduplicated by identity (the compiler's cache may
        hand the same compilation back for equivalent descriptors).
        """
        with self._cond:
            self._retired = True
        with self._compile_lock:
            compilations = list(self._compilations.values())
            self._compilations.clear()
        closed = set()
        for compilation in compilations + [self.compilation]:
            executable = compilation.executable
            if id(executable) not in closed:
                closed.add(id(executable))
                executable.close()

    def describe(self) -> Dict[str, object]:
        with self._compile_lock:
            queries = sorted({query.kind for query in self._compilations})
        return {
            "name": self.name,
            "version": self.version,
            "target": self.executable.target,
            "fingerprint": repr(self.fingerprint),
            "leases": self.leases,
            "retired": self.retired,
            "created_at": self.created_at,
            "compiled_queries": queries or ["joint"],
        }


class ModelRegistry:
    """Name → current :class:`ModelVersion` routing table with hot swap."""

    def __init__(self, diagnostics: Optional[DiagnosticLog] = None):
        self._lock = threading.Lock()
        self._models: Dict[str, ModelVersion] = {}
        self._next_version: Dict[str, int] = {}
        self.diagnostics = diagnostics or DiagnosticLog()

    # -- publication -------------------------------------------------------------

    def publish(
        self,
        name: str,
        spn,
        compiler: Optional[_CompilerBase] = None,
        **compiler_options,
    ) -> ModelVersion:
        """Compile ``spn`` and make it the current version of ``name``.

        ``compiler`` may be a configured :class:`~repro.api.CPUCompiler`
        / :class:`~repro.api.GPUCompiler`; otherwise one is built from
        ``compiler_options``. Publishing over an existing name is a hot
        swap: new traffic routes to the new version immediately, and the
        previous version is returned *retired but not yet closed* — call
        :meth:`retire` (or let the server's background retirer do it) to
        drain and release it.
        """
        if compiler is None:
            compiler = CPUCompiler(**compiler_options)
        elif compiler_options:
            raise ValueError("pass either a compiler instance or options, not both")
        compilation = compiler.compile(spn)
        # The full kernel identity: CompilerOptions.cache_fingerprint()
        # plus the query configuration (batch size, marginal support, ...).
        fingerprint = compiler._fingerprint(compiler._default_query(), compiler.target)
        with self._lock:
            version_number = self._next_version.get(name, 1)
            self._next_version[name] = version_number + 1
            version = ModelVersion(
                name=name,
                version=version_number,
                spn=spn,
                compilation=compilation,
                fingerprint=fingerprint,
                use_log_space=compiler.use_log_space,
                compiler=compiler,
            )
            previous = self._models.get(name)
            self._models[name] = version
        if previous is not None:
            self.diagnostics.emit(
                Diagnostic(
                    severity=Severity.NOTE,
                    code=ErrorCode.MODEL_SWAPPED,
                    message=(
                        f"model '{name}' swapped "
                        f"v{previous.version} -> v{version_number}"
                    ),
                    detail={"previous_leases": previous.leases},
                )
            )
            version.previous = previous
        else:
            version.previous = None
        return version

    def swap(self, name: str, spn, **kwargs) -> ModelVersion:
        """Alias of :meth:`publish` that requires the name to exist."""
        with self._lock:
            if name not in self._models:
                raise ModelNotFoundError(f"cannot swap unknown model '{name}'")
        return self.publish(name, spn, **kwargs)

    @staticmethod
    def retire(version: ModelVersion, drain_timeout: Optional[float] = None) -> bool:
        """Drain-before-unload: wait out leases, then close the kernel.

        Returns False when the drain timed out (the version is left
        open; the caller may retry).
        """
        if not version.drain(drain_timeout):
            return False
        version.close()
        return True

    # -- routing -----------------------------------------------------------------

    def acquire(self, name: str) -> ModelVersion:
        """Lease the current version of ``name`` for one execution.

        Callers must :meth:`ModelVersion.release` when done (the lease
        is what makes drain-before-unload correct under swap).
        """
        with self._lock:
            version = self._models.get(name)
            if version is None:
                raise ModelNotFoundError(f"unknown model '{name}'")
            version._acquire()
            return version

    def current(self, name: str) -> ModelVersion:
        with self._lock:
            version = self._models.get(name)
        if version is None:
            raise ModelNotFoundError(f"unknown model '{name}'")
        return version

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._models)

    def unload(self, name: str, drain_timeout: Optional[float] = None) -> bool:
        """Remove ``name`` from routing, drain it and close its kernel."""
        with self._lock:
            version = self._models.pop(name, None)
        if version is None:
            raise ModelNotFoundError(f"unknown model '{name}'")
        return self.retire(version, drain_timeout)

    def close(self, drain_timeout: Optional[float] = None) -> None:
        """Unload every model (used by server shutdown)."""
        with self._lock:
            versions = list(self._models.values())
            self._models.clear()
        for version in versions:
            self.retire(version, drain_timeout)
