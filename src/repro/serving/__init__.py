"""Resilient serving runtime for compiled SPN inference.

The compiler produces whole-batch vector kernels that only pay off at
large batch sizes (BENCH_cpu.json peaks around 8192 samples), while
realistic traffic arrives as many small concurrent requests. This
package bridges the two with a thread-pool-backed async inference
server whose design center is *robustness*:

- :class:`ModelRegistry` — versioned compiled models keyed by
  ``CompilerOptions.cache_fingerprint``, hot swap with
  drain-before-unload (zero dropped in-flight requests);
- :class:`DynamicBatcher` — coalesces concurrent requests into
  whole-batch kernel calls under a max-batch + max-wait policy;
- admission control — bounded queues with explicit backpressure
  (reject-with-retry-after, never unbounded buffering), per-request
  deadlines propagated into chunk scheduling, bounded-backoff retries;
- :class:`CircuitBreaker` — trips on repeated kernel failures and
  routes traffic down the compiled-kernel → reference-interpreter
  degradation ladder until a half-open probe succeeds;
- health/stats — queue depths, batch-size histogram, p50/p99 latency,
  breaker states and degraded-mode flags via
  :meth:`InferenceServer.health`;
- a Poisson load generator (:mod:`repro.serving.loadgen`) measuring
  QPS/latency/degraded-fraction and proving the zero-lost-requests
  accounting identity under injected faults.

Quickstart::

    from repro.serving import InferenceServer

    server = InferenceServer()
    server.publish("speaker", spn, batch_size=256)
    result = server.infer("speaker", row, timeout_s=0.5)   # blocking
    future = server.submit("speaker", row)                 # async
    print(server.health())
    server.close()
"""

from .admission import (
    BreakerConfig,
    CircuitBreaker,
    ModelNotFoundError,
    QueueClosedError,
    RequestQueue,
)
from .batcher import (
    BatchPolicy,
    DynamicBatcher,
    Request,
    ServingResult,
    canonical_query_args,
)
from .health import ServerStats
from .httpd import serve_http
from .registry import ModelRegistry, ModelVersion
from .server import InferenceServer, ServerConfig

__all__ = [
    "BatchPolicy",
    "BreakerConfig",
    "CircuitBreaker",
    "DynamicBatcher",
    "InferenceServer",
    "ModelNotFoundError",
    "ModelRegistry",
    "ModelVersion",
    "QueueClosedError",
    "Request",
    "RequestQueue",
    "ServerConfig",
    "ServerStats",
    "ServingResult",
    "canonical_query_args",
    "serve_http",
]
