"""Command-line driver: compile, inspect and run serialized SPN models.

Mirrors what the original project's `spnc` binary offers on top of the
library, operating on the binary exchange format (``.spnb``):

    python -m repro info model.spnb
    python -m repro compile model.spnb --target cpu --vectorize --dump-ir lower-to-lospn
    python -m repro run model.spnb inputs.npy -o loglik.npy --target gpu
    python -m repro sample model.spnb 1000 -o samples.npy

``inputs.npy``/outputs are plain NumPy arrays (``np.save`` format).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

import numpy as np

from ..compiler.pipeline import CompilerOptions, compile_spn
from ..spn.nodes import GraphStatistics
from ..spn.sampling import sample as sample_spn
from ..spn.serialization import deserialize_from_file


def _add_compiler_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--target", choices=("cpu", "gpu"), default="cpu")
    parser.add_argument("--opt", type=int, default=1, choices=(0, 1, 2, 3),
                        help="optimization level (-O0..-O3)")
    parser.add_argument("--vectorize", nargs="?", const="lanes", default="batch",
                        choices=("off", "lanes", "batch"), metavar="MODE",
                        help="batch-loop vectorization mode: off, lanes or "
                             "batch (default: batch; a bare --vectorize "
                             "selects the fixed-lane SIMD strategy)")
    parser.add_argument("--vector-isa", choices=("avx2", "avx512", "neon"),
                        default="avx2")
    parser.add_argument("--no-veclib", action="store_true",
                        help="disable the vector math library")
    parser.add_argument("--no-shuffle", action="store_true",
                        help="use gathers instead of loads+shuffles")
    parser.add_argument("--partition", type=int, default=None, metavar="N",
                        help="max graph-partition size (ops per task)")
    parser.add_argument("--threads", type=int, default=1,
                        help="runtime worker threads the CPU batch is "
                             "sharded across (per-worker buffer arenas)")
    parser.add_argument("--partition-parallel", action="store_true",
                        help="run the parallelize-partitions pass: prove "
                             "task-graph partitions disjoint (memory-access "
                             "analysis) and execute independent partitions "
                             "concurrently on the worker pool (cpu only)")
    parser.add_argument("--streams", type=int, default=1,
                        help="GPU device streams for the chunked "
                             "transfer/compute software pipeline "
                             "(1 = serialized timeline)")
    parser.add_argument("--linear-space", action="store_true",
                        help="compute in linear instead of log space")
    parser.add_argument("--query",
                        choices=("joint", "mpe", "sample", "conditional",
                                 "expectation"),
                        default="joint",
                        help="query modality to compile: joint/marginal "
                             "log-likelihood (default), mpe (most probable "
                             "explanation), sample (seeded ancestral "
                             "sampling), conditional (log P(Q|E)) or "
                             "expectation (posterior moments)")
    parser.add_argument("--query-variables", default=None, metavar="A,B,...",
                        help="comma-separated feature indices forming the "
                             "query set Q of a conditional query")
    parser.add_argument("--moment", type=int, default=1, choices=(1, 2),
                        help="raw moment order for expectation queries")
    parser.add_argument("--structure-opt", default=None, metavar="PASSES",
                        help="structure-level optimization suite run on the "
                             "HiSPN graph before lowering: a comma list of "
                             "cse, prune, compress (in order), or 'none'; "
                             "the default derives from -O (-O3 enables "
                             "cse,prune)")
    parser.add_argument("--accuracy-budget", type=float, default=0.0,
                        metavar="EPS",
                        help="max acceptable absolute log-likelihood error "
                             "for the lossy structure passes (prune/"
                             "compress), split evenly among them; 0 limits "
                             "pruning to exactly-zero weights and forbids "
                             "compression")
    parser.add_argument("--pipeline", default=None, metavar="SPEC",
                        help="override the pass pipeline with an mlir-opt "
                             "style spec (see --print-pipeline for the "
                             "default of any configuration)")
    parser.add_argument("--verify-each", nargs="?", const="structural",
                        default="off",
                        choices=("off", "structural", "boundaries",
                                 "every-pass"),
                        metavar="MODE",
                        help="per-pass instrumentation: off, structural "
                             "(IR verifier after every pass; the default "
                             "for a bare --verify-each), boundaries "
                             "(verifier + static checks at dialect "
                             "boundaries) or every-pass (verifier + "
                             "static checks after every pass)")


def _query_variables_from(args: argparse.Namespace) -> tuple:
    if not getattr(args, "query_variables", None):
        return ()
    return tuple(
        int(v.strip()) for v in args.query_variables.split(",") if v.strip()
    )


def _options_from(args: argparse.Namespace, collect_ir: bool = False) -> CompilerOptions:
    return CompilerOptions(
        target=args.target,
        opt_level=args.opt,
        query=args.query,
        query_variables=_query_variables_from(args),
        moment=args.moment,
        vectorize=args.vectorize,
        vector_isa=args.vector_isa,
        use_vector_library=not args.no_veclib,
        use_shuffle=not args.no_shuffle,
        max_partition_size=args.partition,
        num_threads=args.threads,
        partition_parallel=args.partition_parallel,
        streams=args.streams,
        use_log_space=not args.linear_space,
        structure_opt=args.structure_opt,
        accuracy_budget=args.accuracy_budget,
        pipeline=args.pipeline,
        verify_each=args.verify_each,
        collect_ir=collect_ir,
    )


def _cmd_info(args: argparse.Namespace) -> int:
    root, query = deserialize_from_file(args.model)
    stats = GraphStatistics(root)
    print(f"model: {args.model}")
    print(f"  nodes:      {stats.num_nodes}")
    print(f"  sums:       {stats.num_sums}")
    print(f"  products:   {stats.num_products}")
    print(f"  leaves:     {stats.num_leaves} "
          f"({stats.gaussian_share:.0%} Gaussian)")
    print(f"  features:   {stats.num_features}")
    print(f"  depth:      {stats.depth}")
    print(f"query:")
    print(f"  kind:       {query.kind}")
    print(f"  batch size: {query.batch_size}")
    print(f"  input type: {query.input_dtype}")
    print(f"  marginal:   {query.support_marginal}")
    print(f"  rel. error: {query.relative_error}")
    return 0


def _effective_query(args: argparse.Namespace, file_query):
    """The query to compile: the model file's unless ``--query`` overrides.

    A non-joint ``--query`` replaces the serialized (joint) query with
    one built from the CLI options via ``CompilerOptions.make_query``.
    """
    if args.query == "joint":
        return file_query
    return None  # compile_spn derives it from the options


def _cmd_compile(args: argparse.Namespace) -> int:
    root, query = deserialize_from_file(args.model)
    options = _options_from(args, collect_ir=bool(args.dump_ir))
    query = _effective_query(args, query)
    if args.print_pipeline:
        from ..compiler.pipeline import build_compile_pipeline

        _, spec = build_compile_pipeline(
            options, query or options.make_query()
        )
        print(spec)
        return 0
    result = compile_spn(root, query, options)
    print(f"compiled '{args.model}' for {args.target} "
          f"(-O{args.opt}, {result.num_tasks} task(s)) "
          f"in {result.compile_time:.3f}s")
    for stage, seconds in result.stage_seconds.items():
        print(f"  {stage:24s} {seconds * 1e3:9.2f} ms")
    if args.dump_ir:
        dump = result.ir_dumps.get(args.dump_ir)
        if dump is None:
            print(f"error: no IR dump for stage '{args.dump_ir}'; "
                  f"available: {', '.join(result.ir_dumps)}", file=sys.stderr)
            return 1
        print(dump)
    if args.emit_source:
        print(result.executable.source)
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    root, query = deserialize_from_file(args.model)
    inputs = np.load(args.inputs)
    result = compile_spn(root, _effective_query(args, query), _options_from(args))
    if args.query == "sample":
        outputs = result.executable.execute(inputs, seed=args.seed)
    else:
        outputs = result.executable(inputs)
    if args.query in ("mpe", "sample", "expectation"):
        # Kernel outputs are row-major [heads, batch]; present them
        # batch-major (mpe: [score, completions...] per row).
        outputs = outputs.T
    if args.output:
        np.save(args.output, outputs)
        print(f"wrote {outputs.shape[0]} results to {args.output}")
    else:
        np.set_printoptions(threshold=20)
        print(outputs)
    if args.target == "gpu":
        profile = result.executable.last_profile
        print(f"simulated GPU time: {profile.total_seconds * 1e3:.3f} ms "
              f"({profile.transfer_fraction:.0%} data movement)")
    return 0


def _cmd_sample(args: argparse.Namespace) -> int:
    root, _ = deserialize_from_file(args.model)
    rng = np.random.default_rng(args.seed)
    samples = sample_spn(root, args.count, rng)
    if args.output:
        np.save(args.output, samples)
        print(f"wrote {args.count} samples to {args.output}")
    else:
        np.set_printoptions(threshold=20)
        print(samples)
    return 0


def _cmd_selftest(args: argparse.Namespace) -> int:
    """End-to-end robustness check of the compile/execute path.

    Builds a tiny Gaussian SPN, injects a failure into a mid-pipeline
    pass and verifies that the graceful-degradation fallback still
    produces reference-exact log-likelihoods (plus a clean run as a
    control). Exits non-zero on any mismatch.
    """
    import warnings

    from ..api import CPUCompiler, FallbackWarning
    from ..spn import Gaussian, Product, Sum
    from ..spn.inference import log_likelihood as reference_ll
    from ..testing import faults

    spn = Sum(
        [
            Product([Gaussian(0, -1.0, 1.0), Gaussian(1, 0.5, 2.0)]),
            Product([Gaussian(0, 1.5, 0.5), Gaussian(1, -0.5, 1.5)]),
        ],
        [0.4, 0.6],
    )
    rng = np.random.default_rng(0)
    inputs = rng.normal(size=(64, 2))
    reference = reference_ll(spn, inputs)
    failures = 0

    def check(label, ok, detail=""):
        nonlocal failures
        status = "ok" if ok else "FAIL"
        print(f"  {label:42s} {status}{detail}")
        if not ok:
            failures += 1

    print("selftest: compile/execute robustness")

    clean = CPUCompiler(batch_size=32).log_likelihood(spn, inputs)
    check("clean compile matches reference",
          bool(np.allclose(clean, reference, atol=1e-5, rtol=1e-5)))

    compiler = CPUCompiler(batch_size=32, fallback="interpret")
    with faults.inject_pass_failure("cse"):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            degraded = compiler.log_likelihood(spn, inputs)
    warned = [w for w in caught if issubclass(w.category, FallbackWarning)]
    check("interpreter fallback matches reference",
          bool(np.allclose(degraded, reference, atol=1e-9, rtol=0)))
    check("exactly one fallback warning", len(warned) == 1,
          f" ({len(warned)} warnings)")
    errors = compiler.diagnostics.errors()
    check("diagnostic names the failed stage",
          bool(errors) and errors[0].stage == "cse",
          f" (stage={errors[0].stage if errors else None})")

    print("selftest: static analyses catch seeded bugs")
    for label, expected, build in (
        ("use-after-free flagged by buffer-safety",
         "buffer-safety.use-after-free", _broken_module_use_after_free),
        ("linear underflow flagged by range analysis",
         "range.linear-underflow", _broken_module_underflow),
        ("dead pure result flagged by lint",
         "lint.unused-result", _broken_module_dead_result),
        ("unconfined shard write flagged by concurrency",
         "concurrency.shard-overlap", _broken_module_shard_overlap),
    ):
        from ..ir.analysis import run_checks

        findings = run_checks(build(), phase="final")
        names = {f.check for f in findings}
        check(label, expected in names, f" (reported: {sorted(names) or '-'})")

    if failures:
        print(f"selftest: {failures} check(s) failed", file=sys.stderr)
        return 1
    print("selftest: all checks passed")
    return 0


def _broken_module_use_after_free():
    """A function loading from a buffer after deallocating it."""
    from ..dialects import arith, func as func_dialect, memref as memref_dialect
    from ..ir import Builder, ModuleOp
    from ..ir.types import FloatType, IndexType, MemRefType

    module = ModuleOp.build()
    b = Builder.at_end(module.body)
    fn = b.create(func_dialect.FuncOp, "use_after_free", [], [])
    fb = Builder.at_end(fn.body)
    buf = fb.create(
        memref_dialect.AllocOp, MemRefType((4,), FloatType(64)), []
    ).result
    index = fb.create(arith.ConstantOp, 0, IndexType()).result
    fb.create(memref_dialect.DeallocOp, buf)
    fb.create(memref_dialect.LoadOp, buf, [index])  # use after free!
    fb.create(func_dialect.ReturnOp, [])
    return module


def _broken_module_underflow():
    """Linear-space probability product that underflows f64."""
    from ..dialects import func as func_dialect, lospn
    from ..ir import Builder, ModuleOp
    from ..ir.types import FloatType

    module = ModuleOp.build()
    b = Builder.at_end(module.body)
    fn = b.create(func_dialect.FuncOp, "underflow", [], [])
    fb = Builder.at_end(fn.body)
    f64 = FloatType(64)
    tiny_a = fb.create(lospn.ConstantOp, 1e-160, f64).result
    tiny_b = fb.create(lospn.ConstantOp, 1e-160, f64).result
    product = fb.create(lospn.MulOp, tiny_a, tiny_b)  # 1e-320 < DBL_MIN
    fb.create(lospn.LogOp, product.results[0])
    fb.create(func_dialect.ReturnOp, [])
    return module


def _broken_module_dead_result():
    """A pure op whose result is never used (dead code)."""
    from ..dialects import arith, func as func_dialect
    from ..ir import Builder, ModuleOp
    from ..ir.types import FloatType

    module = ModuleOp.build()
    b = Builder.at_end(module.body)
    fn = b.create(func_dialect.FuncOp, "dead_result", [], [])
    fb = Builder.at_end(fn.body)
    lhs = fb.create(arith.ConstantOp, 1.5, FloatType(64)).result
    rhs = fb.create(arith.ConstantOp, 2.5, FloatType(64)).result
    fb.create(arith.AddFOp, lhs, rhs)  # result never used
    fb.create(func_dialect.ReturnOp, [])
    return module


def _broken_module_shard_overlap():
    """A task writing its output at a constant batch index: row-sharded
    execution would race on that element across shards."""
    from ..ir import parse_module

    return parse_module(
        '"builtin.module"() ({\n'
        '  "lo_spn.kernel"() ({\n'
        "  ^bb0(%0: memref<?x2xf32>, %1: memref<1x?xf32>):\n"
        '    "lo_spn.task"(%0, %1) ({\n'
        "    ^bb0(%2: index, %3: memref<?x2xf32>, %4: memref<1x?xf32>):\n"
        '      %5 = "lo_spn.batch_read"(%3, %2) {staticIndex = 0 : i64, '
        "transposed = false} : (memref<?x2xf32>, index) -> f32\n"
        '      %6 = "arith.constant"() {value = 0 : i64} : () -> index\n'
        '      "memref.store"(%5, %4, %6, %6) : '
        "(f32, memref<1x?xf32>, index, index) -> ()\n"
        '    }) {batchSize = 4 : i64} : '
        "(memref<?x2xf32>, memref<1x?xf32>) -> ()\n"
        '    "lo_spn.kernel_return"() : () -> ()\n'
        '  }) {arg_types = [memref<?x2xf32>, memref<1x?xf32>], '
        "numInputs = 1 : i64, readonlyArgs = [0 : i64], result_types = [], "
        'sym_name = "overlapping_shards"} : () -> ()\n'
        "}) : () -> ()\n"
    )


def _demo_spn():
    """Small Gaussian mixture used when no ``.spnb`` model is given."""
    from ..spn import Gaussian, Product, Sum

    return Sum(
        [
            Product([Gaussian(0, -1.0, 1.0), Gaussian(1, 0.5, 2.0),
                     Gaussian(2, 0.0, 1.0)]),
            Product([Gaussian(0, 1.5, 0.5), Gaussian(1, -0.5, 1.5),
                     Gaussian(2, 2.0, 0.7)]),
            Product([Gaussian(0, 0.0, 2.0), Gaussian(1, 1.0, 1.0),
                     Gaussian(2, -2.0, 1.2)]),
        ],
        [0.3, 0.45, 0.25],
    )


def _serving_model(args: argparse.Namespace):
    """Resolve ``(name, spn)`` from an optional ``.spnb`` path."""
    if getattr(args, "model", None):
        root, _ = deserialize_from_file(args.model)
        import os

        return os.path.splitext(os.path.basename(args.model))[0], root
    return "demo", _demo_spn()


def _server_config(args: argparse.Namespace):
    from ..serving import BreakerConfig, ServerConfig

    return ServerConfig(
        max_batch=args.max_batch,
        max_wait_us=args.max_wait_us,
        queue_capacity=args.queue_capacity,
        default_timeout_s=(
            None if args.timeout_ms is None else args.timeout_ms / 1e3
        ),
        breaker=BreakerConfig(cooldown_s=args.breaker_cooldown),
        workers_per_model=args.workers,
        kernel_threads=args.kernel_threads,
        max_parallel_batches=args.max_parallel_batches,
    )


def _add_serving_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--max-batch", type=int, default=1024,
                        help="max rows coalesced per kernel call")
    parser.add_argument("--max-wait-us", type=int, default=2000,
                        help="max microseconds a lone request waits for "
                             "batch company")
    parser.add_argument("--queue-capacity", type=int, default=1024,
                        help="bounded admission queue depth (overflow is "
                             "rejected with a retry-after hint)")
    parser.add_argument("--timeout-ms", type=float, default=None,
                        help="default per-request deadline")
    parser.add_argument("--workers", type=int, default=1,
                        help="batch workers per model")
    parser.add_argument("--kernel-threads", type=int, default=1,
                        help="runtime threads each compiled kernel "
                             "shards coalesced batches across")
    parser.add_argument("--max-parallel-batches", type=int, default=None,
                        help="per-model cap on concurrently executing "
                             "kernel batches (default: unbounded)")
    parser.add_argument("--breaker-cooldown", type=float, default=0.25,
                        help="circuit-breaker cooldown before half-open "
                             "probes (seconds)")


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the async inference server with the HTTP facade.

    Publishes the model (a ``.spnb`` file, or a built-in demo SPN when
    omitted) and serves ``POST /v1/models/<name>:predict`` plus
    ``GET /healthz`` until interrupted.
    """
    from ..serving import InferenceServer
    from ..serving.httpd import serve_http

    name, spn = _serving_model(args)
    server = InferenceServer(config=_server_config(args))
    try:
        version = server.publish(name, spn)
        httpd = serve_http(server, host=args.host, port=args.port)
        host, port = httpd.server_address[:2]
        print(f"serving model '{name}' v{version.version} on "
              f"http://{host}:{port}")
        print(f"  predict: POST /v1/models/{name}:predict "
              f'{{"inputs": [[...]], "timeout_ms": 250}}')
        print(f"  health:  GET /healthz")
        try:
            while True:
                time.sleep(1.0)
        except KeyboardInterrupt:
            print("shutting down (draining in-flight requests)...")
        httpd.shutdown()
    finally:
        server.close(drain=True)
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    """Drive an in-process server with Poisson traffic and verify the
    zero-lost-requests invariant.

    With ``--inject``, the named faults are armed for the middle third
    of the run (kernel failures trip the circuit breaker, which must
    recover once the faults clear). Exits non-zero when any request is
    lost, when any request fails terminally, or when the breaker is
    stuck open after recovery.
    """
    import json as json_module

    from ..serving import InferenceServer
    from ..serving.loadgen import poisson_load
    from ..spn.sampling import sample as sample_spn
    from ..testing import faults

    known_faults = {
        "kernel-fault": lambda: faults.inject_kernel_failure(),
        "kernel-nan": faults.inject_kernel_nan,
        "slow-chunk": lambda: faults.inject_slow_chunks(0.001),
    }
    injected = []
    if args.inject:
        injected = [f.strip() for f in args.inject.split(",") if f.strip()]
        unknown = sorted(set(injected) - set(known_faults))
        if unknown:
            print(f"error: unknown fault(s) {', '.join(unknown)}; "
                  f"available: {', '.join(sorted(known_faults))}",
                  file=sys.stderr)
            return 2

    name, spn = _serving_model(args)
    rng = np.random.default_rng(args.seed)
    rows = sample_spn(spn, 256, rng)

    server = InferenceServer(config=_server_config(args))
    failures = 0

    def check(label: str, ok: bool, detail: str = "") -> None:
        nonlocal failures
        print(f"  {label:46s} {'ok' if ok else 'FAIL'}{detail}")
        if not ok:
            failures += 1

    try:
        server.publish(name, spn)
        timeout_s = None if args.timeout_ms is None else args.timeout_ms / 1e3

        # Arm faults (and optionally hot-swap) for the middle third of
        # the run from a side thread; the tail third must recover.
        import contextlib
        import threading

        def fault_window():
            time.sleep(args.duration / 3)
            with contextlib.ExitStack() as stack:
                for fault in injected:
                    stack.enter_context(known_faults[fault]())
                if args.swap_under_load:
                    server.swap(name, spn)
                time.sleep(args.duration / 3)

        chaos = None
        if injected or args.swap_under_load:
            chaos = threading.Thread(target=fault_window, daemon=True)
            chaos.start()

        print(f"loadgen: {args.qps:g} qps for {args.duration:g}s against "
              f"'{name}' (faults: {', '.join(injected) or 'none'}"
              f"{', swap-under-load' if args.swap_under_load else ''})")
        report = poisson_load(
            server, name, rows,
            rate_qps=args.qps, duration_s=args.duration,
            seed=args.seed, timeout_s=timeout_s,
        )
        if chaos is not None:
            chaos.join()

        outcomes = report["outcomes"]
        check("every request reached a terminal outcome",
              report["lost"] == 0, f" (lost={report['lost']})")
        check("no request failed terminally",
              outcomes["failed"] == 0, f" (failed={outcomes['failed']})")

        # Breaker must not be stuck open once the faults are gone: wait
        # out the cooldown, send a probe, and require closed.
        breaker_state = server.health()["models"][name]["breaker"]["state"]
        if injected and breaker_state != "closed":
            time.sleep(args.breaker_cooldown + 0.05)
            with contextlib.suppress(Exception):
                server.infer(name, rows[0])
            breaker_state = server.health()["models"][name]["breaker"]["state"]
        check("circuit breaker recovered (not stuck open)",
              breaker_state == "closed", f" (state={breaker_state})")

        payload = {
            "batched": report,
            "health": server.health(),
            "config": {
                "qps": args.qps, "duration_s": args.duration,
                "max_batch": args.max_batch, "max_wait_us": args.max_wait_us,
                "queue_capacity": args.queue_capacity,
                "timeout_ms": args.timeout_ms,
                "injected_faults": injected,
                "swap_under_load": bool(args.swap_under_load),
            },
        }
        if args.baseline:
            # Same open-loop traffic against a no-batching server:
            # max_batch=1 means one request per kernel call.
            from ..serving import ServerConfig

            naive_config = ServerConfig(
                max_batch=1,
                max_wait_us=0,
                queue_capacity=args.queue_capacity,
                default_timeout_s=timeout_s,
                workers_per_model=args.workers,
            )
            with InferenceServer(config=naive_config) as naive_server:
                naive_server.publish(name, spn)
                payload["naive"] = poisson_load(
                    naive_server, name, rows,
                    rate_qps=args.qps, duration_s=args.duration,
                    seed=args.seed, timeout_s=timeout_s,
                )
            print(f"  naive (max_batch=1): "
                  f"{payload['naive']['achieved_qps']:.0f} qps, "
                  f"p99 {payload['naive']['latency_ms']['p99']:.2f} ms "
                  f"vs batched {report['achieved_qps']:.0f} qps, "
                  f"p99 {report['latency_ms']['p99']:.2f} ms")

        ok = outcomes["ok"]
        print(f"  outcomes: ok={ok} rejected={outcomes['rejected']} "
              f"expired={outcomes['expired']} failed={outcomes['failed']} "
              f"degraded={report['degraded']}")
        print(f"  latency: p50 {report['latency_ms']['p50']:.2f} ms, "
              f"p99 {report['latency_ms']['p99']:.2f} ms "
              f"({report['achieved_qps']:.0f} qps served)")

        if args.output:
            with open(args.output, "w") as handle:
                json_module.dump(payload, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print(f"  wrote report to {args.output}")
    finally:
        server.close(drain=True)

    if failures:
        print(f"loadgen: {failures} check(s) failed", file=sys.stderr)
        return 1
    print("loadgen: all checks passed")
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    """Cross-backend differential fuzzing (see repro.testing.oracle).

    Generates seeded random SPN/query/input cases, runs each through
    every backend configuration and compares against the reference
    evaluator under calibrated tolerances; interleaves IR print/parse
    round-trip and pass-permutation fuzzing. Divergences are shrunk,
    dumped as reproducers (``--artifact-dir`` / ``$SPNC_ARTIFACT_DIR``)
    and make the command exit non-zero.
    """
    from ..testing.generators import QUERY_CASE_KINDS
    from ..testing.oracle import (
        DEFAULT_CONFIGS,
        DEFAULT_STRUCTURE_BUDGET,
        DifferentialOracle,
    )

    if getattr(args, "structure_opt", False):
        budget = args.accuracy_budget
        if budget is None:
            budget = DEFAULT_STRUCTURE_BUDGET

        def structure_progress(message: str) -> None:
            print(f"  {message}", file=sys.stderr)

        oracle = DifferentialOracle(
            artifact_dir=args.artifact_dir, log=structure_progress
        )
        print(f"structure-fuzzing {args.count} case(s), seed {args.seed}, "
              f"accuracy budget {budget}...")
        report = oracle.fuzz_structure(
            args.count,
            seed=args.seed,
            start=args.start,
            accuracy_budget=budget,
            max_features=args.max_features,
            max_depth=args.max_depth,
        )
        print(report.summary())
        return 0 if report.ok else 1

    query_kinds = tuple(
        kind.strip() for kind in args.queries.split(",") if kind.strip()
    )
    unknown_kinds = sorted(set(query_kinds) - set(QUERY_CASE_KINDS))
    if unknown_kinds:
        print(f"error: unknown query kind(s) {', '.join(unknown_kinds)}; "
              f"available: {', '.join(QUERY_CASE_KINDS)}", file=sys.stderr)
        return 2

    configs = DEFAULT_CONFIGS
    if args.configs:
        wanted = {name.strip() for name in args.configs.split(",") if name.strip()}
        known = {spec.name for spec in DEFAULT_CONFIGS}
        unknown = wanted - known
        if unknown:
            print(f"error: unknown config(s) {', '.join(sorted(unknown))}; "
                  f"available: {', '.join(sorted(known))}", file=sys.stderr)
            return 2
        configs = tuple(s for s in DEFAULT_CONFIGS if s.name in wanted)

    def progress(message: str) -> None:
        print(f"  {message}", file=sys.stderr)

    oracle = DifferentialOracle(
        configs=configs, artifact_dir=args.artifact_dir, log=progress
    )
    print(f"fuzzing {args.count} case(s), seed {args.seed}, "
          f"{len(configs)} backend config(s), "
          f"queries: {', '.join(query_kinds)}...")
    report = oracle.fuzz(
        args.count,
        seed=args.seed,
        start=args.start,
        max_features=args.max_features,
        max_depth=args.max_depth,
        ir_share=0.0 if args.no_ir else 0.25,
        query_kinds=query_kinds,
    )
    print(report.summary())
    return 0 if report.ok else 1


def _cmd_analyze(args: argparse.Namespace) -> int:
    """Static analysis over textual IR modules (see repro.ir.analysis).

    Runs the registered checks (buffer safety, log-space range, lint)
    over each module and prints the findings with op paths. Exits
    non-zero when any finding at or above ``--min-severity`` (default:
    warning) is reported; reproducers are dumped via
    ``--artifact-dir`` / ``$SPNC_ARTIFACT_DIR``.
    """
    from ..diagnostics import (
        Diagnostic,
        ErrorCode,
        Severity,
        dump_reproducer,
    )
    from ..ir import parse_module, print_op, verify
    from ..ir.analysis import registered_checks, run_checks, severity_at_least
    from ..ir.verifier import VerificationError

    if getattr(args, "structure_stats", None):
        return _analyze_structure_stats(args)

    checks = None
    if args.checks:
        checks = [c.strip() for c in args.checks.split(",") if c.strip()]
        unknown = sorted(set(checks) - set(registered_checks()))
        if unknown:
            print(f"error: unknown check(s) {', '.join(unknown)}; "
                  f"available: {', '.join(registered_checks())}",
                  file=sys.stderr)
            return 2
    threshold = {
        "note": Severity.NOTE,
        "warning": Severity.WARNING,
        "error": Severity.ERROR,
    }[args.min_severity]

    if not args.modules and not args.corpus:
        print("error: nothing to analyze (pass module files and/or --corpus N)",
              file=sys.stderr)
        return 2

    as_json = getattr(args, "format", "text") == "json"
    records = []  # structured per-module reports (--format json)

    def emit(message: str, err: bool = False) -> None:
        if not as_json:
            print(message, file=sys.stderr if err else sys.stdout)

    modules = []  # (label, module) pairs
    failures = 0
    for path in args.modules:
        if path == "-":
            text = sys.stdin.read()
            label = "<stdin>"
        else:
            with open(path) as handle:
                text = handle.read()
            label = path
        modules.append((label, parse_module(text)))
    if args.corpus:
        from ..ir.pipeline_spec import parse_pipeline
        from ..testing.generators import CaseGenerator
        from ..testing.oracle import _lowered_module

        generator = CaseGenerator(seed=args.seed)
        for index in range(args.corpus):
            case = generator.case(index)
            for vec in ("off", "batch"):
                label = f"corpus(seed={args.seed}, index={index}, {vec})"
                module = _lowered_module(case, vec)
                try:
                    # Cleanup pipeline under every-pass instrumentation:
                    # the checks run after each pass, so a pass that
                    # breaks an invariant fails right here.
                    parse_pipeline(
                        "canonicalize,cse,licm,dce", verify_each="every-pass"
                    ).run(module)
                except Exception as error:
                    emit(f"{label}: FAIL {type(error).__name__}: {error}")
                    records.append({
                        "label": label,
                        "status": "error",
                        "error": f"{type(error).__name__}: {error}",
                        "findings": [],
                    })
                    failures += 1
                    continue
                modules.append((label, module))

    for label, module in modules:
        try:
            verify(module)
        except VerificationError as error:
            emit(f"{label}: error: structural verification failed: {error}")
            records.append({
                "label": label,
                "status": "error",
                "error": f"structural verification failed: {error}",
                "findings": [],
            })
            failures += 1
            continue
        findings = run_checks(module, checks=checks, phase=args.phase)
        gating = [
            f for f in findings if severity_at_least(f.severity, threshold)
        ]
        for finding in findings:
            emit(f"{label}: {finding.render()}")
        record = {
            "label": label,
            "status": "findings" if gating else "clean",
            "findings": [
                {
                    "check": f.check,
                    "severity": str(f.severity),
                    "message": f.message,
                    "op_path": f.op_path,
                    "detail": f.detail,
                    "gating": severity_at_least(f.severity, threshold),
                }
                for f in findings
            ],
        }
        if gating:
            failures += 1
            diagnostic = Diagnostic(
                severity=Severity.ERROR,
                code=ErrorCode.ANALYSIS_FAILED,
                message=(
                    f"static analysis reported {len(gating)} finding(s) "
                    f"at or above '{args.min_severity}' for {label}"
                ),
                op_path=gating[0].op_path,
                detail={"findings": [f.render() for f in gating]},
            )
            reproducer = dump_reproducer(
                diagnostic,
                module_text=print_op(module),
                artifact_dir=args.artifact_dir,
            )
            if reproducer:
                emit(f"{label}: reproducer dumped to {reproducer}", err=True)
                record["reproducer"] = reproducer
        else:
            emit(f"{label}: clean ({len(findings)} finding(s) below "
                 f"'{args.min_severity}')")
        records.append(record)
    if as_json:
        import json as json_module

        json_module.dump(
            {
                "checks": checks or sorted(registered_checks()),
                "phase": args.phase,
                "min_severity": args.min_severity,
                "modules": records,
                "failures": failures,
                "ok": failures == 0,
            },
            sys.stdout,
            indent=2,
            default=repr,
        )
        print()
    if failures:
        emit(f"analyze: {failures} module(s) with findings", err=True)
        return 1
    return 0


def _analyze_structure_stats(args: argparse.Namespace) -> int:
    """The ``analyze --structure-stats`` report (architecture §17).

    Profiles a model's HiSPN graph *before* any structure pass runs, so
    the numbers estimate what the optimization suite would buy: the
    duplicate-op count is exactly what ``structure-cse`` merges, the
    weight histogram shows the mass ``structure-prune`` could drop at a
    given budget, and the dense layers are ``structure-compress``
    candidates.
    """
    from ..compiler.frontend import build_hispn_module
    from ..compiler.structure import render_structure_stats, structure_stats

    root, query = deserialize_from_file(args.structure_stats)
    module = build_hispn_module(root, query)
    stats = structure_stats(module)
    if getattr(args, "format", "text") == "json":
        import json as json_module

        json_module.dump(
            {"model": args.structure_stats, **stats}, sys.stdout, indent=2
        )
        print()
    else:
        print(f"model: {args.structure_stats}")
        print(render_structure_stats(stats))
    return 0


def _cmd_opt(args: argparse.Namespace) -> int:
    from ..diagnostics import PassError
    from ..ir import parse_module, print_op, verify
    from ..ir.pipeline_spec import parse_pipeline, registered_passes

    if args.input == "-":
        text = sys.stdin.read()
    else:
        with open(args.input) as handle:
            text = handle.read()
    module = parse_module(text)
    verify(module)
    try:
        manager = parse_pipeline(args.pipeline, verify_each=args.verify_each)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    try:
        timing = manager.run(module)
    except PassError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(print_op(module))
    for finding in manager.analysis_findings:
        print(finding.render(), file=sys.stderr)
    if args.timing:
        print(timing.report(), file=sys.stderr)
    return 0


def _cmd_pipelines(args: argparse.Namespace) -> int:
    """Print the declarative pipeline for every registered configuration.

    One line per ``(target, opt_level, vectorize)`` combination, in a
    stable format the CI canary diffs against the golden snapshots
    (``tests/compiler/golden_pipelines.txt``). Every printed spec is
    constructible by ``repro.ir.pipeline_spec.build_pipeline`` (and
    therefore usable with ``compile --pipeline``).
    """
    from ..compiler.targets import get_target, registered_targets

    targets = registered_targets()
    if args.target:
        if args.target not in targets:
            print(f"error: unknown target '{args.target}'; "
                  f"registered: {', '.join(targets)}", file=sys.stderr)
            return 2
        targets = [args.target]
    for target_name in targets:
        target = get_target(target_name)
        for opt_level in range(4):
            for vectorize in ("off", "lanes", "batch"):
                options = CompilerOptions(
                    target=target_name,
                    opt_level=opt_level,
                    vectorize=vectorize,
                )
                spec = target.pipeline(options)
                print(f"{target_name} -O{opt_level} vectorize={vectorize}: {spec}")
    # Query-modality section: the registered pipeline for every non-joint
    # query kind at the default configuration. The same pass registry
    # serves every modality (no target special-casing) — this snapshot
    # pins that property.
    for target_name in targets:
        target = get_target(target_name)
        for kind in ("mpe", "sample", "conditional", "expectation"):
            options = CompilerOptions(
                target=target_name,
                query=kind,
                query_variables=(0,) if kind == "conditional" else (),
            )
            spec = target.pipeline(options, options.make_query())
            print(f"{target_name} -O1 query={kind}: {spec}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SPNC: compile and run Sum-Product Network inference",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    info = sub.add_parser("info", help="show model and query statistics")
    info.add_argument("model")
    info.set_defaults(fn=_cmd_info)

    comp = sub.add_parser("compile", help="compile a model and report stats")
    comp.add_argument("model")
    _add_compiler_arguments(comp)
    comp.add_argument("--dump-ir", metavar="STAGE", default=None,
                      help="print the IR after the named pipeline stage")
    comp.add_argument("--emit-source", action="store_true",
                      help="print the generated kernel source")
    comp.add_argument("--print-pipeline", action="store_true",
                      help="print the textual pass pipeline for this "
                           "configuration and exit without compiling")
    comp.set_defaults(fn=_cmd_compile)

    run = sub.add_parser("run", help="compile and execute on an input array")
    run.add_argument("model")
    run.add_argument("inputs", help="input .npy array [batch, features]")
    run.add_argument("-o", "--output", default=None)
    run.add_argument("--seed", type=int, default=0,
                     help="random seed for --query sample (execute-time "
                          "parameter; same seed, same samples)")
    _add_compiler_arguments(run)
    run.set_defaults(fn=_cmd_run)

    opt = sub.add_parser(
        "opt", help="run a pass pipeline over textual IR (mlir-opt style)"
    )
    opt.add_argument("input", help="IR file in generic textual form ('-' = stdin)")
    opt.add_argument("--pipeline", default="canonicalize,cse,dce",
                     help="comma-separated pass list")
    opt.add_argument("--verify-each", nargs="?", const="structural",
                     default="off",
                     choices=("off", "structural", "boundaries", "every-pass"),
                     metavar="MODE",
                     help="per-pass instrumentation: off, structural "
                          "(verifier only; the default for a bare "
                          "--verify-each), boundaries (static checks after "
                          "the last pass) or every-pass (verifier + static "
                          "checks after every pass)")
    opt.add_argument("--timing", action="store_true",
                     help="print per-pass timing to stderr")
    opt.set_defaults(fn=_cmd_opt)

    analyze = sub.add_parser(
        "analyze",
        help="run static analyses (buffer safety, range, lint) over IR",
    )
    analyze.add_argument("modules", nargs="*", metavar="MODULE",
                         help="IR file(s) in generic textual form "
                              "('-' = stdin)")
    analyze.add_argument("--checks", default=None, metavar="A,B,...",
                         help="comma-separated subset of checks "
                              "(default: all registered)")
    analyze.add_argument("--phase", choices=("mid", "final"), default="final",
                         help="analysis phase: 'final' (default; full "
                              "strictness) or 'mid' (suppress rules that "
                              "are transient between passes)")
    analyze.add_argument("--min-severity",
                         choices=("note", "warning", "error"),
                         default="warning",
                         help="lowest severity that fails the command "
                              "(default: warning)")
    analyze.add_argument("--corpus", type=int, default=None, metavar="N",
                         help="also analyze N generated lowered modules "
                              "(run through the cleanup pipeline at "
                              "verify_each=every-pass)")
    analyze.add_argument("--seed", type=int, default=0,
                         help="seed for --corpus generation")
    analyze.add_argument("--artifact-dir", default=None,
                         help="reproducer dump directory "
                              "(default: $SPNC_ARTIFACT_DIR)")
    analyze.add_argument("--format", choices=("text", "json"), default="text",
                         help="output format: human-readable text (default) "
                              "or a machine-readable JSON report on stdout "
                              "(findings as structured records)")
    analyze.add_argument("--structure-stats", default=None, metavar="MODEL",
                         help="instead of static checks, print the "
                              "structure-optimization opportunity profile "
                              "of a .spnb model: op counts by kind, sharing "
                              "factor, prunable-weight histogram and dense "
                              "sum layers (honors --format json)")
    analyze.set_defaults(fn=_cmd_analyze)

    pipelines = sub.add_parser(
        "pipelines",
        help="print the declarative pass pipeline for every target/-O level",
    )
    pipelines.add_argument("--target", default=None,
                           help="restrict to one registered target")
    pipelines.set_defaults(fn=_cmd_pipelines)

    samp = sub.add_parser("sample", help="draw samples from the model")
    samp.add_argument("model")
    samp.add_argument("count", type=int)
    samp.add_argument("-o", "--output", default=None)
    samp.add_argument("--seed", type=int, default=None)
    samp.set_defaults(fn=_cmd_sample)

    selftest = sub.add_parser(
        "selftest",
        help="verify fallback robustness under an injected pass failure",
    )
    selftest.set_defaults(fn=_cmd_selftest)

    serve = sub.add_parser(
        "serve",
        help="run the async inference server (dynamic batching + HTTP)",
    )
    serve.add_argument("model", nargs="?", default=None,
                       help=".spnb model file (default: built-in demo SPN)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080,
                       help="HTTP port (0 = OS-assigned)")
    _add_serving_arguments(serve)
    serve.set_defaults(fn=_cmd_serve)

    loadgen = sub.add_parser(
        "loadgen",
        help="Poisson load generator against an in-process server "
             "(verifies zero lost requests)",
    )
    loadgen.add_argument("model", nargs="?", default=None,
                         help=".spnb model file (default: built-in demo SPN)")
    loadgen.add_argument("--qps", type=float, default=500.0,
                         help="target Poisson arrival rate")
    loadgen.add_argument("--duration", type=float, default=2.0,
                         help="seconds of generated traffic")
    loadgen.add_argument("--seed", type=int, default=0)
    loadgen.add_argument("--inject", default=None, metavar="A,B,...",
                         help="faults armed mid-run: kernel-fault, "
                              "kernel-nan, slow-chunk")
    loadgen.add_argument("--swap-under-load", action="store_true",
                         help="hot-swap the model mid-run (drain-before-"
                              "unload must drop zero requests)")
    loadgen.add_argument("--baseline", action="store_true",
                         help="also measure the naive one-request-per-"
                              "kernel baseline")
    loadgen.add_argument("-o", "--output", default=None, metavar="FILE",
                         help="write the JSON report (e.g. "
                              "BENCH_serving.json)")
    _add_serving_arguments(loadgen)
    loadgen.set_defaults(fn=_cmd_loadgen)

    fuzz = sub.add_parser(
        "fuzz",
        help="differential-fuzz every backend against the reference",
    )
    fuzz.add_argument("count", type=int, help="number of generated cases")
    fuzz.add_argument("--seed", type=int, default=0)
    fuzz.add_argument("--start", type=int, default=0, metavar="N",
                      help="first case index (resume/shard long runs)")
    fuzz.add_argument("--max-features", type=int, default=5)
    fuzz.add_argument("--max-depth", type=int, default=3)
    fuzz.add_argument("--configs", default=None, metavar="A,B,...",
                      help="comma-separated subset of backend configs")
    fuzz.add_argument("--queries",
                      default="joint,mpe,sample,conditional,expectation",
                      metavar="A,B,...",
                      help="comma-separated query modalities to fuzz "
                           "(round-robin; default: all five kinds)")
    fuzz.add_argument("--no-ir", action="store_true",
                      help="skip IR round-trip/pass-permutation fuzzing")
    fuzz.add_argument("--structure-opt", action="store_true",
                      help="fuzz the structure-optimization suite instead: "
                           "random permutations of cse/prune/compress per "
                           "case, asserting exact semantics for CSE-only "
                           "spellings and within-budget max-abs "
                           "log-likelihood error otherwise, across cpu "
                           "off/lanes/batch and gpu-sim")
    fuzz.add_argument("--accuracy-budget", type=float, default=None,
                      metavar="EPS",
                      help="accuracy budget for --structure-opt fuzzing "
                           "(default: 0.05)")
    fuzz.add_argument("--artifact-dir", default=None,
                      help="reproducer dump directory "
                           "(default: $SPNC_ARTIFACT_DIR)")
    fuzz.set_defaults(fn=_cmd_fuzz)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    # `--selftest` / `--fuzz` are accepted as flag aliases for the
    # subcommands so CI can call `python -m repro --selftest` and
    # `python -m repro --fuzz 200 --seed 0`.
    argv = [
        {"--selftest": "selftest", "--fuzz": "fuzz"}.get(a, a) for a in argv
    ]
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
