"""Command-line driver: compile, inspect and run serialized SPN models.

Mirrors what the original project's `spnc` binary offers on top of the
library, operating on the binary exchange format (``.spnb``):

    python -m repro info model.spnb
    python -m repro compile model.spnb --target cpu --vectorize --dump-ir lower-to-lospn
    python -m repro run model.spnb inputs.npy -o loglik.npy --target gpu
    python -m repro sample model.spnb 1000 -o samples.npy

``inputs.npy``/outputs are plain NumPy arrays (``np.save`` format).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from ..compiler.pipeline import CompilerOptions, compile_spn
from ..spn.nodes import GraphStatistics
from ..spn.sampling import sample as sample_spn
from ..spn.serialization import deserialize_from_file


def _add_compiler_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--target", choices=("cpu", "gpu"), default="cpu")
    parser.add_argument("--opt", type=int, default=1, choices=(0, 1, 2, 3),
                        help="optimization level (-O0..-O3)")
    parser.add_argument("--vectorize", nargs="?", const="lanes", default="batch",
                        choices=("off", "lanes", "batch"), metavar="MODE",
                        help="batch-loop vectorization mode: off, lanes or "
                             "batch (default: batch; a bare --vectorize "
                             "selects the fixed-lane SIMD strategy)")
    parser.add_argument("--vector-isa", choices=("avx2", "avx512", "neon"),
                        default="avx2")
    parser.add_argument("--no-veclib", action="store_true",
                        help="disable the vector math library")
    parser.add_argument("--no-shuffle", action="store_true",
                        help="use gathers instead of loads+shuffles")
    parser.add_argument("--partition", type=int, default=None, metavar="N",
                        help="max graph-partition size (ops per task)")
    parser.add_argument("--threads", type=int, default=1)
    parser.add_argument("--linear-space", action="store_true",
                        help="compute in linear instead of log space")


def _options_from(args: argparse.Namespace, collect_ir: bool = False) -> CompilerOptions:
    return CompilerOptions(
        target=args.target,
        opt_level=args.opt,
        vectorize=args.vectorize,
        vector_isa=args.vector_isa,
        use_vector_library=not args.no_veclib,
        use_shuffle=not args.no_shuffle,
        max_partition_size=args.partition,
        num_threads=args.threads,
        use_log_space=not args.linear_space,
        collect_ir=collect_ir,
    )


def _cmd_info(args: argparse.Namespace) -> int:
    root, query = deserialize_from_file(args.model)
    stats = GraphStatistics(root)
    print(f"model: {args.model}")
    print(f"  nodes:      {stats.num_nodes}")
    print(f"  sums:       {stats.num_sums}")
    print(f"  products:   {stats.num_products}")
    print(f"  leaves:     {stats.num_leaves} "
          f"({stats.gaussian_share:.0%} Gaussian)")
    print(f"  features:   {stats.num_features}")
    print(f"  depth:      {stats.depth}")
    print(f"query:")
    print(f"  batch size: {query.batch_size}")
    print(f"  input type: {query.input_dtype}")
    print(f"  marginal:   {query.support_marginal}")
    print(f"  rel. error: {query.relative_error}")
    return 0


def _cmd_compile(args: argparse.Namespace) -> int:
    root, query = deserialize_from_file(args.model)
    result = compile_spn(root, query, _options_from(args, collect_ir=bool(args.dump_ir)))
    print(f"compiled '{args.model}' for {args.target} "
          f"(-O{args.opt}, {result.num_tasks} task(s)) "
          f"in {result.compile_time:.3f}s")
    for stage, seconds in result.stage_seconds.items():
        print(f"  {stage:24s} {seconds * 1e3:9.2f} ms")
    if args.dump_ir:
        dump = result.ir_dumps.get(args.dump_ir)
        if dump is None:
            print(f"error: no IR dump for stage '{args.dump_ir}'; "
                  f"available: {', '.join(result.ir_dumps)}", file=sys.stderr)
            return 1
        print(dump)
    if args.emit_source:
        print(result.executable.source)
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    root, query = deserialize_from_file(args.model)
    inputs = np.load(args.inputs)
    result = compile_spn(root, query, _options_from(args))
    outputs = result.executable(inputs)
    if args.output:
        np.save(args.output, outputs)
        print(f"wrote {outputs.shape[0]} results to {args.output}")
    else:
        np.set_printoptions(threshold=20)
        print(outputs)
    if args.target == "gpu":
        profile = result.executable.last_profile
        print(f"simulated GPU time: {profile.total_seconds * 1e3:.3f} ms "
              f"({profile.transfer_fraction:.0%} data movement)")
    return 0


def _cmd_sample(args: argparse.Namespace) -> int:
    root, _ = deserialize_from_file(args.model)
    rng = np.random.default_rng(args.seed)
    samples = sample_spn(root, args.count, rng)
    if args.output:
        np.save(args.output, samples)
        print(f"wrote {args.count} samples to {args.output}")
    else:
        np.set_printoptions(threshold=20)
        print(samples)
    return 0


def _cmd_selftest(args: argparse.Namespace) -> int:
    """End-to-end robustness check of the compile/execute path.

    Builds a tiny Gaussian SPN, injects a failure into a mid-pipeline
    pass and verifies that the graceful-degradation fallback still
    produces reference-exact log-likelihoods (plus a clean run as a
    control). Exits non-zero on any mismatch.
    """
    import warnings

    from ..api import CPUCompiler, FallbackWarning
    from ..spn import Gaussian, Product, Sum
    from ..spn.inference import log_likelihood as reference_ll
    from ..testing import faults

    spn = Sum(
        [
            Product([Gaussian(0, -1.0, 1.0), Gaussian(1, 0.5, 2.0)]),
            Product([Gaussian(0, 1.5, 0.5), Gaussian(1, -0.5, 1.5)]),
        ],
        [0.4, 0.6],
    )
    rng = np.random.default_rng(0)
    inputs = rng.normal(size=(64, 2))
    reference = reference_ll(spn, inputs)
    failures = 0

    def check(label, ok, detail=""):
        nonlocal failures
        status = "ok" if ok else "FAIL"
        print(f"  {label:42s} {status}{detail}")
        if not ok:
            failures += 1

    print("selftest: compile/execute robustness")

    clean = CPUCompiler(batch_size=32).log_likelihood(spn, inputs)
    check("clean compile matches reference",
          bool(np.allclose(clean, reference, atol=1e-5, rtol=1e-5)))

    compiler = CPUCompiler(batch_size=32, fallback="interpret")
    with faults.inject_pass_failure("cse"):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            degraded = compiler.log_likelihood(spn, inputs)
    warned = [w for w in caught if issubclass(w.category, FallbackWarning)]
    check("interpreter fallback matches reference",
          bool(np.allclose(degraded, reference, atol=1e-9, rtol=0)))
    check("exactly one fallback warning", len(warned) == 1,
          f" ({len(warned)} warnings)")
    errors = compiler.diagnostics.errors()
    check("diagnostic names the failed stage",
          bool(errors) and errors[0].stage == "cse",
          f" (stage={errors[0].stage if errors else None})")

    if failures:
        print(f"selftest: {failures} check(s) failed", file=sys.stderr)
        return 1
    print("selftest: all checks passed")
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    """Cross-backend differential fuzzing (see repro.testing.oracle).

    Generates seeded random SPN/query/input cases, runs each through
    every backend configuration and compares against the reference
    evaluator under calibrated tolerances; interleaves IR print/parse
    round-trip and pass-permutation fuzzing. Divergences are shrunk,
    dumped as reproducers (``--artifact-dir`` / ``$SPNC_ARTIFACT_DIR``)
    and make the command exit non-zero.
    """
    from ..testing.oracle import DEFAULT_CONFIGS, DifferentialOracle

    configs = DEFAULT_CONFIGS
    if args.configs:
        wanted = {name.strip() for name in args.configs.split(",") if name.strip()}
        known = {spec.name for spec in DEFAULT_CONFIGS}
        unknown = wanted - known
        if unknown:
            print(f"error: unknown config(s) {', '.join(sorted(unknown))}; "
                  f"available: {', '.join(sorted(known))}", file=sys.stderr)
            return 2
        configs = tuple(s for s in DEFAULT_CONFIGS if s.name in wanted)

    def progress(message: str) -> None:
        print(f"  {message}", file=sys.stderr)

    oracle = DifferentialOracle(
        configs=configs, artifact_dir=args.artifact_dir, log=progress
    )
    print(f"fuzzing {args.count} case(s), seed {args.seed}, "
          f"{len(configs)} backend config(s)...")
    report = oracle.fuzz(
        args.count,
        seed=args.seed,
        start=args.start,
        max_features=args.max_features,
        max_depth=args.max_depth,
        ir_share=0.0 if args.no_ir else 0.25,
    )
    print(report.summary())
    return 0 if report.ok else 1


def _cmd_opt(args: argparse.Namespace) -> int:
    from ..ir import parse_module, print_op, verify
    from ..ir.pipeline_spec import parse_pipeline, registered_passes

    if args.input == "-":
        text = sys.stdin.read()
    else:
        with open(args.input) as handle:
            text = handle.read()
    module = parse_module(text)
    verify(module)
    try:
        manager = parse_pipeline(args.pipeline, verify_each=args.verify_each)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    timing = manager.run(module)
    print(print_op(module))
    if args.timing:
        print(timing.report(), file=sys.stderr)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SPNC: compile and run Sum-Product Network inference",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    info = sub.add_parser("info", help="show model and query statistics")
    info.add_argument("model")
    info.set_defaults(fn=_cmd_info)

    comp = sub.add_parser("compile", help="compile a model and report stats")
    comp.add_argument("model")
    _add_compiler_arguments(comp)
    comp.add_argument("--dump-ir", metavar="STAGE", default=None,
                      help="print the IR after the named pipeline stage")
    comp.add_argument("--emit-source", action="store_true",
                      help="print the generated kernel source")
    comp.set_defaults(fn=_cmd_compile)

    run = sub.add_parser("run", help="compile and execute on an input array")
    run.add_argument("model")
    run.add_argument("inputs", help="input .npy array [batch, features]")
    run.add_argument("-o", "--output", default=None)
    _add_compiler_arguments(run)
    run.set_defaults(fn=_cmd_run)

    opt = sub.add_parser(
        "opt", help="run a pass pipeline over textual IR (mlir-opt style)"
    )
    opt.add_argument("input", help="IR file in generic textual form ('-' = stdin)")
    opt.add_argument("--pipeline", default="canonicalize,cse,dce",
                     help="comma-separated pass list")
    opt.add_argument("--verify-each", action="store_true",
                     help="verify the module after every pass")
    opt.add_argument("--timing", action="store_true",
                     help="print per-pass timing to stderr")
    opt.set_defaults(fn=_cmd_opt)

    samp = sub.add_parser("sample", help="draw samples from the model")
    samp.add_argument("model")
    samp.add_argument("count", type=int)
    samp.add_argument("-o", "--output", default=None)
    samp.add_argument("--seed", type=int, default=None)
    samp.set_defaults(fn=_cmd_sample)

    selftest = sub.add_parser(
        "selftest",
        help="verify fallback robustness under an injected pass failure",
    )
    selftest.set_defaults(fn=_cmd_selftest)

    fuzz = sub.add_parser(
        "fuzz",
        help="differential-fuzz every backend against the reference",
    )
    fuzz.add_argument("count", type=int, help="number of generated cases")
    fuzz.add_argument("--seed", type=int, default=0)
    fuzz.add_argument("--start", type=int, default=0, metavar="N",
                      help="first case index (resume/shard long runs)")
    fuzz.add_argument("--max-features", type=int, default=5)
    fuzz.add_argument("--max-depth", type=int, default=3)
    fuzz.add_argument("--configs", default=None, metavar="A,B,...",
                      help="comma-separated subset of backend configs")
    fuzz.add_argument("--no-ir", action="store_true",
                      help="skip IR round-trip/pass-permutation fuzzing")
    fuzz.add_argument("--artifact-dir", default=None,
                      help="reproducer dump directory "
                           "(default: $SPNC_ARTIFACT_DIR)")
    fuzz.set_defaults(fn=_cmd_fuzz)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    # `--selftest` / `--fuzz` are accepted as flag aliases for the
    # subcommands so CI can call `python -m repro --selftest` and
    # `python -m repro --fuzz 200 --seed 0`.
    argv = [
        {"--selftest": "selftest", "--fuzz": "fuzz"}.get(a, a) for a in argv
    ]
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
