"""Command-line tooling for the SPNC reproduction."""

from .cli import build_parser, main

__all__ = ["build_parser", "main"]
