"""GPU device model: memory, transfers and an analytic timing model.

The paper evaluates on an Nvidia RTX 2070 Super over PCIe. Offline we
simulate: kernels execute as vectorized NumPy over the thread grid
(bit-identical results, validated against the CPU backend), while
*reported* times come from this device model:

- transfers: ``latency + bytes / bandwidth`` per ``gpu.memcpy``,
- kernel launches: fixed driver overhead + block scheduling cost,
- compute: the measured NumPy execution time scaled by an occupancy
  factor derived from register pressure and block-size quantization.

The occupancy model reproduces the paper's block-size design space
(Section V-A1): very small blocks pay per-block scheduling overhead,
very large blocks quantize badly against the register-file limit, and
the sweet spot lands around 64 threads per block.

**Calibration units.** The constants are expressed in "Python-world"
units, not physical ones: the Python-as-ISA CPU backend is ~10^2-10^3×
slower than native code, so a physically-parameterized GPU would crush
every CPU configuration and invert the paper's orderings. Instead,
bandwidth and compute throughput are scaled by the same Python-slowdown
factor, placing the simulated GPU *relative to our CPU backend* where the
paper's RTX 2070S sits relative to its native CPU backend: large speedup
over the interpreted baseline, slower than vectorized CPU, with data
movement >60 % of execution time (Figs. 7-9). All constants are
calibration inputs, not measurements; EXPERIMENTS.md compares only
shapes, never absolute times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np


@dataclass(frozen=True)
class DeviceSpec:
    """Analytic model constants, loosely following an RTX 2070 Super."""

    name: str = "sim-rtx2070-super"
    num_sms: int = 40
    max_threads_per_sm: int = 1024
    #: Hardware cap on simultaneously resident blocks per SM (Turing: 16;
    #: heavy SPN kernels schedule fewer).
    max_resident_blocks: int = 12
    register_file_per_sm: int = 65536
    warp_size: int = 32
    device_memory_bytes: int = 8 * 1024**3
    #: Effective PCIe bandwidth in Python-world units (physical 11 GB/s
    #: divided by the same slowdown factor applied to compute).
    pcie_bandwidth: float = 20.0e6
    #: Fixed per-transfer latency (driver + DMA setup), scaled likewise.
    pcie_latency: float = 20e-6
    #: Fixed kernel launch overhead (driver + dispatch).
    launch_overhead: float = 50e-6
    #: Per-block scheduling cost.
    block_schedule_cost: float = 2e-6
    #: Throughput scale: simulated-GPU compute time = measured host NumPy
    #: time * compute_scale / occupancy, at the reference occupancy the
    #: default register pressure yields (~0.55).
    compute_scale: float = 0.65
    #: Default per-thread register pressure assumed for SPN kernels
    #: (picked so the occupancy curve's block-size optimum lands at 64,
    #: as the paper's sweep found).
    default_registers_per_thread: int = 105

    def transfer_seconds(self, num_bytes: int) -> float:
        return self.pcie_latency + num_bytes / self.pcie_bandwidth

    def occupancy(self, block_size: int, registers_per_thread: int) -> float:
        """Fraction of peak thread occupancy for a kernel configuration."""
        registers_per_thread = max(16, min(registers_per_thread, 255))
        threads_by_registers = self.register_file_per_sm // registers_per_thread
        blocks_per_sm = min(
            threads_by_registers // block_size, self.max_resident_blocks
        )
        if threads_by_registers // block_size == 0:
            # The block does not fit the register file at full occupancy:
            # the scheduler resident-block count collapses and warps stall.
            active = max(self.warp_size, threads_by_registers // 2)
        else:
            active = min(
                blocks_per_sm * block_size,
                self.max_threads_per_sm,
                threads_by_registers,
            )
        occupancy = active / self.max_threads_per_sm
        # Sub-warp blocks waste lanes within each warp.
        if block_size < self.warp_size:
            occupancy *= block_size / self.warp_size
        return max(occupancy, 0.02)

    def launch_seconds(
        self,
        grid_size: int,
        block_size: int,
        measured_compute: float,
        registers_per_thread: int,
    ) -> float:
        occupancy = self.occupancy(block_size, registers_per_thread)
        schedule = self.launch_overhead + grid_size * self.block_schedule_cost / self.num_sms
        return schedule + measured_compute * self.compute_scale / occupancy


class DeviceBuffer:
    """A buffer resident in (simulated) device memory.

    Wrapping the NumPy payload in a distinct type catches host/device
    mix-ups: host code can only touch device data through ``gpu.memcpy``.
    """

    __slots__ = ("data",)

    def __init__(self, data: np.ndarray):
        self.data = data

    @property
    def nbytes(self) -> int:
        return self.data.nbytes

    @property
    def shape(self):
        return self.data.shape

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<DeviceBuffer shape={self.data.shape} dtype={self.data.dtype}>"


class OutOfDeviceMemory(RuntimeError):
    pass


@dataclass
class TransferRecord:
    direction: str
    num_bytes: int
    seconds: float


@dataclass
class LaunchRecord:
    kernel: str
    grid_size: int
    block_size: int
    measured_compute: float
    simulated_seconds: float
    #: Number of OOM-triggered relaunches (each halving the block size)
    #: it took before this launch succeeded.
    retries: int = 0


@dataclass
class ExecutionProfile:
    """Per-execution timing breakdown (feeds the Fig. 9 reproduction)."""

    transfers: List[TransferRecord] = field(default_factory=list)
    launches: List[LaunchRecord] = field(default_factory=list)

    @property
    def transfer_seconds(self) -> float:
        return sum(t.seconds for t in self.transfers)

    @property
    def compute_seconds(self) -> float:
        return sum(l.simulated_seconds for l in self.launches)

    @property
    def total_seconds(self) -> float:
        return self.transfer_seconds + self.compute_seconds

    @property
    def transfer_fraction(self) -> float:
        total = self.total_seconds
        return self.transfer_seconds / total if total > 0 else 0.0

    @property
    def bytes_moved(self) -> int:
        return sum(t.num_bytes for t in self.transfers)

    @property
    def num_oom_retries(self) -> int:
        """Total OOM-triggered relaunches across all kernel launches."""
        return sum(l.retries for l in self.launches)
