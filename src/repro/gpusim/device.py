"""GPU device model: memory, transfers and an analytic timing model.

The paper evaluates on an Nvidia RTX 2070 Super over PCIe. Offline we
simulate: kernels execute as vectorized NumPy over the thread grid
(bit-identical results, validated against the CPU backend), while
*reported* times come from this device model:

- transfers: ``latency + bytes / bandwidth`` per ``gpu.memcpy``,
- kernel launches: fixed driver overhead + block scheduling cost,
- compute: the measured NumPy execution time scaled by an occupancy
  factor derived from register pressure and block-size quantization.

The occupancy model reproduces the paper's block-size design space
(Section V-A1): very small blocks pay per-block scheduling overhead,
very large blocks quantize badly against the register-file limit, and
the sweet spot lands around 64 threads per block.

**Calibration units.** The constants are expressed in "Python-world"
units, not physical ones: the Python-as-ISA CPU backend is ~10^2-10^3×
slower than native code, so a physically-parameterized GPU would crush
every CPU configuration and invert the paper's orderings. Instead,
bandwidth and compute throughput are scaled by the same Python-slowdown
factor, placing the simulated GPU *relative to our CPU backend* where the
paper's RTX 2070S sits relative to its native CPU backend: large speedup
over the interpreted baseline, slower than vectorized CPU, with data
movement >60 % of execution time (Figs. 7-9). All constants are
calibration inputs, not measurements; EXPERIMENTS.md compares only
shapes, never absolute times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

try:  # NumPy 2 moved byte_bounds out of the top-level namespace.
    from numpy.lib.array_utils import byte_bounds as _byte_bounds
except ImportError:  # pragma: no cover - NumPy 1.x
    _byte_bounds = np.byte_bounds

#: One contiguous byte range in an address space: ``(space, lo, hi)``
#: with ``hi`` exclusive. Spaces are ``"host"`` (process addresses) or
#: ``"device:<buffer_id>"`` (offsets within one simulated allocation).
MemorySpan = Tuple[str, int, int]

#: Row-decomposition cap for non-contiguous host views; beyond this the
#: conservative envelope is used (may over-approximate, never under-).
_MAX_SPAN_ROWS = 128


def host_spans(array: np.ndarray) -> Tuple[MemorySpan, ...]:
    """Byte ranges a host-side transfer endpoint actually touches.

    Contiguous arrays are one span. A non-contiguous 2-D view (e.g. the
    ``output[:, start:end]`` column slice each pipeline chunk writes)
    is decomposed per row: the rows of adjacent chunks interleave in
    memory, so their *envelopes* overlap even though the chunks are
    disjoint — per-row spans keep clean pipelined runs hazard-free.
    """
    array = np.asarray(array)
    if array.size == 0:
        return ()
    if array.ndim <= 1 or array.flags["C_CONTIGUOUS"]:
        lo, hi = _byte_bounds(array)
        return (("host", lo, hi),)
    if array.ndim == 2 and array.shape[0] <= _MAX_SPAN_ROWS:
        spans = []
        for row in array:
            lo, hi = _byte_bounds(row)
            spans.append(("host", lo, hi))
        return tuple(spans)
    lo, hi = _byte_bounds(array)
    return (("host", lo, hi),)


def device_span(buffer: "DeviceBuffer") -> Tuple[MemorySpan, ...]:
    """The full extent of a simulated device allocation."""
    return ((f"device:{buffer.buffer_id}", 0, buffer.nbytes),)


@dataclass(frozen=True)
class DeviceSpec:
    """Analytic model constants, loosely following an RTX 2070 Super."""

    name: str = "sim-rtx2070-super"
    num_sms: int = 40
    max_threads_per_sm: int = 1024
    #: Hardware cap on simultaneously resident blocks per SM (Turing: 16;
    #: heavy SPN kernels schedule fewer).
    max_resident_blocks: int = 12
    register_file_per_sm: int = 65536
    warp_size: int = 32
    device_memory_bytes: int = 8 * 1024**3
    #: Effective PCIe bandwidth in Python-world units (physical 11 GB/s
    #: divided by the same slowdown factor applied to compute). Tuned so
    #: the *serialized* Fig. 9 transfer share stays >60 % while the
    #: upload engine does not so dominate the timeline that no software
    #: pipeline could ever hide half the transfer time (the dual-DMA
    #: overlap the multi-stream executable exploits).
    pcie_bandwidth: float = 30.0e6
    #: Fixed per-transfer latency (driver + DMA setup), scaled likewise.
    pcie_latency: float = 20e-6
    #: Fixed kernel launch overhead (driver + dispatch).
    launch_overhead: float = 50e-6
    #: Per-block scheduling cost.
    block_schedule_cost: float = 2e-6
    #: Throughput scale: simulated-GPU compute time = measured host NumPy
    #: time * compute_scale / occupancy, at the reference occupancy the
    #: default register pressure yields (~0.55).
    compute_scale: float = 0.65
    #: Default per-thread register pressure assumed for SPN kernels
    #: (picked so the occupancy curve's block-size optimum lands at 64,
    #: as the paper's sweep found).
    default_registers_per_thread: int = 105

    def transfer_seconds(self, num_bytes: int) -> float:
        return self.pcie_latency + num_bytes / self.pcie_bandwidth

    def occupancy(self, block_size: int, registers_per_thread: int) -> float:
        """Fraction of peak thread occupancy for a kernel configuration."""
        registers_per_thread = max(16, min(registers_per_thread, 255))
        threads_by_registers = self.register_file_per_sm // registers_per_thread
        blocks_per_sm = min(
            threads_by_registers // block_size, self.max_resident_blocks
        )
        if threads_by_registers // block_size == 0:
            # The block does not fit the register file at full occupancy:
            # the scheduler resident-block count collapses and warps stall.
            active = max(self.warp_size, threads_by_registers // 2)
        else:
            active = min(
                blocks_per_sm * block_size,
                self.max_threads_per_sm,
                threads_by_registers,
            )
        occupancy = active / self.max_threads_per_sm
        # Sub-warp blocks waste lanes within each warp.
        if block_size < self.warp_size:
            occupancy *= block_size / self.warp_size
        return max(occupancy, 0.02)

    def launch_seconds(
        self,
        grid_size: int,
        block_size: int,
        measured_compute: float,
        registers_per_thread: int,
    ) -> float:
        occupancy = self.occupancy(block_size, registers_per_thread)
        schedule = self.launch_overhead + grid_size * self.block_schedule_cost / self.num_sms
        return schedule + measured_compute * self.compute_scale / occupancy


class DeviceBuffer:
    """A buffer resident in (simulated) device memory.

    Wrapping the NumPy payload in a distinct type catches host/device
    mix-ups: host code can only touch device data through ``gpu.memcpy``.
    """

    __slots__ = ("data", "buffer_id")

    def __init__(self, data: np.ndarray, buffer_id: Optional[int] = None):
        self.data = data
        #: Unique id within one simulator (fresh per ``gpu.alloc``), the
        #: identity the stream-hazard verifier keys device footprints on.
        self.buffer_id = id(self) if buffer_id is None else buffer_id

    @property
    def nbytes(self) -> int:
        return self.data.nbytes

    @property
    def shape(self):
        return self.data.shape

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<DeviceBuffer shape={self.data.shape} dtype={self.data.dtype}>"


class OutOfDeviceMemory(RuntimeError):
    pass


@dataclass
class TransferRecord:
    direction: str
    num_bytes: int
    seconds: float
    #: Stream the transfer was issued on and its global issue index
    #: (drives the overlapped-makespan schedule below).
    stream: int = 0
    seq: int = -1
    #: Byte ranges read/written, for the stream-hazard verifier.
    reads: Tuple[MemorySpan, ...] = ()
    writes: Tuple[MemorySpan, ...] = ()

    @property
    def engine(self) -> str:
        """DMA engine the transfer occupies. Discrete GPUs (the paper's
        RTX 2070S included) expose *separate* upload and download copy
        engines; modeling them distinctly is what lets chunk *i*'s D2H
        proceed concurrently with chunk *i+1*'s H2D — without it, the
        download at the end of each pipeline stage would serialize the
        next stage's upload and no software pipeline could overlap."""
        return "copy-d2h" if self.direction == "d2h" else "copy-h2d"

    @property
    def duration(self) -> float:
        return self.seconds


@dataclass
class LaunchRecord:
    kernel: str
    grid_size: int
    block_size: int
    measured_compute: float
    simulated_seconds: float
    #: Number of OOM-triggered relaunches (each halving the block size)
    #: it took before this launch succeeded.
    retries: int = 0
    stream: int = 0
    seq: int = -1
    #: Byte ranges read/written. The simulator does not know per-buffer
    #: kernel roles, so it records every device-buffer argument as both
    #: read and written — sound, and precise enough because each
    #: pipeline chunk launches on freshly allocated buffers.
    reads: Tuple[MemorySpan, ...] = ()
    writes: Tuple[MemorySpan, ...] = ()

    engine = "compute"

    @property
    def duration(self) -> float:
        return self.simulated_seconds


@dataclass
class EventRecord:
    """``gpu.event_record``: stamps a stream's timeline position."""

    event_id: int
    stream: int
    seq: int


@dataclass
class WaitRecord:
    """``gpu.stream_wait_event``: blocks a stream until an event fires."""

    event_id: int
    stream: int
    seq: int


@dataclass
class ExecutionProfile:
    """Per-execution timing breakdown (feeds the Fig. 9 reproduction).

    Two views of the same op records:

    - **serialized**: every transfer and launch end to end on one
      timeline — the pre-multi-stream model, and what a single-stream
      device would take (``total_seconds`` keeps this historic meaning).
    - **overlapped**: an event-driven schedule over three engines — the
      upload DMA engine (H2D/D2D ``memcpy``), the download DMA engine
      (D2H) and the compute engine (all launches), concurrent with each
      other — honoring per-stream program order and recorded event
      waits, like the dual-copy-engine/compute concurrency of a real
      discrete GPU. ``makespan_seconds`` is its completion time; with a
      single stream the per-stream ordering chains every op and the two
      views agree exactly.
    """

    transfers: List[TransferRecord] = field(default_factory=list)
    launches: List[LaunchRecord] = field(default_factory=list)
    events: List[EventRecord] = field(default_factory=list)
    waits: List[WaitRecord] = field(default_factory=list)

    @property
    def transfer_seconds(self) -> float:
        return sum(t.seconds for t in self.transfers)

    @property
    def compute_seconds(self) -> float:
        return sum(l.simulated_seconds for l in self.launches)

    @property
    def total_seconds(self) -> float:
        """Serialized sum of every op (the single-timeline view)."""
        return self.transfer_seconds + self.compute_seconds

    @property
    def serialized_seconds(self) -> float:
        """Alias of :attr:`total_seconds`, named for what it is."""
        return self.total_seconds

    @property
    def makespan_seconds(self) -> float:
        """Overlapped completion time (copy ∥ compute engine schedule)."""
        return self._schedule()[0]

    @property
    def overlap_seconds(self) -> float:
        """Serialized time reclaimed by engine overlap."""
        return max(0.0, self.serialized_seconds - self.makespan_seconds)

    @property
    def overlap_fraction(self) -> float:
        """Fraction of the *serialized transfer time* hidden under
        compute (0 on a single stream; the Fig. 9 reclaim metric)."""
        transfer = self.transfer_seconds
        return self.overlap_seconds / transfer if transfer > 0 else 0.0

    @property
    def serial_transfer_fraction(self) -> float:
        """Transfer share of the serialized timeline (paper Fig. 9)."""
        total = self.total_seconds
        return self.transfer_seconds / total if total > 0 else 0.0

    @property
    def transfer_fraction(self) -> float:
        """Historic name of :attr:`serial_transfer_fraction`."""
        return self.serial_transfer_fraction

    @property
    def overlapped_transfer_fraction(self) -> float:
        """Exposed transfer share of the overlapped makespan: the part
        of the makespan during which only the copy engine is busy."""
        makespan = self.makespan_seconds
        if makespan <= 0:
            return 0.0
        exposed = makespan - self.compute_seconds
        return max(0.0, exposed) / makespan

    @property
    def num_streams(self) -> int:
        streams = {op.stream for op in self.transfers + self.launches}
        return len(streams) if streams else 0

    @property
    def bytes_moved(self) -> int:
        return sum(t.num_bytes for t in self.transfers)

    @property
    def num_oom_retries(self) -> int:
        """Total OOM-triggered relaunches across all kernel launches."""
        return sum(l.retries for l in self.launches)

    # -- the analytic overlapped schedule ---------------------------------------

    def _schedule(self):
        """Event-driven list schedule of the recorded ops.

        Each op starts at ``max(engine_free, stream_tail)``: engines
        (upload DMA, download DMA, compute) process their ops in issue
        order, and a
        stream's ops never reorder or overlap among themselves. Event
        records stamp the issuing stream's tail; waits advance the
        waiting stream's tail to the event time. Returns
        ``(makespan, op_finish_times keyed by (engine, index))``.
        """
        ops = sorted(
            self.transfers + self.launches + self.events + self.waits,
            key=lambda op: op.seq,
        )
        engine_free: dict = {}
        stream_tail: dict = {}
        event_time: dict = {}
        finish: dict = {}
        makespan = 0.0
        for op in ops:
            if isinstance(op, EventRecord):
                event_time[op.event_id] = stream_tail.get(op.stream, 0.0)
                continue
            if isinstance(op, WaitRecord):
                stream_tail[op.stream] = max(
                    stream_tail.get(op.stream, 0.0),
                    event_time.get(op.event_id, 0.0),
                )
                continue
            start = max(
                engine_free.get(op.engine, 0.0),
                stream_tail.get(op.stream, 0.0),
            )
            end = start + op.duration
            engine_free[op.engine] = end
            stream_tail[op.stream] = end
            finish[(op.engine, op.seq)] = end
            makespan = max(makespan, end)
        return makespan, finish
