"""GPU simulator runtime: the object generated host code drives.

Generated host functions receive this runtime as ``_gpu`` and call:

- ``alloc(shape, dtype)`` / ``dealloc(buffer)`` — device memory,
- ``memcpy(dst, src, direction)`` — host↔device transfers (timed by the
  device model),
- ``launch(kernel, grid, block, valid_threads, args)`` — executes the
  registered device function vectorized over the resident threads and
  converts the measured NumPy time into simulated GPU time.

``valid_threads`` realizes the per-thread bounds guard of real kernels:
the simulator only materializes in-range threads, so tail threads of the
last block never touch memory.
"""

from __future__ import annotations

import contextlib
import time
from typing import Callable, Dict, Optional, Sequence, Tuple, Union

import numpy as np

from ..testing import faults
from .device import (
    DeviceBuffer,
    DeviceSpec,
    EventRecord,
    ExecutionProfile,
    LaunchRecord,
    OutOfDeviceMemory,
    TransferRecord,
    WaitRecord,
    device_span,
    host_spans,
)


class Stream:
    """An in-order command queue on the simulated device.

    Ops issued on the same stream never overlap or reorder among
    themselves; ops on *different* streams may overlap whenever the
    engine they need (copy vs. compute) is free — exactly the CUDA
    stream contract the analytic schedule in
    :class:`~repro.gpusim.device.ExecutionProfile` models.
    """

    __slots__ = ("stream_id",)

    def __init__(self, stream_id: int):
        self.stream_id = stream_id

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Stream {self.stream_id}>"


class Event:
    """A marker recorded on a stream; other streams can wait on it."""

    __slots__ = ("event_id", "stream_id")

    def __init__(self, event_id: int, stream_id: int):
        self.event_id = event_id
        self.stream_id = stream_id

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Event {self.event_id} on stream {self.stream_id}>"


class GPUSimulator:
    """Simulated CUDA device + driver for one compiled module.

    Launch robustness: a launch attempt that raises
    :class:`OutOfDeviceMemory` (per-launch scratch pressure; the
    fault-injection suite simulates it) is retried with the block size
    halved — mirroring the standard CUDA mitigation of shrinking the
    launch configuration — up to :attr:`max_launch_retries` times before
    the error propagates to the host.
    """

    #: Bounded retry budget for OOM-failing kernel launches.
    max_launch_retries: int = 4

    def __init__(self, spec: DeviceSpec = None, registers_per_thread: int = None):
        self.spec = spec or DeviceSpec()
        self.kernels: Dict[str, Callable] = {}
        self.registers_per_thread: Dict[str, int] = {}
        self._default_registers = (
            registers_per_thread or self.spec.default_registers_per_thread
        )
        self.allocated_bytes = 0
        self.profile = ExecutionProfile()
        #: Successfully completed launches over the simulator's lifetime
        #: (drives deterministic ``inject_gpu_oom(after_n_launches=...)``).
        self.completed_launches = 0
        #: Stream registry; stream 0 is the default (CUDA's "legacy"
        #: stream) and every driver call is attributed to
        #: :attr:`current_stream` when issued.
        self._streams: Dict[int, Stream] = {0: Stream(0)}
        self.current_stream: Stream = self._streams[0]
        self._seq = 0
        self._next_event_id = 0
        self._next_buffer_id = 0

    # -- module loading -------------------------------------------------------

    def register_kernel(
        self, name: str, fn: Callable, registers_per_thread: int = None
    ) -> None:
        self.kernels[name] = fn
        self.registers_per_thread[name] = (
            registers_per_thread or self._default_registers
        )

    def reset_profile(self) -> None:
        self.profile = ExecutionProfile()
        self._seq = 0
        self.current_stream = self._streams[0]

    # -- streams and events ------------------------------------------------------

    def stream(self, stream_id: int) -> Stream:
        """The stream with this id (created on first use)."""
        stream = self._streams.get(stream_id)
        if stream is None:
            stream = self._streams[stream_id] = Stream(stream_id)
        return stream

    @contextlib.contextmanager
    def use_stream(self, stream: Union[Stream, int]):
        """Issue every driver call in the body on ``stream``."""
        if not isinstance(stream, Stream):
            stream = self.stream(int(stream))
        previous = self.current_stream
        self.current_stream = stream
        try:
            yield stream
        finally:
            self.current_stream = previous

    def record_event(self, stream: Optional[Union[Stream, int]] = None) -> Event:
        """Record an event at the current tail of ``stream``."""
        stream_id = self._stream_id(stream)
        event = Event(self._next_event_id, stream_id)
        self._next_event_id += 1
        self.profile.events.append(
            EventRecord(event.event_id, stream_id, self._next_seq())
        )
        return event

    def wait_event(
        self, event: Event, stream: Optional[Union[Stream, int]] = None
    ) -> None:
        """Make ``stream`` wait until ``event``'s recorded work is done."""
        stream_id = self._stream_id(stream)
        self.profile.waits.append(
            WaitRecord(event.event_id, stream_id, self._next_seq())
        )

    def _stream_id(self, stream: Optional[Union[Stream, int]]) -> int:
        if stream is None:
            return self.current_stream.stream_id
        if isinstance(stream, Stream):
            return stream.stream_id
        return int(stream)

    def _next_seq(self) -> int:
        seq = self._seq
        self._seq += 1
        return seq

    # -- driver API (called from generated host code) ---------------------------

    def alloc(self, shape: Tuple[int, ...], dtype) -> DeviceBuffer:
        buffer = DeviceBuffer(np.empty(shape, dtype=dtype), self._next_buffer_id)
        self._next_buffer_id += 1
        self.allocated_bytes += buffer.nbytes
        if self.allocated_bytes > self.spec.device_memory_bytes:
            raise OutOfDeviceMemory(
                f"device memory exhausted: {self.allocated_bytes} bytes "
                f"> {self.spec.device_memory_bytes}"
            )
        return buffer

    def dealloc(self, buffer: DeviceBuffer) -> None:
        if not isinstance(buffer, DeviceBuffer):
            raise TypeError("gpu.dealloc requires a device buffer")
        self.allocated_bytes -= buffer.nbytes

    def memcpy(self, dst, src, direction: str) -> None:
        if direction == "h2d":
            if not isinstance(dst, DeviceBuffer) or isinstance(src, DeviceBuffer):
                raise TypeError("h2d memcpy requires host source and device target")
            dst.data[...] = src
            num_bytes = dst.nbytes
            reads, writes = host_spans(np.asarray(src)), device_span(dst)
        elif direction == "d2h":
            if isinstance(dst, DeviceBuffer) or not isinstance(src, DeviceBuffer):
                raise TypeError("d2h memcpy requires device source and host target")
            dst[...] = src.data
            num_bytes = src.nbytes
            reads, writes = device_span(src), host_spans(dst)
        elif direction == "d2d":
            if not (isinstance(dst, DeviceBuffer) and isinstance(src, DeviceBuffer)):
                raise TypeError("d2d memcpy requires two device buffers")
            dst.data[...] = src.data
            num_bytes = src.nbytes
            reads, writes = device_span(src), device_span(dst)
        else:
            raise ValueError(f"unknown memcpy direction '{direction}'")
        self.profile.transfers.append(
            TransferRecord(
                direction,
                num_bytes,
                self.spec.transfer_seconds(num_bytes),
                stream=self.current_stream.stream_id,
                seq=self._next_seq(),
                reads=reads,
                writes=writes,
            )
        )

    def launch(
        self,
        kernel: str,
        grid_size: int,
        block_size: int,
        valid_threads: int,
        args: Sequence,
    ) -> None:
        fn = self.kernels.get(kernel)
        if fn is None:
            raise KeyError(f"no kernel named '{kernel}' loaded on device")
        if grid_size * block_size < valid_threads:
            raise ValueError("grid does not cover the batch")
        unwrapped = [
            arg.data if isinstance(arg, DeviceBuffer) else arg for arg in args
        ]
        retries = 0
        while True:
            try:
                faults.maybe_fail_gpu_launch(self.completed_launches)
                start = time.perf_counter()
                fn(valid_threads, block_size, *unwrapped)
                measured = time.perf_counter() - start
                break
            except OutOfDeviceMemory:
                if retries >= self.max_launch_retries or block_size <= 1:
                    raise
                # Shrink the launch configuration and relaunch: halve the
                # block size, re-derive the grid to keep covering the batch.
                retries += 1
                block_size = max(1, block_size // 2)
                grid_size = -(-valid_threads // block_size)
        simulated = self.spec.launch_seconds(
            grid_size, block_size, measured, self.registers_per_thread[kernel]
        )
        touched = tuple(
            span
            for arg in args
            if isinstance(arg, DeviceBuffer)
            for span in device_span(arg)
        )
        self.profile.launches.append(
            LaunchRecord(
                kernel,
                grid_size,
                block_size,
                measured,
                simulated,
                retries=retries,
                stream=self.current_stream.stream_id,
                seq=self._next_seq(),
                reads=touched,
                writes=touched,
            )
        )
        self.completed_launches += 1
