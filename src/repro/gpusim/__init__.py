"""GPU simulator substrate: device model, buffers, grid executor."""

from .device import (
    DeviceBuffer,
    DeviceSpec,
    ExecutionProfile,
    LaunchRecord,
    OutOfDeviceMemory,
    TransferRecord,
)
from .simulator import GPUSimulator

__all__ = [
    "DeviceBuffer",
    "DeviceSpec",
    "ExecutionProfile",
    "LaunchRecord",
    "OutOfDeviceMemory",
    "TransferRecord",
    "GPUSimulator",
]
