"""GPU simulator substrate: device model, buffers, grid executor."""

from .device import (
    DeviceBuffer,
    DeviceSpec,
    EventRecord,
    ExecutionProfile,
    LaunchRecord,
    OutOfDeviceMemory,
    TransferRecord,
    WaitRecord,
)
from .simulator import Event, GPUSimulator, Stream

__all__ = [
    "DeviceBuffer",
    "DeviceSpec",
    "Event",
    "EventRecord",
    "ExecutionProfile",
    "LaunchRecord",
    "OutOfDeviceMemory",
    "Stream",
    "TransferRecord",
    "WaitRecord",
    "GPUSimulator",
]
