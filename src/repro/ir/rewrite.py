"""Pattern rewriting infrastructure with a greedy worklist driver.

This mirrors MLIR's ``applyPatternsAndFoldGreedily``: the driver visits
every operation in a scope, attempts per-op constant folding (via
``Operation.fold``), applies matching :class:`RewritePattern`\\ s, and
erases dead pure operations, iterating to a fixpoint.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence

from .builder import Builder
from .ops import Block, IRError, Operation
from .traits import Trait
from .value import OpResult, Value

# A constant materializer turns a Python constant + result type into an op
# producing that constant. The arith dialect registers the default one.
_CONSTANT_MATERIALIZER: Optional[Callable] = None


def set_constant_materializer(fn: Callable) -> None:
    global _CONSTANT_MATERIALIZER
    _CONSTANT_MATERIALIZER = fn


class Rewriter:
    """Mutation interface handed to patterns; tracks changed ops."""

    def __init__(self, driver: Optional["GreedyRewriteDriver"] = None):
        self.driver = driver

    def notify(self, op: Operation) -> None:
        if self.driver is not None:
            self.driver.enqueue(op)

    def insert_before(self, anchor: Operation, op: Operation) -> Operation:
        anchor.parent._insert_before(anchor, op)
        self.notify(op)
        return op

    def replace_op(self, op: Operation, replacements: Sequence[Value]) -> None:
        for res in op.results:
            for user in res.users:
                self.notify(user)
        op.replace_all_uses_with(list(replacements))
        self.erase_op(op)

    def erase_op(self, op: Operation) -> None:
        if self.driver is not None:
            self.driver.discard(op)
        for operand in op.operands:
            producer = operand.defining_op
            if producer is not None:
                self.notify(producer)
        op.erase()

    def builder_before(self, op: Operation) -> Builder:
        return Builder.before_op(op)


class RewritePattern:
    """Base class for rewrite patterns.

    ``op_name`` restricts the pattern to one operation kind; leave it None
    to match any op. :meth:`match_and_rewrite` returns True when it changed
    the IR.
    """

    op_name: Optional[str] = None
    benefit: int = 1

    def match_and_rewrite(self, op: Operation, rewriter: Rewriter) -> bool:
        raise NotImplementedError


class GreedyRewriteDriver:
    """Applies folding + patterns until a fixpoint is reached."""

    def __init__(self, patterns: Sequence[RewritePattern], max_iterations: int = 10):
        self.generic: List[RewritePattern] = []
        self.by_name: Dict[str, List[RewritePattern]] = {}
        for pattern in sorted(patterns, key=lambda p: -p.benefit):
            if pattern.op_name is None:
                self.generic.append(pattern)
            else:
                self.by_name.setdefault(pattern.op_name, []).append(pattern)
        self.max_iterations = max_iterations
        self._worklist: List[Operation] = []
        self._on_list: set = set()
        self._erased: set = set()

    # -- worklist ---------------------------------------------------------------

    def enqueue(self, op: Operation) -> None:
        key = id(op)
        if key not in self._on_list and key not in self._erased:
            self._worklist.append(op)
            self._on_list.add(key)

    def discard(self, op: Operation) -> None:
        self._erased.add(id(op))

    def _pop(self) -> Optional[Operation]:
        while self._worklist:
            op = self._worklist.pop()
            self._on_list.discard(id(op))
            if id(op) not in self._erased and op.parent is not None:
                return op
        return None

    # -- driver --------------------------------------------------------------------

    def run(self, root: Operation) -> bool:
        """Rewrite everything nested under ``root``; returns True if changed."""
        changed = False
        rewriter = Rewriter(self)
        for _ in range(self.max_iterations):
            for op in root.walk():
                if op is not root:
                    self.enqueue(op)
            iteration_changed = False
            while True:
                op = self._pop()
                if op is None:
                    break
                if self._process(op, rewriter):
                    iteration_changed = True
            changed |= iteration_changed
            if not iteration_changed:
                break
        return changed

    def _process(self, op: Operation, rewriter: Rewriter) -> bool:
        # Dead pure op elimination.
        if (
            op.has_trait(Trait.PURE)
            and op.results
            and not op.has_uses
            and op.parent is not None
        ):
            rewriter.erase_op(op)
            return True

        if try_fold(op, rewriter):
            return True

        for pattern in self.by_name.get(op.op_name, []):
            if pattern.match_and_rewrite(op, rewriter):
                return True
        for pattern in self.generic:
            if pattern.match_and_rewrite(op, rewriter):
                return True
        return False


def try_fold(op: Operation, rewriter: Rewriter) -> bool:
    """Attempt to fold ``op``; on success replaces and erases it."""
    if not op.results:
        return False
    folded = op.fold()
    if folded is None:
        return False
    if len(folded) != len(op.results):
        raise IRError(f"fold of '{op.op_name}' returned wrong result count")
    replacements: List[Value] = []
    builder = Builder.before_op(op)
    for entry, result in zip(folded, op.results):
        if isinstance(entry, Value):
            replacements.append(entry)
        else:
            if _CONSTANT_MATERIALIZER is None:
                return False
            const = _CONSTANT_MATERIALIZER(builder, entry, result.type)
            if const is None:
                return False
            rewriter.notify(const.defining_op)
            replacements.append(const)
    rewriter.replace_op(op, replacements)
    return True


def apply_patterns_greedily(
    root: Operation, patterns: Sequence[RewritePattern], max_iterations: int = 10
) -> bool:
    """Convenience wrapper running a greedy rewrite over ``root``."""
    return GreedyRewriteDriver(patterns, max_iterations).run(root)
