"""Operation traits and interfaces.

Traits are declarative markers attached to operation classes (mirroring
MLIR's ``OpTrait``). Generic transformations key off them:

- ``PURE`` ops are eligible for CSE, DCE and constant folding.
- ``COMMUTATIVE`` ops get operand order canonicalized.
- ``TERMINATOR`` ops must appear last in their block.
- ``CONSTANT_LIKE`` ops materialize attribute values.
- ``ISOLATED_FROM_ABOVE`` regions may not reference outer SSA values.
- ``SINGLE_BLOCK`` regions must contain exactly one block.
- ``FUNCTION_LIKE`` ops define a symbol with a body region.
"""

from __future__ import annotations

import enum


class Trait(enum.Enum):
    PURE = "pure"
    COMMUTATIVE = "commutative"
    TERMINATOR = "terminator"
    CONSTANT_LIKE = "constant_like"
    ISOLATED_FROM_ABOVE = "isolated_from_above"
    SINGLE_BLOCK = "single_block"
    FUNCTION_LIKE = "function_like"
    SAME_OPERANDS_AND_RESULT_TYPE = "same_operands_and_result_type"


PURE = Trait.PURE
COMMUTATIVE = Trait.COMMUTATIVE
TERMINATOR = Trait.TERMINATOR
CONSTANT_LIKE = Trait.CONSTANT_LIKE
ISOLATED_FROM_ABOVE = Trait.ISOLATED_FROM_ABOVE
SINGLE_BLOCK = Trait.SINGLE_BLOCK
FUNCTION_LIKE = Trait.FUNCTION_LIKE
SAME_OPERANDS_AND_RESULT_TYPE = Trait.SAME_OPERANDS_AND_RESULT_TYPE
