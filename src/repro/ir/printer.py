"""Textual IR printing in MLIR's generic operation form.

Example output::

    "builtin.module"() ({
      "arith.constant"() {value = 1.000000e+00 : f64} : () -> f64
    }) : () -> ()

The printer emits only the generic form (quoted op names, explicit
functional type signatures) so the companion parser stays simple and the
print→parse round trip can be property-tested.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List

import numpy as np

from .ops import Block, Operation, Region
from .types import Type
from .value import Value


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def format_float(value: float) -> str:
    if math.isinf(value):
        return "inf" if value > 0 else "-inf"
    if math.isnan(value):
        return "nan"
    return repr(float(value))


def format_attribute(value: Any) -> str:
    """Render one attribute value in its textual form."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, int):
        return f"{value} : i64"
    if isinstance(value, float):
        return f"{format_float(value)} : f64"
    if isinstance(value, str):
        return f'"{_escape(value)}"'
    if isinstance(value, Type):
        return value.spelling()
    if isinstance(value, tuple):
        return "[" + ", ".join(format_attribute(v) for v in value) + "]"
    if isinstance(value, np.ndarray):
        flat = np.asarray(value).ravel()
        body = ", ".join(format_float(float(x)) for x in flat)
        shape = "x".join(str(d) for d in value.shape) or "0"
        return f"dense<[{body}]> : tensor<{shape}x{_np_dtype_spelling(value.dtype)}>"
    raise TypeError(f"cannot print attribute of type {type(value).__name__}")


def _np_dtype_spelling(dtype: np.dtype) -> str:
    mapping = {
        np.dtype(np.float32): "f32",
        np.dtype(np.float64): "f64",
        np.dtype(np.int32): "i32",
        np.dtype(np.int64): "i64",
        np.dtype(np.bool_): "i1",
    }
    try:
        return mapping[np.dtype(dtype)]
    except KeyError as error:  # pragma: no cover - guarded by normalize_attribute
        raise TypeError(f"unsupported dense element dtype {dtype}") from error


class Printer:
    """Stateful printer assigning sequential SSA names."""

    def __init__(self, indent_width: int = 2):
        self.indent_width = indent_width
        self._names: Dict[Value, str] = {}
        self._counter = 0

    def name_of(self, value: Value) -> str:
        name = self._names.get(value)
        if name is None:
            name = f"%{self._counter}"
            self._counter += 1
            self._names[value] = name
        return name

    # -- entry points ----------------------------------------------------------

    def print_op(self, op: Operation, indent: int = 0) -> str:
        lines: List[str] = []
        self._print_op(op, indent, lines)
        return "\n".join(lines)

    # -- internals ---------------------------------------------------------------

    def _print_op(self, op: Operation, indent: int, lines: List[str]) -> None:
        pad = " " * (indent * self.indent_width)
        results = ", ".join(self.name_of(r) for r in op.results)
        prefix = f"{results} = " if op.results else ""
        operands = ", ".join(self.name_of(v) for v in op.operands)
        text = f'{pad}{prefix}"{op.op_name}"({operands})'

        if op.regions:
            region_texts = []
            for region in op.regions:
                region_texts.append(self._format_region(region, indent))
            text += " (" + ", ".join(region_texts) + ")"

        if op.attributes:
            attrs = ", ".join(
                f"{key} = {format_attribute(val)}"
                for key, val in sorted(op.attributes.items())
            )
            text += " {" + attrs + "}"

        in_types = ", ".join(v.type.spelling() for v in op.operands)
        out_types = ", ".join(r.type.spelling() for r in op.results)
        if len(op.results) == 1:
            text += f" : ({in_types}) -> {op.results[0].type.spelling()}"
        else:
            text += f" : ({in_types}) -> ({out_types})"
        lines.append(text)

    def _format_region(self, region: Region, indent: int) -> str:
        pad = " " * (indent * self.indent_width)
        lines: List[str] = ["{"]
        for block in region.blocks:
            header = self._format_block_header(block, indent + 1)
            if header:
                lines.append(header)
            inner: List[str] = []
            for op in block.ops:
                self._print_op(op, indent + 1, inner)
            lines.extend(inner)
        lines.append(pad + "}")
        return "\n".join(lines)

    def _format_block_header(self, block: Block, indent: int) -> str:
        if not block.arguments and (block.parent is None or len(block.parent.blocks) == 1):
            return ""
        pad = " " * ((indent - 1) * self.indent_width)
        index = block.parent.blocks.index(block) if block.parent else 0
        args = ", ".join(
            f"{self.name_of(arg)}: {arg.type.spelling()}" for arg in block.arguments
        )
        return f"{pad}^bb{index}({args}):"


def print_op(op: Operation) -> str:
    """Print an operation (and everything nested in it) to text."""
    return Printer().print_op(op)
