"""Generic MLIR-style dataflow engine and the static-check registry.

The engine runs a :class:`DataflowAnalysis` over every function-like op
of a module (``func.func``, ``lo_spn.kernel``, ``gpu.func`` — including
functions nested inside ``gpu.module``). Analyses are *forward* walks
over regions and blocks carrying an opaque state (typically a per-
:class:`~repro.ir.value.Value` fact map joined in a semilattice):

- straight-line ops apply :meth:`DataflowAnalysis.transfer`;
- ``scf.if`` analyzes each branch from the incoming state and joins the
  branch exits (plus the fall-through state when there is no else);
- ``scf.for`` and ``lo_spn.task`` regions execute a statically unknown
  number of times, so the engine iterates their bodies to a fixpoint,
  switching from join to :meth:`DataflowAnalysis.widen_states` after a
  few rounds to guarantee termination on infinite-height domains;
- other region-carrying ops (``lo_spn.body``) are walked once inline.

Analyses report :class:`AnalysisFinding` records through the shared
:class:`AnalysisContext`; findings carry the op path (see
:meth:`~repro.ir.ops.Operation.path`) so diagnostics can name the exact
operation without re-walking the IR.

Concrete checks register under a short name ("buffer-safety", "range",
"lint") via :func:`register_check`; :func:`run_checks` is the single
entry point used by the pass-manager instrumentation, the pipeline
driver and the ``python -m repro analyze`` CLI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from ...diagnostics import Severity
from ..ops import Operation, Region
from ..traits import Trait

#: Fixpoint iteration cap for multi-execution regions; with widening the
#: loop state reaches TOP long before this, so the cap is a backstop.
MAX_FIXPOINT_ITERATIONS = 12

#: Rounds of plain joining before the engine switches to widening.
WIDEN_AFTER = 3

#: Region ops whose bodies execute a statically unknown number of times.
_LOOP_LIKE_OPS = frozenset({"scf.for", "lo_spn.task"})

_SEVERITY_RANK = {
    Severity.NOTE: 0,
    Severity.WARNING: 1,
    Severity.ERROR: 2,
    Severity.FATAL: 3,
}


def severity_at_least(severity: Severity, threshold: Severity) -> bool:
    return _SEVERITY_RANK[severity] >= _SEVERITY_RANK[threshold]


@dataclass
class AnalysisFinding:
    """One static-analysis finding, anchored to an operation.

    Attributes:
        check: dotted check identifier, ``<registry-name>.<rule>``
            (e.g. ``"buffer-safety.use-after-free"``).
        severity: NOTE findings are informational (e.g. a proven
            would-underflow site in a log-space module), WARNINGs flag
            hazards, ERRORs are miscompiles waiting to happen.
        message: human-readable description.
        op_path: path of the offending op inside its module.
        detail: free-form extra data (buffer path, interval bounds, ...).
    """

    check: str
    severity: Severity
    message: str
    op_path: Optional[str] = None
    detail: Dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        location = f" [at={self.op_path}]" if self.op_path else ""
        return f"{self.severity}: {self.check}: {self.message}{location}"


class AnalysisContext:
    """Shared reporting context for one round of checks.

    ``phase`` distinguishes instrumentation runs *between* passes
    ("mid") — where transient states like not-yet-inserted deallocations
    or not-yet-swept dead code are normal — from end-of-pipeline or
    standalone runs ("final") where they are defects. Checks consult it
    to suppress phase-dependent rules.
    """

    def __init__(self, phase: str = "final"):
        if phase not in ("mid", "final"):
            raise ValueError(f"unknown analysis phase '{phase}'")
        self.phase = phase
        self.findings: List[AnalysisFinding] = []
        self._seen: Set[Tuple[str, Optional[str], str]] = set()

    def report(
        self,
        check: str,
        severity: Severity,
        message: str,
        op: Optional[Operation] = None,
        **detail: Any,
    ) -> Optional[AnalysisFinding]:
        """Record one finding; duplicates (same check/op/message) fold."""
        op_path = op.path() if op is not None else None
        key = (check, op_path, message)
        if key in self._seen:
            return None
        self._seen.add(key)
        finding = AnalysisFinding(
            check=check,
            severity=severity,
            message=message,
            op_path=op_path,
            detail=dict(detail),
        )
        self.findings.append(finding)
        return finding

    def errors(self) -> List[AnalysisFinding]:
        return [
            f
            for f in self.findings
            if severity_at_least(f.severity, Severity.ERROR)
        ]


class DataflowAnalysis:
    """Base class for forward dataflow analyses run by the engine.

    The state is opaque to the engine; subclasses define its shape and
    the lattice operations over it. The default implementations assume a
    ``dict`` state with equality-comparable values.
    """

    #: Registry-facing name, also the prefix of this analysis' checks.
    name: str = ""

    # -- state lattice -----------------------------------------------------

    def initial_state(self, func: Operation, ctx: AnalysisContext) -> Any:
        return {}

    def copy_state(self, state: Any) -> Any:
        return dict(state)

    def join_states(self, a: Any, b: Any) -> Any:
        """Pointwise join of two fact maps (missing keys join with ⊥)."""
        joined = dict(a)
        for key, fact in b.items():
            if key in joined:
                joined[key] = self.join_facts(joined[key], fact)
            else:
                joined[key] = fact
        return joined

    def join_facts(self, a: Any, b: Any) -> Any:
        raise NotImplementedError

    def widen_states(self, old: Any, new: Any) -> Any:
        return self.join_states(old, new)

    def states_equal(self, a: Any, b: Any) -> bool:
        return a == b

    # -- transfer ----------------------------------------------------------

    def transfer(self, op: Operation, state: Any, ctx: AnalysisContext) -> Any:
        """Apply ``op``'s effect to ``state``; may report findings."""
        return state

    def enter_region(
        self, op: Operation, region: Region, state: Any, ctx: AnalysisContext
    ) -> Any:
        """Hook called before walking a region (e.g. to alias block args
        of a ``lo_spn.task`` to the corresponding operand buffers)."""
        return state

    def finish_function(
        self, func: Operation, state: Any, ctx: AnalysisContext
    ) -> None:
        """Hook called with the exit state of each function-like op."""


def run_analysis(
    analysis: DataflowAnalysis, root: Operation, ctx: AnalysisContext
) -> None:
    """Run ``analysis`` over every function-like op under ``root``."""
    if root.has_trait(Trait.FUNCTION_LIKE):
        _run_on_function(analysis, root, ctx)
        return
    for op in root.walk():
        if op.has_trait(Trait.FUNCTION_LIKE):
            _run_on_function(analysis, op, ctx)


def _run_on_function(
    analysis: DataflowAnalysis, func: Operation, ctx: AnalysisContext
) -> None:
    state = analysis.initial_state(func, ctx)
    for region in func.regions:
        entry = analysis.enter_region(func, region, state, ctx)
        state = _walk_region(analysis, region, entry, ctx)
    analysis.finish_function(func, state, ctx)


def _walk_region(
    analysis: DataflowAnalysis, region: Region, state: Any, ctx: AnalysisContext
) -> Any:
    out = state
    for i, block in enumerate(region.blocks):
        if i == 0:
            for op in block.ops:
                out = _step(analysis, op, out, ctx)
        else:
            # Non-entry blocks are unreachable (this IR has no branch
            # ops); walk them so their ops still get facts reported, but
            # keep their effects out of the flow-through state.
            dead = analysis.copy_state(state)
            for op in block.ops:
                dead = _step(analysis, op, dead, ctx)
    return out


def _step(
    analysis: DataflowAnalysis, op: Operation, state: Any, ctx: AnalysisContext
) -> Any:
    if op.has_trait(Trait.FUNCTION_LIKE) or op.op_name == "gpu.module":
        # Isolated function-like ops are analyzed separately by
        # run_analysis; their outer flow state passes through unchanged.
        return analysis.transfer(op, state, ctx)
    if op.op_name == "scf.if" and op.regions:
        branch_outs = []
        for region in op.regions:
            entry = analysis.enter_region(
                op, region, analysis.copy_state(state), ctx
            )
            branch_outs.append(_walk_region(analysis, region, entry, ctx))
        if len(op.regions) < 2:
            branch_outs.append(state)  # fall-through when cond is false
        joined = branch_outs[0]
        for other in branch_outs[1:]:
            joined = analysis.join_states(joined, other)
        return analysis.transfer(op, joined, ctx)
    if op.op_name in _LOOP_LIKE_OPS and op.regions:
        current = state
        for iteration in range(MAX_FIXPOINT_ITERATIONS):
            entry = analysis.enter_region(
                op, op.regions[0], analysis.copy_state(current), ctx
            )
            body_out = _walk_region(analysis, op.regions[0], entry, ctx)
            # The loop may execute zero times, so the pre-state joins in.
            new = analysis.join_states(current, body_out)
            if analysis.states_equal(new, current):
                break
            if iteration >= WIDEN_AFTER:
                current = analysis.widen_states(current, new)
            else:
                current = new
        return analysis.transfer(op, current, ctx)
    for region in op.regions:
        entry = analysis.enter_region(op, region, state, ctx)
        state = _walk_region(analysis, region, entry, ctx)
    return analysis.transfer(op, state, ctx)


# -- check registry -----------------------------------------------------------

CheckFn = Callable[[Operation, AnalysisContext], None]

_CHECK_REGISTRY: Dict[str, CheckFn] = {}


def register_check(name: str, fn: CheckFn) -> None:
    """Register a static check under a short name (e.g. "range")."""
    if name in _CHECK_REGISTRY:
        raise ValueError(f"check '{name}' is already registered")
    _CHECK_REGISTRY[name] = fn


def registered_checks() -> List[str]:
    return sorted(_CHECK_REGISTRY)


def run_checks(
    root: Operation,
    checks: Optional[Sequence[str]] = None,
    phase: str = "final",
    ctx: Optional[AnalysisContext] = None,
) -> List[AnalysisFinding]:
    """Run the named checks (default: all) over ``root``.

    Returns the findings, ordered most severe first (stable within one
    severity). ``phase`` selects instrumentation ("mid") vs standalone /
    end-of-pipeline ("final") behavior for phase-dependent rules.
    """
    if ctx is None:
        ctx = AnalysisContext(phase=phase)
    selected = registered_checks() if checks is None else list(checks)
    for name in selected:
        fn = _CHECK_REGISTRY.get(name)
        if fn is None:
            raise ValueError(
                f"unknown check '{name}'; registered: "
                f"{', '.join(registered_checks())}"
            )
        fn(root, ctx)
    ctx.findings.sort(
        key=lambda f: -_SEVERITY_RANK[f.severity]
    )
    return ctx.findings
