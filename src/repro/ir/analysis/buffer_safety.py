"""Buffer-safety sanitizer over ``memref``/``gpu`` buffer operations.

A forward dataflow analysis tracking the lifetime state of every buffer
("memory object") used in a function. The state maps each canonical
buffer value to a flag set in the powerset lattice over
``{ALLOCATED, FREED}`` (union join, so merge points keep *may*
information). Canonicalization folds aliases: block arguments of a
``lo_spn.task`` / ``lo_spn.body`` region stand for the operand buffer
they bind to, so a write through a task argument is a write to the
underlying allocation or kernel argument.

Reported rules (check ids, severities):

- ``buffer-safety.use-after-free`` (ERROR) — a load/store/copy/read/
  write/call touches a buffer that may already be deallocated.
- ``buffer-safety.double-free`` (ERROR) — a ``dealloc`` of a buffer
  that may already be deallocated.
- ``buffer-safety.readonly-write`` (ERROR) — a store into a function
  argument marked read-only (``readonlyArgs`` attribute; bufferization
  marks the kernel's input buffers).
- ``buffer-safety.out-of-bounds`` (ERROR) — a constant index that is
  statically outside a static dimension: ``memref.load``/``store``,
  ``vector.load``/``store``/``gather``, ``lo_spn.batch_read`` /
  ``batch_extract`` static feature indices, and ``memref.dim`` of a
  nonexistent dimension.
- ``buffer-safety.leak`` (WARNING) — an allocation that is never
  deallocated on any path and does not escape (mid-pipeline this only
  fires once the function already contains deallocations, so the
  pre-``BufferDeallocation`` phase is not flagged).
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

from ...diagnostics import Severity
from ..ops import Operation, Region
from ..types import MemRefType, TensorType
from ..value import BlockArgument, Value
from .engine import AnalysisContext, DataflowAnalysis, register_check, run_analysis
from .lattices import flags, join_flags

ALLOCATED = "allocated"
FREED = "freed"

_ALLOC_OPS = frozenset({"memref.alloc", "gpu.alloc"})
_DEALLOC_OPS = frozenset({"memref.dealloc", "gpu.dealloc"})

#: op name -> (read operand indices spec, write operand indices spec).
#: A spec is a tuple of operand positions; "rest" selectors are handled
#: explicitly in :meth:`BufferSafetyAnalysis.transfer`.
_READ_WRITE_ROLES: Dict[str, Tuple[Tuple[int, ...], Tuple[int, ...]]] = {
    "memref.load": ((0,), ()),
    "memref.store": ((), (1,)),
    "memref.copy": ((0,), (1,)),
    "memref.dim": ((0,), ()),
    "vector.load": ((0,), ()),
    "vector.store": ((), (1,)),
    "vector.gather": ((0,), ()),
    "vector.load_tile": ((0,), ()),
    "vector.gather_table": ((0,), ()),
    "lo_spn.batch_read": ((0,), ()),
    "lo_spn.batch_write": ((), (0,)),
    "gpu.memcpy": ((1,), (0,)),
}


def _is_buffer(value: Value) -> bool:
    return isinstance(value.type, MemRefType)


class BufferSafetyAnalysis(DataflowAnalysis):
    """Tracks buffer lifetime states; see module docstring for rules."""

    name = "buffer-safety"

    def __init__(self):
        self._alias: Dict[Value, Value] = {}
        self._readonly: Set[Value] = set()
        self._allocs: Dict[Value, Operation] = {}
        self._escaped: Set[Value] = set()
        self._function_has_dealloc = False

    # -- canonicalization --------------------------------------------------

    def canonical(self, value: Value) -> Value:
        seen = []
        while value in self._alias:
            seen.append(value)
            value = self._alias[value]
        for v in seen:  # path compression
            self._alias[v] = value
        return value

    # -- lattice -----------------------------------------------------------

    def join_facts(self, a: FrozenSet[str], b: FrozenSet[str]) -> FrozenSet[str]:
        return join_flags(a, b)

    def initial_state(self, func: Operation, ctx: AnalysisContext) -> Any:
        self._alias = {}
        self._readonly = set()
        self._allocs = {}
        self._escaped = set()
        self._function_has_dealloc = any(
            op.op_name in _DEALLOC_OPS for op in func.walk()
        )
        state: Dict[Value, FrozenSet[str]] = {}
        readonly_indices = set(func.attributes.get("readonlyArgs", ()))
        if func.regions and func.regions[0].blocks:
            for i, arg in enumerate(func.regions[0].entry_block.arguments):
                if not _is_buffer(arg):
                    continue
                state[arg] = flags(ALLOCATED)
                if i in readonly_indices:
                    self._readonly.add(arg)
        return state

    # -- region hooks ------------------------------------------------------

    def enter_region(
        self, op: Operation, region: Region, state: Any, ctx: AnalysisContext
    ) -> Any:
        if op.op_name == "lo_spn.task" and region.blocks:
            # Entry block: batch index, then one argument per operand.
            args = region.entry_block.arguments
            for arg, operand in zip(args[1:], op.operands):
                if _is_buffer(arg):
                    self._alias[arg] = self.canonical(operand)
        elif op.op_name == "lo_spn.body" and region.blocks:
            for arg, operand in zip(region.entry_block.arguments, op.operands):
                if _is_buffer(arg):
                    self._alias[arg] = self.canonical(operand)
        return state

    # -- transfer ----------------------------------------------------------

    def transfer(self, op: Operation, state: Any, ctx: AnalysisContext) -> Any:
        name = op.op_name
        if name in _ALLOC_OPS:
            result = op.results[0]
            state[result] = flags(ALLOCATED)
            self._allocs[result] = op
            return state
        if name in _DEALLOC_OPS:
            self._check_dealloc(op, state, ctx)
            return state

        roles = _READ_WRITE_ROLES.get(name)
        if roles is not None:
            reads, writes = roles
            for index in reads:
                self._check_use(op, op.operands[index], state, ctx, write=False)
            for index in writes:
                self._check_use(op, op.operands[index], state, ctx, write=True)
        elif name in ("func.call", "gpu.launch_func"):
            start = 3 if name == "gpu.launch_func" else 0
            for operand in op.operands[start:]:
                if _is_buffer(operand):
                    self._check_use(op, operand, state, ctx, write=False)
                    self._escaped.add(self.canonical(operand))
        elif name in ("func.return", "lo_spn.kernel_return", "scf.yield"):
            for operand in op.operands:
                if _is_buffer(operand):
                    self._escaped.add(self.canonical(operand))

        self._check_static_indices(op, ctx)
        return state

    # -- rule implementations ----------------------------------------------

    def _check_dealloc(
        self, op: Operation, state: Any, ctx: AnalysisContext
    ) -> None:
        buffer = self.canonical(op.operands[0])
        current = state.get(buffer, flags(ALLOCATED))
        if FREED in current:
            qualifier = "is" if current == flags(FREED) else "may already be"
            ctx.report(
                "buffer-safety.double-free",
                Severity.ERROR,
                f"'{op.op_name}' of a buffer that {qualifier} deallocated",
                op=op,
                buffer=_describe_buffer(buffer),
            )
        state[buffer] = flags(FREED)

    def _check_use(
        self,
        op: Operation,
        operand: Value,
        state: Any,
        ctx: AnalysisContext,
        write: bool,
    ) -> None:
        if not _is_buffer(operand):
            return
        buffer = self.canonical(operand)
        current = state.get(buffer)
        if current is not None and FREED in current:
            qualifier = (
                "after it is deallocated"
                if current == flags(FREED)
                else "on a path where it may already be deallocated"
            )
            ctx.report(
                "buffer-safety.use-after-free",
                Severity.ERROR,
                f"'{op.op_name}' uses a buffer {qualifier}",
                op=op,
                buffer=_describe_buffer(buffer),
            )
        if write and buffer in self._readonly:
            ctx.report(
                "buffer-safety.readonly-write",
                Severity.ERROR,
                f"'{op.op_name}' writes to read-only function argument "
                f"#{_arg_index(buffer)}",
                op=op,
            )

    def _check_static_indices(self, op: Operation, ctx: AnalysisContext) -> None:
        name = op.op_name
        if name in ("memref.load", "memref.store", "vector.load", "vector.store"):
            buffer_index = 1 if name in ("memref.store", "vector.store") else 0
            offset = buffer_index + 1
            buffer_type = op.operands[buffer_index].type
            if not isinstance(buffer_type, MemRefType):
                return
            for dim, index_value in enumerate(op.operands[offset:]):
                extent = (
                    buffer_type.shape[dim]
                    if dim < len(buffer_type.shape)
                    else None
                )
                constant = _constant_index(index_value)
                if constant is None or extent is None:
                    continue
                if constant < 0 or constant >= extent:
                    ctx.report(
                        "buffer-safety.out-of-bounds",
                        Severity.ERROR,
                        f"'{name}' index {constant} is out of bounds for "
                        f"dimension {dim} of {buffer_type} (extent {extent})",
                        op=op,
                    )
        elif name == "memref.dim":
            buffer_type = op.operands[0].type
            dim = op.attributes.get("dim", 0)
            if isinstance(buffer_type, MemRefType) and not (
                0 <= dim < buffer_type.rank
            ):
                ctx.report(
                    "buffer-safety.out-of-bounds",
                    Severity.ERROR,
                    f"'memref.dim' queries dimension {dim} of rank-"
                    f"{buffer_type.rank} {buffer_type}",
                    op=op,
                )
        elif name in ("lo_spn.batch_read", "lo_spn.batch_extract"):
            input_type = op.operands[0].type
            if not isinstance(input_type, (MemRefType, TensorType)):
                return
            if input_type.rank != 2:
                return
            transposed = op.attributes.get("transposed", False)
            static_dim = 0 if transposed else 1
            extent = input_type.shape[static_dim]
            static_index = op.attributes.get("staticIndex", 0)
            if extent is not None and not (0 <= static_index < extent):
                axis = "row" if transposed else "feature column"
                ctx.report(
                    "buffer-safety.out-of-bounds",
                    Severity.ERROR,
                    f"'{name}' static {axis} index {static_index} is out of "
                    f"bounds for {input_type} (extent {extent})",
                    op=op,
                )

    def finish_function(
        self, func: Operation, state: Any, ctx: AnalysisContext
    ) -> None:
        if ctx.phase == "mid" and not self._function_has_dealloc:
            # Before the buffer-deallocation pass has run, every alloc
            # is "leaked"; only flag mixed states mid-pipeline.
            return
        for buffer, alloc in self._allocs.items():
            if buffer in self._escaped:
                continue
            current = state.get(buffer, flags(ALLOCATED))
            if FREED not in current:
                ctx.report(
                    "buffer-safety.leak",
                    Severity.WARNING,
                    f"'{alloc.op_name}' result is never deallocated on any "
                    f"path (leaked buffer of type {alloc.results[0].type})",
                    op=alloc,
                )


def _constant_index(value: Value) -> Optional[int]:
    defining = value.defining_op
    if defining is None or defining.op_name != "arith.constant":
        return None
    payload = defining.attributes.get("value")
    if isinstance(payload, bool) or not isinstance(payload, (int, float)):
        return None
    if isinstance(payload, float) and not payload.is_integer():
        return None
    return int(payload)


def _describe_buffer(buffer: Value) -> str:
    if isinstance(buffer, BlockArgument):
        return f"block argument #{buffer.arg_index} : {buffer.type}"
    defining = buffer.defining_op
    if defining is not None:
        return f"result of '{defining.op_name}' : {buffer.type}"
    return str(buffer.type)


def _arg_index(buffer: Value) -> int:
    return buffer.arg_index if isinstance(buffer, BlockArgument) else -1


def check_buffer_safety(root: Operation, ctx: AnalysisContext) -> None:
    """Registry entry point: run the sanitizer over ``root``."""
    run_analysis(BufferSafetyAnalysis(), root, ctx)


register_check("buffer-safety", check_buffer_safety)
