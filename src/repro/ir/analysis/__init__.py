"""Static dataflow analyses over the IR (no execution required).

The package provides a generic MLIR-style dataflow engine
(:mod:`.engine`), the lattice domains it runs over (:mod:`.lattices`)
and three registered checks:

- ``"buffer-safety"`` (:mod:`.buffer_safety`) — use-after-dealloc,
  double-dealloc, leaks, read-only-argument writes, statically
  out-of-bounds constant indices;
- ``"range"`` (:mod:`.range_analysis`) — interval analysis over LoSPN
  probability computations, proving where linear-space math underflows
  f64 and warning on non-log intermediates that can reach 0 or ±inf;
- ``"lint"`` (:mod:`.linter`) — unused pure results, dead blocks,
  shadowed symbols, task batch-dim/kernel-signature disagreements.

Entry points: :func:`run_checks` (used by the pass-manager verify-each
instrumentation, the pipeline driver and ``python -m repro analyze``)
and :func:`run_analysis` for running a custom
:class:`DataflowAnalysis` directly.
"""

from .engine import (
    AnalysisContext,
    AnalysisFinding,
    DataflowAnalysis,
    register_check,
    registered_checks,
    run_analysis,
    run_checks,
    severity_at_least,
)
from .lattices import BOTTOM, LOG_F64_MAX, LOG_F64_MIN, TOP, Interval

# Importing the modules registers their checks.
from . import buffer_safety as _buffer_safety  # noqa: F401
from . import linter as _linter  # noqa: F401
from . import memory_access as _memory_access  # noqa: F401
from . import range_analysis as _range_analysis  # noqa: F401

from .buffer_safety import BufferSafetyAnalysis, check_buffer_safety
from .linter import check_lint
from .memory_access import (
    MemoryAccessSummary,
    check_concurrency,
    check_shard_plan,
    dependence_waves,
    summarize_kernel,
)
from .range_analysis import RangeAnalysis, check_range
from .stream_hazards import verify_profile

__all__ = [
    "AnalysisContext",
    "AnalysisFinding",
    "BufferSafetyAnalysis",
    "DataflowAnalysis",
    "Interval",
    "MemoryAccessSummary",
    "RangeAnalysis",
    "BOTTOM",
    "TOP",
    "LOG_F64_MIN",
    "LOG_F64_MAX",
    "check_buffer_safety",
    "check_concurrency",
    "check_lint",
    "check_range",
    "check_shard_plan",
    "dependence_waves",
    "summarize_kernel",
    "verify_profile",
    "register_check",
    "registered_checks",
    "run_analysis",
    "run_checks",
    "severity_at_least",
]
