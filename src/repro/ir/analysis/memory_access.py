"""Per-``lo_spn.task`` memory-access summaries and the race detector.

The concurrency-safety half of the paper's parallel execution story:
PR 7 made shards and streams *dynamically* bit-identical, this analysis
makes their disjointness a *statically checkable* fact, and the
``parallelize-partitions`` pass consumes the proof to run independent
partitions concurrently.

For every task of a ``lo_spn.kernel`` the analysis computes a
:class:`MemoryAccessSummary`: which shared buffers (kernel arguments
and kernel-level allocations) the task reads and writes, with the
touched rows of the static dimension as symbolic :class:`Interval`\\ s
(the range-analysis lattice) and a *batch-confinement* bit per access —
whether the dynamic (batch) dimension is always indexed by the task's
batch induction variable. Accesses the summarizer cannot model (calls,
copies, vector gathers, non-constant static indices) degrade to an
*opaque* full-buffer read+write, which is sound: opaque accesses
conflict with everything.

Three families of rules are reported under the ``concurrency`` check:

- ``concurrency.shard-overlap`` (ERROR) — a task writes a shared buffer
  without confining the batch dimension to its batch index (e.g. a
  ``memref.store`` at a constant batch position). Row-sharded execution
  (PR 7) runs the same task on disjoint row ranges concurrently, so
  such a write races between shards. :func:`check_shard_plan` is the
  plan-level companion used to cross-check a concrete shard plan.
- ``concurrency.task-race`` (ERROR) — two tasks placed in the same wave
  of a declared ``parallelSchedule`` have a RAW/WAR/WAW conflict on a
  shared buffer (overlapping row intervals with at least one write).
- ``concurrency.schedule-order`` (ERROR) — a declared schedule orders a
  dependent task before (or beside) its producer, or references task
  indices that do not exist.

:func:`dependence_waves` computes the maximal safe wave schedule from
the summaries; ``parallelize-partitions`` attaches it to the kernel as
the ``parallelSchedule`` attribute, and this check re-verifies any
attached schedule from scratch on every ``verify_each`` run — the pass
writes the proof, the analysis refuses to take it on faith.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ...diagnostics import Severity
from ..ops import Operation
from ..types import MemRefType
from ..value import Value
from .engine import AnalysisContext, AnalysisFinding, register_check
from .lattices import BOTTOM, TOP, Interval

#: Conflict kinds, named from the perspective of program order (the
#: first task is the earlier one).
RAW = "raw"
WAR = "war"
WAW = "waw"


@dataclass
class BufferAccess:
    """Summary of one task's accesses to one shared buffer."""

    reads: Interval = BOTTOM
    writes: Interval = BOTTOM
    #: Every read/write indexes the batch dimension with the task's own
    #: batch induction variable (row-sharding is then race-free).
    batch_confined: bool = True
    #: The summarizer could not model some access — assume full overlap.
    opaque: bool = False

    def add_read(self, rows: Interval, confined: bool) -> None:
        self.reads = self.reads.join(rows)
        self.batch_confined = self.batch_confined and confined

    def add_write(self, rows: Interval, confined: bool) -> None:
        self.writes = self.writes.join(rows)
        self.batch_confined = self.batch_confined and confined

    def make_opaque(self) -> None:
        self.opaque = True
        self.reads = TOP
        self.writes = TOP
        self.batch_confined = False


@dataclass
class MemoryAccessSummary:
    """Read/write sets of one ``lo_spn.task`` over shared buffers."""

    index: int
    op: Operation
    #: canonical shared buffer value -> access summary
    accesses: Dict[Value, BufferAccess] = field(default_factory=dict)
    #: True when every access was modeled precisely.
    precise: bool = True

    def access(self, buffer: Value) -> BufferAccess:
        entry = self.accesses.get(buffer)
        if entry is None:
            entry = BufferAccess()
            self.accesses[buffer] = entry
        return entry


def _intervals_overlap(a: Interval, b: Interval) -> bool:
    if a.is_bottom or b.is_bottom:
        return False
    return a.lo <= b.hi and b.lo <= a.hi


def conflicts(
    first: MemoryAccessSummary, second: MemoryAccessSummary
) -> List[Tuple[Value, str]]:
    """RAW/WAR/WAW conflicts between two tasks (first = program-earlier)."""
    found: List[Tuple[Value, str]] = []
    for buffer, a in first.accesses.items():
        b = second.accesses.get(buffer)
        if b is None:
            continue
        if _intervals_overlap(a.writes, b.writes):
            found.append((buffer, WAW))
        if _intervals_overlap(a.writes, b.reads):
            found.append((buffer, RAW))
        if _intervals_overlap(a.reads, b.writes):
            found.append((buffer, WAR))
    return found


def dependence_waves(summaries: Sequence[MemoryAccessSummary]) -> List[List[int]]:
    """Topological wave levels of the task dependence DAG.

    Tasks in the same wave are pairwise conflict-free by construction:
    any pair with a conflict receives a dependence edge (program order
    gives its direction), which forces them onto different levels.
    """
    levels: List[int] = []
    for j, summary in enumerate(summaries):
        level = 0
        for i in range(j):
            if conflicts(summaries[i], summary):
                level = max(level, levels[i] + 1)
        levels.append(level)
    waves: List[List[int]] = [[] for _ in range(max(levels, default=-1) + 1)]
    for index, level in enumerate(levels):
        waves[level].append(index)
    return waves


# -- summarization -------------------------------------------------------------


def _is_buffer(value: Value) -> bool:
    return isinstance(value.type, MemRefType)


def _constant_index(value: Value) -> Optional[int]:
    defining = value.defining_op
    if defining is None or defining.op_name != "arith.constant":
        return None
    payload = defining.attributes.get("value")
    if isinstance(payload, bool) or not isinstance(payload, (int, float)):
        return None
    if isinstance(payload, float) and not payload.is_integer():
        return None
    return int(payload)


def summarize_kernel(kernel: Operation) -> List[MemoryAccessSummary]:
    """Summarize every task of a ``lo_spn.kernel`` over shared buffers.

    Shared buffers are the kernel's entry-block arguments plus
    ``memref.alloc`` results in the kernel body (the inter-task
    intermediate tensors). Buffers allocated inside a task are private
    and never appear in a summary.
    """
    shared: Dict[int, Value] = {}
    if kernel.regions and kernel.regions[0].blocks:
        for arg in kernel.regions[0].entry_block.arguments:
            if _is_buffer(arg):
                shared[id(arg)] = arg
    for op in kernel.regions[0].entry_block.ops:
        if op.op_name == "memref.alloc" and op.results:
            shared[id(op.results[0])] = op.results[0]

    summaries: List[MemoryAccessSummary] = []
    for index, task in enumerate(
        op for op in kernel.walk() if op.op_name == "lo_spn.task"
    ):
        summaries.append(_summarize_task(index, task, shared))
    return summaries


def _summarize_task(
    index: int, task: Operation, shared: Dict[int, Value]
) -> MemoryAccessSummary:
    summary = MemoryAccessSummary(index=index, op=task)
    if not task.regions or not task.regions[0].blocks:
        return summary
    args = task.regions[0].entry_block.arguments
    batch_index = args[0] if args else None
    alias: Dict[int, Value] = {}
    for arg, operand in zip(args[1:], task.operands):
        if _is_buffer(arg) and id(operand) in shared:
            alias[id(arg)] = operand

    def canonical(value: Value) -> Optional[Value]:
        value = alias.get(id(value), value)
        return shared.get(id(value))

    for op in task.walk():
        if op is task:
            continue
        _summarize_op(op, summary, canonical, batch_index)
    return summary


def _summarize_op(op, summary, canonical, batch_index) -> None:
    name = op.op_name
    if name == "lo_spn.batch_read":
        buffer = canonical(op.operands[0])
        if buffer is None:
            return
        rows = Interval.point(op.attributes.get("staticIndex", 0))
        confined = len(op.operands) > 1 and op.operands[1] is batch_index
        summary.access(buffer).add_read(rows, confined)
    elif name == "lo_spn.batch_write":
        buffer = canonical(op.operands[0])
        if buffer is None:
            return
        num_values = max(1, len(op.operands) - 2)
        rows = Interval(0, num_values - 1)
        confined = len(op.operands) > 1 and op.operands[1] is batch_index
        summary.access(buffer).add_write(rows, confined)
    elif name in ("memref.load", "memref.store"):
        buffer_pos = 0 if name == "memref.load" else 1
        buffer = canonical(op.operands[buffer_pos])
        if buffer is None:
            return
        rows, confined = _explicit_indices(op, buffer_pos, batch_index)
        access = summary.access(buffer)
        if name == "memref.load":
            access.add_read(rows, confined)
        else:
            access.add_write(rows, confined)
    elif name == "memref.dim":
        return  # metadata only
    elif name in ("memref.copy",):
        for pos, write in ((0, False), (1, True)):
            buffer = canonical(op.operands[pos])
            if buffer is None:
                continue
            access = summary.access(buffer)
            if write:
                access.add_write(TOP, False)
            else:
                access.add_read(TOP, False)
        summary.precise = False
    else:
        # Anything else touching a shared buffer is unmodeled: calls,
        # vector loads/gathers, casts. Degrade to opaque.
        touched = False
        for operand in op.operands:
            if not _is_buffer(operand):
                continue
            buffer = canonical(operand)
            if buffer is None:
                continue
            summary.access(buffer).make_opaque()
            touched = True
        if touched:
            summary.precise = False


def _explicit_indices(
    op: Operation, buffer_pos: int, batch_index
) -> Tuple[Interval, bool]:
    """Row interval + batch confinement for ``memref.load``/``store``.

    Intermediate and result buffers are laid out ``[rows x batch]``:
    dimension 0 is the static row, dimension 1 the dynamic batch. The
    input buffer is ``[batch x features]``; its batch dimension is 0.
    """
    buffer_type = op.operands[buffer_pos].type
    indices = op.operands[buffer_pos + 1 :]
    if not isinstance(buffer_type, MemRefType) or len(indices) != buffer_type.rank:
        return TOP, False
    shape = buffer_type.shape
    batch_dim = next(
        (d for d, extent in enumerate(shape) if extent is None), None
    )
    rows = BOTTOM
    confined = True
    for dim, index_value in enumerate(indices):
        if dim == batch_dim:
            if index_value is not batch_index:
                confined = False
            continue
        constant = _constant_index(index_value)
        if constant is None:
            rows = TOP
        else:
            rows = rows.join(Interval.point(constant))
    if rows.is_bottom:
        rows = Interval.point(0)
    return rows, confined


# -- schedule parsing ----------------------------------------------------------


def parse_schedule(kernel: Operation) -> Optional[Dict[str, Any]]:
    """Decode the ``parallelSchedule`` attribute, if present."""
    raw = kernel.attributes.get("parallelSchedule")
    if raw is None:
        return None
    if isinstance(raw, str):
        try:
            raw = json.loads(raw)
        except ValueError:
            return None
    return raw if isinstance(raw, dict) else None


# -- the registered check ------------------------------------------------------


def _describe(buffer: Value) -> str:
    from .buffer_safety import _describe_buffer

    return _describe_buffer(buffer)


def check_concurrency(root: Operation, ctx: AnalysisContext) -> None:
    """Registry entry point for the ``concurrency`` check."""
    kernels = (
        [root]
        if root.op_name == "lo_spn.kernel"
        else [op for op in root.walk() if op.op_name == "lo_spn.kernel"]
    )
    for kernel in kernels:
        summaries = summarize_kernel(kernel)
        _check_shard_confinement(summaries, ctx)
        schedule = parse_schedule(kernel)
        if schedule is not None:
            _check_schedule(kernel, summaries, schedule, ctx)


def _check_shard_confinement(
    summaries: Sequence[MemoryAccessSummary], ctx: AnalysisContext
) -> None:
    for summary in summaries:
        for buffer, access in summary.accesses.items():
            if access.writes.is_bottom or access.batch_confined:
                continue
            ctx.report(
                "concurrency.shard-overlap",
                Severity.ERROR,
                f"task #{summary.index} writes {_describe(buffer)} without "
                f"confining the batch dimension to its batch index — "
                f"row-sharded execution would race on the overlapping "
                f"element(s)",
                op=summary.op,
                task=summary.index,
                buffer=_describe(buffer),
                rows=(access.writes.lo, access.writes.hi),
            )


def _check_schedule(
    kernel: Operation,
    summaries: Sequence[MemoryAccessSummary],
    schedule: Dict[str, Any],
    ctx: AnalysisContext,
) -> None:
    waves = schedule.get("waves")
    if not isinstance(waves, list):
        return
    num_tasks = len(summaries)
    wave_of: Dict[int, int] = {}
    for level, wave in enumerate(waves):
        for index in wave:
            if not isinstance(index, int) or not 0 <= index < num_tasks:
                ctx.report(
                    "concurrency.schedule-order",
                    Severity.ERROR,
                    f"parallelSchedule references task #{index}, but the "
                    f"kernel has {num_tasks} task(s)",
                    op=kernel,
                )
                return
            if index in wave_of:
                ctx.report(
                    "concurrency.schedule-order",
                    Severity.ERROR,
                    f"parallelSchedule places task #{index} in more than "
                    f"one wave",
                    op=kernel,
                )
                return
            wave_of[index] = level
    if len(wave_of) != num_tasks:
        missing = sorted(set(range(num_tasks)) - set(wave_of))
        ctx.report(
            "concurrency.schedule-order",
            Severity.ERROR,
            f"parallelSchedule omits task(s) {missing}",
            op=kernel,
        )
        return
    kinds = {RAW: "read-after-write", WAR: "write-after-read",
             WAW: "write-after-write"}
    for j in range(num_tasks):
        for i in range(j):
            for buffer, kind in conflicts(summaries[i], summaries[j]):
                if wave_of[i] == wave_of[j]:
                    ctx.report(
                        "concurrency.task-race",
                        Severity.ERROR,
                        f"tasks #{i} and #{j} are scheduled in the same "
                        f"wave but have a {kinds[kind].upper()} ({kind}) "
                        f"conflict on {_describe(buffer)}",
                        op=summaries[j].op,
                        tasks=(i, j),
                        kind=kind,
                        buffer=_describe(buffer),
                    )
                elif wave_of[i] > wave_of[j]:
                    ctx.report(
                        "concurrency.schedule-order",
                        Severity.ERROR,
                        f"parallelSchedule runs task #{j} (wave "
                        f"{wave_of[j]}) before its {kinds[kind]} "
                        f"dependency task #{i} (wave {wave_of[i]}) on "
                        f"{_describe(buffer)}",
                        op=summaries[j].op,
                        tasks=(i, j),
                        kind=kind,
                    )


# -- shard-plan cross-check ----------------------------------------------------


def check_shard_plan(
    ranges: Sequence[Tuple[int, int]], total: Optional[int] = None
) -> List[AnalysisFinding]:
    """Statically verify a concrete shard plan is disjoint and covering.

    The runtime counterpart of the shard-confinement rule: given the
    ``(start, end)`` row ranges a sharded run would execute, report
    overlapping shards (two workers writing the same output rows) and —
    when ``total`` is given — coverage gaps (rows never computed).
    """
    findings: List[AnalysisFinding] = []
    ordered = sorted(ranges)
    for (a_start, a_end), (b_start, b_end) in zip(ordered, ordered[1:]):
        if b_start < a_end:
            findings.append(
                AnalysisFinding(
                    check="concurrency.shard-overlap",
                    severity=Severity.ERROR,
                    message=(
                        f"shard plan ranges [{a_start}, {a_end}) and "
                        f"[{b_start}, {b_end}) overlap on rows "
                        f"[{b_start}, {min(a_end, b_end)}) — concurrent "
                        f"shards would write the same output rows"
                    ),
                    detail={"ranges": [(a_start, a_end), (b_start, b_end)]},
                )
            )
    if total is not None:
        position = 0
        for start, end in ordered:
            if start > position:
                findings.append(
                    AnalysisFinding(
                        check="concurrency.shard-gap",
                        severity=Severity.ERROR,
                        message=(
                            f"shard plan never computes rows "
                            f"[{position}, {start})"
                        ),
                        detail={"gap": (position, start)},
                    )
                )
            position = max(position, end)
        if position < total:
            findings.append(
                AnalysisFinding(
                    check="concurrency.shard-gap",
                    severity=Severity.ERROR,
                    message=(
                        f"shard plan never computes rows "
                        f"[{position}, {total})"
                    ),
                    detail={"gap": (position, total)},
                )
            )
    return findings


register_check("concurrency", check_concurrency)
