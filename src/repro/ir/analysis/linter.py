"""Def-use and structural linter.

Pure IR-shape checks that need no dataflow state — a single walk over
the module. Registered as the ``"lint"`` check:

- ``lint.unused-result`` (WARNING) — a side-effect-free op (``PURE`` /
  ``CONSTANT_LIKE``) none of whose results are ever used. Dead pure
  code is a symptom of a broken rewrite; only reported in the "final"
  phase because between passes (before DCE has swept) it is transient
  and expected.
- ``lint.dead-block`` (WARNING) — a non-entry block. This IR has no
  branch terminators, so every non-entry block is unreachable code.
- ``lint.shadowed-symbol`` (ERROR) — two function-like ops sharing one
  ``sym_name`` inside the same symbol table (``builtin.module`` or
  ``gpu.module``); calls and kernel launches resolve by name, so the
  later definition silently shadows the earlier one.
- ``lint.batch-dim-mismatch`` (ERROR) — a task's batch access ops
  disagree with the buffer shapes of the enclosing kernel signature:
  a ``batch_write``/``batch_collect`` whose static result-count extent
  differs from the number of values written, or a ``batch_read``/
  ``batch_extract`` whose orientation (``transposed``) puts the static
  feature index on the buffer's dynamic axis while the batch runs over
  a static axis (i.e. the access is transposed relative to the data).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ...diagnostics import Severity
from ..ops import Operation
from ..traits import Trait
from ..types import MemRefType, TensorType
from .engine import AnalysisContext, register_check

_SYMBOL_TABLE_OPS = frozenset({"builtin.module", "gpu.module"})


def check_lint(root: Operation, ctx: AnalysisContext) -> None:
    """Registry entry point: run all structural lint rules over ``root``."""
    for op in _self_and_walk(root):
        if op.op_name in _SYMBOL_TABLE_OPS:
            _check_symbol_table(op, ctx)
        _check_dead_blocks(op, ctx)
        if ctx.phase == "final":
            _check_unused_results(op, ctx)
        if op.op_name == "lo_spn.task":
            _check_task_batch_dims(op, ctx)


def _self_and_walk(root: Operation):
    yield root
    yield from root.walk()


def _check_unused_results(op: Operation, ctx: AnalysisContext) -> None:
    if not op.results:
        return
    if not (op.has_trait(Trait.PURE) or op.has_trait(Trait.CONSTANT_LIKE)):
        return
    if any(result.has_uses for result in op.results):
        return
    ctx.report(
        "lint.unused-result",
        Severity.WARNING,
        f"side-effect-free '{op.op_name}' has no used results "
        f"(dead code a rewrite left behind)",
        op=op,
    )


def _check_dead_blocks(op: Operation, ctx: AnalysisContext) -> None:
    for region_index, region in enumerate(op.regions):
        for block_index, _block in enumerate(region.blocks):
            if block_index == 0:
                continue
            ctx.report(
                "lint.dead-block",
                Severity.WARNING,
                f"block #{block_index} of region #{region_index} of "
                f"'{op.op_name}' is unreachable (no branch terminators "
                f"exist in this IR)",
                op=op,
            )


def _check_symbol_table(table: Operation, ctx: AnalysisContext) -> None:
    seen: Dict[str, Operation] = {}
    for region in table.regions:
        for block in region.blocks:
            for op in block.ops:
                name = op.attributes.get("sym_name")
                if not isinstance(name, str):
                    continue
                if not (
                    op.has_trait(Trait.FUNCTION_LIKE)
                    or op.op_name in _SYMBOL_TABLE_OPS
                ):
                    continue
                first = seen.get(name)
                if first is not None:
                    ctx.report(
                        "lint.shadowed-symbol",
                        Severity.ERROR,
                        f"symbol '{name}' is defined twice in the same "
                        f"symbol table; this '{op.op_name}' shadows the "
                        f"earlier '{first.op_name}'",
                        op=op,
                        first_definition=first.path(),
                    )
                else:
                    seen[name] = op


def _check_task_batch_dims(task: Operation, ctx: AnalysisContext) -> None:
    for op in task.walk():
        name = op.op_name
        if name in ("lo_spn.batch_read", "lo_spn.batch_extract"):
            _check_batch_access_orientation(op, ctx)
        elif name in ("lo_spn.batch_write", "lo_spn.batch_collect"):
            _check_batch_result_extent(op, ctx)


def _rank2_shape(op: Operation, operand_index: int):
    ty = op.operands[operand_index].type
    if isinstance(ty, (MemRefType, TensorType)) and ty.rank == 2:
        return ty, ty.shape
    return None, None


def _check_batch_access_orientation(op: Operation, ctx: AnalysisContext) -> None:
    ty, shape = _rank2_shape(op, 0)
    if ty is None:
        return
    transposed = op.attributes.get("transposed", False)
    static_dim = 0 if transposed else 1  # axis indexed by staticIndex
    batch_dim = 1 - static_dim
    if shape[static_dim] is None and shape[batch_dim] is not None:
        ctx.report(
            "lint.batch-dim-mismatch",
            Severity.ERROR,
            f"'{op.op_name}' (transposed={transposed}) puts its static "
            f"feature index on the dynamic axis of {ty} while the batch "
            f"runs over a static axis; the access orientation disagrees "
            f"with the kernel signature",
            op=op,
        )


def _check_batch_result_extent(op: Operation, ctx: AnalysisContext) -> None:
    if op.op_name == "lo_spn.batch_write":
        ty, shape = _rank2_shape(op, 0)
        written = len(op.operands) - 2  # buffer, batch index, values...
    else:  # batch_collect: result tensor
        result_type = op.results[0].type if op.results else None
        if not isinstance(result_type, TensorType) or result_type.rank != 2:
            return
        ty, shape = result_type, result_type.shape
        written = len(op.operands) - 1  # batch index, values...
    if ty is None:
        return
    transposed = op.attributes.get("transposed", False)
    result_dim = 0 if transposed else 1
    extent = shape[result_dim]
    if extent is not None and extent != written:
        ctx.report(
            "lint.batch-dim-mismatch",
            Severity.ERROR,
            f"'{op.op_name}' writes {written} value(s) per sample but the "
            f"result extent of {ty} along dimension {result_dim} is "
            f"{extent}; the task disagrees with the kernel signature",
            op=op,
        )


register_check("lint", check_lint)
