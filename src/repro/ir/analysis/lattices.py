"""Join-semilattices for the dataflow analyses.

Two lattice families cover the registered analyses:

- :class:`Interval` — the classic numeric interval domain ``[lo, hi]``
  over extended reals, used by the log-space range analysis. ``BOTTOM``
  (the empty interval) means "no execution reaches this value yet";
  ``TOP`` is ``[-inf, +inf]``. Arithmetic transfer helpers implement
  the monotone interval extensions of the operations the LoSPN dialect
  can perform on probabilities (add, mul, exp, log, log-add-exp).
- :func:`join_flags` — the powerset lattice over small state-flag sets
  (e.g. buffer states ``{ALLOCATED}`` / ``{FREED}``), with union as
  join. Kept as plain ``frozenset`` values; the helper exists so
  analyses spell joins uniformly.

Every operation here is a *may*-approximation: joins only ever grow the
result, which is what guarantees fixpoint termination in the engine
(together with widening for loop-carried values).
"""

from __future__ import annotations

import math
from typing import FrozenSet, Iterable, Tuple

#: log(smallest positive normal f64): below this, ``exp`` underflows.
LOG_F64_MIN = math.log(2.2250738585072014e-308)  # ~ -708.396

#: Smallest positive normal f64; linear-space values below it denormalize
#: and eventually flush to zero.
F64_MIN = 2.2250738585072014e-308

#: log(largest finite f64): above this, ``exp`` overflows to +inf.
LOG_F64_MAX = math.log(1.7976931348623157e308)  # ~ +709.78


class Interval:
    """A closed interval ``[lo, hi]`` over the extended reals.

    Immutable value object. The empty interval (bottom) is represented
    by ``lo > hi`` and uniqued through :data:`Interval.BOTTOM`.
    """

    __slots__ = ("lo", "hi")

    def __init__(self, lo: float, hi: float):
        self.lo = float(lo)
        self.hi = float(hi)

    # -- constructors ------------------------------------------------------

    @classmethod
    def point(cls, value: float) -> "Interval":
        return cls(value, value)

    @classmethod
    def of(cls, values: Iterable[float]) -> "Interval":
        values = [float(v) for v in values]
        if not values:
            return BOTTOM
        return cls(min(values), max(values))

    # -- lattice structure -------------------------------------------------

    @property
    def is_bottom(self) -> bool:
        return self.lo > self.hi

    def join(self, other: "Interval") -> "Interval":
        if self.is_bottom:
            return other
        if other.is_bottom:
            return self
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def widen(self, other: "Interval") -> "Interval":
        """Classic interval widening: jump unstable bounds to infinity."""
        if self.is_bottom:
            return other
        if other.is_bottom:
            return self
        lo = self.lo if other.lo >= self.lo else -math.inf
        hi = self.hi if other.hi <= self.hi else math.inf
        return Interval(lo, hi)

    def __eq__(self, other) -> bool:
        if not isinstance(other, Interval):
            return NotImplemented
        if self.is_bottom and other.is_bottom:
            return True
        return self.lo == other.lo and self.hi == other.hi

    def __hash__(self) -> int:
        if self.is_bottom:
            return hash("interval-bottom")
        return hash((self.lo, self.hi))

    def __repr__(self) -> str:
        if self.is_bottom:
            return "Interval(⊥)"
        return f"Interval[{self.lo:.6g}, {self.hi:.6g}]"

    # -- predicates --------------------------------------------------------

    def contains(self, value: float) -> bool:
        return not self.is_bottom and self.lo <= value <= self.hi

    @property
    def is_point(self) -> bool:
        return not self.is_bottom and self.lo == self.hi

    # -- arithmetic transfer functions -------------------------------------

    def add(self, other: "Interval") -> "Interval":
        if self.is_bottom or other.is_bottom:
            return BOTTOM
        return Interval(_safe_add(self.lo, other.lo), _safe_add(self.hi, other.hi))

    def sub(self, other: "Interval") -> "Interval":
        if self.is_bottom or other.is_bottom:
            return BOTTOM
        return Interval(_safe_add(self.lo, -other.hi), _safe_add(self.hi, -other.lo))

    def neg(self) -> "Interval":
        if self.is_bottom:
            return BOTTOM
        return Interval(-self.hi, -self.lo)

    def mul(self, other: "Interval") -> "Interval":
        if self.is_bottom or other.is_bottom:
            return BOTTOM
        products = [
            _safe_mul(a, b)
            for a in (self.lo, self.hi)
            for b in (other.lo, other.hi)
        ]
        return Interval(min(products), max(products))

    def exp(self) -> "Interval":
        if self.is_bottom:
            return BOTTOM
        return Interval(_safe_exp(self.lo), _safe_exp(self.hi))

    def log(self) -> "Interval":
        """Monotone log; negative inputs clamp to the empty set below 0."""
        if self.is_bottom or self.hi < 0:
            return BOTTOM
        return Interval(_safe_log(max(self.lo, 0.0)), _safe_log(self.hi))

    def logaddexp(self, other: "Interval") -> "Interval":
        """Transfer for log-space probability addition."""
        if self.is_bottom or other.is_bottom:
            return BOTTOM
        return Interval(
            _logaddexp(self.lo, other.lo), _logaddexp(self.hi, other.hi)
        )

    def min_with(self, other: "Interval") -> "Interval":
        if self.is_bottom or other.is_bottom:
            return BOTTOM
        return Interval(min(self.lo, other.lo), min(self.hi, other.hi))

    def max_with(self, other: "Interval") -> "Interval":
        if self.is_bottom or other.is_bottom:
            return BOTTOM
        return Interval(max(self.lo, other.lo), max(self.hi, other.hi))


#: The empty interval (no reachable value).
BOTTOM = Interval(math.inf, -math.inf)

#: The full extended-real line (unknown value).
TOP = Interval(-math.inf, math.inf)

#: A probability in linear space.
UNIT = Interval(0.0, 1.0)

#: A probability in log space (stored representation of !lo_spn.log<T>).
LOG_UNIT = Interval(-math.inf, 0.0)


def _safe_add(a: float, b: float) -> float:
    """IEEE addition that resolves inf + -inf conservatively.

    In interval bounds the indeterminate form must not produce NaN; the
    conservative resolution for a *may*-analysis picks the bound that
    keeps the interval sound, which joining with both infinities does.
    The callers only ever hit this when one side is already unbounded,
    so returning the first infinite operand is sound for lo/hi alike.
    """
    result = a + b
    if math.isnan(result):
        return a if math.isinf(a) else b
    return result


def _safe_mul(a: float, b: float) -> float:
    result = a * b
    if math.isnan(result):
        return 0.0 if (a == 0.0 or b == 0.0) else result
    return result


def _safe_exp(x: float) -> float:
    if x == -math.inf:
        return 0.0
    if x > LOG_F64_MAX:
        return math.inf
    return math.exp(x)


def _safe_log(x: float) -> float:
    if x <= 0.0:
        return -math.inf
    if x == math.inf:
        return math.inf
    return math.log(x)


def _logaddexp(a: float, b: float) -> float:
    if a == -math.inf:
        return b
    if b == -math.inf:
        return a
    if math.isinf(a) or math.isinf(b):
        return math.inf
    hi, lo = (a, b) if a >= b else (b, a)
    return hi + math.log1p(math.exp(lo - hi))


# -- flag-set lattice ---------------------------------------------------------


def join_flags(
    a: FrozenSet[str], b: FrozenSet[str]
) -> FrozenSet[str]:
    """Join in the powerset lattice of state flags (set union)."""
    return a | b


def flags(*names: str) -> FrozenSet[str]:
    return frozenset(names)


Flags = FrozenSet[str]
FlagsPair = Tuple[Flags, Flags]
