"""Log-space numeric-range analysis over LoSPN ops.

An interval-lattice dataflow analysis (see :mod:`.lattices`) that makes
the paper's log-space argument a statically checkable fact. Intervals
are seeded from the *parameters* of the leaf distributions:

- ``lo_spn.gaussian`` — the PDF peaks at ``1/(σ√(2π))`` and decays to 0
  in the tails, so the linear interval is ``[0, peak]`` and the log
  interval ``[-inf, log(peak)]``;
- ``lo_spn.categorical`` — the stored probability table (plus 1.0 when
  ``supportMarginal`` allows the marginalized branch);
- ``lo_spn.histogram`` — the bucket probabilities with the compiler's
  ``HISTOGRAM_EPSILON`` floor applied, exactly as the emitters lower
  them (zero-density buckets become ``1e-12``, not 0).

Intervals then flow through ``lo_spn.mul`` / ``lo_spn.add`` with the
type-directed semantics of ``!lo_spn.log<T>`` (mul is interval addition
in log space, add is log-add-exp) and through ``lo_spn.log`` /
``lo_spn.exp`` conversions. Plain ``arith`` ops propagate intervals
silently — after backend lowering the guarded log-sum-exp expansion
*intentionally* underflows ``exp(lo - hi)`` for distant operands, so
only LoSPN-level probability values are judged:

- ``range.proven-underflow`` (NOTE) — a log-space value whose entire
  interval lies at or below ``log(DBL_MIN)``: evaluating the same
  expression in linear space is *proven* to flush to zero, i.e. the
  log-space representation is required, not a stylistic choice.
- ``range.linear-underflow`` (WARNING) — a non-log intermediate whose
  interval reaches below the smallest positive normal f64 (it can
  denormalize or flush to exactly 0, silently zeroing every product
  above it).
- ``range.overflow`` (WARNING) — a non-log intermediate that can reach
  ``±inf`` (e.g. ``lo_spn.exp`` of an unbounded log value).
"""

from __future__ import annotations

import json
import math
from typing import Any, Optional

from ...diagnostics import Severity
from ..ops import Operation, Region
from ..value import Value
from .engine import AnalysisContext, DataflowAnalysis, register_check, run_analysis
from .lattices import (
    BOTTOM,
    F64_MIN,
    LOG_F64_MIN,
    LOG_UNIT,
    TOP,
    UNIT,
    Interval,
)

#: Probability floor the emitters apply to zero-density histogram buckets
#: (mirrors ``repro.compiler.emitters.HISTOGRAM_EPSILON``).
HISTOGRAM_EPSILON = 1e-12


def _is_log(value: Value) -> bool:
    from ...dialects.lospn import is_log_type

    return is_log_type(value.type)


def _gaussian_peak(stddev: float) -> float:
    if stddev <= 0:
        return math.inf
    return 1.0 / (stddev * math.sqrt(2.0 * math.pi))


class RangeAnalysis(DataflowAnalysis):
    """Interval propagation over LoSPN probability computations.

    Alongside intervals the analysis carries an *evidence taint*: values
    derived from raw model inputs (``lo_spn.input_value`` evidence /
    noise / moment columns, ``batch_read`` / ``batch_extract`` feature
    loads) are arbitrary reals, not probabilities, so range judgments do
    not apply to them or to arithmetic mixing them in — while untainted
    probability arithmetic (leaf distributions and their combinations)
    is still judged precisely. Leaf distributions *consume* evidence and
    produce probabilities, so taint does not flow through them.

    Kernels whose ``queryPlan`` declares ``kind == "expectation"``
    compute likelihood-weighted moments in linear space by design
    (moments have no log-space representation), so the linear-space
    underflow/overflow judgments are suppressed for them.
    """

    name = "range"

    def __init__(self) -> None:
        self._tainted: set = set()
        self._linear_by_design = False

    def initial_state(self, func: Operation, ctx: AnalysisContext) -> Any:
        self._tainted = set()
        self._linear_by_design = _is_linear_by_design(func)
        return {}

    def join_facts(self, a: Interval, b: Interval) -> Interval:
        return a.join(b)

    def widen_states(self, old: Any, new: Any) -> Any:
        widened = dict(new)
        for key, fact in old.items():
            if key in widened:
                widened[key] = fact.widen(widened[key])
            else:
                widened[key] = fact
        return widened

    # -- region hooks ------------------------------------------------------

    def enter_region(
        self, op: Operation, region: Region, state: Any, ctx: AnalysisContext
    ) -> Any:
        if not region.blocks:
            return state
        args = region.entry_block.arguments
        if op.op_name == "lo_spn.body":
            for arg, operand in zip(args, op.operands):
                fact = state.get(operand)
                if fact is not None:
                    state[arg] = fact
                if operand in self._tainted:
                    self._tainted.add(arg)
        elif op.op_name == "lo_spn.task":
            for arg, operand in zip(args[1:], op.operands):
                fact = state.get(operand)
                if fact is not None:
                    state[arg] = fact
                if operand in self._tainted:
                    self._tainted.add(arg)
        return state

    # -- transfer ----------------------------------------------------------

    #: Arithmetic through which evidence taint flows operand → result.
    _TAINT_PROPAGATING = frozenset(
        {
            "lo_spn.mul",
            "lo_spn.add",
            "lo_spn.max",
            "lo_spn.log",
            "lo_spn.exp",
            "lo_spn.select_max",
        }
    )

    def transfer(self, op: Operation, state: Any, ctx: AnalysisContext) -> Any:
        self._propagate_taint(op)
        interval = self._evaluate(op, state)
        if interval is None:
            return state
        result = op.results[0]
        state[result] = interval
        self._judge(op, result, interval, ctx)
        return state

    def _propagate_taint(self, op: Operation) -> None:
        if not op.results:
            return
        name = op.op_name
        if name == "lo_spn.input_value":
            # Raw evidence / noise column / moment value: not a
            # probability, whatever type it is stored in.
            self._tainted.update(op.results)
            return
        if name in ("lo_spn.batch_extract", "lo_spn.batch_read"):
            # Feature loads from the input tensor (transposed=False) are
            # evidence; transposed reads pull imported intermediate
            # probability rows and stay judged.
            if not op.attributes.get("transposed", False):
                self._tainted.update(op.results)
            return
        if (
            name in self._TAINT_PROPAGATING
            or name.startswith("arith.")
            or name.startswith("math.")
        ) and any(operand in self._tainted for operand in op.operands):
            self._tainted.update(op.results)

    def _evaluate(self, op: Operation, state: Any) -> Optional[Interval]:
        name = op.op_name
        if not op.results:
            return None
        result = op.results[0]

        if name == "lo_spn.gaussian":
            peak = _gaussian_peak(op.attributes.get("stddev", 1.0))
            if _is_log(result):
                return Interval(-math.inf, _log(peak))
            return Interval(0.0, peak)
        if name == "lo_spn.categorical":
            probs = list(op.attributes.get("probabilities", ()))
            if op.attributes.get("supportMarginal", False):
                probs.append(1.0)
            return self._table_interval(probs, log=_is_log(result), floor=None)
        if name == "lo_spn.histogram":
            probs = list(op.attributes.get("probabilities", ()))
            if op.attributes.get("supportMarginal", False):
                probs.append(1.0)
            return self._table_interval(
                probs, log=_is_log(result), floor=HISTOGRAM_EPSILON
            )
        if name == "lo_spn.constant":
            return Interval.point(op.attributes.get("value", 0.0))
        if name == "lo_spn.mul":
            lhs, rhs = self._facts(op, state)
            if _is_log(result):
                return lhs.add(rhs)
            product = lhs.mul(rhs)
            if (
                not product.is_bottom
                and product.hi == 0.0
                and lhs.hi > 0.0
                and rhs.hi > 0.0
            ):
                # The product of two positive bounds flushed to zero in
                # the analysis' own f64 arithmetic — the ultimate
                # underflow proof. Keep "can be a positive subnormal"
                # rather than losing positivity to the flush.
                product = Interval(product.lo, 5e-324)
            return product
        if name == "lo_spn.add":
            lhs, rhs = self._facts(op, state)
            return lhs.logaddexp(rhs) if _is_log(result) else lhs.add(rhs)
        if name == "lo_spn.max":
            # Raw-value max in both spaces (log storage is monotone).
            lhs, rhs = self._facts(op, state)
            return lhs.max_with(rhs)
        if name == "lo_spn.log":
            (operand,) = self._facts(op, state)
            return operand.log()
        if name == "lo_spn.exp":
            (operand,) = self._facts(op, state)
            return operand.exp()
        if name in ("lo_spn.batch_extract", "lo_spn.batch_read"):
            # Evidence features: statically unknown.
            return TOP
        if name == "lo_spn.select_max":
            # (scoreA, scoreB, payloadA, payloadB) — the result is the
            # payload of whichever score wins, so its interval is the
            # join of the payload intervals (MPE traceback argmax and
            # sampling noise-perturbed selection both lower to this).
            if len(op.operands) >= 4:
                payload_a = self._fact(op.operands[2], state)
                payload_b = self._fact(op.operands[3], state)
                return payload_a.join(payload_b)
            return TOP
        if name == "lo_spn.input_value":
            # Raw evidence / noise / moment value forwarded into the
            # body; its range is the input domain, statically unknown.
            return TOP
        if name == "arith.constant":
            payload = op.attributes.get("value")
            if isinstance(payload, bool) or not isinstance(
                payload, (int, float)
            ):
                return None
            return Interval.point(float(payload))
        if name == "arith.addf":
            lhs, rhs = self._facts(op, state)
            return lhs.add(rhs)
        if name == "arith.subf":
            lhs, rhs = self._facts(op, state)
            return lhs.sub(rhs)
        if name == "arith.mulf":
            lhs, rhs = self._facts(op, state)
            return lhs.mul(rhs)
        if name == "arith.negf":
            (operand,) = self._facts(op, state)
            return operand.neg()
        if name == "arith.maxf":
            lhs, rhs = self._facts(op, state)
            return lhs.max_with(rhs)
        if name == "arith.minf":
            lhs, rhs = self._facts(op, state)
            return lhs.min_with(rhs)
        if name == "math.exp":
            (operand,) = self._facts(op, state)
            return operand.exp()
        if name == "math.log":
            (operand,) = self._facts(op, state)
            return operand.log()
        return None

    def _facts(self, op: Operation, state: Any):
        return tuple(self._fact(operand, state) for operand in op.operands)

    def _fact(self, value: Value, state: Any) -> Interval:
        fact = state.get(value)
        if fact is not None:
            return fact
        # Unseen values (function args, loop-carried, vectors): unknown,
        # except values typed as probabilities whose bound is structural.
        if _is_log(value):
            return LOG_UNIT
        return TOP

    @staticmethod
    def _table_interval(probs, log: bool, floor: Optional[float]) -> Interval:
        if not probs:
            return BOTTOM
        if floor is not None:
            probs = [max(p, floor) for p in probs]
        if log:
            return Interval.of(_log(p) for p in probs)
        return Interval.of(probs)

    # -- judgments ---------------------------------------------------------

    #: Ops whose result is a probability (linear or log). Evidence reads
    #: (batch_extract/batch_read) carry arbitrary reals and are exempt.
    _PROBABILITY_OPS = frozenset(
        {
            "lo_spn.gaussian",
            "lo_spn.categorical",
            "lo_spn.histogram",
            "lo_spn.mul",
            "lo_spn.add",
            "lo_spn.max",
            "lo_spn.log",
            "lo_spn.exp",
            "lo_spn.constant",
        }
    )

    def _judge(
        self,
        op: Operation,
        result: Value,
        interval: Interval,
        ctx: AnalysisContext,
    ) -> None:
        if interval.is_bottom or op.op_name not in self._PROBABILITY_OPS:
            return
        if result in self._tainted:
            # Evidence-derived value (noise columns, moment pairs, MPE
            # traceback payloads): arbitrary reals, not probabilities.
            return
        if _is_log(result):
            if interval.hi <= LOG_F64_MIN:
                ctx.report(
                    "range.proven-underflow",
                    Severity.NOTE,
                    f"linear-space evaluation of this value is proven to "
                    f"underflow f64: its log-space interval "
                    f"[{interval.lo:.6g}, {interval.hi:.6g}] lies entirely "
                    f"at or below log(DBL_MIN) ≈ {LOG_F64_MIN:.6g}; the "
                    f"log-space representation is load-bearing here",
                    op=op,
                    interval=(interval.lo, interval.hi),
                )
            return
        if op.op_name == "lo_spn.constant":
            # A literal 0.0 (or tiny) weight is the model's own choice,
            # not an arithmetic hazard.
            return
        if self._linear_by_design:
            # Expectation kernels weight moments by linear-space
            # likelihoods on purpose; flagging every product would bury
            # real findings (moments have no log-space representation).
            return
        if 0.0 < F64_MIN and interval.lo < F64_MIN and interval.hi > 0.0:
            ctx.report(
                "range.linear-underflow",
                Severity.WARNING,
                f"non-log intermediate can underflow f64: interval "
                f"[{interval.lo:.6g}, {interval.hi:.6g}] reaches below the "
                f"smallest positive normal ({F64_MIN:.6g}); compute in "
                f"log space (!lo_spn.log) to keep it representable",
                op=op,
                interval=(interval.lo, interval.hi),
            )
        if math.isinf(interval.hi) or math.isinf(interval.lo):
            ctx.report(
                "range.overflow",
                Severity.WARNING,
                f"non-log intermediate can reach ±inf: interval "
                f"[{interval.lo:.6g}, {interval.hi:.6g}]",
                op=op,
                interval=(interval.lo, interval.hi),
            )


def _is_linear_by_design(func: Operation) -> bool:
    """True for kernels whose query plan mandates linear-space math."""
    plan = func.attributes.get("queryPlan")
    if isinstance(plan, str):
        try:
            plan = json.loads(plan)
        except ValueError:
            return False
    return isinstance(plan, dict) and plan.get("kind") == "expectation"


def _log(x: float) -> float:
    if x <= 0.0:
        return -math.inf
    if x == math.inf:
        return math.inf
    return math.log(x)


def check_range(root: Operation, ctx: AnalysisContext) -> None:
    """Registry entry point: run the range analysis over ``root``."""
    run_analysis(RangeAnalysis(), root, ctx)


register_check("range", check_range)
