"""Stream-hazard verifier for the GPU pipeline's execution traces.

The multi-stream executable (PR 7) issues each chunk's H2D → kernel →
D2H sequence on a round-robin stream; correctness rests on two
invariants the device model cannot enforce by construction: concurrent
streams must never touch overlapping memory without an ordering edge,
and event waits must never form a cycle. Streams and events exist only
at runtime — the host IR carries no stream ops — so this verifier runs
over the :class:`~repro.gpusim.device.ExecutionProfile` trace the
simulator records (``reads``/``writes`` byte-range footprints on every
transfer and launch).

Happens-before is the standard vector-clock construction: per-stream
program order (``seq`` within a stream) plus ``record(e) → wait(e)``
edges. Two footprint-overlapping ops on different streams with at
least one write and no happens-before edge in either direction are a
hazard:

- ``stream-hazard.cross-stream-raw`` / ``-war`` / ``-waw`` (ERROR) —
  named from issue order: the earlier op's access vs the later op's.
- ``stream-hazard.deadlock-cycle`` (ERROR) — the dependency graph
  (program order + record→wait) has a cycle: every stream in it waits
  on an event another one has not reached yet; a real device would
  hang here.
- ``stream-hazard.wait-before-record`` (WARNING) — a wait issued
  before its event was ever recorded (outside any cycle); CUDA treats
  this as a no-op wait, which almost always means a lost ordering edge.

:func:`verify_profile` returns findings; :func:`dump_trace_reproducer`
writes a *shrunken* JSON reproducer (only the ops involved in findings
plus every event/wait) under ``$SPNC_ARTIFACT_DIR``, and
:func:`profile_from_json` round-trips it for replay — re-running
:func:`verify_profile` on a loaded reproducer reproduces the findings.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Tuple

from ...diagnostics import Severity, artifact_directory
from ...gpusim.device import (
    EventRecord,
    ExecutionProfile,
    LaunchRecord,
    TransferRecord,
    WaitRecord,
)
from .engine import AnalysisFinding


def _spans_overlap(a, b) -> bool:
    for space_a, lo_a, hi_a in a:
        for space_b, lo_b, hi_b in b:
            if space_a == space_b and lo_a < hi_b and lo_b < hi_a:
                return True
    return False


def _op_label(op) -> str:
    if isinstance(op, TransferRecord):
        return f"memcpy[{op.direction}](stream={op.stream}, seq={op.seq})"
    return f"launch[{op.kernel}](stream={op.stream}, seq={op.seq})"


def verify_profile(profile: ExecutionProfile) -> List[AnalysisFinding]:
    """Check one execution trace for cross-stream hazards and deadlocks."""
    findings: List[AnalysisFinding] = []
    ops = sorted(
        list(profile.transfers)
        + list(profile.launches)
        + list(profile.events)
        + list(profile.waits),
        key=lambda op: op.seq,
    )

    cycle = _find_dependency_cycle(ops)
    if cycle is not None:
        findings.append(
            AnalysisFinding(
                check="stream-hazard.deadlock-cycle",
                severity=Severity.ERROR,
                message=(
                    "event-wait cycle: "
                    + " -> ".join(_node_label(op) for op in cycle)
                    + " -> "
                    + _node_label(cycle[0])
                    + " — every stream in the cycle waits on an event "
                    "another has not reached; a real device would hang"
                ),
                detail={
                    "streams": sorted({op.stream for op in cycle}),
                    "seqs": [op.seq for op in cycle],
                },
            )
        )
        # A cyclic trace has no consistent happens-before order; the
        # race check below would report arbitrary extras, so stop here.
        return findings

    clocks, unmatched_waits = _vector_clocks(ops)
    for wait in unmatched_waits:
        findings.append(
            AnalysisFinding(
                check="stream-hazard.wait-before-record",
                severity=Severity.WARNING,
                message=(
                    f"stream {wait.stream} waits on event {wait.event_id} "
                    f"(seq={wait.seq}) before it is recorded — the wait "
                    f"is a no-op and orders nothing"
                ),
                detail={"stream": wait.stream, "event": wait.event_id,
                        "seq": wait.seq},
            )
        )

    memory_ops = [
        op for op in ops if isinstance(op, (TransferRecord, LaunchRecord))
    ]
    for j, later in enumerate(memory_ops):
        for earlier in memory_ops[:j]:
            if earlier.stream == later.stream:
                continue
            if _happens_before(earlier, later, clocks):
                continue
            kind = None
            if _spans_overlap(earlier.writes, later.writes):
                kind = "waw"
            elif _spans_overlap(earlier.writes, later.reads):
                kind = "raw"
            elif _spans_overlap(earlier.reads, later.writes):
                kind = "war"
            if kind is None:
                continue
            names = {"raw": "read-after-write", "war": "write-after-read",
                     "waw": "write-after-write"}
            findings.append(
                AnalysisFinding(
                    check=f"stream-hazard.cross-stream-{kind}",
                    severity=Severity.ERROR,
                    message=(
                        f"{names[kind]} hazard: {_op_label(later)} and "
                        f"{_op_label(earlier)} touch overlapping memory "
                        f"on different streams with no happens-before "
                        f"edge between them"
                    ),
                    detail={
                        "kind": kind,
                        "ops": [_op_label(earlier), _op_label(later)],
                        "streams": [earlier.stream, later.stream],
                        "seqs": [earlier.seq, later.seq],
                    },
                )
            )
    return findings


def _node_label(op) -> str:
    if isinstance(op, EventRecord):
        return f"record(event={op.event_id}, stream={op.stream})"
    if isinstance(op, WaitRecord):
        return f"wait(event={op.event_id}, stream={op.stream})"
    return _op_label(op)


def _find_dependency_cycle(ops) -> Optional[List[Any]]:
    """A cycle in program-order + record→wait edges, or ``None``.

    Program-order edges run between consecutive ops of each stream;
    a ``wait`` additionally depends on the matching ``record``. All
    program-order edges point forward in ``seq``, so any cycle must
    use a record→wait edge pointing backward — i.e. a wait issued
    before its event is recorded, closed into a loop by another
    stream's symmetric wait.
    """
    edges: Dict[int, List[int]] = {id(op): [] for op in ops}
    by_stream: Dict[int, Any] = {}
    record_of: Dict[int, Any] = {}
    for op in ops:
        previous = by_stream.get(op.stream)
        if previous is not None:
            edges[id(previous)].append(id(op))
        by_stream[op.stream] = op
        if isinstance(op, EventRecord):
            record_of[op.event_id] = op
    for op in ops:
        if isinstance(op, WaitRecord):
            record = record_of.get(op.event_id)
            if record is not None:
                edges[id(record)].append(id(op))
    by_id = {id(op): op for op in ops}
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {node: WHITE for node in edges}
    parent: Dict[int, int] = {}
    for root in edges:
        if color[root] != WHITE:
            continue
        stack = [(root, iter(edges[root]))]
        color[root] = GRAY
        while stack:
            node, successors = stack[-1]
            advanced = False
            for succ in successors:
                if color[succ] == WHITE:
                    color[succ] = GRAY
                    parent[succ] = node
                    stack.append((succ, iter(edges[succ])))
                    advanced = True
                    break
                if color[succ] == GRAY:
                    cycle = [node]
                    while cycle[-1] != succ:
                        cycle.append(parent[cycle[-1]])
                    cycle.reverse()
                    return [by_id[n] for n in cycle]
            if not advanced:
                color[node] = BLACK
                stack.pop()
    return None


def _vector_clocks(ops) -> Tuple[Dict[int, Dict[int, int]], List[WaitRecord]]:
    """Vector clock per op (keyed by ``id(op)``) and unmatched waits.

    Clock component ``clock[s]`` counts ops of stream ``s`` that
    happened before (and including, for the op's own stream) this op.
    """
    stream_clock: Dict[int, Dict[int, int]] = {}
    event_clock: Dict[int, Dict[int, int]] = {}
    recorded: set = set()
    clocks: Dict[int, Dict[int, int]] = {}
    unmatched: List[WaitRecord] = []
    for op in ops:
        clock = dict(stream_clock.setdefault(op.stream, {op.stream: 0}))
        if isinstance(op, WaitRecord):
            if op.event_id in recorded:
                for stream, count in event_clock[op.event_id].items():
                    clock[stream] = max(clock.get(stream, 0), count)
            else:
                unmatched.append(op)
        clock[op.stream] = clock.get(op.stream, 0) + 1
        clocks[id(op)] = clock
        stream_clock[op.stream] = clock
        if isinstance(op, EventRecord):
            recorded.add(op.event_id)
            event_clock[op.event_id] = clock
    return clocks, unmatched


def _happens_before(earlier, later, clocks: Dict[int, Dict[int, int]]) -> bool:
    return (
        clocks[id(later)].get(earlier.stream, 0)
        >= clocks[id(earlier)][earlier.stream]
    )


# -- trace (de)serialization and reproducer dumps ------------------------------


def profile_to_json(profile: ExecutionProfile) -> Dict[str, Any]:
    """JSON-serializable form of a trace (footprints included)."""

    def spans(entries):
        return [[space, lo, hi] for space, lo, hi in entries]

    return {
        "transfers": [
            {
                "direction": t.direction,
                "num_bytes": t.num_bytes,
                "seconds": t.seconds,
                "stream": t.stream,
                "seq": t.seq,
                "reads": spans(t.reads),
                "writes": spans(t.writes),
            }
            for t in profile.transfers
        ],
        "launches": [
            {
                "kernel": l.kernel,
                "grid_size": l.grid_size,
                "block_size": l.block_size,
                "measured_compute": l.measured_compute,
                "simulated_seconds": l.simulated_seconds,
                "retries": l.retries,
                "stream": l.stream,
                "seq": l.seq,
                "reads": spans(l.reads),
                "writes": spans(l.writes),
            }
            for l in profile.launches
        ],
        "events": [
            {"event_id": e.event_id, "stream": e.stream, "seq": e.seq}
            for e in profile.events
        ],
        "waits": [
            {"event_id": w.event_id, "stream": w.stream, "seq": w.seq}
            for w in profile.waits
        ],
    }


def profile_from_json(payload: Dict[str, Any]) -> ExecutionProfile:
    """Inverse of :func:`profile_to_json` (reproducer replay)."""

    def spans(entries):
        return tuple((space, lo, hi) for space, lo, hi in entries)

    profile = ExecutionProfile()
    for t in payload.get("transfers", ()):
        profile.transfers.append(
            TransferRecord(
                t["direction"], t["num_bytes"], t["seconds"],
                stream=t["stream"], seq=t["seq"],
                reads=spans(t.get("reads", ())),
                writes=spans(t.get("writes", ())),
            )
        )
    for l in payload.get("launches", ()):
        profile.launches.append(
            LaunchRecord(
                l["kernel"], l["grid_size"], l["block_size"],
                l["measured_compute"], l["simulated_seconds"],
                retries=l.get("retries", 0), stream=l["stream"], seq=l["seq"],
                reads=spans(l.get("reads", ())),
                writes=spans(l.get("writes", ())),
            )
        )
    for e in payload.get("events", ()):
        profile.events.append(EventRecord(e["event_id"], e["stream"], e["seq"]))
    for w in payload.get("waits", ()):
        profile.waits.append(WaitRecord(w["event_id"], w["stream"], w["seq"]))
    return profile


def shrink_profile(
    profile: ExecutionProfile, findings: List[AnalysisFinding]
) -> ExecutionProfile:
    """Minimal trace still exhibiting the findings: keeps only the
    memory ops named in a finding, plus every event/wait record (the
    ordering skeleton is cheap and deadlock cycles live there)."""
    keep = set()
    for finding in findings:
        keep.update(finding.detail.get("seqs", ()))
        if "seq" in finding.detail:
            keep.add(finding.detail["seq"])
    shrunk = ExecutionProfile()
    shrunk.transfers = [t for t in profile.transfers if t.seq in keep]
    shrunk.launches = [l for l in profile.launches if l.seq in keep]
    shrunk.events = list(profile.events)
    shrunk.waits = list(profile.waits)
    return shrunk


def dump_trace_reproducer(
    profile: ExecutionProfile,
    findings: List[AnalysisFinding],
    artifact_dir: Optional[str] = None,
) -> Optional[str]:
    """Write ``trace.json`` (shrunken) + ``findings.json`` to the
    artifact directory; returns the directory, or ``None`` on I/O
    failure (a reproducer dump must never mask the original error)."""
    if not findings:
        return None
    try:
        root = artifact_directory(artifact_dir)
        base = os.path.join(root, f"stream-hazard-{os.getpid()}")
        path = base
        suffix = 0
        while os.path.exists(path):
            suffix += 1
            path = f"{base}-{suffix}"
        os.makedirs(path, exist_ok=True)
        with open(os.path.join(path, "trace.json"), "w") as handle:
            json.dump(
                profile_to_json(shrink_profile(profile, findings)),
                handle, indent=2,
            )
        with open(os.path.join(path, "findings.json"), "w") as handle:
            json.dump(
                [
                    {
                        "check": f.check,
                        "severity": str(f.severity),
                        "message": f.message,
                        "detail": f.detail,
                    }
                    for f in findings
                ],
                handle, indent=2, default=repr,
            )
        return path
    except OSError:
        return None
