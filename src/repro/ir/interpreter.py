"""A reference interpreter for lowered IR modules.

Executes func/scf/arith/math/memref/vector modules directly, without
code generation: operations are evaluated one by one against an SSA value
environment. It is deliberately simple and slow — its purpose is
*differential testing* (the CPU backend's generated code must agree with
the interpreter on every module) and debugging pass pipelines by running
the IR at any stage after target lowering.

Semantics match the CPU backend: scalars are Python floats/ints, vectors
are NumPy arrays, memrefs are NumPy arrays, and libm calls use the
guarded veclib entry points (log(0) = -inf, never an exception).
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Sequence

import numpy as np

from ..backends.cpu import veclib
from .ops import Block, IRError, Operation
from .types import FloatType, IndexType, IntegerType, VectorType
from .value import Value


class InterpreterError(IRError):
    pass


class _ReturnSignal(Exception):
    def __init__(self, values):
        self.values = values


_CMP = {
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "oeq": lambda a, b: a == b,
    "one": lambda a, b: (a != b) & ~(_isnan(a) | _isnan(b))
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray)
    else (a != b and not (_isnan(a) or _isnan(b))),
    "ueq": lambda a, b: a == b,
    "une": lambda a, b: a != b,
    "olt": lambda a, b: a < b,
    "ole": lambda a, b: a <= b,
    "ogt": lambda a, b: a > b,
    "oge": lambda a, b: a >= b,
    "ult": lambda a, b: a < b,
    "ule": lambda a, b: a <= b,
    "ugt": lambda a, b: a > b,
    "uge": lambda a, b: a >= b,
    "slt": lambda a, b: a < b,
    "sle": lambda a, b: a <= b,
    "sgt": lambda a, b: a > b,
    "sge": lambda a, b: a >= b,
}


def _isnan(x):
    if isinstance(x, np.ndarray):
        return np.isnan(x)
    return isinstance(x, float) and math.isnan(x)


class Interpreter:
    """Interprets the functions of a lowered module."""

    def __init__(self, module: Operation):
        self.module = module
        self.functions: Dict[str, Operation] = {}
        for op in module.body_block.ops:
            if op.op_name == "func.func":
                self.functions[op.attributes["sym_name"]] = op

    # -- public API ---------------------------------------------------------------

    def call(self, name: str, *args):
        fn = self.functions.get(name)
        if fn is None:
            raise InterpreterError(f"no function named '{name}'")
        block = fn.body_block
        if len(args) != len(block.arguments):
            raise InterpreterError(
                f"'{name}' expects {len(block.arguments)} arguments, got {len(args)}"
            )
        env: Dict[Value, Any] = dict(zip(block.arguments, args))
        try:
            self._run_block(block, env)
        except _ReturnSignal as signal:
            values = signal.values
            if not values:
                return None
            return values[0] if len(values) == 1 else tuple(values)
        return None

    # -- execution ------------------------------------------------------------------

    def _run_block(self, block: Block, env: Dict[Value, Any]) -> List[Any]:
        """Execute a block; returns the operands of its final yield (if any)."""
        yielded: List[Any] = []
        for op in block.ops:
            name = op.op_name
            if name == "func.return":
                raise _ReturnSignal([env[v] for v in op.operands])
            if name == "scf.yield":
                yielded = [env[v] for v in op.operands]
                continue
            handler = _DISPATCH.get(name)
            if handler is None:
                raise InterpreterError(f"interpreter cannot execute '{name}'")
            handler(self, op, env)
        return yielded

    # helpers used by handlers ---------------------------------------------------------

    def _in(self, op: Operation, env, i: int):
        return env[op.operands[i]]

    def _set(self, op: Operation, env, value) -> None:
        env[op.results[0]] = value


_DISPATCH: Dict[str, Callable] = {}


def op_handler(name: str):
    def register(fn):
        _DISPATCH[name] = fn
        return fn

    return register


# --- arith -----------------------------------------------------------------------------


@op_handler("arith.constant")
def _constant(interp, op, env):
    value = op.attributes["value"]
    ty = op.results[0].type
    interp._set(op, env, float(value) if isinstance(ty, FloatType) else int(value))


def _binary(symbol):
    def handler(interp, op, env):
        interp._set(op, env, symbol(interp._in(op, env, 0), interp._in(op, env, 1)))

    return handler


_DISPATCH["arith.addf"] = _binary(lambda a, b: a + b)
_DISPATCH["arith.subf"] = _binary(lambda a, b: a - b)
_DISPATCH["arith.mulf"] = _binary(lambda a, b: a * b)
_DISPATCH["arith.divf"] = _binary(lambda a, b: a / b)
_DISPATCH["arith.addi"] = _binary(lambda a, b: a + b)
_DISPATCH["arith.subi"] = _binary(lambda a, b: a - b)
_DISPATCH["arith.muli"] = _binary(lambda a, b: a * b)
_DISPATCH["arith.divsi"] = _binary(lambda a, b: a // b)
_DISPATCH["arith.remsi"] = _binary(lambda a, b: a % b)


@op_handler("arith.negf")
def _negf(interp, op, env):
    interp._set(op, env, -interp._in(op, env, 0))


@op_handler("arith.minf")
def _minf(interp, op, env):
    a, b = interp._in(op, env, 0), interp._in(op, env, 1)
    interp._set(op, env, np.minimum(a, b) if isinstance(a, np.ndarray) else min(a, b))


@op_handler("arith.maxf")
def _maxf(interp, op, env):
    a, b = interp._in(op, env, 0), interp._in(op, env, 1)
    interp._set(op, env, np.maximum(a, b) if isinstance(a, np.ndarray) else max(a, b))


def _cmp_handler(interp, op, env):
    fn = _CMP[op.attributes["predicate"]]
    interp._set(op, env, fn(interp._in(op, env, 0), interp._in(op, env, 1)))


_DISPATCH["arith.cmpf"] = _cmp_handler
_DISPATCH["arith.cmpi"] = _cmp_handler


@op_handler("arith.andi")
def _andi(interp, op, env):
    a, b = interp._in(op, env, 0), interp._in(op, env, 1)
    interp._set(op, env, (a & b) if isinstance(a, np.ndarray) else (a and b))


@op_handler("arith.ori")
def _ori(interp, op, env):
    a, b = interp._in(op, env, 0), interp._in(op, env, 1)
    interp._set(op, env, (a | b) if isinstance(a, np.ndarray) else (a or b))


@op_handler("arith.select")
def _select(interp, op, env):
    cond = interp._in(op, env, 0)
    yes, no = interp._in(op, env, 1), interp._in(op, env, 2)
    if isinstance(op.results[0].type, VectorType):
        interp._set(op, env, np.where(cond, yes, no))
    else:
        interp._set(op, env, yes if cond else no)


@op_handler("arith.index_cast")
def _index_cast(interp, op, env):
    interp._set(op, env, interp._in(op, env, 0))


@op_handler("arith.fptosi")
def _fptosi(interp, op, env):
    value = interp._in(op, env, 0)
    if isinstance(value, np.ndarray):
        interp._set(op, env, value.astype(np.int64))
    else:
        interp._set(op, env, int(value))


@op_handler("arith.sitofp")
def _sitofp(interp, op, env):
    value = interp._in(op, env, 0)
    if isinstance(value, np.ndarray):
        from ..backends.cpu.codegen import numpy_dtype

        interp._set(op, env, value.astype(numpy_dtype(op.results[0].type.element_type)))
    else:
        interp._set(op, env, float(value))


def _float_cast(interp, op, env):
    value = interp._in(op, env, 0)
    if isinstance(value, np.ndarray):
        from ..backends.cpu.codegen import numpy_dtype

        ty = op.results[0].type
        interp._set(op, env, value.astype(numpy_dtype(ty.element_type)))
    else:
        interp._set(op, env, value)


_DISPATCH["arith.extf"] = _float_cast
_DISPATCH["arith.truncf"] = _float_cast


# --- math -----------------------------------------------------------------------------


def _math_handler(scalar_fn, vector_fn):
    def handler(interp, op, env):
        value = interp._in(op, env, 0)
        if isinstance(value, np.ndarray):
            interp._set(op, env, vector_fn(value))
        else:
            interp._set(op, env, scalar_fn(value))

    return handler


_DISPATCH["math.log"] = _math_handler(veclib.slog, veclib.vlog)
_DISPATCH["math.exp"] = _math_handler(veclib.sexp, veclib.vexp)
_DISPATCH["math.log1p"] = _math_handler(veclib.slog1p, veclib.vlog1p)
_DISPATCH["math.sqrt"] = _math_handler(veclib.ssqrt, veclib.vsqrt)
_DISPATCH["math.abs"] = _math_handler(abs, np.abs)


# --- memref -----------------------------------------------------------------------------


@op_handler("memref.alloc")
def _alloc(interp, op, env):
    from ..backends.cpu.codegen import numpy_dtype

    ty = op.results[0].type
    dims = []
    operands = iter(op.operands)
    for dim in ty.shape:
        dims.append(env[next(operands)] if dim is None else dim)
    interp._set(op, env, np.empty(tuple(dims), dtype=numpy_dtype(ty.element_type)))


@op_handler("memref.dealloc")
def _dealloc(interp, op, env):
    pass


@op_handler("memref.load")
def _load(interp, op, env):
    buf = interp._in(op, env, 0)
    idx = tuple(env[v] for v in op.operands[1:])
    elem = op.results[0].type
    value = buf[idx]
    interp._set(op, env, int(value) if isinstance(elem, (IntegerType, IndexType)) else float(value))


@op_handler("memref.store")
def _store(interp, op, env):
    value = interp._in(op, env, 0)
    buf = interp._in(op, env, 1)
    idx = tuple(env[v] for v in op.operands[2:])
    buf[idx] = value


@op_handler("memref.copy")
def _copy(interp, op, env):
    interp._in(op, env, 1)[...] = interp._in(op, env, 0)


@op_handler("memref.dim")
def _dim(interp, op, env):
    interp._set(op, env, interp._in(op, env, 0).shape[op.attributes["dim"]])


@op_handler("memref.constant_buffer")
def _constant_buffer(interp, op, env):
    interp._set(op, env, op.attributes["data"])


# --- vector -----------------------------------------------------------------------------


@op_handler("vector.broadcast")
def _broadcast(interp, op, env):
    interp._set(op, env, interp._in(op, env, 0))


def _width_slice(start, width):
    """[start, start+width), open-ended for dynamic (None) widths."""
    return slice(start, None if width is None else start + width)


@op_handler("vector.load")
def _vload(interp, op, env):
    buf = interp._in(op, env, 0)
    idx = [env[v] for v in op.operands[1:]]
    width = op.results[0].type.shape[0]
    lead = tuple(idx[:-1])
    interp._set(op, env, buf[lead + (_width_slice(idx[-1], width),)])


@op_handler("vector.store")
def _vstore(interp, op, env):
    value = interp._in(op, env, 0)
    buf = interp._in(op, env, 1)
    idx = [env[v] for v in op.operands[2:]]
    width = op.operands[0].type.shape[0]
    buf[tuple(idx[:-1]) + (_width_slice(idx[-1], width),)] = value


@op_handler("vector.gather")
def _vgather(interp, op, env):
    buf = interp._in(op, env, 0)
    base = interp._in(op, env, 1)
    width = op.results[0].type.shape[0]
    column = op.attributes["column"]
    if width is None:
        interp._set(op, env, buf[base:, column])
    else:
        interp._set(op, env, buf[np.arange(width) + base, column])


@op_handler("vector.load_tile")
def _load_tile(interp, op, env):
    buf = interp._in(op, env, 0)
    base = interp._in(op, env, 1)
    rows = op.results[0].type.shape[0]
    interp._set(
        op, env, np.ascontiguousarray(buf[_width_slice(base, rows)].T)
    )


@op_handler("vector.extract_column")
def _extract_column(interp, op, env):
    interp._set(op, env, interp._in(op, env, 0)[op.attributes["column"]])


@op_handler("vector.extract")
def _vextract(interp, op, env):
    interp._set(op, env, float(interp._in(op, env, 0)[op.attributes["position"]]))


@op_handler("vector.insert")
def _vinsert(interp, op, env):
    vec = interp._in(op, env, 1).copy()
    vec[op.attributes["position"]] = interp._in(op, env, 0)
    interp._set(op, env, vec)


@op_handler("vector.gather_table")
def _gather_table(interp, op, env):
    interp._set(op, env, interp._in(op, env, 0)[interp._in(op, env, 1)])


@op_handler("vector.scalarized_call")
def _scalarized(interp, op, env):
    interp._set(op, env, veclib.scalarized(op.attributes["fn"], interp._in(op, env, 0)))


# --- control flow ----------------------------------------------------------------------


@op_handler("scf.for")
def _for(interp, op, env):
    lower = env[op.operands[0]]
    upper = env[op.operands[1]]
    step = env[op.operands[2]]
    carried = [env[v] for v in op.operands[3:]]
    body = op.body_block
    for i in range(lower, upper, step):
        env[body.arguments[0]] = i
        for arg, value in zip(body.arguments[1:], carried):
            env[arg] = value
        carried = interp._run_block(body, env)
    for res, value in zip(op.results, carried):
        env[res] = value


@op_handler("scf.if")
def _if(interp, op, env):
    region = op.regions[0] if env[op.operands[0]] else (
        op.regions[1] if len(op.regions) > 1 else None
    )
    values: List[Any] = []
    if region is not None and region.blocks:
        values = interp._run_block(region.entry_block, env)
    for res, value in zip(op.results, values):
        env[res] = value


@op_handler("func.call")
def _call(interp, op, env):
    result = interp.call(op.attributes["callee"], *[env[v] for v in op.operands])
    if op.results:
        if len(op.results) == 1:
            env[op.results[0]] = result
        else:
            for res, value in zip(op.results, result):
                env[res] = value
