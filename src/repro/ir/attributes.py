"""Attribute handling for the mini-MLIR IR.

Rather than reproducing MLIR's full attribute class hierarchy, attributes
are plain Python values with a small normalization / hashing layer on top:

=================  =========================================
Python value       Textual form
=================  =========================================
``bool``           ``true`` / ``false``
``int``            ``5 : i64``
``float``          ``5.000000e+00 : f64``
``str``            ``"escaped"``
:class:`Type`      ``f32`` (a type attribute)
``tuple``          ``[elem, elem, ...]``
``numpy.ndarray``  ``dense<[...]> : tensor<NxT>``
=================  =========================================

Lists are normalized to tuples so attribute dictionaries stay hashable for
CSE. Dense numpy payloads are hashed via their raw bytes.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

import numpy as np

from .types import Type


def normalize_attribute(value: Any) -> Any:
    """Normalize an attribute value to its canonical stored form."""
    if isinstance(value, (bool, int, float, str, Type)):
        return value
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, (list, tuple)):
        return tuple(normalize_attribute(v) for v in value)
    if isinstance(value, np.ndarray):
        arr = np.ascontiguousarray(value)
        arr.setflags(write=False)
        return arr
    if value is None:
        raise TypeError("None is not a valid attribute; omit the key instead")
    raise TypeError(f"unsupported attribute value of type {type(value).__name__}")


def normalize_attributes(attrs: Dict[str, Any]) -> Dict[str, Any]:
    return {name: normalize_attribute(value) for name, value in attrs.items()}


def attribute_key(value: Any) -> Any:
    """Return a hashable key identifying an attribute value (for CSE)."""
    if isinstance(value, np.ndarray):
        return ("dense", value.dtype.str, value.shape, value.tobytes())
    if isinstance(value, tuple):
        return tuple(attribute_key(v) for v in value)
    if isinstance(value, bool):
        # Distinguish True from 1 explicitly.
        return ("bool", value)
    return value


def attributes_key(attrs: Dict[str, Any]) -> Tuple:
    return tuple(sorted((k, attribute_key(v)) for k, v in attrs.items()))


def attributes_equal(a: Any, b: Any) -> bool:
    """Deep attribute equality, handling numpy payloads."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return (
            isinstance(a, np.ndarray)
            and isinstance(b, np.ndarray)
            and a.shape == b.shape
            and a.dtype == b.dtype
            and bool(np.array_equal(a, b))
        )
    if isinstance(a, tuple) and isinstance(b, tuple):
        return len(a) == len(b) and all(attributes_equal(x, y) for x, y in zip(a, b))
    if isinstance(a, bool) != isinstance(b, bool):
        return False
    return a == b
