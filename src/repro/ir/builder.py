"""Insertion-point based IR construction helper."""

from __future__ import annotations

from contextlib import contextmanager
from typing import Optional

from .ops import Block, IRError, Operation


class Builder:
    """Creates operations at a movable insertion point.

    The insertion point is a block plus an optional anchor operation:
    new ops are inserted before the anchor, or appended at the block's end
    when the anchor is None.
    """

    def __init__(self, block: Optional[Block] = None, before: Optional[Operation] = None):
        self.block = block
        self.before = before

    # -- insertion point management -----------------------------------------

    @classmethod
    def at_end(cls, block: Block) -> "Builder":
        return cls(block, None)

    @classmethod
    def at_start(cls, block: Block) -> "Builder":
        return cls(block, block.first_op)

    @classmethod
    def before_op(cls, op: Operation) -> "Builder":
        if op.parent is None:
            raise IRError("cannot build before a detached op")
        return cls(op.parent, op)

    @classmethod
    def after_op(cls, op: Operation) -> "Builder":
        if op.parent is None:
            raise IRError("cannot build after a detached op")
        return cls(op.parent, op.next_op)

    def set_insertion_point_to_end(self, block: Block) -> None:
        self.block = block
        self.before = None

    def set_insertion_point(self, op: Operation) -> None:
        self.block = op.parent
        self.before = op

    @contextmanager
    def at(self, block: Block, before: Optional[Operation] = None):
        """Temporarily move the insertion point."""
        saved = (self.block, self.before)
        self.block, self.before = block, before
        try:
            yield self
        finally:
            self.block, self.before = saved

    # -- op creation ----------------------------------------------------------

    def insert(self, op: Operation) -> Operation:
        if self.block is None:
            raise IRError("builder has no insertion point")
        if self.before is None:
            self.block.append(op)
        else:
            self.block._insert_before(self.before, op)
        return op

    def create(self, op_class, *args, **kwargs) -> Operation:
        """Build an op via its class ``build`` method and insert it."""
        build = getattr(op_class, "build", None)
        op = build(*args, **kwargs) if build is not None else op_class(*args, **kwargs)
        return self.insert(op)
