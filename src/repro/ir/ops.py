"""Core IR structure: operations, blocks and regions.

The structural model follows MLIR: a :class:`Region` contains
:class:`Block`\\ s, a block contains :class:`Operation`\\ s, and each
operation may itself carry nested regions. Blocks store their operations
in an intrusive doubly-linked list so insertion and erasure are O(1) —
important because SPN kernels routinely contain 10^5 operations.

Operation classes register themselves by name (``"dialect.op"``) so the
parser and :meth:`Operation.clone` can reconstruct typed op instances.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from .attributes import attributes_equal, normalize_attribute, normalize_attributes
from .traits import Trait
from .types import Type
from .value import BlockArgument, OpResult, Use, Value

# Registry of op name -> Operation subclass.
_OP_REGISTRY: Dict[str, type] = {}


def register_op(cls: type) -> type:
    """Class decorator registering an Operation subclass by its ``name``."""
    name = getattr(cls, "name", None)
    if not name or "." not in name:
        raise ValueError(f"operation class {cls.__name__} needs a dotted 'name'")
    if name in _OP_REGISTRY and _OP_REGISTRY[name] is not cls:
        raise ValueError(f"duplicate registration for operation '{name}'")
    _OP_REGISTRY[name] = cls
    return cls


def lookup_op_class(name: str) -> type:
    """Return the registered class for ``name`` or the generic Operation."""
    return _OP_REGISTRY.get(name, Operation)


def registered_ops() -> Dict[str, type]:
    return dict(_OP_REGISTRY)


class IRError(Exception):
    """Raised for structural IR violations."""


class Operation:
    """A generic IR operation.

    Subclasses typically define ``name`` (class attribute), ``traits``
    (frozenset of :class:`Trait`) and a ``build`` classmethod. Instances of
    unregistered names can still be created through the base constructor,
    which is what the generic parser does.
    """

    name: str = "builtin.unregistered"
    traits: frozenset = frozenset()

    __slots__ = (
        "op_name",
        "operands",
        "results",
        "attributes",
        "regions",
        "parent",
        "_prev",
        "_next",
    )

    def __init__(
        self,
        operands: Sequence[Value] = (),
        result_types: Sequence[Type] = (),
        attributes: Optional[Dict[str, Any]] = None,
        regions: int = 0,
        name: Optional[str] = None,
    ):
        self.op_name: str = name or type(self).name
        self.operands: List[Value] = []
        self.results: List[OpResult] = [
            OpResult(self, i, ty) for i, ty in enumerate(result_types)
        ]
        self.attributes: Dict[str, Any] = normalize_attributes(attributes or {})
        self.regions: List[Region] = [Region(self) for _ in range(regions)]
        self.parent: Optional[Block] = None
        self._prev: Optional[Operation] = None
        self._next: Optional[Operation] = None
        for value in operands:
            self._append_operand(value)

    # -- identity ----------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Operation {self.op_name} at {id(self):#x}>"

    def has_trait(self, trait: Trait) -> bool:
        return trait in type(self).traits

    @property
    def dialect(self) -> str:
        return self.op_name.split(".", 1)[0]

    # -- operands ----------------------------------------------------------

    def _append_operand(self, value: Value) -> None:
        if not isinstance(value, Value):
            raise IRError(
                f"operand of '{self.op_name}' must be a Value, got {type(value).__name__}"
            )
        index = len(self.operands)
        self.operands.append(value)
        value._add_use(Use(self, index))

    def _set_operand(self, index: int, value: Value) -> None:
        old = self.operands[index]
        old._remove_use(self, index)
        self.operands[index] = value
        value._add_use(Use(self, index))

    def set_operand(self, index: int, value: Value) -> None:
        self._set_operand(index, value)

    def set_operands(self, values: Sequence[Value]) -> None:
        """Replace the full operand list."""
        for i, old in enumerate(self.operands):
            old._remove_use(self, i)
        self.operands = []
        for value in values:
            self._append_operand(value)

    def drop_all_operand_uses(self) -> None:
        for i, old in enumerate(self.operands):
            old._remove_use(self, i)
        self.operands = []

    # -- results -----------------------------------------------------------

    @property
    def result(self) -> OpResult:
        if len(self.results) != 1:
            raise IRError(
                f"'{self.op_name}' has {len(self.results)} results; .result needs exactly 1"
            )
        return self.results[0]

    def replace_all_uses_with(self, replacements: Sequence[Value]) -> None:
        if len(replacements) != len(self.results):
            raise IRError("replacement count does not match result count")
        for res, new in zip(self.results, replacements):
            res.replace_all_uses_with(new)

    @property
    def has_uses(self) -> bool:
        return any(res.has_uses for res in self.results)

    # -- attributes ----------------------------------------------------------

    def attr(self, key: str, default: Any = None) -> Any:
        return self.attributes.get(key, default)

    def set_attr(self, key: str, value: Any) -> None:
        self.attributes[key] = normalize_attribute(value)

    def remove_attr(self, key: str) -> None:
        self.attributes.pop(key, None)

    # -- placement ----------------------------------------------------------

    @property
    def parent_op(self) -> Optional["Operation"]:
        if self.parent is not None and self.parent.parent is not None:
            return self.parent.parent.parent
        return None

    def path(self) -> str:
        """Path from the root op to this op, for diagnostics.

        Each segment is ``op_name#index`` where ``index`` is the op's
        position in its block (the root op has no index), e.g.
        ``builtin.module/lo_spn.kernel#0/lo_spn.task#1/arith.addf#3``.
        """
        parts: List[str] = []
        op: Optional[Operation] = self
        while op is not None:
            if op.parent is None:
                parts.append(op.op_name)
            else:
                index = 0
                for sibling in op.parent.ops:
                    if sibling is op:
                        break
                    index += 1
                parts.append(f"{op.op_name}#{index}")
            op = op.parent_op
        return "/".join(reversed(parts))

    @property
    def next_op(self) -> Optional["Operation"]:
        return self._next

    @property
    def prev_op(self) -> Optional["Operation"]:
        return self._prev

    def remove_from_parent(self) -> None:
        """Unlink from the containing block without touching uses."""
        if self.parent is not None:
            self.parent._unlink(self)

    def erase(self) -> None:
        """Remove the op from its block and delete it.

        The op must have no remaining uses of its results. Nested regions
        are erased recursively.
        """
        for res in self.results:
            if res.has_uses:
                raise IRError(
                    f"cannot erase '{self.op_name}': result {res.result_index} still has uses"
                )
        self.remove_from_parent()
        self.drop_all_operand_uses()
        for region in self.regions:
            region.erase_contents()
        self.regions = []

    def move_before(self, other: "Operation") -> None:
        self.remove_from_parent()
        other.parent._insert_before(other, self)

    def move_after(self, other: "Operation") -> None:
        self.remove_from_parent()
        other.parent._insert_after(other, self)

    # -- traversal -----------------------------------------------------------

    def walk(self, fn: Optional[Callable[["Operation"], None]] = None):
        """Post-order walk over this op and all nested ops.

        With ``fn`` given, calls it on each op; otherwise returns a list of
        ops in walk order.
        """
        collected: Optional[List[Operation]] = None if fn is not None else []

        def visit(op: Operation) -> None:
            for region in op.regions:
                for block in region.blocks:
                    for nested in list(block.ops):
                        visit(nested)
            if fn is not None:
                fn(op)
            else:
                collected.append(op)

        visit(self)
        return collected

    # -- regions -------------------------------------------------------------

    @property
    def region(self) -> "Region":
        if len(self.regions) != 1:
            raise IRError(
                f"'{self.op_name}' has {len(self.regions)} regions; .region needs exactly 1"
            )
        return self.regions[0]

    @property
    def body_block(self) -> "Block":
        """Sole block of the sole region (for single-block region ops)."""
        region = self.region
        if len(region.blocks) != 1:
            raise IRError(f"'{self.op_name}' region must have exactly one block")
        return region.blocks[0]

    # -- cloning -------------------------------------------------------------

    def clone(self, value_map: Optional[Dict[Value, Value]] = None) -> "Operation":
        """Deep-copy this operation (and nested regions).

        ``value_map`` maps old values to new values; operands found in the
        map are remapped, others are reused as-is. The map is updated with
        this op's results and any nested block arguments.
        """
        if value_map is None:
            value_map = {}
        cls = lookup_op_class(self.op_name)
        new = Operation.__new__(cls)  # bypass build-specific __init__
        Operation.__init__(
            new,
            operands=[value_map.get(v, v) for v in self.operands],
            result_types=[r.type for r in self.results],
            attributes=dict(self.attributes),
            regions=0,
            name=self.op_name,
        )
        for old_res, new_res in zip(self.results, new.results):
            value_map[old_res] = new_res
        for region in self.regions:
            new_region = Region(new)
            new.regions.append(new_region)
            for block in region.blocks:
                new_block = Block([arg.type for arg in block.arguments])
                new_region.append_block(new_block)
                for old_arg, new_arg in zip(block.arguments, new_block.arguments):
                    value_map[old_arg] = new_arg
            for block, new_block in zip(region.blocks, new_region.blocks):
                for op in block.ops:
                    new_block.append(op.clone(value_map))
        return new

    # -- hooks ----------------------------------------------------------------

    def verify_op(self) -> None:
        """Per-op structural verification hook; raise IRError on violation."""

    def fold(self) -> Optional[List[Any]]:
        """Constant-folding hook.

        Returns None when not foldable, otherwise a list with one entry per
        result: either an existing :class:`Value` or a Python constant that
        the folding driver materializes as a constant op.
        """
        return None

    def is_structurally_equivalent(self, other: "Operation") -> bool:
        """Structural equality ignoring object identity (used by tests)."""
        if self.op_name != other.op_name:
            return False
        if [r.type for r in self.results] != [r.type for r in other.results]:
            return False
        if set(self.attributes) != set(other.attributes):
            return False
        for key, val in self.attributes.items():
            if not attributes_equal(val, other.attributes[key]):
                return False
        if len(self.regions) != len(other.regions):
            return False
        # Operand equivalence is checked by the module-level comparator which
        # tracks value numbering; here we only compare counts and types.
        if [v.type for v in self.operands] != [v.type for v in other.operands]:
            return False
        return True


class Block:
    """A sequential list of operations with typed block arguments."""

    __slots__ = ("arguments", "parent", "_first", "_last", "_size")

    def __init__(self, arg_types: Sequence[Type] = ()):
        self.arguments: List[BlockArgument] = [
            BlockArgument(self, i, ty) for i, ty in enumerate(arg_types)
        ]
        self.parent: Optional[Region] = None
        self._first: Optional[Operation] = None
        self._last: Optional[Operation] = None
        self._size = 0

    # -- arguments ------------------------------------------------------------

    def add_argument(self, ty: Type) -> BlockArgument:
        arg = BlockArgument(self, len(self.arguments), ty)
        self.arguments.append(arg)
        return arg

    def erase_argument(self, index: int) -> None:
        arg = self.arguments[index]
        if arg.has_uses:
            raise IRError(f"cannot erase block argument {index}: still has uses")
        del self.arguments[index]
        for i, remaining in enumerate(self.arguments):
            remaining.arg_index = i

    # -- op list ---------------------------------------------------------------

    @property
    def ops(self) -> Iterator[Operation]:
        op = self._first
        while op is not None:
            next_op = op._next  # snapshot to allow erasure during iteration
            yield op
            op = next_op

    def op_list(self) -> List[Operation]:
        return list(self.ops)

    def __len__(self) -> int:
        return self._size

    @property
    def first_op(self) -> Optional[Operation]:
        return self._first

    @property
    def terminator(self) -> Optional[Operation]:
        return self._last

    def append(self, op: Operation) -> Operation:
        if op.parent is not None:
            raise IRError("op already belongs to a block")
        op.parent = self
        op._prev = self._last
        op._next = None
        if self._last is not None:
            self._last._next = op
        else:
            self._first = op
        self._last = op
        self._size += 1
        return op

    def _insert_before(self, anchor: Operation, op: Operation) -> None:
        if anchor.parent is not self:
            raise IRError("anchor not in this block")
        op.parent = self
        op._prev = anchor._prev
        op._next = anchor
        if anchor._prev is not None:
            anchor._prev._next = op
        else:
            self._first = op
        anchor._prev = op
        self._size += 1

    def _insert_after(self, anchor: Operation, op: Operation) -> None:
        if anchor.parent is not self:
            raise IRError("anchor not in this block")
        op.parent = self
        op._next = anchor._next
        op._prev = anchor
        if anchor._next is not None:
            anchor._next._prev = op
        else:
            self._last = op
        anchor._next = op
        self._size += 1

    def _unlink(self, op: Operation) -> None:
        if op.parent is not self:
            raise IRError("op not in this block")
        if op._prev is not None:
            op._prev._next = op._next
        else:
            self._first = op._next
        if op._next is not None:
            op._next._prev = op._prev
        else:
            self._last = op._prev
        op.parent = None
        op._prev = None
        op._next = None
        self._size -= 1

    @property
    def parent_op(self) -> Optional[Operation]:
        return self.parent.parent if self.parent is not None else None


class Region:
    """A list of blocks owned by an operation."""

    __slots__ = ("parent", "blocks")

    def __init__(self, parent: Optional[Operation] = None):
        self.parent = parent
        self.blocks: List[Block] = []

    def append_block(self, block: Block) -> Block:
        if block.parent is not None:
            raise IRError("block already belongs to a region")
        block.parent = self
        self.blocks.append(block)
        return block

    def add_entry_block(self, arg_types: Sequence[Type] = ()) -> Block:
        block = Block(arg_types)
        self.blocks.insert(0, block)
        block.parent = self
        return block

    @property
    def entry_block(self) -> Block:
        if not self.blocks:
            raise IRError("region has no blocks")
        return self.blocks[0]

    @property
    def empty(self) -> bool:
        return not self.blocks

    def erase_contents(self) -> None:
        """Drop all blocks and ops in this region (for op destruction)."""
        for block in self.blocks:
            # Break use chains bottom-up so erasure never sees dangling uses.
            for op in reversed(block.op_list()):
                op.drop_all_operand_uses()
                for region in op.regions:
                    region.erase_contents()
                op.regions = []
                block._unlink(op)
        self.blocks = []
