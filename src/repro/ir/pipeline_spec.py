"""Textual pass-pipeline specifications.

MLIR exposes pipelines as text (``--pass-pipeline='builtin.module(cse,
canonicalize)'``); this module provides the equivalent for our pass
infrastructure. A pipeline spec is a comma-separated list of registered
pass names, each optionally carrying options in braces::

    canonicalize,cse,licm
    frontend,hispn-simplify,lower-to-lospn,bufferize,
        buffer-deallocation,cpu-lowering{vectorize=off},canonicalize,cse

``parse_pipeline(spec)`` returns a configured
:class:`~repro.ir.passes.PassManager`; :func:`build_pipeline` returns
the raw pass list; :func:`pipeline_string` prints a pass list back to
its textual form — a guaranteed round trip
(``build_pipeline(pipeline_string(p))`` reconstructs the same passes,
options and instance names).

Since PR 5 the *entire* compile flow is registered here: alongside the
generic cleanup passes, every stage of :func:`repro.compiler.compile_spn`
(frontend build, ``hispn-simplify``, ``lower-to-lospn``, ``partition``,
``bufferize``, copy removal, dealloc insertion, the CPU/GPU target
lowerings and ``gpu-copy-elimination``) is a registered module-level
pass, so the whole flow is expressible — and printable — as a pipeline
string (see :mod:`repro.compiler.targets`).

Repeated pass names get stable, unique *instance* names by suffixing
the occurrence index ("canonicalize, canonicalize-2, canonicalize-3"),
which is what keeps per-pass timing keys stable for the compile-time
benchmarks.

Pass options use MLIR's spelling: ``name{key=value key2=value2}`` with
kebab-case keys; values parse as bools (``true``/``false``), ints,
floats, or bare strings. New passes register via :func:`register_pass`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .passes import Pass, PassManager

_PASS_REGISTRY: Dict[str, Callable[..., Pass]] = {}


def register_pass(name: str, factory: Callable[..., Pass]) -> None:
    """Register a pass factory under a pipeline-spec name.

    ``factory`` is called with the pass's parsed options as keyword
    arguments (none for option-less passes).
    """
    if name in _PASS_REGISTRY:
        raise ValueError(f"pass '{name}' is already registered")
    _PASS_REGISTRY[name] = factory


def registered_passes() -> List[str]:
    return sorted(_PASS_REGISTRY)


# -- textual form -------------------------------------------------------------------


def split_pipeline(spec: str) -> List[str]:
    """Split a pipeline spec on top-level commas (brace-aware)."""
    items: List[str] = []
    depth = 0
    current = []
    for char in spec:
        if char == "{":
            depth += 1
        elif char == "}":
            depth -= 1
            if depth < 0:
                raise ValueError(f"unbalanced '}}' in pipeline spec: {spec!r}")
        if char == "," and depth == 0:
            items.append("".join(current))
            current = []
        else:
            current.append(char)
    if depth != 0:
        raise ValueError(f"unbalanced '{{' in pipeline spec: {spec!r}")
    items.append("".join(current))
    return [item.strip() for item in items if item.strip()]


def _parse_option_value(text: str):
    lowered = text.lower()
    if lowered == "true":
        return True
    if lowered == "false":
        return False
    if lowered == "none":
        return None
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text


def _format_option_value(value) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if value is None:
        return "none"
    text = str(value)
    if any(c in text for c in "{}=, "):
        raise ValueError(f"pass option value {text!r} is not printable")
    return text


def parse_pass_spec(item: str) -> Tuple[str, Dict[str, object]]:
    """Parse one pipeline element into (registry name, options).

    Option keys are kebab-case in text and returned as python
    identifiers (``use-log-space`` -> ``use_log_space``).
    """
    item = item.strip()
    options: Dict[str, object] = {}
    if "{" in item:
        if not item.endswith("}"):
            raise ValueError(f"malformed pass options in {item!r}")
        name, _, rest = item.partition("{")
        body = rest[:-1].strip()
        for token in body.replace(",", " ").split():
            key, sep, value = token.partition("=")
            if not sep or not key:
                raise ValueError(
                    f"malformed pass option {token!r} in {item!r} "
                    "(expected key=value)"
                )
            options[key.strip().replace("-", "_")] = _parse_option_value(
                value.strip()
            )
        return name.strip(), options
    return item, options


def pass_spec(name: str, options: Optional[Dict[str, object]] = None) -> str:
    """Format one pipeline element: ``name`` or ``name{k=v k2=v2}``."""
    if not options:
        return name
    body = " ".join(
        f"{key.replace('_', '-')}={_format_option_value(value)}"
        for key, value in options.items()
    )
    return f"{name}{{{body}}}"


def pipeline_string(passes: Sequence[Pass]) -> str:
    """Print a pass sequence back to its textual pipeline spec.

    Uses each pass's registry name and explicit options; parsing the
    result reconstructs the same passes with the same instance names.
    """
    items = []
    for pass_ in passes:
        name = pass_.pipeline_name
        if name is None:
            raise ValueError(
                f"pass '{pass_.name}' was not built from the registry and "
                "has no textual form"
            )
        items.append(pass_spec(name, pass_.pipeline_options))
    return ",".join(items)


# -- construction -------------------------------------------------------------------


def build_pass(name: str, options: Optional[Dict[str, object]] = None) -> Pass:
    """Instantiate one registered pass with the given options."""
    factory = _PASS_REGISTRY.get(name)
    if factory is None:
        raise ValueError(
            f"unknown pass '{name}'; registered: {', '.join(registered_passes())}"
        )
    options = dict(options or {})
    try:
        pass_ = factory(**options)
    except TypeError as error:
        raise ValueError(f"invalid options for pass '{name}': {error}") from None
    pass_.pipeline_name = name
    pass_.pipeline_options = options
    return pass_


def build_pipeline(spec: str) -> List[Pass]:
    """Build the pass list for a textual pipeline spec.

    Repeated pass names get deterministic unique instance names by
    suffixing the occurrence count ("cse", "cse-2", ...), keeping
    timing keys distinct and the text form round-trippable.
    """
    passes: List[Pass] = []
    seen: Dict[str, int] = {}
    for item in split_pipeline(spec):
        name, options = parse_pass_spec(item)
        pass_ = build_pass(name, options)
        count = seen.get(pass_.name, 0) + 1
        seen[pass_.name] = count
        if count > 1:
            pass_.name = f"{pass_.name}-{count}"
        passes.append(pass_)
    return passes


def parse_pipeline(
    spec: str,
    verify_each="off",
    artifact_dir: Optional[str] = None,
    collect_ir: bool = False,
) -> PassManager:
    """Build a PassManager from a textual pipeline spec.

    ``verify_each`` accepts the :class:`PassManager` instrumentation
    modes ("off" / "structural" / "boundaries" / "every-pass") or a
    bool for backward compatibility (``True`` == "structural").
    """
    manager = PassManager(
        verify_each=verify_each,
        artifact_dir=artifact_dir,
        collect_ir=collect_ir,
    )
    manager.extend(build_pipeline(spec))
    return manager


def _compiler_stage(class_name: str) -> Callable[..., Pass]:
    """Lazy factory for a compile-stage pass (avoids an import cycle:
    :mod:`repro.compiler` imports the IR package at module load)."""

    def factory(**options) -> Pass:
        from ..compiler import stages

        return getattr(stages, class_name)(**options)

    return factory


def _register_builtin_passes() -> None:
    from .transforms.canonicalize import CanonicalizePass
    from .transforms.cse import CSEPass
    from .transforms.dce import DCEPass
    from .transforms.licm import LICMPass

    register_pass("canonicalize", CanonicalizePass)
    register_pass("cse", CSEPass)
    register_pass("dce", DCEPass)
    register_pass("licm", LICMPass)

    def _lospn_cse() -> Pass:
        # The LoSPN-level CSE round at -O3: same pass, distinct stable
        # stage name so its timing is attributable separately.
        pass_ = CSEPass()
        pass_.name = "lospn-cse"
        return pass_

    register_pass("lospn-cse", _lospn_cse)

    # The compile-flow stages (see repro.compiler.stages). Every stage
    # of compile_spn is constructible from text, which is what makes
    # `spnc compile --print-pipeline` / `--pipeline` possible.
    register_pass("frontend", _compiler_stage("FrontendPass"))
    register_pass("hispn-simplify", _compiler_stage("HiSPNSimplifyStage"))
    register_pass("structure-cse", _compiler_stage("StructureCSEStage"))
    register_pass("structure-prune", _compiler_stage("StructurePruneStage"))
    register_pass("structure-compress", _compiler_stage("StructureCompressStage"))
    register_pass("lower-to-lospn", _compiler_stage("LowerToLoSPNPass"))
    register_pass("partition", _compiler_stage("PartitionPass"))
    register_pass("balance-chains", _compiler_stage("BalanceChainsPass"))
    register_pass("bufferize", _compiler_stage("BufferizePass"))
    register_pass("buffer-optimization", _compiler_stage("BufferOptimizationPass"))
    register_pass("buffer-deallocation", _compiler_stage("BufferDeallocationPass"))
    register_pass(
        "parallelize-partitions", _compiler_stage("ParallelizePartitionsPass")
    )
    register_pass("cpu-lowering", _compiler_stage("CPULoweringPass"))
    register_pass("gpu-lowering", _compiler_stage("GPULoweringPass"))
    register_pass("gpu-copy-elimination", _compiler_stage("GPUCopyEliminationPass"))


_register_builtin_passes()
