"""Textual pass-pipeline specifications.

MLIR exposes pipelines as text (``--pass-pipeline='builtin.module(cse,
canonicalize)'``); this module provides the equivalent for our pass
infrastructure: ``parse_pipeline("canonicalize,cse,licm")`` returns a
configured :class:`PassManager`. Used by the CLI and handy in tests for
describing pipelines declaratively.

Registered pass names:

=============== =======================================================
name            pass
=============== =======================================================
canonicalize    greedy canonicalization (folding + patterns + DCE)
cse             common subexpression elimination
dce             dead pure-op elimination
licm            loop-invariant code motion
hispn-simplify  HiSPN single-input node elimination / flattening
=============== =======================================================

New passes register via :func:`register_pass`.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from .passes import Pass, PassManager

_PASS_REGISTRY: Dict[str, Callable[[], Pass]] = {}


def register_pass(name: str, factory: Callable[[], Pass]) -> None:
    """Register a pass factory under a pipeline-spec name."""
    if name in _PASS_REGISTRY:
        raise ValueError(f"pass '{name}' is already registered")
    _PASS_REGISTRY[name] = factory


def registered_passes() -> List[str]:
    return sorted(_PASS_REGISTRY)


def parse_pipeline(spec: str, verify_each="off") -> PassManager:
    """Build a PassManager from a comma-separated pass list.

    ``verify_each`` accepts the :class:`PassManager` instrumentation
    modes ("off" / "structural" / "boundaries" / "every-pass") or a
    bool for backward compatibility (``True`` == "structural").
    """
    manager = PassManager(verify_each=verify_each)
    for raw in spec.split(","):
        name = raw.strip()
        if not name:
            continue
        factory = _PASS_REGISTRY.get(name)
        if factory is None:
            raise ValueError(
                f"unknown pass '{name}'; registered: {', '.join(registered_passes())}"
            )
        manager.add(factory())
    return manager


def _register_builtin_passes() -> None:
    from .transforms.canonicalize import CanonicalizePass
    from .transforms.cse import CSEPass
    from .transforms.dce import DCEPass
    from .transforms.licm import LICMPass

    register_pass("canonicalize", CanonicalizePass)
    register_pass("cse", CSEPass)
    register_pass("dce", DCEPass)
    register_pass("licm", LICMPass)

    def _hispn_simplify() -> Pass:
        from ..compiler.hispn_passes import HiSPNSimplifyPass

        return HiSPNSimplifyPass()

    register_pass("hispn-simplify", _hispn_simplify)


_register_builtin_passes()
