"""Structural IR verification.

Checks the invariants the rest of the compiler relies on:

- every operand is defined before use (straight-line dominance within a
  block, or by a block argument / value from an enclosing region),
- ``ISOLATED_FROM_ABOVE`` ops never reference outer values,
- ``SINGLE_BLOCK`` ops have exactly one block per region,
- terminators appear only in terminal position,
- per-op ``verify_op`` hooks pass.

Verification failures are structured: every :class:`VerificationError`
carries ``op_path``, the path of the offending operation inside the
module (see :meth:`Operation.path`), so downstream diagnostics can name
the exact op without re-walking the IR.
"""

from __future__ import annotations

from typing import Optional, Set

from .ops import Block, IRError, Operation, Region
from .traits import Trait
from .value import BlockArgument, Value


class VerificationError(IRError):
    """Raised when the IR violates a structural invariant.

    Attributes:
        op_path: path of the offending op inside its module (may be
            ``None`` when raised from contexts without an op at hand).
    """

    def __init__(self, message: str, op_path: Optional[str] = None):
        if op_path:
            message = f"{message} (at {op_path})"
        super().__init__(message)
        self.op_path = op_path


def verify(op: Operation) -> None:
    """Verify ``op`` and everything nested within it."""
    _verify_op(op, visible=set(), shadowed=set())


def _verify_op(op: Operation, visible: Set[Value], shadowed: Set[Value]) -> None:
    for operand in op.operands:
        if operand not in visible:
            if operand in shadowed:
                raise VerificationError(
                    f"operand of '{op.op_name}' ({operand!r}) is defined outside "
                    f"its ISOLATED_FROM_ABOVE ancestor",
                    op_path=op.path(),
                )
            if _defined_in_sibling_region(op, operand):
                raise VerificationError(
                    f"operand of '{op.op_name}' ({operand!r}) is defined in a "
                    f"sibling region and does not dominate its use (values do "
                    f"not flow across sibling regions)",
                    op_path=op.path(),
                )
            raise VerificationError(
                f"operand of '{op.op_name}' ({operand!r}) does not dominate its use",
                op_path=op.path(),
            )

    if op.has_trait(Trait.SINGLE_BLOCK):
        for region in op.regions:
            if len(region.blocks) != 1:
                raise VerificationError(
                    f"'{op.op_name}' requires exactly one block per region, "
                    f"found {len(region.blocks)}",
                    op_path=op.path(),
                )

    try:
        op.verify_op()
    except VerificationError as error:
        if error.op_path is None:
            raise VerificationError(str(error), op_path=op.path()) from error
        raise

    isolated = op.has_trait(Trait.ISOLATED_FROM_ABOVE)
    for region in op.regions:
        if isolated:
            _verify_region(region, set(), shadowed | visible)
        else:
            _verify_region(region, set(visible), set(shadowed))


def _defined_in_sibling_region(op: Operation, operand: Value) -> bool:
    """True when ``operand``'s definition lives in a region that is not
    an ancestor of ``op``'s — i.e. a sibling (or cousin) region whose
    values can never dominate the use, as opposed to a plain
    defined-after-use ordering violation inside a shared block."""
    if isinstance(operand, BlockArgument):
        defining_block = operand.block
    else:
        defining_op = operand.defining_op
        defining_block = defining_op.parent if defining_op is not None else None
    if defining_block is None:
        return False
    ancestors = set()
    current: Optional[Operation] = op
    while current is not None:
        if current.parent is not None:
            ancestors.add(current.parent)
        current = current.parent_op
    return defining_block not in ancestors


def _verify_region(region: Region, visible: Set[Value], shadowed: Set[Value]) -> None:
    for block in region.blocks:
        block_visible = set(visible)
        block_visible.update(block.arguments)
        ops = block.op_list()
        for i, op in enumerate(ops):
            if op.has_trait(Trait.TERMINATOR) and i != len(ops) - 1:
                raise VerificationError(
                    f"terminator '{op.op_name}' is not the last op in its block",
                    op_path=op.path(),
                )
            _verify_op(op, block_visible, shadowed)
            block_visible.update(op.results)
