"""Structural IR verification.

Checks the invariants the rest of the compiler relies on:

- every operand is defined before use (straight-line dominance within a
  block, or by a block argument / value from an enclosing region),
- ``ISOLATED_FROM_ABOVE`` ops never reference outer values,
- ``SINGLE_BLOCK`` ops have exactly one block per region,
- terminators appear only in terminal position,
- per-op ``verify_op`` hooks pass.
"""

from __future__ import annotations

from typing import Set

from .ops import Block, IRError, Operation, Region
from .traits import Trait
from .value import Value


class VerificationError(IRError):
    """Raised when the IR violates a structural invariant."""


def verify(op: Operation) -> None:
    """Verify ``op`` and everything nested within it."""
    _verify_op(op, visible=set())


def _verify_op(op: Operation, visible: Set[Value]) -> None:
    for operand in op.operands:
        if operand not in visible:
            raise VerificationError(
                f"operand of '{op.op_name}' ({operand!r}) does not dominate its use"
            )

    if op.has_trait(Trait.SINGLE_BLOCK):
        for region in op.regions:
            if len(region.blocks) != 1:
                raise VerificationError(
                    f"'{op.op_name}' requires exactly one block per region, "
                    f"found {len(region.blocks)}"
                )

    op.verify_op()

    isolated = op.has_trait(Trait.ISOLATED_FROM_ABOVE)
    for region in op.regions:
        _verify_region(region, set() if isolated else set(visible))


def _verify_region(region: Region, visible: Set[Value]) -> None:
    for block in region.blocks:
        block_visible = set(visible)
        block_visible.update(block.arguments)
        ops = block.op_list()
        for i, op in enumerate(ops):
            if op.has_trait(Trait.TERMINATOR) and i != len(ops) - 1:
                raise VerificationError(
                    f"terminator '{op.op_name}' is not the last op in its block"
                )
            _verify_op(op, block_visible)
            block_visible.update(op.results)
