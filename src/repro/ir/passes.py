"""Pass infrastructure: passes, pipelines and per-pass timing.

The :class:`PassManager` records wall-clock time per pass, which the
benchmark harness uses to reproduce the paper's compile-time breakdowns
(Section V-B1: where compilation time is spent).

Failures are structured: when a pass raises — or when per-pass
verification after it fails — the manager raises
:class:`repro.diagnostics.PassError` carrying a
:class:`~repro.diagnostics.Diagnostic` that names the pass (and, for
verification failures, the offending op path). With ``artifact_dir``
configured (or the ``SPNC_ARTIFACT_DIR`` environment variable set), the
manager also dumps a reproducer: the module IR before the failing pass
in generic textual form.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Optional, Union

from ..diagnostics import (
    Diagnostic,
    ErrorCode,
    PassError,
    Severity,
    dump_reproducer,
)
from ..testing import faults
from .ops import Operation
from .verifier import VerificationError, verify

#: Valid ``verify_each`` instrumentation modes for :class:`PassManager`.
VERIFY_EACH_MODES = ("off", "structural", "boundaries", "every-pass")


def normalize_verify_each(mode: Union[bool, str, None]) -> str:
    """Normalize a verify-each knob to one of :data:`VERIFY_EACH_MODES`.

    Booleans are accepted for backward compatibility: ``True`` is the
    historic structural-verify-after-each-pass behavior, ``False`` is
    off. Strings select the full instrumentation level: "structural"
    runs only the structural verifier after each pass, "boundaries"
    additionally runs the registered static checks (buffer safety,
    range, lint — see :mod:`repro.ir.analysis`) after the *last* pass,
    and "every-pass" runs verifier plus checks after every pass.
    """
    if mode is None or mode is False:
        return "off"
    if mode is True:
        return "structural"
    if mode not in VERIFY_EACH_MODES:
        raise ValueError(
            f"unknown verify_each mode '{mode}' "
            f"(expected one of {', '.join(VERIFY_EACH_MODES)})"
        )
    return mode


class Pass:
    """Base class for IR passes. Subclasses implement :meth:`run`."""

    #: Human-readable pass name; defaults to the class name.
    name: str = ""

    def __init__(self):
        if not self.name:
            self.name = type(self).__name__

    def run(self, op: Operation) -> None:
        raise NotImplementedError


class FunctionPass(Pass):
    """A pass that runs once per function-like op inside a module."""

    def run(self, op: Operation) -> None:
        from .traits import Trait

        for nested in op.walk():
            if nested.has_trait(Trait.FUNCTION_LIKE):
                self.run_on_function(nested)

    def run_on_function(self, func: Operation) -> None:
        raise NotImplementedError


class PassTiming:
    """Accumulated timing statistics for one pipeline execution."""

    def __init__(self):
        self.seconds: Dict[str, float] = {}
        self.order: List[str] = []

    def record(self, name: str, elapsed: float) -> None:
        if name not in self.seconds:
            self.order.append(name)
            self.seconds[name] = 0.0
        self.seconds[name] += elapsed

    @property
    def total(self) -> float:
        return sum(self.seconds.values())

    def report(self) -> str:
        lines = ["pass timing:"]
        for name in self.order:
            lines.append(f"  {name:40s} {self.seconds[name] * 1e3:10.3f} ms")
        lines.append(f"  {'total':40s} {self.total * 1e3:10.3f} ms")
        return "\n".join(lines)


class PassManager:
    """Runs a sequence of passes over a module, with optional verification.

    ``verify_each`` selects the instrumentation level (see
    :func:`normalize_verify_each`): any mode other than "off" runs the
    structural verifier after each pass; "boundaries" also runs the
    registered static analyses (:mod:`repro.ir.analysis`) once after
    the final pass, and "every-pass" runs them after every pass.
    ERROR-severity findings abort with a :class:`PassError` naming the
    offending pass; WARNING/NOTE findings accumulate on
    :attr:`analysis_findings`.
    """

    def __init__(
        self,
        verify_each: Union[bool, str] = False,
        artifact_dir: Optional[str] = None,
    ):
        self.passes: List[Pass] = []
        self.verify_each = normalize_verify_each(verify_each)
        self.artifact_dir = artifact_dir
        self.timing = PassTiming()
        #: WARNING/NOTE analysis findings collected by instrumentation.
        self.analysis_findings: List[object] = []
        self._findings_seen: set = set()

    def add(self, pass_: Pass) -> "PassManager":
        self.passes.append(pass_)
        return self

    def extend(self, passes) -> "PassManager":
        for pass_ in passes:
            self.add(pass_)
        return self

    def run(self, module: Operation) -> PassTiming:
        for index, pass_ in enumerate(self.passes):
            start = time.perf_counter()
            try:
                faults.maybe_fail_pass(pass_.name)
                pass_.run(module)
            except PassError:
                raise
            except Exception as error:
                raise self._pass_error(pass_.name, error, module) from error
            self.timing.record(pass_.name, time.perf_counter() - start)
            if self.verify_each != "off":
                try:
                    verify(module)
                except VerificationError as error:
                    raise self._pass_error(
                        pass_.name, error, module, after_verify=True
                    ) from error
            is_last = index == len(self.passes) - 1
            if self.verify_each == "every-pass" or (
                self.verify_each == "boundaries" and is_last
            ):
                self._run_analysis_checks(pass_.name, module)
        return self.timing

    def _run_analysis_checks(self, pass_name: str, module: Operation) -> None:
        from .analysis import run_checks, severity_at_least

        findings = run_checks(module, phase="mid")
        errors = [
            f for f in findings if severity_at_least(f.severity, Severity.ERROR)
        ]
        if errors:
            worst = errors[0]
            summary = "; ".join(f.render() for f in errors[:5])
            error = _AnalysisViolation(
                f"static analysis found {len(errors)} violation(s) after "
                f"pass '{pass_name}': {summary}",
                op_path=worst.op_path,
            )
            raise self._pass_error(pass_name, error, module, after_analysis=True)
        for finding in findings:
            if severity_at_least(finding.severity, Severity.ERROR):
                continue
            # Unfixed findings re-surface after every subsequent pass;
            # keep one copy per (check, op, message).
            key = (finding.check, finding.op_path, finding.message)
            if key in self._findings_seen:
                continue
            self._findings_seen.add(key)
            self.analysis_findings.append(finding)

    def _pass_error(
        self,
        pass_name: str,
        error: BaseException,
        module: Operation,
        after_verify: bool = False,
        after_analysis: bool = False,
    ) -> PassError:
        if after_analysis:
            code = ErrorCode.ANALYSIS_FAILED
            message = str(error)
        elif after_verify:
            code = ErrorCode.VERIFY_FAILED
            message = (
                f"IR verification failed after pass '{pass_name}': {error}"
            )
        else:
            code = (
                ErrorCode.FAULT_INJECTED
                if isinstance(error, faults.FaultInjectionError)
                else ErrorCode.PASS_FAILED
            )
            message = f"pass '{pass_name}' failed: {error}"
        diagnostic = Diagnostic(
            severity=Severity.ERROR,
            code=code,
            message=message,
            pass_name=pass_name,
            op_path=getattr(error, "op_path", None),
            detail={"exception_type": type(error).__name__},
        )
        reproducer = None
        if self.artifact_dir or os.environ.get("SPNC_ARTIFACT_DIR"):
            from .printer import print_op

            try:
                module_text = print_op(module)
            except Exception:  # printing a broken module must not mask the error
                module_text = None
            reproducer = dump_reproducer(
                diagnostic, module_text=module_text, artifact_dir=self.artifact_dir
            )
        return PassError(message, diagnostic=diagnostic, reproducer_path=reproducer)


class _AnalysisViolation(Exception):
    """Carrier for an analysis-instrumentation failure (has an op path)."""

    def __init__(self, message: str, op_path: Optional[str] = None):
        super().__init__(message)
        self.op_path = op_path
