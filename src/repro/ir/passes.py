"""Pass infrastructure: passes, pipelines and per-pass timing.

The :class:`PassManager` records wall-clock time per pass, which the
benchmark harness uses to reproduce the paper's compile-time breakdowns
(Section V-B1: where compilation time is spent).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from .ops import Operation
from .verifier import verify


class Pass:
    """Base class for IR passes. Subclasses implement :meth:`run`."""

    #: Human-readable pass name; defaults to the class name.
    name: str = ""

    def __init__(self):
        if not self.name:
            self.name = type(self).__name__

    def run(self, op: Operation) -> None:
        raise NotImplementedError


class FunctionPass(Pass):
    """A pass that runs once per function-like op inside a module."""

    def run(self, op: Operation) -> None:
        from .traits import Trait

        for nested in op.walk():
            if nested.has_trait(Trait.FUNCTION_LIKE):
                self.run_on_function(nested)

    def run_on_function(self, func: Operation) -> None:
        raise NotImplementedError


class PassTiming:
    """Accumulated timing statistics for one pipeline execution."""

    def __init__(self):
        self.seconds: Dict[str, float] = {}
        self.order: List[str] = []

    def record(self, name: str, elapsed: float) -> None:
        if name not in self.seconds:
            self.order.append(name)
            self.seconds[name] = 0.0
        self.seconds[name] += elapsed

    @property
    def total(self) -> float:
        return sum(self.seconds.values())

    def report(self) -> str:
        lines = ["pass timing:"]
        for name in self.order:
            lines.append(f"  {name:40s} {self.seconds[name] * 1e3:10.3f} ms")
        lines.append(f"  {'total':40s} {self.total * 1e3:10.3f} ms")
        return "\n".join(lines)


class PassManager:
    """Runs a sequence of passes over a module, with optional verification."""

    def __init__(self, verify_each: bool = False):
        self.passes: List[Pass] = []
        self.verify_each = verify_each
        self.timing = PassTiming()

    def add(self, pass_: Pass) -> "PassManager":
        self.passes.append(pass_)
        return self

    def extend(self, passes) -> "PassManager":
        for pass_ in passes:
            self.add(pass_)
        return self

    def run(self, module: Operation) -> PassTiming:
        for pass_ in self.passes:
            start = time.perf_counter()
            pass_.run(module)
            self.timing.record(pass_.name, time.perf_counter() - start)
            if self.verify_each:
                verify(module)
        return self.timing
