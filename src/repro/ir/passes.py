"""Pass infrastructure: passes, pipelines and unified instrumentation.

The :class:`PassManager` is the *single* driver for the whole compile
flow (paper Section IV): every stage of :func:`repro.compiler.compile_spn`
— frontend build, dialect lowerings, bufferization, target lowering and
the cleanup ladders — is a registered :class:`Pass`, so one manager runs
and instruments them all. Per-pass instrumentation
(:class:`PassInstrumentation`) records wall-clock time, IR op-count
deltas and optional IR snapshots; the benchmark harness uses the timing
to reproduce the paper's compile-time breakdowns (Section V-B1: where
compilation time is spent).

Passes come in two flavours:

- in-place passes mutate the module they are given and return ``None``
  (the common MLIR shape: canonicalize, CSE, LICM, ...), and
- *module-replacing* passes return a fresh module (full dialect
  conversions such as ``lower-to-lospn`` or ``bufferize`` that rebuild
  the module op by op). The manager splices the replacement's body into
  the original module op, so callers keep a single stable module
  reference across the whole pipeline.

Failures are structured: when a pass raises — or when per-pass
verification after it fails — the manager raises
:class:`repro.diagnostics.PassError` carrying a
:class:`~repro.diagnostics.Diagnostic` that names the pass (and, for
verification failures, the offending op path). Because pipeline stages
*are* passes now, the diagnostic fills both ``pass_name`` and ``stage``
with the same name. With ``artifact_dir`` configured (or the
``SPNC_ARTIFACT_DIR`` environment variable set), the manager also dumps
a reproducer: the module IR before the failing pass in generic textual
form, plus the active compiler options when the driver attached them
via :attr:`PassManager.reproducer_options`.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from ..diagnostics import (
    Diagnostic,
    ErrorCode,
    PassError,
    Severity,
    dump_reproducer,
)
from ..testing import faults
from .ops import Operation
from .verifier import VerificationError, verify

#: Valid ``verify_each`` instrumentation modes for :class:`PassManager`.
VERIFY_EACH_MODES = ("off", "structural", "boundaries", "every-pass")


def normalize_verify_each(mode: Union[bool, str, None]) -> str:
    """Normalize a verify-each knob to one of :data:`VERIFY_EACH_MODES`.

    Booleans are accepted for backward compatibility: ``True`` is the
    historic structural-verify-after-each-pass behavior, ``False`` is
    off. Strings select the full instrumentation level: "structural"
    runs only the structural verifier after each pass, "boundaries"
    additionally runs the registered static checks (buffer safety,
    range, lint — see :mod:`repro.ir.analysis`) at the pipeline's
    registered checkpoints (or after the *last* pass when none are
    registered), and "every-pass" runs verifier plus checks after every
    pass.
    """
    if mode is None or mode is False:
        return "off"
    if mode is True:
        return "structural"
    if mode not in VERIFY_EACH_MODES:
        raise ValueError(
            f"unknown verify_each mode '{mode}' "
            f"(expected one of {', '.join(VERIFY_EACH_MODES)})"
        )
    return mode


class Pass:
    """Base class for IR passes. Subclasses implement :meth:`run`.

    :meth:`run` may return a replacement module (a fresh
    :class:`Operation`) instead of mutating in place; the
    :class:`PassManager` adopts the replacement by splicing its body
    into the module it was given (see :func:`splice_module`).
    """

    #: Human-readable pass name; defaults to the class name. The
    #: pipeline builder may suffix it ("canonicalize-2") to keep
    #: instance names — and therefore timing keys — unique and stable.
    name: str = ""

    def __init__(self):
        if not self.name:
            self.name = type(self).__name__
        #: Registry name this instance was built from (set by
        #: :mod:`repro.ir.pipeline_spec`); used to print the pipeline
        #: back to its textual form.
        self.pipeline_name: Optional[str] = None
        #: Explicit (non-default) options this instance was built with,
        #: keyed by python identifier (underscores).
        self.pipeline_options: Dict[str, object] = {}

    def run(self, op: Operation) -> Optional[Operation]:
        raise NotImplementedError


class FunctionPass(Pass):
    """A pass that runs once per function-like op inside a module."""

    def run(self, op: Operation) -> None:
        from .traits import Trait

        for nested in op.walk():
            if nested.has_trait(Trait.FUNCTION_LIKE):
                self.run_on_function(nested)

    def run_on_function(self, func: Operation) -> None:
        raise NotImplementedError


def splice_module(old: Operation, new: Operation) -> Operation:
    """Adopt ``new``'s body into ``old`` (module-replacing passes).

    Every op of ``new``'s single block is *moved* (not cloned) into
    ``old``'s block after the previous contents are unlinked, so SSA
    def-use chains inside the moved ops survive intact and callers'
    reference to ``old`` stays valid across full dialect conversions.
    """
    old_block = old.body_block
    for op in list(old_block.ops):
        op.remove_from_parent()
    for op in list(new.body_block.ops):
        op.remove_from_parent()
        old_block.append(op)
    if new.attributes:
        old.attributes.update(new.attributes)
    return old


@dataclass
class PassRecord:
    """Instrumentation for one pass execution: time, op-count delta, IR."""

    name: str
    seconds: float
    ops_before: Optional[int] = None
    ops_after: Optional[int] = None
    #: Generic-form IR snapshot after the pass (``collect_ir`` only).
    ir_after: Optional[str] = None

    @property
    def op_delta(self) -> Optional[int]:
        """Op-count change caused by the pass (negative = ops removed)."""
        if self.ops_before is None or self.ops_after is None:
            return None
        return self.ops_after - self.ops_before


class PassInstrumentation:
    """Unified per-pass instrumentation for one pipeline execution.

    This merges the historic ``PassTiming`` (wall-clock per pass) with
    the stage-level record the old imperative driver kept: every record
    carries the pass name, elapsed seconds, the module op counts before
    and after, and — when IR collection is on — a textual IR snapshot.
    ``seconds``/``order`` keep the old accumulated-by-name view that
    the compile-time benchmarks (Figs. 10–13) read.
    """

    def __init__(self):
        self.records: List[PassRecord] = []
        self.seconds: Dict[str, float] = {}
        self.order: List[str] = []

    def record(
        self,
        name: str,
        elapsed: float,
        ops_before: Optional[int] = None,
        ops_after: Optional[int] = None,
        ir_after: Optional[str] = None,
    ) -> PassRecord:
        if name not in self.seconds:
            self.order.append(name)
            self.seconds[name] = 0.0
        self.seconds[name] += elapsed
        entry = PassRecord(
            name=name,
            seconds=elapsed,
            ops_before=ops_before,
            ops_after=ops_after,
            ir_after=ir_after,
        )
        self.records.append(entry)
        return entry

    @property
    def total(self) -> float:
        return sum(self.seconds.values())

    def stage_seconds(self) -> "Dict[str, float]":
        """Accumulated seconds per pass name, in first-run order."""
        return {name: self.seconds[name] for name in self.order}

    def ir_dumps(self) -> Dict[str, str]:
        """Collected IR snapshots keyed by pass name (last run wins)."""
        return {
            record.name: record.ir_after
            for record in self.records
            if record.ir_after is not None
        }

    def report(self) -> str:
        lines = ["pass timing:"]
        deltas: Dict[str, Optional[int]] = {}
        for record in self.records:
            if record.op_delta is not None:
                deltas[record.name] = deltas.get(record.name, 0) + record.op_delta
        for name in self.order:
            line = f"  {name:40s} {self.seconds[name] * 1e3:10.3f} ms"
            if name in deltas:
                line += f" {deltas[name]:+6d} ops"
            lines.append(line)
        lines.append(f"  {'total':40s} {self.total * 1e3:10.3f} ms")
        return "\n".join(lines)


#: Backward-compatible alias: the timing class grew into the unified
#: instrumentation record.
PassTiming = PassInstrumentation


class PassManager:
    """Runs a sequence of passes over a module, with optional verification.

    ``verify_each`` selects the instrumentation level (see
    :func:`normalize_verify_each`): any mode other than "off" runs the
    structural verifier after each pass; "boundaries" also runs the
    registered static analyses (:mod:`repro.ir.analysis`) at the
    registered checkpoints (falling back to once after the final pass
    when no checkpoints are registered), and "every-pass" runs them
    after every pass. ERROR-severity findings abort with a
    :class:`PassError` naming the offending pass; WARNING/NOTE findings
    accumulate on :attr:`analysis_findings`.

    ``collect_ir`` snapshots the module in generic textual form after
    every pass; ``instrument_ops`` (on by default) records module
    op counts around each pass so :attr:`timing` carries op-count
    deltas alongside wall-clock time.
    """

    def __init__(
        self,
        verify_each: Union[bool, str] = False,
        artifact_dir: Optional[str] = None,
        collect_ir: bool = False,
        instrument_ops: bool = True,
    ):
        self.passes: List[Pass] = []
        self.verify_each = normalize_verify_each(verify_each)
        self.artifact_dir = artifact_dir
        self.collect_ir = collect_ir
        self.instrument_ops = instrument_ops
        self.timing = PassInstrumentation()
        #: WARNING/NOTE analysis findings collected by instrumentation.
        self.analysis_findings: List[object] = []
        self._findings_seen: set = set()
        #: Analysis checkpoints: pass index -> (checkpoint name, phase).
        #: In "boundaries" mode the static checks run only here; in
        #: "every-pass" mode they run after every pass *plus* here (a
        #: "final"-phase checkpoint applies the strict whole-module
        #: rules on the fully lowered IR).
        self._checkpoints: Dict[int, Tuple[str, str]] = {}
        #: Optional compiler-options object included in reproducer dumps
        #: (set by the compile driver).
        self.reproducer_options: Optional[object] = None
        #: Target name stamped onto failure diagnostics (set by the
        #: compile driver).
        self.diagnostic_target: Optional[str] = None

    def add(self, pass_: Pass) -> "PassManager":
        self.passes.append(pass_)
        return self

    def extend(self, passes) -> "PassManager":
        for pass_ in passes:
            self.add(pass_)
        return self

    def checkpoint_after(
        self, index: int, name: str, phase: str = "mid"
    ) -> "PassManager":
        """Register an analysis checkpoint after the pass at ``index``."""
        if not -len(self.passes) <= index < len(self.passes):
            raise IndexError(f"no pass at index {index}")
        self._checkpoints[index % len(self.passes)] = (name, phase)
        return self

    def run(self, module: Operation) -> PassInstrumentation:
        for index, pass_ in enumerate(self.passes):
            ops_before = self._count_ops(module)
            start = time.perf_counter()
            try:
                faults.maybe_fail_pass(pass_.name)
                result = pass_.run(module)
                if isinstance(result, Operation) and result is not module:
                    splice_module(module, result)
            except PassError:
                raise
            except Exception as error:
                raise self._pass_error(pass_.name, error, module) from error
            elapsed = time.perf_counter() - start
            ir_after = None
            if self.collect_ir:
                from .printer import print_op

                ir_after = print_op(module)
            self.timing.record(
                pass_.name,
                elapsed,
                ops_before=ops_before,
                ops_after=self._count_ops(module),
                ir_after=ir_after,
            )
            if self.verify_each != "off":
                try:
                    verify(module)
                except VerificationError as error:
                    raise self._pass_error(
                        pass_.name, error, module, after_verify=True
                    ) from error
            self._run_checkpoints(index, pass_, module)
        return self.timing

    def _count_ops(self, module: Operation) -> Optional[int]:
        if not self.instrument_ops:
            return None
        return sum(1 for _ in module.walk())

    def _run_checkpoints(
        self, index: int, pass_: Pass, module: Operation
    ) -> None:
        if self.verify_each == "every-pass":
            self._run_analysis_checks(pass_.name, module, phase="mid")
        checkpoint = self._checkpoints.get(index)
        if checkpoint is not None and self.verify_each in (
            "boundaries",
            "every-pass",
        ):
            name, phase = checkpoint
            self._run_analysis_checks(name, module, phase=phase)
        elif (
            self.verify_each == "boundaries"
            and not self._checkpoints
            and index == len(self.passes) - 1
        ):
            # Legacy behavior for ad-hoc pipelines (``spnc opt``,
            # parse_pipeline): boundaries == after the last pass.
            self._run_analysis_checks(pass_.name, module, phase="mid")

    def _run_analysis_checks(
        self, pass_name: str, module: Operation, phase: str = "mid"
    ) -> None:
        from .analysis import run_checks, severity_at_least

        findings = run_checks(module, phase=phase)
        errors = [
            f for f in findings if severity_at_least(f.severity, Severity.ERROR)
        ]
        if errors:
            worst = errors[0]
            summary = "; ".join(f.render() for f in errors[:5])
            error = _AnalysisViolation(
                f"static analysis found {len(errors)} violation(s) after "
                f"pass '{pass_name}': {summary}",
                op_path=worst.op_path,
            )
            raise self._pass_error(pass_name, error, module, after_analysis=True)
        for finding in findings:
            if severity_at_least(finding.severity, Severity.ERROR):
                continue
            # Unfixed findings re-surface after every subsequent pass;
            # keep one copy per (check, op, message).
            key = (finding.check, finding.op_path, finding.message)
            if key in self._findings_seen:
                continue
            self._findings_seen.add(key)
            self.analysis_findings.append(finding)

    def _pass_error(
        self,
        pass_name: str,
        error: BaseException,
        module: Operation,
        after_verify: bool = False,
        after_analysis: bool = False,
    ) -> PassError:
        if after_analysis:
            code = ErrorCode.ANALYSIS_FAILED
            message = str(error)
        elif after_verify:
            code = ErrorCode.VERIFY_FAILED
            message = (
                f"IR verification failed after pass '{pass_name}': {error}"
            )
        else:
            code = (
                ErrorCode.FAULT_INJECTED
                if isinstance(error, faults.FaultInjectionError)
                else ErrorCode.PASS_FAILED
            )
            message = f"pass '{pass_name}' failed: {error}"
        diagnostic = Diagnostic(
            severity=Severity.ERROR,
            code=code,
            message=message,
            pass_name=pass_name,
            # Stages and passes are unified: name the failure both ways
            # so stage-oriented consumers (fallback cascade, CLI) see it.
            stage=pass_name,
            op_path=getattr(error, "op_path", None),
            target=self.diagnostic_target,
            detail={"exception_type": type(error).__name__},
        )
        reproducer = None
        # Driver-run pipelines (reproducer_options attached) always dump —
        # artifact_directory() falls back to $SPNC_ARTIFACT_DIR / the
        # system temp dir; ad-hoc pipelines dump only when configured.
        if (
            self.artifact_dir
            or os.environ.get("SPNC_ARTIFACT_DIR")
            or self.reproducer_options is not None
        ):
            from .printer import print_op

            try:
                module_text = print_op(module)
            except Exception:  # printing a broken module must not mask the error
                module_text = None
            reproducer = dump_reproducer(
                diagnostic,
                module_text=module_text,
                options=self.reproducer_options,
                artifact_dir=self.artifact_dir,
            )
        return PassError(message, diagnostic=diagnostic, reproducer_path=reproducer)


class _AnalysisViolation(Exception):
    """Carrier for an analysis-instrumentation failure (has an op path)."""

    def __init__(self, message: str, op_path: Optional[str] = None):
        super().__init__(message)
        self.op_path = op_path
