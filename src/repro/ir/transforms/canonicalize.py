"""Canonicalization: folding + per-op rewrite patterns + commutative order.

Operation classes contribute patterns via an optional classmethod
``canonicalize_patterns()``. The pass collects patterns from every
registered op class, adds the generic commutative-operand ordering
pattern, and runs the greedy driver.
"""

from __future__ import annotations

from typing import List

from ..ops import Operation, registered_ops
from ..passes import Pass
from ..rewrite import GreedyRewriteDriver, RewritePattern, Rewriter
from ..traits import Trait


class CommutativeOperandOrder(RewritePattern):
    """Order operands of commutative binary ops deterministically.

    Constants sink to the right (MLIR convention) and remaining operands
    are ordered by producing-op identity so that structurally identical
    expressions become textually identical, improving CSE.
    """

    def match_and_rewrite(self, op: Operation, rewriter: Rewriter) -> bool:
        if not op.has_trait(Trait.COMMUTATIVE) or len(op.operands) != 2:
            return False
        lhs, rhs = op.operands
        lhs_const = lhs.defining_op is not None and lhs.defining_op.has_trait(
            Trait.CONSTANT_LIKE
        )
        rhs_const = rhs.defining_op is not None and rhs.defining_op.has_trait(
            Trait.CONSTANT_LIKE
        )
        if lhs_const and not rhs_const:
            op.set_operands([rhs, lhs])
            rewriter.notify(op)
            return True
        return False


def collect_canonicalization_patterns() -> List[RewritePattern]:
    patterns: List[RewritePattern] = [CommutativeOperandOrder()]
    for cls in registered_ops().values():
        hook = getattr(cls, "canonicalize_patterns", None)
        if hook is not None:
            patterns.extend(hook())
    return patterns


def canonicalize(root: Operation, max_iterations: int = 10) -> bool:
    driver = GreedyRewriteDriver(collect_canonicalization_patterns(), max_iterations)
    return driver.run(root)


class CanonicalizePass(Pass):
    name = "canonicalize"

    def run(self, op: Operation) -> None:
        canonicalize(op)
