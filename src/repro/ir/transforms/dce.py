"""Dead code elimination for pure operations."""

from __future__ import annotations

from ..ops import Operation
from ..passes import Pass
from ..traits import Trait


def run_dce(root: Operation) -> int:
    """Erase pure ops whose results are all unused; returns #erased.

    Iterates to a fixpoint so chains of dead ops disappear in one call.
    The walk is post-order, so users are visited (and erased) before their
    producers within each sweep.
    """
    erased_total = 0
    while True:
        erased = 0
        for op in root.walk():
            if op is root or op.parent is None:
                continue
            if op.has_trait(Trait.PURE) and op.results and not op.has_uses:
                op.erase()
                erased += 1
        erased_total += erased
        if erased == 0:
            return erased_total


class DCEPass(Pass):
    name = "dce"

    def run(self, op: Operation) -> None:
        run_dce(op)
