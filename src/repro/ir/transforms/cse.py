"""Common subexpression elimination.

Pure operations with identical (name, operands, attributes, result types)
are deduplicated. Scoping follows region nesting: an op can reuse an
equivalent op from any enclosing region (straight-line dominance), but ops
inside ``ISOLATED_FROM_ABOVE`` regions only see their own scope.

SPN graphs after binarization contain large amounts of sharing — repeated
leaves and repeated sub-products — so this pass significantly shrinks the
kernels at -O1 and above.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..attributes import attributes_key
from ..ops import Block, Operation, Region
from ..passes import Pass
from ..traits import Trait


def _op_key(op: Operation, value_ids: Dict) -> Tuple:
    return (
        op.op_name,
        tuple(value_ids.get(id(v), id(v)) for v in op.operands),
        attributes_key(op.attributes),
        tuple(r.type for r in op.results),
    )


def run_cse(root: Operation) -> int:
    """Run CSE beneath ``root``; returns the number of ops eliminated."""
    eliminated = 0

    def process_region(region: Region, scopes: List[Dict]) -> None:
        nonlocal eliminated
        for block in region.blocks:
            scope: Dict = {}
            for op in list(block.ops):
                # Recurse first so nested computations are already deduped.
                if op.regions:
                    child_scopes = (
                        [] if op.has_trait(Trait.ISOLATED_FROM_ABOVE) else scopes + [scope]
                    )
                    for nested in op.regions:
                        process_region(nested, child_scopes)
                if not op.has_trait(Trait.PURE) or not op.results or op.regions:
                    continue
                key = _op_key(op, _value_numbering)
                existing = scope.get(key)
                if existing is None:
                    for outer in reversed(scopes):
                        existing = outer.get(key)
                        if existing is not None:
                            break
                if existing is not None:
                    op.replace_all_uses_with(list(existing.results))
                    op.erase()
                    eliminated += 1
                else:
                    scope[key] = op

    # Value numbering map: identity of values is already unique via id();
    # the indirection exists so the key helper can be reused by tests.
    _value_numbering: Dict = {}

    for region in root.regions:
        process_region(region, [])
    return eliminated


class CSEPass(Pass):
    name = "cse"

    def run(self, op: Operation) -> None:
        run_cse(op)
