"""Loop-invariant code motion for scf.for loops.

Pure operations whose operands are all defined outside the loop body are
hoisted before the loop. Runs innermost-first and iterates inside each
loop so chains of invariant ops (e.g. constant → broadcast) hoist
together. Part of the -O1 pipeline: without it, per-iteration constant
re-materialization dominates the generated kernels.
"""

from __future__ import annotations

from typing import Set

from ..ops import Operation
from ..passes import Pass
from ..traits import Trait
from ..value import Value


def _defined_in(container: Operation, value: Value) -> bool:
    """Is ``value`` defined anywhere inside ``container``'s regions?"""
    current = value.defining_op
    if current is None:
        current = value.owner.parent_op  # op owning the block's region
    while current is not None:
        if current is container:
            return True
        current = current.parent_op
    return False


def hoist_loop_invariants(root: Operation) -> int:
    """Hoist invariant pure ops out of every scf.for under ``root``."""
    hoisted_total = 0
    # Innermost loops first: post-order walk already yields nested ops
    # before their parents.
    for op in root.walk():
        if op.op_name != "scf.for" or op.parent is None:
            continue
        hoisted_total += _hoist_from_loop(op)
    return hoisted_total


def _hoist_from_loop(loop: Operation) -> int:
    hoisted = 0
    changed = True
    while changed:
        changed = False
        for op in list(loop.body_block.ops):
            if not op.has_trait(Trait.PURE) or op.regions:
                continue
            if any(_defined_in(loop, operand) for operand in op.operands):
                continue
            op.remove_from_parent()
            loop.parent._insert_before(loop, op)
            hoisted += 1
            changed = True
    return hoisted


class LICMPass(Pass):
    name = "licm"

    def run(self, op: Operation) -> None:
        hoist_loop_invariants(op)
