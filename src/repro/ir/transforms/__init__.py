"""Generic, dialect-agnostic IR transformations."""

from .canonicalize import CanonicalizePass, canonicalize
from .cse import CSEPass, run_cse
from .dce import DCEPass, run_dce

__all__ = [
    "CanonicalizePass",
    "canonicalize",
    "CSEPass",
    "run_cse",
    "DCEPass",
    "run_dce",
]
