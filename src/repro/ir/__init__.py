"""A from-scratch mini-MLIR: SSA IR with dialects, regions and passes.

This package provides the compiler infrastructure the SPNC reproduction is
built on: types and attributes, operations with nested regions, a builder,
a verifier, textual printing/parsing (generic form), a pass manager with
timing, and a greedy pattern-rewrite driver with canonicalization, CSE and
DCE.
"""

from .attributes import attributes_equal, normalize_attribute
from .builder import Builder
from .builtin import ModuleOp, UnrealizedConversionCastOp
from .dialect import Dialect, get_dialect, registered_dialects
from .ops import Block, IRError, Operation, Region, lookup_op_class, register_op
from .parser import ParseError, parse_module, parse_type_text
from .passes import (
    FunctionPass,
    Pass,
    PassInstrumentation,
    PassManager,
    PassRecord,
    PassTiming,
    splice_module,
)
from .printer import print_op
from .rewrite import (
    GreedyRewriteDriver,
    RewritePattern,
    Rewriter,
    apply_patterns_greedily,
    set_constant_materializer,
)
from .traits import Trait
from .transforms import CanonicalizePass, CSEPass, DCEPass, canonicalize, run_cse, run_dce
from .types import (
    FloatType,
    IndexType,
    IntegerType,
    MemRefType,
    NoneType,
    TensorType,
    Type,
    VectorType,
    f32,
    f64,
    i1,
    i32,
    i64,
    index,
    none,
)
from .value import BlockArgument, OpResult, Use, Value
from .verifier import VerificationError, verify

__all__ = [
    "attributes_equal",
    "normalize_attribute",
    "Builder",
    "ModuleOp",
    "UnrealizedConversionCastOp",
    "Dialect",
    "get_dialect",
    "registered_dialects",
    "Block",
    "IRError",
    "Operation",
    "Region",
    "lookup_op_class",
    "register_op",
    "ParseError",
    "parse_module",
    "parse_type_text",
    "FunctionPass",
    "Pass",
    "PassInstrumentation",
    "PassManager",
    "PassRecord",
    "PassTiming",
    "splice_module",
    "print_op",
    "GreedyRewriteDriver",
    "RewritePattern",
    "Rewriter",
    "apply_patterns_greedily",
    "set_constant_materializer",
    "Trait",
    "CanonicalizePass",
    "CSEPass",
    "DCEPass",
    "canonicalize",
    "run_cse",
    "run_dce",
    "FloatType",
    "IndexType",
    "IntegerType",
    "MemRefType",
    "NoneType",
    "TensorType",
    "Type",
    "VectorType",
    "f32",
    "f64",
    "i1",
    "i32",
    "i64",
    "index",
    "none",
    "BlockArgument",
    "OpResult",
    "Use",
    "Value",
    "VerificationError",
    "verify",
]
