"""SSA values, results and block arguments.

Every :class:`Value` keeps an explicit use-list so that passes can query
``value.uses``, ``value.has_uses`` and rewrite with
``value.replace_all_uses_with`` in O(#uses), which matters for the large
SPN graphs (hundreds of thousands of operations) the compiler handles.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, List

from .types import Type

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .ops import Block, Operation


class Use:
    """A single use of a value: ``owner.operands[operand_index]``."""

    __slots__ = ("owner", "operand_index")

    def __init__(self, owner: "Operation", operand_index: int):
        self.owner = owner
        self.operand_index = operand_index

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Use {self.owner.name}#{self.operand_index}>"


class Value:
    """Base class for SSA values (operation results and block arguments)."""

    __slots__ = ("type", "_uses")

    def __init__(self, type: Type):
        self.type = type
        self._uses: List[Use] = []

    # -- use tracking ------------------------------------------------------

    @property
    def uses(self) -> Iterator[Use]:
        return iter(list(self._uses))

    @property
    def users(self) -> List["Operation"]:
        """Distinct operations using this value, in first-use order."""
        seen = []
        for use in self._uses:
            if use.owner not in seen:
                seen.append(use.owner)
        return seen

    @property
    def has_uses(self) -> bool:
        return bool(self._uses)

    @property
    def num_uses(self) -> int:
        return len(self._uses)

    def has_one_use(self) -> bool:
        return len(self._uses) == 1

    def _add_use(self, use: Use) -> None:
        self._uses.append(use)

    def _remove_use(self, owner: "Operation", operand_index: int) -> None:
        for i, use in enumerate(self._uses):
            if use.owner is owner and use.operand_index == operand_index:
                del self._uses[i]
                return
        raise RuntimeError("use not found on value")  # pragma: no cover

    def replace_all_uses_with(self, replacement: "Value") -> None:
        """Rewrite every use of this value to use ``replacement`` instead."""
        if replacement is self:
            return
        for use in list(self._uses):
            use.owner._set_operand(use.operand_index, replacement)

    # -- introspection -----------------------------------------------------

    @property
    def owner(self):
        """The operation or block defining this value."""
        raise NotImplementedError

    @property
    def defining_op(self):
        """The defining operation, or None for block arguments."""
        return None


class OpResult(Value):
    """A result produced by an operation."""

    __slots__ = ("op", "result_index")

    def __init__(self, op: "Operation", result_index: int, type: Type):
        super().__init__(type)
        self.op = op
        self.result_index = result_index

    @property
    def owner(self) -> "Operation":
        return self.op

    @property
    def defining_op(self) -> "Operation":
        return self.op

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<OpResult #{self.result_index} of {self.op.name} : {self.type}>"


class BlockArgument(Value):
    """An argument of a block (e.g. a loop induction variable)."""

    __slots__ = ("block", "arg_index")

    def __init__(self, block: "Block", arg_index: int, type: Type):
        super().__init__(type)
        self.block = block
        self.arg_index = arg_index

    @property
    def owner(self) -> "Block":
        return self.block

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<BlockArgument #{self.arg_index} : {self.type}>"
