"""Type system for the mini-MLIR IR.

Types are immutable, uniqued-by-value objects. Two types constructed with
the same parameters compare (and hash) equal, mirroring MLIR's context-level
type uniquing without requiring an explicit context handle.

Builtin types implemented here cover what the SPNC pipeline needs:
integers, floats, index, tensors, memrefs and vectors. Dialect-specific
types (``!hi_spn.probability``, ``!lo_spn.log<T>``) subclass :class:`Type`
in their dialect modules and are registered for parsing via
:func:`register_dialect_type`.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Type as PyType


class Type:
    """Base class of all IR types.

    Subclasses must set ``_params`` (a hashable tuple) in ``__init__`` and
    implement :meth:`spelling`. Equality and hashing are derived from the
    class and ``_params`` so types behave as value objects.
    """

    __slots__ = ("_params",)

    def __init__(self, params: Tuple = ()):
        self._params = params

    def spelling(self) -> str:
        """Return the textual form of this type (e.g. ``f32``)."""
        raise NotImplementedError

    def __str__(self) -> str:
        return self.spelling()

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.spelling()}>"

    def __eq__(self, other) -> bool:
        return type(self) is type(other) and self._params == other._params

    def __hash__(self) -> int:
        return hash((type(self), self._params))


class IntegerType(Type):
    """An integer type of a fixed bit-width (e.g. ``i32``)."""

    __slots__ = ("width",)

    def __init__(self, width: int):
        if width <= 0:
            raise ValueError(f"integer width must be positive, got {width}")
        self.width = width
        super().__init__((width,))

    def spelling(self) -> str:
        return f"i{self.width}"


class FloatType(Type):
    """An IEEE floating point type (``f32`` or ``f64``)."""

    __slots__ = ("width",)

    def __init__(self, width: int):
        if width not in (16, 32, 64):
            raise ValueError(f"unsupported float width {width}")
        self.width = width
        super().__init__((width,))

    def spelling(self) -> str:
        return f"f{self.width}"


class IndexType(Type):
    """The platform-sized index type used for loop induction variables."""

    __slots__ = ()

    def __init__(self):
        super().__init__(())

    def spelling(self) -> str:
        return "index"


class NoneType(Type):
    """A unit type for ops that produce no meaningful value."""

    __slots__ = ()

    def __init__(self):
        super().__init__(())

    def spelling(self) -> str:
        return "none"


class _ShapedType(Type):
    """Common base for tensor / memref / vector types."""

    __slots__ = ("shape", "element_type")

    _keyword = ""

    def __init__(self, shape: Tuple[Optional[int], ...], element_type: Type):
        self.shape = tuple(shape)
        self.element_type = element_type
        super().__init__((self.shape, element_type))

    @property
    def rank(self) -> int:
        return len(self.shape)

    def num_elements(self) -> Optional[int]:
        """Static element count, or None if any dimension is dynamic."""
        total = 1
        for dim in self.shape:
            if dim is None:
                return None
            total *= dim
        return total

    def spelling(self) -> str:
        dims = "x".join("?" if d is None else str(d) for d in self.shape)
        sep = "x" if dims else ""
        return f"{self._keyword}<{dims}{sep}{self.element_type.spelling()}>"


class TensorType(_ShapedType):
    """An immutable value-semantics tensor (``tensor<?xf32>``)."""

    __slots__ = ()
    _keyword = "tensor"


class MemRefType(_ShapedType):
    """A mutable buffer reference (``memref<?xf32>``)."""

    __slots__ = ()
    _keyword = "memref"


class VectorType(_ShapedType):
    """A SIMD vector (``vector<8xf32>``).

    Dimensions are usually static lane counts, but a dimension may be
    dynamic (``None``, printed ``?``) for batch-vectorized kernels whose
    vector width is the runtime chunk size (``vector<?xf64>``).
    """

    __slots__ = ()
    _keyword = "vector"

    def __init__(self, shape, element_type: Type):
        shape = tuple(shape)
        if any(d is not None and d <= 0 for d in shape):
            raise ValueError("vector dimensions must be positive")
        super().__init__(shape, element_type)


# Convenient singletons for the common types.
f32 = FloatType(32)
f64 = FloatType(64)
i1 = IntegerType(1)
i32 = IntegerType(32)
i64 = IntegerType(64)
index = IndexType()
none = NoneType()


# --- dialect type registry (used by the parser) -----------------------------

_DIALECT_TYPES: Dict[str, PyType] = {}


def register_dialect_type(prefix: str, cls: PyType) -> None:
    """Register a dialect type class for parsing.

    ``prefix`` is the mnemonic that appears after ``!`` in the textual form,
    e.g. ``"lo_spn.log"``. The class must provide a ``parse(body: str)``
    classmethod receiving the text between ``<`` and ``>`` (or ``""``).
    """
    _DIALECT_TYPES[prefix] = cls


def lookup_dialect_type(prefix: str) -> Optional[PyType]:
    return _DIALECT_TYPES.get(prefix)


def is_float(ty: Type) -> bool:
    return isinstance(ty, FloatType)


def is_integer(ty: Type) -> bool:
    return isinstance(ty, IntegerType)
