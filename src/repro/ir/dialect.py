"""Dialect grouping: a named collection of operations and types."""

from __future__ import annotations

from typing import Dict, List, Type as PyType

from .ops import register_op

_DIALECTS: Dict[str, "Dialect"] = {}


class Dialect:
    """A registered dialect (e.g. ``hi_spn``, ``lo_spn``, ``arith``)."""

    def __init__(self, name: str, description: str = ""):
        if name in _DIALECTS:
            raise ValueError(f"dialect '{name}' already registered")
        self.name = name
        self.description = description
        self.op_classes: List[PyType] = []
        self.type_classes: List[PyType] = []
        _DIALECTS[name] = self

    def op(self, cls: PyType) -> PyType:
        """Class decorator: register an operation under this dialect."""
        if not cls.name.startswith(self.name + "."):
            raise ValueError(
                f"op '{cls.name}' does not belong to dialect '{self.name}'"
            )
        register_op(cls)
        self.op_classes.append(cls)
        return cls

    def type(self, cls: PyType) -> PyType:
        self.type_classes.append(cls)
        return cls


def registered_dialects() -> Dict[str, Dialect]:
    return dict(_DIALECTS)


def get_dialect(name: str) -> Dialect:
    return _DIALECTS[name]
