"""Parser for the generic textual IR form produced by :mod:`printer`.

Supports the complete print→parse round trip used by the test suite:
operations, nested regions, block headers with arguments, all attribute
kinds, builtin types and registered dialect types.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from .ops import Block, Operation, Region, lookup_op_class
from .types import (
    FloatType,
    IndexType,
    IntegerType,
    MemRefType,
    NoneType,
    TensorType,
    Type,
    VectorType,
    lookup_dialect_type,
)
from .value import Value


class ParseError(Exception):
    """Raised on malformed IR text."""


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<caret>\^[A-Za-z0-9_]+)
  | (?P<ssa>%[A-Za-z0-9_]+)
  | (?P<dtype>![A-Za-z_][A-Za-z0-9_.]*)
  | (?P<arrow>->)
  | (?P<number>-?(?:\d+\.\d*(?:[eE][+-]?\d+)?|\d+[eE][+-]?\d+|\.\d+(?:[eE][+-]?\d+)?|\d+))
  | (?P<ident>[A-Za-z_][A-Za-z0-9_.]*)
  | (?P<punct>[(){}\[\]<>,=:?*+-])
    """,
    re.VERBOSE,
)


def tokenize(text: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise ParseError(f"unexpected character {text[pos]!r} at offset {pos}")
        kind = match.lastgroup
        if kind != "ws":
            tokens.append((kind, match.group()))
        pos = match.end()
    tokens.append(("eof", ""))
    return tokens


def _unescape(literal: str) -> str:
    body = literal[1:-1]
    return body.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")


class Parser:
    def __init__(self, text: str):
        self.tokens = tokenize(text)
        self.pos = 0
        self.values: Dict[str, Value] = {}

    # -- token helpers ---------------------------------------------------------

    def peek(self, offset: int = 0) -> Tuple[str, str]:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def advance(self) -> Tuple[str, str]:
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def expect(self, kind: str, text: Optional[str] = None) -> str:
        got_kind, got_text = self.peek()
        if got_kind != kind or (text is not None and got_text != text):
            want = text or kind
            raise ParseError(f"expected {want!r}, got {got_text!r}")
        self.advance()
        return got_text

    def accept(self, kind: str, text: Optional[str] = None) -> bool:
        got_kind, got_text = self.peek()
        if got_kind == kind and (text is None or got_text == text):
            self.advance()
            return True
        return False

    # -- entry point --------------------------------------------------------------

    def parse_module(self) -> Operation:
        op = self.parse_operation()
        self.expect("eof")
        return op

    # -- operations ----------------------------------------------------------------

    def parse_operation(self) -> Operation:
        result_names: List[str] = []
        if self.peek()[0] == "ssa":
            result_names.append(self.advance()[1])
            while self.accept("punct", ","):
                result_names.append(self.expect("ssa"))
            self.expect("punct", "=")

        op_name = _unescape(self.expect("string"))

        self.expect("punct", "(")
        operand_names: List[str] = []
        if not self.accept("punct", ")"):
            operand_names.append(self.expect("ssa"))
            while self.accept("punct", ","):
                operand_names.append(self.expect("ssa"))
            self.expect("punct", ")")

        regions_text: List[List[Block]] = []
        if self.peek() == ("punct", "(") and self.peek(1) == ("punct", "{"):
            self.advance()
            regions_text.append(self.parse_region())
            while self.accept("punct", ","):
                regions_text.append(self.parse_region())
            self.expect("punct", ")")

        attributes: Dict[str, Any] = {}
        if self.accept("punct", "{"):
            if not self.accept("punct", "}"):
                while True:
                    key = self.expect("ident")
                    self.expect("punct", "=")
                    attributes[key] = self.parse_attribute()
                    if not self.accept("punct", ","):
                        break
                self.expect("punct", "}")

        self.expect("punct", ":")
        operand_types, result_types = self.parse_function_type()
        if len(operand_types) != len(operand_names):
            raise ParseError(f"'{op_name}': operand/type count mismatch")
        if len(result_types) != len(result_names):
            raise ParseError(f"'{op_name}': result/type count mismatch")

        operands = []
        for name, ty in zip(operand_names, operand_types):
            value = self.values.get(name)
            if value is None:
                raise ParseError(f"use of undefined value {name}")
            if value.type != ty:
                raise ParseError(f"type mismatch for {name}: {value.type} vs {ty}")
            operands.append(value)

        cls = lookup_op_class(op_name)
        op = Operation.__new__(cls)
        Operation.__init__(
            op,
            operands=operands,
            result_types=result_types,
            attributes=attributes,
            regions=0,
            name=op_name,
        )
        for region_blocks in regions_text:
            new_region = Region(op)
            op.regions.append(new_region)
            for block in region_blocks:
                new_region.append_block(block)

        for name, result in zip(result_names, op.results):
            self.values[name] = result
        return op

    def parse_region(self) -> List[Block]:
        self.expect("punct", "{")
        blocks: List[Block] = []
        current = Block()
        saw_header = False
        while True:
            kind, text = self.peek()
            if kind == "punct" and text == "}":
                self.advance()
                break
            if kind == "caret":
                if saw_header or len(current) > 0 or current.arguments:
                    blocks.append(current)
                current = self.parse_block_header()
                saw_header = True
                continue
            current.append(self.parse_operation())
        blocks.append(current)
        return blocks

    def parse_block_header(self) -> Block:
        self.expect("caret")
        block = Block()
        self.expect("punct", "(")
        if not self.accept("punct", ")"):
            while True:
                name = self.expect("ssa")
                self.expect("punct", ":")
                ty = self.parse_type()
                self.values[name] = block.add_argument(ty)
                if not self.accept("punct", ","):
                    break
            self.expect("punct", ")")
        self.expect("punct", ":")
        return block

    # -- attributes -------------------------------------------------------------------

    def parse_attribute(self) -> Any:
        kind, text = self.peek()
        if kind == "string":
            self.advance()
            return _unescape(text)
        if kind == "ident" and text in ("true", "false"):
            self.advance()
            return text == "true"
        if kind == "ident" and text in ("inf", "nan"):
            self.advance()
            self.expect("punct", ":")
            self.parse_type()
            return float(text)
        if kind == "punct" and text == "-" and self.peek(1)[1] == "inf":
            self.advance()
            self.advance()
            self.expect("punct", ":")
            self.parse_type()
            return float("-inf")
        if kind == "number":
            self.advance()
            self.expect("punct", ":")
            ty = self.parse_type()
            if isinstance(ty, FloatType):
                return float(text)
            return int(text)
        if kind == "punct" and text == "[":
            self.advance()
            items = []
            if not self.accept("punct", "]"):
                while True:
                    items.append(self.parse_attribute())
                    if not self.accept("punct", ","):
                        break
                self.expect("punct", "]")
            return tuple(items)
        if kind == "ident" and text == "dense":
            return self.parse_dense()
        # Otherwise it must be a type attribute.
        return self.parse_type()

    def parse_dense(self) -> np.ndarray:
        self.expect("ident", "dense")
        self.expect("punct", "<")
        self.expect("punct", "[")
        items: List[float] = []
        if not self.accept("punct", "]"):
            while True:
                items.append(self._parse_signed_number())
                if not self.accept("punct", ","):
                    break
            self.expect("punct", "]")
        self.expect("punct", ">")
        self.expect("punct", ":")
        container = self.parse_type()
        if not isinstance(container, TensorType):
            raise ParseError("dense attribute requires a tensor type")
        dtype = {
            "f32": np.float32,
            "f64": np.float64,
            "i32": np.int32,
            "i64": np.int64,
            "i1": np.bool_,
        }[container.element_type.spelling()]
        arr = np.array(items, dtype=dtype)
        shape = tuple(d for d in container.shape)
        if any(d is None for d in shape):
            raise ParseError("dense attribute shape must be static")
        arr = arr.reshape(shape) if arr.size else arr.reshape(shape)
        arr.setflags(write=False)
        return arr

    def _parse_signed_number(self) -> float:
        negative = self.accept("punct", "-")
        kind, text = self.peek()
        if kind == "ident" and text in ("inf", "nan"):
            self.advance()
            value = float(text)
        else:
            value = float(self.expect("number"))
        return -value if negative else value

    # -- types ------------------------------------------------------------------------

    def parse_function_type(self) -> Tuple[List[Type], List[Type]]:
        self.expect("punct", "(")
        operand_types: List[Type] = []
        if not self.accept("punct", ")"):
            while True:
                operand_types.append(self.parse_type())
                if not self.accept("punct", ","):
                    break
            self.expect("punct", ")")
        self.expect("arrow")
        result_types: List[Type] = []
        if self.accept("punct", "("):
            if not self.accept("punct", ")"):
                while True:
                    result_types.append(self.parse_type())
                    if not self.accept("punct", ","):
                        break
                self.expect("punct", ")")
        else:
            result_types.append(self.parse_type())
        return operand_types, result_types

    def parse_type(self) -> Type:
        kind, text = self.peek()
        if kind == "dtype":
            self.advance()
            prefix = text[1:]
            body = ""
            if self.peek() == ("punct", "<"):
                body = self._consume_balanced_angle()
            cls = lookup_dialect_type(prefix)
            if cls is None:
                raise ParseError(f"unknown dialect type !{prefix}")
            return cls.parse(body, self)
        if kind != "ident":
            raise ParseError(f"expected a type, got {text!r}")
        self.advance()
        if text == "index":
            return IndexType()
        if text == "none":
            return NoneType()
        if re.fullmatch(r"i\d+", text):
            return IntegerType(int(text[1:]))
        if re.fullmatch(r"f\d+", text):
            return FloatType(int(text[1:]))
        if text in ("tensor", "memref", "vector"):
            return self._parse_shaped(text)
        raise ParseError(f"unknown type {text!r}")

    def _parse_shaped(self, keyword: str) -> Type:
        self.expect("punct", "<")
        shape: List[Optional[int]] = []
        # Dimensions are printed as `4x`, `?x`, possibly none at all. After
        # tokenization `4x8xf32` splits into number/ident tokens; the final
        # ident contains the trailing element-type keyword.
        while True:
            kind, text = self.peek()
            if kind == "punct" and text == "?":
                self.advance()
                shape.append(None)
                kind, text = self.peek()
                if kind == "ident" and text.startswith("x"):
                    self._split_x_prefix()
                continue
            if kind == "number" and "." not in text:
                self.advance()
                shape.append(int(text))
                kind, text = self.peek()
                if kind == "ident" and text.startswith("x"):
                    self._split_x_prefix()
                continue
            break
        element = self.parse_type()
        self.expect("punct", ">")
        cls = {"tensor": TensorType, "memref": MemRefType, "vector": VectorType}[keyword]
        return cls(tuple(shape), element)

    def _split_x_prefix(self) -> None:
        """Split a token like ``xf32`` or ``x4`` into the x separator + rest."""
        kind, text = self.tokens[self.pos]
        rest = text[1:]
        if not rest:
            self.pos += 1
            return
        replacement: List[Tuple[str, str]] = []
        if re.fullmatch(r"\d+", rest):
            replacement.append(("number", rest))
        else:
            match = re.match(r"(\d+)(x.*)", rest)
            if match:
                replacement.append(("number", match.group(1)))
                replacement.append(("ident", match.group(2)))
            else:
                replacement.append(("ident", rest))
        self.tokens[self.pos : self.pos + 1] = replacement

    def _consume_balanced_angle(self) -> str:
        """Consume tokens between balanced ``<`` ``>`` and return their text."""
        self.expect("punct", "<")
        depth = 1
        parts: List[str] = []
        while depth > 0:
            kind, text = self.advance()
            if kind == "eof":
                raise ParseError("unterminated dialect type body")
            if kind == "punct" and text == "<":
                depth += 1
            elif kind == "punct" and text == ">":
                depth -= 1
                if depth == 0:
                    break
            parts.append(text)
        return "".join(parts)


def parse_module(text: str) -> Operation:
    """Parse a module (or any single top-level op) from generic-form text."""
    return Parser(text).parse_module()


def parse_type_text(text: str) -> Type:
    """Parse a standalone type spelling such as ``memref<?xf32>``."""
    parser = Parser(text)
    ty = parser.parse_type()
    parser.expect("eof")
    return ty
