"""The builtin dialect: the top-level module container op."""

from __future__ import annotations

from .dialect import Dialect
from .ops import Block, Operation
from .traits import Trait

builtin = Dialect("builtin", "Builtin top-level container operations")


@builtin.op
class ModuleOp(Operation):
    """Top-level container holding a single region with one block."""

    name = "builtin.module"
    traits = frozenset({Trait.ISOLATED_FROM_ABOVE, Trait.SINGLE_BLOCK})

    @classmethod
    def build(cls, sym_name: str = "") -> "ModuleOp":
        attrs = {"sym_name": sym_name} if sym_name else {}
        op = cls(attributes=attrs, regions=1)
        op.regions[0].append_block(Block())
        return op

    @property
    def body(self) -> Block:
        return self.body_block


@builtin.op
class UnrealizedConversionCastOp(Operation):
    """Temporary cast bridging type systems during progressive lowering."""

    name = "builtin.unrealized_conversion_cast"
    traits = frozenset({Trait.PURE})

    @classmethod
    def build(cls, value, result_type) -> "UnrealizedConversionCastOp":
        return cls(operands=[value], result_types=[result_type])
