"""Vector math library (the Intel SVML / GLIBC libmvec stand-in).

Compiled vector code calls these NumPy-backed routines for elementary
functions. They are the performance-critical difference the paper's
"+VecLib" configuration measures: without them, vector code must extract
every lane, call the scalar libm routine, and re-insert the result
(see :func:`scalarized` below), which is slower than not vectorizing at
all.

The entry points are width-agnostic: the same routines serve fixed
ISA-lane registers (length-W arrays) and the batch-vectorized kernels'
runtime-width vectors spanning a whole chunk. The optional ``out=``
parameter lets register-reusing code write results into preallocated
scratch, mirroring NumPy ufunc semantics.

Scalar guarded helpers (`slog` etc.) give the generated scalar code libm
semantics — ``log(0) = -inf`` instead of a raised ``ValueError``.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

NEG_INF = float("-inf")
POS_INF = float("inf")
NAN = float("nan")


# --- vectorized entry points (SVML equivalents) ------------------------------------

def vlog(values: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
    with np.errstate(divide="ignore", invalid="ignore"):
        return np.log(values, out=out)


def vexp(values: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
    with np.errstate(over="ignore"):
        return np.exp(values, out=out)


def vlog1p(values: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
    with np.errstate(divide="ignore", invalid="ignore"):
        return np.log1p(values, out=out)


def vsqrt(values: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
    with np.errstate(invalid="ignore"):
        return np.sqrt(values, out=out)


# --- guarded scalar versions (libm semantics, no exceptions) -------------------------

def slog(x: float) -> float:
    if x > 0.0:
        return math.log(x)
    if x == 0.0:
        return NEG_INF
    return NAN


def sexp(x: float) -> float:
    try:
        return math.exp(x)
    except OverflowError:
        return POS_INF


def slog1p(x: float) -> float:
    if x > -1.0:
        return math.log1p(x)
    if x == -1.0:
        return NEG_INF
    return NAN


def ssqrt(x: float) -> float:
    if x >= 0.0:
        return math.sqrt(x)
    return NAN


_SCALAR_FN = {"log": slog, "exp": sexp, "log1p": slog1p, "sqrt": ssqrt}


# --- the no-veclib path: explicit extract / scalar call / insert ----------------------

def scalarized(fn_name: str, values: np.ndarray) -> np.ndarray:
    """Apply a libm function lane by lane (extract → call → insert).

    This is deliberately *not* a NumPy ufunc call: each lane is extracted
    from the vector register individually, the scalar libm routine is
    invoked, and the result is inserted back — reproducing the cost
    structure of vector code compiled without a vector math library
    (paper Fig. 6, where this configuration loses to scalar code).
    """
    fn = _SCALAR_FN[fn_name]
    out = np.empty_like(values)
    for i in range(len(values)):
        lane = values[i]          # extract
        result = fn(float(lane))  # scalar libm call
        out[i] = result           # insert
    return out


VECTOR_FN = {"log": vlog, "exp": vexp, "log1p": vlog1p, "sqrt": vsqrt}
