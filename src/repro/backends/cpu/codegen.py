"""CPU backend: lowered IR → executable Python/NumPy code.

The paper translates the lowered MLIR through the LLVM dialect to LLVM IR
and on to native object code. This backend plays the same role with
"Python as the ISA": it consumes *only* the low-level IR (func / scf /
arith / math / memref / vector — never the SPN dialects), performs
linear-scan register allocation of SSA values onto a reusable local-name
pool, emits flat Python source, and ``compile()``/``exec()``s it into
callable kernel functions.

Design notes:

- Scalar SSA values become Python floats/ints; W-lane vectors become
  NumPy arrays of length W (register blocking, see DESIGN.md).
- Elementary functions call the veclib (NumPy ufuncs) in vector code and
  guarded scalar helpers in scalar code; ``vector.scalarized_call``
  compiles to an explicit per-lane loop (the no-veclib configuration).
- Constant tables (``memref.constant_buffer``) become module-level
  globals, materialized once — the ``.rodata`` segment.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ...dialects import func as func_dialect
from ...ir.ops import Block, IRError, Operation
from ...ir.types import (
    FloatType,
    IndexType,
    IntegerType,
    MemRefType,
    Type,
    VectorType,
)
from ...ir.value import Value
from . import veclib


class CodegenError(IRError):
    pass


def numpy_dtype(ty: Type):
    """Storage dtype of an element type (log types store their base)."""
    from ...dialects.lospn import LogType

    if isinstance(ty, LogType):
        ty = ty.base
    if isinstance(ty, FloatType):
        return {16: np.float16, 32: np.float32, 64: np.float64}[ty.width]
    if isinstance(ty, IntegerType):
        return np.bool_ if ty.width == 1 else np.int64
    if isinstance(ty, IndexType):
        return np.int64
    raise CodegenError(f"no numpy dtype for type {ty}")


def _dtype_expr(ty: Type) -> str:
    return f"np.{numpy_dtype(ty).__name__}"


def _float_literal(value: float) -> str:
    if math.isinf(value):
        return "_INF" if value > 0 else "_NINF"
    if math.isnan(value):
        return "_NAN"
    return repr(float(value))


_CMP_OPERATORS = {
    "eq": "==", "ne": "!=",
    "oeq": "==", "one": "!=", "ueq": "==", "une": "!=",
    "olt": "<", "ole": "<=", "ogt": ">", "oge": ">=",
    "ult": "<", "ule": "<=", "ugt": ">", "uge": ">=",
    "slt": "<", "sle": "<=", "sgt": ">", "sge": ">=",
}


@dataclass
class CodegenStats:
    """Backend statistics (reported by the compile-time experiments)."""

    functions: int = 0
    ir_operations: int = 0
    source_lines: int = 0
    registers_allocated: int = 0
    values_assigned: int = 0
    regalloc_seconds: float = 0.0
    emit_seconds: float = 0.0
    pycompile_seconds: float = 0.0


class _NamePool:
    """Linear-scan register allocator over straight-line blocks.

    SSA values whose live range is contained in one block share a small
    pool of local names (``r0``, ``r1``, …); values live across nested
    regions keep their name until the enclosing op's position.
    """

    def __init__(self):
        self.free: List[str] = []
        self.created = 0

    def acquire(self) -> str:
        if self.free:
            return self.free.pop()
        name = f"r{self.created}"
        self.created += 1
        return name

    def release(self, name: str) -> None:
        self.free.append(name)


class CodeGenerator:
    """Generates a Python module from lowered func.func operations.

    With ``reuse_vector_registers`` enabled (the -O2 backend feature),
    float vector results of ufunc-shaped ops are written into
    preallocated scratch arrays via NumPy's ``out=`` parameter instead of
    allocating a fresh array per operation — the Python-ISA equivalent of
    keeping vector values in registers. Scratch names come from a
    dedicated pool (``v*``) that never aliases views of user buffers.
    """

    def __init__(self, module: Operation, reuse_vector_registers: bool = False):
        # Local import: runtime.executable imports this module at load time.
        from ...runtime.bufferpool import BufferPool

        self.module = module
        self.reuse_vector_registers = reuse_vector_registers
        self._scratch_pools: Dict[Tuple[Optional[int], str], List[str]] = {}
        self._scratch_pool_of: Dict[str, Tuple[Optional[int], str]] = {}
        self._scratch_decls: Dict[str, str] = {}
        self._scratch_created = 0
        #: Reusable temp-buffer pool shared by every function of this
        #: module: memref temporaries and runtime-width scratch vectors
        #: are fetched from it per invocation instead of np.empty'd.
        self.buffer_pool = BufferPool()
        self._alloc_count = 0
        self._uses_batch_width = False
        self.lines: List[str] = []
        self.globals: Dict[str, Any] = {
            "np": np,
            "_INF": float("inf"),
            "_NINF": float("-inf"),
            "_NAN": float("nan"),
            "_slog": veclib.slog,
            "_sexp": veclib.sexp,
            "_slog1p": veclib.slog1p,
            "_ssqrt": veclib.ssqrt,
            "_vlog": veclib.vlog,
            "_vexp": veclib.vexp,
            "_vlog1p": veclib.vlog1p,
            "_vsqrt": veclib.vsqrt,
            "_scalarized": veclib.scalarized,
            "_tmp_pool": self.buffer_pool,
        }
        self.stats = CodegenStats()
        self._table_count = 0
        self._arange_widths: set = set()
        # Per-function state
        self._names: Dict[Value, str] = {}
        self._pool = _NamePool()
        self._arg_count = 0

    # -- public API ---------------------------------------------------------------

    def generate(self) -> "GeneratedModule":
        emit_start = time.perf_counter()
        for op in self.module.body_block.ops:
            if op.op_name == func_dialect.FuncOp.name:
                self._emit_function(op)
        self.stats.emit_seconds = time.perf_counter() - emit_start
        source = "\n".join(self.lines) + "\n"
        self.stats.source_lines = len(self.lines)

        compile_start = time.perf_counter()
        code = compile(source, "<spnc-cpu-kernel>", "exec")
        namespace = dict(self.globals)
        exec(code, namespace)
        self.stats.pycompile_seconds = time.perf_counter() - compile_start

        functions = {
            name: namespace[name]
            for name in namespace
            if callable(namespace.get(name)) and not name.startswith("_") and name != "np"
        }
        return GeneratedModule(
            source, namespace, functions, self.stats, self.buffer_pool
        )

    # -- naming / regalloc ----------------------------------------------------------

    def _compute_last_uses(self, block: Block) -> Dict[Value, int]:
        """Map each value to the index of the last op in ``block`` using it
        (uses inside nested regions count at the nesting op's index)."""
        last_use: Dict[Value, int] = {}

        def record(op: Operation, position: int) -> None:
            for operand in op.operands:
                last_use[operand] = position
            for region in op.regions:
                for inner_block in region.blocks:
                    for inner in inner_block.ops:
                        record(inner, position)

        for position, op in enumerate(block.ops):
            record(op, position)
        return last_use

    def _name_of(self, value: Value) -> str:
        name = self._names.get(value)
        if name is None:
            raise CodegenError(f"value has no name (use before def?): {value!r}")
        return name

    def _assign(self, value: Value) -> str:
        name = self._pool.acquire()
        self._names[value] = name
        self.stats.values_assigned += 1
        return name

    def _assign_fixed(self, value: Value, name: str) -> str:
        self._names[value] = name
        return name

    # -- function emission ---------------------------------------------------------------

    def _emit_function(self, fn: Operation) -> None:
        self.stats.functions += 1
        self._names = {}
        self._pool = _NamePool()
        self._scratch_pools = {}
        self._scratch_pool_of = {}
        self._scratch_decls = {}
        self._uses_batch_width = False
        args = fn.body_block.arguments
        arg_names = [self._assign_fixed(arg, f"a{i}") for i, arg in enumerate(args)]
        self.lines.append(f"def {fn.attributes['sym_name']}({', '.join(arg_names)}):")
        body_lines_before = len(self.lines)
        self._emit_block(fn.body_block, indent=1)
        if self._scratch_decls:
            # Preallocate scratch registers at function entry.
            decls = [
                f"    {name} = {expr}"
                for name, expr in sorted(self._scratch_decls.items())
            ]
            if self._uses_batch_width:
                # Runtime-width scratch: the chunk width comes from the
                # first dynamic memref dimension among the arguments.
                decls.insert(0, f"    _n = {self._batch_width_expr(fn)}")
            self.lines[body_lines_before:body_lines_before] = decls
        if len(self.lines) == body_lines_before:
            self.lines.append("    pass")
        self.lines.append("")
        self.stats.registers_allocated = max(
            self.stats.registers_allocated, self._pool.created
        )

    def _batch_width_expr(self, fn: Operation) -> str:
        for i, arg in enumerate(fn.body_block.arguments):
            ty = arg.type
            if isinstance(ty, MemRefType) and None in ty.shape:
                return f"a{i}.shape[{ty.shape.index(None)}]"
        raise CodegenError(
            "runtime-width vectors require a dynamically sized memref argument"
        )

    def _emit_block(self, block: Block, indent: int) -> None:
        regalloc_start = time.perf_counter()
        last_use = self._compute_last_uses(block)
        self.stats.regalloc_seconds += time.perf_counter() - regalloc_start

        ops = block.op_list()
        for position, op in enumerate(ops):
            self.stats.ir_operations += 1
            self._emit_op(op, indent)
            self._release_dead(block, op, position, last_use)

    def _release_dead(self, block: Block, op: Operation, position: int, last_use) -> None:
        """Return pool names whose live range ended at ``position``.

        Only values *defined in this block* are released here — a value
        defined in an enclosing block stays live from the enclosing
        block's perspective even after its last use inside a nested
        region.
        """
        for operand in dict.fromkeys(op.operands):
            if last_use.get(operand) != position:
                continue
            producer = operand.defining_op
            if producer is None or producer.parent is not block:
                continue
            name = self._names.get(operand)
            if name is not None and self._release_name(name):
                del self._names[operand]
        for res in op.results:
            if res in self._names and not res.has_uses:
                name = self._names[res]
                if self._release_name(name):
                    del self._names[res]

    def _release_name(self, name: str) -> bool:
        pool_key = self._scratch_pool_of.get(name)
        if pool_key is not None:
            self._scratch_pools[pool_key].append(name)
            return True
        if name.startswith("r"):
            self._pool.release(name)
            return True
        return False

    # -- op emission ------------------------------------------------------------------------

    def _line(self, indent: int, text: str) -> None:
        self.lines.append("    " * indent + text)

    #: op name -> handler; subclasses overlay this (set after handler defs).
    HANDLERS: Dict[str, Any] = {}

    def _emit_op(self, op: Operation, indent: int) -> None:
        handler = self.HANDLERS.get(op.op_name)
        if handler is None:
            raise CodegenError(
                f"no {type(self).__name__} codegen for op '{op.op_name}'"
            )
        handler(self, op, indent)

    # Helpers used by handlers --------------------------------------------------------------

    def _expr_result(self, op: Operation, indent: int, expr: str) -> None:
        name = self._assign(op.results[0])
        self._line(indent, f"{name} = {expr}")

    def _is_vector(self, value: Value) -> bool:
        return isinstance(value.type, VectorType)

    # -- scratch-register (out=) machinery ------------------------------------

    def _scratch_eligible(self, op: Operation) -> bool:
        if not self.reuse_vector_registers or not op.results:
            return False
        ty = op.results[0].type
        return (
            isinstance(ty, VectorType)
            and ty.rank == 1
            and isinstance(ty.element_type, FloatType)
        )

    def _assign_scratch(self, value: Value) -> str:
        ty = value.type
        key = (ty.shape[0], numpy_dtype(ty.element_type).__name__)
        pool = self._scratch_pools.setdefault(key, [])
        if pool:
            name = pool.pop()
        else:
            name = f"v{self._scratch_created}"
            self._scratch_created += 1
            if key[0] is None:
                # Runtime-width scratch lives in the reusable buffer
                # pool: same slot, same thread → same backing array on
                # every chunk, so steady state allocates nothing.
                self._uses_batch_width = True
                self._scratch_decls[name] = (
                    f"_tmp_pool.buffer({name!r}, _n, np.{key[1]})"
                )
            else:
                self._scratch_decls[name] = (
                    f"np.empty({key[0]}, dtype=np.{key[1]})"
                )
            self._scratch_pool_of[name] = key
        self._names[value] = name
        self.stats.values_assigned += 1
        return name

    def _ufunc_result(self, op: Operation, indent: int, ufunc: str, operands) -> None:
        """Emit a ufunc call, routed through a scratch register at -O2+."""
        args = ", ".join(operands)
        if self._scratch_eligible(op):
            name = self._assign_scratch(op.results[0])
            self._line(indent, f"{name} = {ufunc}({args}, out={name})")
        else:
            self._expr_result(op, indent, f"{ufunc}({args})")

    def _register_table(self, data: np.ndarray, elem: Type) -> str:
        name = f"_tbl{self._table_count}"
        self._table_count += 1
        self.globals[name] = np.ascontiguousarray(
            data.astype(numpy_dtype(elem))
        )
        return name

    def _arange_global(self, width: int) -> str:
        name = f"_AR{width}"
        if width not in self._arange_widths:
            self.globals[name] = np.arange(width)
            self._arange_widths.add(width)
        return name


@dataclass
class GeneratedModule:
    """The backend's output: source text plus executable functions."""

    source: str
    namespace: Dict[str, Any]
    functions: Dict[str, Any]
    stats: CodegenStats
    #: Reusable temp-buffer pool the generated code draws intermediates
    #: from (None for backends that do not pool temporaries).
    buffer_pool: Optional[Any] = None

    def get(self, name: str):
        fn = self.functions.get(name)
        if fn is None:
            raise KeyError(f"no generated function named '{name}'")
        return fn


# --- op handlers ---------------------------------------------------------------------------

_HANDLERS = {}


def handles(op_name: str):
    def register(fn):
        _HANDLERS[op_name] = fn
        return fn

    return register


@handles("arith.constant")
def _h_constant(cg: CodeGenerator, op: Operation, indent: int) -> None:
    value = op.attributes["value"]
    ty = op.results[0].type
    if isinstance(ty, FloatType):
        cg._expr_result(op, indent, _float_literal(float(value)))
    else:
        cg._expr_result(op, indent, repr(int(value)))


def _binary(cg: CodeGenerator, op: Operation, indent: int, symbol: str) -> None:
    a = cg._name_of(op.operands[0])
    b = cg._name_of(op.operands[1])
    cg._expr_result(op, indent, f"({a} {symbol} {b})")


def _float_binary(cg, op, indent, symbol: str, ufunc: str) -> None:
    if cg._scratch_eligible(op):
        operands = [cg._name_of(v) for v in op.operands]
        cg._ufunc_result(op, indent, ufunc, operands)
    else:
        _binary(cg, op, indent, symbol)


@handles("arith.addf")
def _h_addf(cg, op, indent):
    _float_binary(cg, op, indent, "+", "np.add")


@handles("arith.subf")
def _h_subf(cg, op, indent):
    _float_binary(cg, op, indent, "-", "np.subtract")


@handles("arith.mulf")
def _h_mulf(cg, op, indent):
    _float_binary(cg, op, indent, "*", "np.multiply")


@handles("arith.divf")
def _h_divf(cg, op, indent):
    _float_binary(cg, op, indent, "/", "np.divide")


@handles("arith.addi")
def _h_addi(cg, op, indent):
    _binary(cg, op, indent, "+")


@handles("arith.subi")
def _h_subi(cg, op, indent):
    _binary(cg, op, indent, "-")


@handles("arith.muli")
def _h_muli(cg, op, indent):
    _binary(cg, op, indent, "*")


@handles("arith.divsi")
def _h_divsi(cg, op, indent):
    _binary(cg, op, indent, "//")


@handles("arith.remsi")
def _h_remsi(cg, op, indent):
    _binary(cg, op, indent, "%")


@handles("arith.negf")
def _h_negf(cg, op, indent):
    cg._expr_result(op, indent, f"(-{cg._name_of(op.operands[0])})")


@handles("arith.andi")
def _h_andi(cg, op, indent):
    symbol = "&" if cg._is_vector(op.operands[0]) else "and"
    _binary(cg, op, indent, symbol)


@handles("arith.ori")
def _h_ori(cg, op, indent):
    symbol = "|" if cg._is_vector(op.operands[0]) else "or"
    _binary(cg, op, indent, symbol)


@handles("arith.minf")
def _h_minf(cg, op, indent):
    a, b = (cg._name_of(v) for v in op.operands)
    if cg._is_vector(op.operands[0]):
        cg._expr_result(op, indent, f"np.minimum({a}, {b})")
    else:
        cg._expr_result(op, indent, f"min({a}, {b})")


@handles("arith.maxf")
def _h_maxf(cg, op, indent):
    a, b = (cg._name_of(v) for v in op.operands)
    if cg._is_vector(op.operands[0]):
        cg._expr_result(op, indent, f"np.maximum({a}, {b})")
    else:
        cg._expr_result(op, indent, f"max({a}, {b})")


def _cmp(cg: CodeGenerator, op: Operation, indent: int) -> None:
    symbol = _CMP_OPERATORS[op.attributes["predicate"]]
    _binary(cg, op, indent, symbol)


@handles("arith.cmpf")
def _h_cmpf(cg, op, indent):
    _cmp(cg, op, indent)


@handles("arith.cmpi")
def _h_cmpi(cg, op, indent):
    _cmp(cg, op, indent)


@handles("arith.select")
def _h_select(cg, op, indent):
    cond, yes, no = (cg._name_of(v) for v in op.operands)
    if isinstance(op.results[0].type, VectorType):
        cg._expr_result(op, indent, f"np.where({cond}, {yes}, {no})")
    else:
        cg._expr_result(op, indent, f"({yes} if {cond} else {no})")


@handles("arith.index_cast")
def _h_index_cast(cg, op, indent):
    cg._expr_result(op, indent, cg._name_of(op.operands[0]))


@handles("arith.fptosi")
def _h_fptosi(cg, op, indent):
    a = cg._name_of(op.operands[0])
    if isinstance(op.results[0].type, VectorType):
        cg._expr_result(op, indent, f"{a}.astype(np.int64)")
    else:
        cg._expr_result(op, indent, f"int({a})")


@handles("arith.sitofp")
def _h_sitofp(cg, op, indent):
    a = cg._name_of(op.operands[0])
    ty = op.results[0].type
    if isinstance(ty, VectorType):
        cg._expr_result(op, indent, f"{a}.astype({_dtype_expr(ty.element_type)})")
    else:
        cg._expr_result(op, indent, f"float({a})")


@handles("arith.extf")
def _h_extf(cg, op, indent):
    _float_cast(cg, op, indent)


@handles("arith.truncf")
def _h_truncf(cg, op, indent):
    _float_cast(cg, op, indent)


def _float_cast(cg: CodeGenerator, op: Operation, indent: int) -> None:
    a = cg._name_of(op.operands[0])
    ty = op.results[0].type
    if isinstance(ty, VectorType):
        cg._expr_result(op, indent, f"{a}.astype({_dtype_expr(ty.element_type)})")
    else:
        # Scalar Python floats are double precision; width changes are free.
        cg._expr_result(op, indent, a)


_NP_MATH = {"log": "np.log", "exp": "np.exp", "log1p": "np.log1p", "sqrt": "np.sqrt"}


def _math(cg: CodeGenerator, op: Operation, indent: int, fn: str) -> None:
    a = cg._name_of(op.operands[0])
    if cg._scratch_eligible(op):
        # The executable wraps invocation in np.errstate, so the raw
        # ufunc (with out=) keeps libm semantics without warnings.
        cg._ufunc_result(op, indent, _NP_MATH[fn], [a])
        return
    prefix = "_v" if cg._is_vector(op.operands[0]) else "_s"
    cg._expr_result(op, indent, f"{prefix}{fn}({a})")


@handles("math.log")
def _h_log(cg, op, indent):
    _math(cg, op, indent, "log")


@handles("math.exp")
def _h_exp(cg, op, indent):
    _math(cg, op, indent, "exp")


@handles("math.log1p")
def _h_log1p(cg, op, indent):
    _math(cg, op, indent, "log1p")


@handles("math.sqrt")
def _h_sqrt(cg, op, indent):
    _math(cg, op, indent, "sqrt")


@handles("math.abs")
def _h_abs(cg, op, indent):
    a = cg._name_of(op.operands[0])
    cg._expr_result(op, indent, f"abs({a})")


# --- vector ops -------------------------------------------------------------------------


@handles("vector.broadcast")
def _h_broadcast(cg, op, indent):
    # NumPy broadcasting makes splats free: keep the scalar.
    cg._expr_result(op, indent, cg._name_of(op.operands[0]))


def _width_slice(start: str, width: Optional[int]) -> str:
    """[start, start+width) subscript text; open-ended for dynamic widths."""
    if width is None:
        return f"{start}:"
    return f"{start}:{start}+{width}"


@handles("vector.load")
def _h_vload(cg, op, indent):
    buf = cg._name_of(op.operands[0])
    idx = [cg._name_of(v) for v in op.operands[1:]]
    width = op.results[0].type.shape[0]
    lead = ", ".join(idx[:-1])
    prefix = f"{lead}, " if lead else ""
    cg._expr_result(op, indent, f"{buf}[{prefix}{_width_slice(idx[-1], width)}]")


@handles("vector.store")
def _h_vstore(cg, op, indent):
    value = cg._name_of(op.operands[0])
    buf = cg._name_of(op.operands[1])
    idx = [cg._name_of(v) for v in op.operands[2:]]
    width = op.operands[0].type.shape[0]
    lead = ", ".join(idx[:-1])
    prefix = f"{lead}, " if lead else ""
    cg._line(indent, f"{buf}[{prefix}{_width_slice(idx[-1], width)}] = {value}")


@handles("vector.gather")
def _h_vgather(cg, op, indent):
    buf = cg._name_of(op.operands[0])
    base = cg._name_of(op.operands[1])
    width = op.results[0].type.shape[0]
    column = op.attributes["column"]
    if width is None:
        # Runtime width: the whole column from base on, as a strided view.
        cg._expr_result(op, indent, f"{buf}[{base}:, {column}]")
        return
    arange = cg._arange_global(width)
    cg._expr_result(op, indent, f"{buf}[{arange} + {base}, {column}]")


@handles("vector.load_tile")
def _h_load_tile(cg, op, indent):
    buf = cg._name_of(op.operands[0])
    base = cg._name_of(op.operands[1])
    rows = op.results[0].type.shape[0]
    # W contiguous row loads + in-register shuffles == one transposed copy.
    cg._expr_result(
        op, indent, f"np.ascontiguousarray({buf}[{_width_slice(base, rows)}].T)"
    )


@handles("vector.extract_column")
def _h_extract_column(cg, op, indent):
    tile = cg._name_of(op.operands[0])
    cg._expr_result(op, indent, f"{tile}[{op.attributes['column']}]")


@handles("vector.extract")
def _h_vextract(cg, op, indent):
    vec = cg._name_of(op.operands[0])
    cg._expr_result(op, indent, f"float({vec}[{op.attributes['position']}])")


@handles("vector.insert")
def _h_vinsert(cg, op, indent):
    scalar = cg._name_of(op.operands[0])
    vec = cg._name_of(op.operands[1])
    name = cg._assign(op.results[0])
    cg._line(indent, f"{name} = {vec}.copy()")
    cg._line(indent, f"{name}[{op.attributes['position']}] = {scalar}")


@handles("vector.gather_table")
def _h_gather_table(cg, op, indent):
    table = cg._name_of(op.operands[0])
    idx = cg._name_of(op.operands[1])
    cg._expr_result(op, indent, f"{table}[{idx}]")


@handles("vector.scalarized_call")
def _h_scalarized(cg, op, indent):
    value = cg._name_of(op.operands[0])
    fn = op.attributes["fn"]
    cg._expr_result(op, indent, f"_scalarized({fn!r}, {value})")


# --- memref ops -------------------------------------------------------------------------


@handles("memref.alloc")
def _h_alloc(cg, op, indent):
    ty = op.results[0].type
    dims: List[str] = []
    operand_iter = iter(cg._name_of(v) for v in op.operands)
    for dim in ty.shape:
        dims.append(next(operand_iter) if dim is None else str(dim))
    shape = ", ".join(dims) + ("," if len(dims) == 1 else "")
    # Temporaries come from the reusable buffer pool, keyed by a stable
    # module-unique slot: re-invoking the kernel on same-shaped chunks
    # reuses the retained backing arrays instead of allocating.
    slot = f"m{cg._alloc_count}"
    cg._alloc_count += 1
    cg._expr_result(
        op,
        indent,
        f"_tmp_pool.buffer({slot!r}, ({shape}), {_dtype_expr(ty.element_type)})",
    )


@handles("memref.dealloc")
def _h_dealloc(cg, op, indent):
    cg._line(indent, f"del {cg._name_of(op.operands[0])}  # dealloc")


@handles("memref.load")
def _h_mload(cg, op, indent):
    buf = cg._name_of(op.operands[0])
    idx = ", ".join(cg._name_of(v) for v in op.operands[1:])
    elem = op.results[0].type
    cast = "int" if isinstance(elem, (IntegerType, IndexType)) else "float"
    cg._expr_result(op, indent, f"{cast}({buf}[{idx}])")


@handles("memref.store")
def _h_mstore(cg, op, indent):
    value = cg._name_of(op.operands[0])
    buf = cg._name_of(op.operands[1])
    idx = ", ".join(cg._name_of(v) for v in op.operands[2:])
    cg._line(indent, f"{buf}[{idx}] = {value}")


@handles("memref.copy")
def _h_mcopy(cg, op, indent):
    src = cg._name_of(op.operands[0])
    dst = cg._name_of(op.operands[1])
    cg._line(indent, f"{dst}[...] = {src}")


@handles("memref.dim")
def _h_mdim(cg, op, indent):
    buf = cg._name_of(op.operands[0])
    cg._expr_result(op, indent, f"{buf}.shape[{op.attributes['dim']}]")


@handles("memref.constant_buffer")
def _h_constant_buffer(cg, op, indent):
    name = cg._register_table(op.attributes["data"], op.results[0].type.element_type)
    cg._assign_fixed(op.results[0], name)


# --- control flow --------------------------------------------------------------------------


@handles("scf.for")
def _h_for(cg, op, indent):
    lower, upper, step = (cg._name_of(v) for v in op.operands[:3])
    init_args = [cg._name_of(v) for v in op.operands[3:]]
    body = op.body_block
    induction = cg._assign(body.arguments[0])

    # Loop-carried values: one mutable Python name per iter_arg.
    carried = [cg._assign(arg) for arg in body.arguments[1:]]
    for name, init in zip(carried, init_args):
        cg._line(indent, f"{name} = {init}")

    cg._line(indent, f"for {induction} in range({lower}, {upper}, {step}):")
    inner_ops = body.op_list()
    terminator = inner_ops[-1] if inner_ops else None
    if len(inner_ops) <= 1 and not carried:
        cg._line(indent + 1, "pass")
    # Emit everything except the terminator.
    cg._emit_block_until_terminator(body, indent + 1)
    if terminator is not None and terminator.op_name == "scf.yield":
        for name, yielded in zip(carried, terminator.operands):
            cg._line(indent + 1, f"{name} = {cg._name_of(yielded)}")
    for res, name in zip(op.results, carried):
        cg._assign_fixed(res, name)


def _emit_block_until_terminator(self: CodeGenerator, block: Block, indent: int) -> None:
    last_use = self._compute_last_uses(block)
    ops = block.op_list()
    for position, op in enumerate(ops):
        if op.op_name in ("scf.yield", "lo_spn.yield"):
            continue
        self.stats.ir_operations += 1
        self._emit_op(op, indent)
        self._release_dead(block, op, position, last_use)


CodeGenerator._emit_block_until_terminator = _emit_block_until_terminator


@handles("scf.if")
def _h_if(cg, op, indent):
    cond = cg._name_of(op.operands[0])
    result_names = [cg._assign(res) for res in op.results]
    cg._line(indent, f"if {cond}:")
    _emit_branch(cg, op.regions[0].entry_block, indent + 1, result_names)
    if len(op.regions) > 1 and op.regions[1].blocks:
        cg._line(indent, "else:")
        _emit_branch(cg, op.regions[1].entry_block, indent + 1, result_names)


def _emit_branch(cg: CodeGenerator, block: Block, indent: int, result_names) -> None:
    ops = block.op_list()
    if not ops or (len(ops) == 1 and not result_names):
        cg._line(indent, "pass")
    cg._emit_block_until_terminator(block, indent)
    terminator = ops[-1] if ops else None
    if terminator is not None and terminator.op_name == "scf.yield":
        for name, yielded in zip(result_names, terminator.operands):
            cg._line(indent, f"{name} = {cg._name_of(yielded)}")


@handles("scf.yield")
def _h_yield(cg, op, indent):  # handled by the parent loop/if emitters
    pass


@handles("func.call")
def _h_call(cg, op, indent):
    args = ", ".join(cg._name_of(v) for v in op.operands)
    callee = op.attributes["callee"]
    if op.results:
        names = [cg._assign(res) for res in op.results]
        cg._line(indent, f"{', '.join(names)} = {callee}({args})")
    else:
        cg._line(indent, f"{callee}({args})")


@handles("func.return")
def _h_return(cg, op, indent):
    if op.operands:
        values = ", ".join(cg._name_of(v) for v in op.operands)
        cg._line(indent, f"return {values}")
    else:
        cg._line(indent, "return")


CodeGenerator.HANDLERS = _HANDLERS


def generate_cpu_module(
    module: Operation, reuse_vector_registers: bool = False
) -> GeneratedModule:
    """Generate executable Python for a CPU-lowered module."""
    return CodeGenerator(module, reuse_vector_registers).generate()
