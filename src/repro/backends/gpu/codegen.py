"""GPU backend: gpu-dialect modules → simulator-executable Python.

Two code generators cooperate:

- :class:`GPUKernelCodeGenerator` compiles each ``gpu.func`` into a
  thread-parallel function. The IR describes one thread's scalar
  computation; the generated code evaluates it for *all* resident
  threads at once by binding the thread-id ops to index arrays (the
  simulator's warp-parallel execution). Every arithmetic handler is
  therefore array-valued: selects become ``np.where``, libm calls use
  the vector entry points, loads are NumPy gathers.
- :class:`GPUHostCodeGenerator` extends the CPU generator with handlers
  for the host-side driver ops (``gpu.alloc``/``gpu.memcpy``/
  ``gpu.launch_func``), which call into the :class:`GPUSimulator`
  runtime bound as ``_gpu``.
"""

from __future__ import annotations

from typing import Any, Dict, List

import numpy as np

from ...dialects import gpu as gpu_dialect
from ...ir.ops import Operation
from ...ir.types import IndexType, IntegerType
from ...gpusim.simulator import GPUSimulator
from ..cpu.codegen import (
    CodeGenerator,
    CodegenError,
    GeneratedModule,
    _HANDLERS,
    _binary,
    _dtype_expr,
    numpy_dtype,
)

# --- device kernel code generation -----------------------------------------------


_KERNEL_HANDLERS: Dict[str, Any] = dict(_HANDLERS)


def kernel_handles(op_name: str):
    def register(fn):
        _KERNEL_HANDLERS[op_name] = fn
        return fn

    return register


@kernel_handles("gpu.thread_id")
def _k_thread_id(cg, op, indent):
    cg._expr_result(op, indent, "(_lin % _bdim)")


@kernel_handles("gpu.block_id")
def _k_block_id(cg, op, indent):
    cg._expr_result(op, indent, "(_lin // _bdim)")


@kernel_handles("gpu.block_dim")
def _k_block_dim(cg, op, indent):
    cg._expr_result(op, indent, "_bdim")


@kernel_handles("gpu.grid_dim")
def _k_grid_dim(cg, op, indent):
    cg._expr_result(op, indent, "((_nthreads + _bdim - 1) // _bdim)")


@kernel_handles("gpu.return")
def _k_return(cg, op, indent):
    cg._line(indent, "return")


@kernel_handles("memref.load")
def _k_load(cg, op, indent):
    buf = cg._name_of(op.operands[0])
    idx = ", ".join(cg._name_of(v) for v in op.operands[1:])
    cg._expr_result(op, indent, f"{buf}[{idx}]")


@kernel_handles("memref.store")
def _k_store(cg, op, indent):
    value = cg._name_of(op.operands[0])
    buf = cg._name_of(op.operands[1])
    idx = ", ".join(cg._name_of(v) for v in op.operands[2:])
    cg._line(indent, f"{buf}[{idx}] = {value}")


@kernel_handles("arith.select")
def _k_select(cg, op, indent):
    cond, yes, no = (cg._name_of(v) for v in op.operands)
    cg._expr_result(op, indent, f"np.where({cond}, {yes}, {no})")


@kernel_handles("arith.andi")
def _k_andi(cg, op, indent):
    _binary(cg, op, indent, "&")


@kernel_handles("arith.ori")
def _k_ori(cg, op, indent):
    _binary(cg, op, indent, "|")


@kernel_handles("arith.fptosi")
def _k_fptosi(cg, op, indent):
    a = cg._name_of(op.operands[0])
    cg._expr_result(op, indent, f"{a}.astype(np.int64)")


@kernel_handles("arith.sitofp")
def _k_sitofp(cg, op, indent):
    a = cg._name_of(op.operands[0])
    cg._expr_result(op, indent, f"{a}.astype({_dtype_expr(op.results[0].type)})")


@kernel_handles("arith.index_cast")
def _k_index_cast(cg, op, indent):
    cg._expr_result(op, indent, cg._name_of(op.operands[0]))


def _k_float_cast(cg, op, indent):
    a = cg._name_of(op.operands[0])
    cg._expr_result(op, indent, f"{a}.astype({_dtype_expr(op.results[0].type)})")


_KERNEL_HANDLERS["arith.extf"] = _k_float_cast
_KERNEL_HANDLERS["arith.truncf"] = _k_float_cast


def _k_math(cg, op, indent, fn: str):
    a = cg._name_of(op.operands[0])
    cg._expr_result(op, indent, f"_v{fn}({a})")


for _name, _fn in (("math.log", "log"), ("math.exp", "exp"),
                   ("math.log1p", "log1p"), ("math.sqrt", "sqrt")):
    def _make(fn):
        def handler(cg, op, indent):
            _k_math(cg, op, indent, fn)
        return handler
    _KERNEL_HANDLERS[_name] = _make(_fn)


@kernel_handles("arith.minf")
def _k_minf(cg, op, indent):
    a, b = (cg._name_of(v) for v in op.operands)
    cg._expr_result(op, indent, f"np.minimum({a}, {b})")


@kernel_handles("arith.maxf")
def _k_maxf(cg, op, indent):
    a, b = (cg._name_of(v) for v in op.operands)
    cg._expr_result(op, indent, f"np.maximum({a}, {b})")


class GPUKernelCodeGenerator(CodeGenerator):
    """Compiles gpu.func kernels to thread-parallel NumPy functions."""

    HANDLERS = _KERNEL_HANDLERS

    def generate_kernels(self) -> GeneratedModule:
        for gpu_module in self.module.body_block.ops:
            if gpu_module.op_name != gpu_dialect.GPUModuleOp.name:
                continue
            for kernel in gpu_module.body_block.ops:
                if kernel.op_name == gpu_dialect.GPUFuncOp.name:
                    self._emit_kernel(kernel)
        source = "\n".join(self.lines) + "\n"
        self.stats.source_lines = len(self.lines)
        code = compile(source, "<spnc-gpu-kernel>", "exec")
        namespace = dict(self.globals)
        exec(code, namespace)
        functions = {
            name: namespace[name]
            for name in namespace
            if callable(namespace.get(name))
            and not name.startswith("_")
            and name != "np"
        }
        return GeneratedModule(source, namespace, functions, self.stats)

    def _emit_kernel(self, kernel: Operation) -> None:
        self.stats.functions += 1
        self._names = {}
        from ..cpu.codegen import _NamePool

        self._pool = _NamePool()
        args = kernel.body_block.arguments
        arg_names = [self._assign_fixed(arg, f"a{i}") for i, arg in enumerate(args)]
        name = kernel.attributes["sym_name"]
        self.lines.append(f"def {name}(_nthreads, _bdim, {', '.join(arg_names)}):")
        self._line(1, "_lin = np.arange(_nthreads)")
        self._emit_block(kernel.body_block, indent=1)
        self.lines.append("")


# --- host code generation -----------------------------------------------------------


_HOST_HANDLERS: Dict[str, Any] = dict(_HANDLERS)


def host_handles(op_name: str):
    def register(fn):
        _HOST_HANDLERS[op_name] = fn
        return fn

    return register


@host_handles("gpu.module")
def _h_gpu_module(cg, op, indent):
    pass  # kernels are compiled separately and registered on the simulator


@host_handles("gpu.alloc")
def _h_gpu_alloc(cg, op, indent):
    ty = op.results[0].type
    dims: List[str] = []
    operand_iter = iter(cg._name_of(v) for v in op.operands)
    for dim in ty.shape:
        dims.append(next(operand_iter) if dim is None else str(dim))
    shape = ", ".join(dims) + ("," if len(dims) == 1 else "")
    cg._expr_result(
        op, indent, f"_gpu.alloc(({shape}), {_dtype_expr(ty.element_type)})"
    )


@host_handles("gpu.dealloc")
def _h_gpu_dealloc(cg, op, indent):
    cg._line(indent, f"_gpu.dealloc({cg._name_of(op.operands[0])})")


@host_handles("gpu.memcpy")
def _h_gpu_memcpy(cg, op, indent):
    dst = cg._name_of(op.operands[0])
    src = cg._name_of(op.operands[1])
    cg._line(indent, f"_gpu.memcpy({dst}, {src}, {op.attributes['direction']!r})")


@host_handles("gpu.launch_func")
def _h_gpu_launch(cg, op, indent):
    grid = cg._name_of(op.grid_size)
    block = cg._name_of(op.block_size)
    valid = cg._name_of(op.valid_count)
    args = ", ".join(cg._name_of(v) for v in op.kernel_args)
    cg._line(
        indent,
        f"_gpu.launch({op.kernel_name!r}, {grid}, {block}, {valid}, [{args}])",
    )


class GPUHostCodeGenerator(CodeGenerator):
    """Compiles the host coordination function (func.func + gpu driver ops)."""

    HANDLERS = _HOST_HANDLERS

    def __init__(self, module: Operation, simulator: GPUSimulator):
        super().__init__(module)
        self.globals["_gpu"] = simulator


def generate_gpu_module(module: Operation, simulator: GPUSimulator):
    """Compile kernels + host code; returns (host GeneratedModule, kernels).

    Kernels are registered on ``simulator`` with a register-pressure
    estimate derived from their IR size.
    """
    kernel_gen = GPUKernelCodeGenerator(module)
    kernels = kernel_gen.generate_kernels()
    for gpu_module in module.body_block.ops:
        if gpu_module.op_name != gpu_dialect.GPUModuleOp.name:
            continue
        for kernel in gpu_module.kernels():
            name = kernel.sym_name
            simulator.register_kernel(name, kernels.get(name))
    host = GPUHostCodeGenerator(module, simulator).generate()
    return host, kernels
