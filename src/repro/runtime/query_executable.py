"""Query-modality wrappers around compiled kernels.

The query lowerings (:mod:`repro.compiler.lower_to_lospn`) emit kernels
whose heads carry everything the device can compute data-parallel: max
scores, per-sum argmax choice rows, marginal/moment integrals. The
cheap, batch-size-proportional remainder — MPE traceback, drawing leaf
samples, conditional subtraction, moment normalization — runs here on
the host, driven by the JSON ``queryPlan`` the lowering attached to the
kernel.

Wrappers subclass :class:`~repro.runtime.executable.Executable`, so they
share the lifecycle contract (close/drain semantics, context-manager
use) and look exactly like a plain compiled kernel to the serving layer
and the differential oracle. All wrapper outputs are **batch-last**
(``[rows, batch]``), matching multi-head kernels, so batch slicing
``outputs[..., a:b]`` keeps working:

=============  =========================  =================================
kind           output shape               rows
=============  =========================  =================================
mpe            ``(1 + F, n)``             max score; completed features
sample         ``(F, n)``                 sampled features
conditional    ``(n,)``                   log P(Q | E)
expectation    ``(F, n)``                 E[x_v^m | E] (NaN off-scope)
=============  =========================  =================================
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..diagnostics import (
    Diagnostic,
    ErrorCode,
    ExecutionError,
    Severity,
)
from .executable import Executable, KernelSignature


def make_query_executable(inner: Executable, kernel_info) -> Executable:
    """Wrap ``inner`` according to the kernel's query plan.

    Joint-probability kernels (no plan) are returned unchanged.
    """
    plan = getattr(kernel_info, "query_plan", None)
    if plan is None:
        return inner
    cls = _WRAPPERS.get(plan["kind"])
    if cls is None:
        raise ValueError(f"unknown query plan kind '{plan['kind']}'")
    return cls(inner, plan)


class QueryExecutable(Executable):
    """Common host-post-processing wrapper machinery."""

    def __init__(self, inner: Executable, plan: dict, signature: KernelSignature):
        super().__init__(inner.entry_name, signature)
        self.inner = inner
        self.plan = plan
        # Mirror the backend name so oracle/serving dispatch (which keys
        # on .target) sees through the wrapper.
        self.target = inner.target

    def _release(self) -> None:
        self.inner.close()

    @property
    def source(self) -> str:
        return self.inner.source

    # Wrappers accept an extra ``seed`` keyword (used by sampling; the
    # others ignore it) so callers can treat all modalities uniformly.
    def __call__(
        self,
        inputs: np.ndarray,
        deadline: Optional[float] = None,
        seed: Optional[int] = None,
    ) -> np.ndarray:
        return self.execute(inputs, deadline=deadline, seed=seed)

    def execute(
        self,
        inputs: np.ndarray,
        deadline: Optional[float] = None,
        seed: Optional[int] = None,
    ) -> np.ndarray:
        self._enter_execute()
        try:
            sig = self.signature
            # Feature pass-through (observed values in completions and
            # samples) uses the caller's full-precision values, not the
            # kernel-dtype cast — an f32 kernel must not round-trip the
            # user's f64 evidence.
            original = np.asarray(inputs, dtype=np.float64)
            inputs = np.ascontiguousarray(inputs, dtype=sig.input_dtype)
            if inputs.ndim != 2 or inputs.shape[1] != sig.num_features:
                raise ValueError(
                    f"expected input of shape [batch, {sig.num_features}], "
                    f"got {inputs.shape}"
                )
            return self._post(inputs, original, deadline, seed)
        finally:
            self._exit_execute()

    def _post(
        self,
        inputs: np.ndarray,
        original: np.ndarray,
        deadline: Optional[float],
        seed: Optional[int],
    ) -> np.ndarray:
        raise NotImplementedError

    def _heads(self, inputs: np.ndarray, deadline: Optional[float]) -> np.ndarray:
        """Run the inner kernel; always return a 2-D [rows, batch] view."""
        raw = self.inner.execute(inputs, deadline=deadline)
        return np.atleast_2d(raw)


def _choice_rows(plan: dict, heads: np.ndarray) -> Dict[int, np.ndarray]:
    """Per-sum integer winner indices decoded from the argmax head rows."""
    choices: Dict[int, np.ndarray] = {}
    for node in plan["nodes"]:
        if node.get("kind") == "sum":
            choices[node["id"]] = np.rint(heads[node["row"]]).astype(np.int64)
    return choices


def _active_masks(
    plan: dict, choices: Dict[int, np.ndarray], n: int
) -> Dict[int, np.ndarray]:
    """Top-down traceback: which samples reach each node.

    Plan nodes are in topological order (children first), so the
    reversed sweep visits every parent before its children and each
    node's mask is final when read. Products propagate their mask to all
    children; sums route it to the child the argmax head selected.
    """
    active = {node["id"]: np.zeros(n, dtype=bool) for node in plan["nodes"]}
    active[plan["root"]][:] = True
    for node in reversed(plan["nodes"]):
        kind = node["kind"]
        if kind == "leaf":
            continue
        mask = active[node["id"]]
        if not mask.any():
            continue
        if kind == "product":
            for child in node["children"]:
                active[child] |= mask
        else:  # sum
            choice = choices[node["id"]]
            for position, child in enumerate(node["children"]):
                active[child] |= mask & (choice == position)
    return active


class MPEExecutable(QueryExecutable):
    """Most-probable-explanation: argmax traceback + mode completion.

    Row 0 is the max-product score (same space as the inner kernel);
    rows ``1..F`` are the input features with every NaN replaced by the
    mode of the leaf the traceback selected for that sample.
    """

    def __init__(self, inner: Executable, plan: dict):
        inner_sig = inner.signature
        super().__init__(
            inner,
            plan,
            KernelSignature(
                num_features=plan["num_features"],
                input_dtype=inner_sig.input_dtype,
                result_dtype=np.dtype(np.float64),
                log_space=inner_sig.log_space,
                batch_size=inner_sig.batch_size,
                num_results=1 + plan["num_features"],
            ),
        )

    def _post(self, inputs, original, deadline, seed):
        heads = self._heads(inputs, deadline)
        n = inputs.shape[0]
        masks = _active_masks(self.plan, _choice_rows(self.plan, heads), n)
        completions = original.copy()
        missing = np.isnan(completions)
        for node in self.plan["nodes"]:
            if node["kind"] != "leaf":
                continue
            variable = node["variable"]
            fill = masks[node["id"]] & missing[:, variable]
            if fill.any():
                completions[fill, variable] = node["mode"]
        output = np.empty((1 + completions.shape[1], n), dtype=np.float64)
        output[0] = heads[0]
        output[1:] = completions.T
        return output


class SampleExecutable(QueryExecutable):
    """Seeded ancestral sampling via on-device Gumbel-max choice rows.

    The host appends one Gumbel-noise column per (sum, child) edge to
    the evidence batch; the kernel's argmax heads then *are* posterior
    branch draws. Traceback selects one leaf per variable and the host
    draws the leaf values. Determinism: noise and leaf draws both come
    from one ``np.random.default_rng(seed)``, with **full-batch** draws
    per leaf in plan order — so results depend only on (seed, inputs),
    never on which subset of samples reaches a leaf.
    """

    def __init__(self, inner: Executable, plan: dict):
        inner_sig = inner.signature
        super().__init__(
            inner,
            plan,
            KernelSignature(
                num_features=plan["num_features"],
                input_dtype=inner_sig.input_dtype,
                result_dtype=np.dtype(np.float64),
                log_space=False,
                batch_size=inner_sig.batch_size,
                num_results=plan["num_features"],
            ),
        )

    def _post(self, inputs, original, deadline, seed):
        plan = self.plan
        n = inputs.shape[0]
        rng = np.random.default_rng(0 if seed is None else seed)
        extended = np.empty(
            (n, plan["num_features"] + plan["num_aux"]),
            dtype=self.inner.signature.input_dtype,
        )
        extended[:, : plan["num_features"]] = inputs
        extended[:, plan["num_features"]:] = rng.gumbel(
            size=(n, plan["num_aux"])
        )
        heads = self._heads(extended, deadline)
        masks = _active_masks(plan, _choice_rows(plan, heads), n)
        samples = original.copy()
        missing = np.isnan(samples)
        for node in plan["nodes"]:
            if node["kind"] != "leaf":
                continue
            variable = node["variable"]
            draws = _draw_leaf(node["leaf"], rng, n)
            fill = masks[node["id"]] & missing[:, variable]
            if fill.any():
                samples[fill, variable] = draws[fill]
        return samples.T.copy()


def _draw_leaf(leaf: dict, rng: np.random.Generator, n: int) -> np.ndarray:
    kind = leaf["type"]
    if kind == "gaussian":
        return rng.normal(leaf["mean"], leaf["stdev"], size=n)
    if kind == "categorical":
        probs = np.asarray(leaf["probabilities"], dtype=np.float64)
        probs = probs / probs.sum()
        return rng.choice(len(probs), p=probs, size=n).astype(np.float64)
    if kind == "histogram":
        bounds = np.asarray(leaf["bounds"], dtype=np.float64)
        densities = np.asarray(leaf["densities"], dtype=np.float64)
        lo, hi = bounds[:-1], bounds[1:]
        masses = densities * (hi - lo)
        total = masses.sum()
        if total <= 0:
            masses = (hi - lo) / (hi - lo).sum()
        else:
            masses = masses / total
        buckets = rng.choice(len(masses), p=masses, size=n)
        return lo[buckets] + rng.random(n) * (hi[buckets] - lo[buckets])
    raise ValueError(f"unknown leaf type '{kind}'")


class ConditionalExecutable(QueryExecutable):
    """log P(Q | E) from the joint/evidence marginal head pair.

    Evidence NaNs marginalize inside the kernel; a NaN in a *query*
    column is a caller error (the query value is what the probability is
    conditioned *of*) and raises a structured diagnostic instead of
    silently degenerating to 0.
    """

    def __init__(self, inner: Executable, plan: dict):
        inner_sig = inner.signature
        super().__init__(
            inner,
            plan,
            KernelSignature(
                num_features=plan["num_features"],
                input_dtype=inner_sig.input_dtype,
                result_dtype=np.dtype(np.float64),
                log_space=True,
                batch_size=inner_sig.batch_size,
                num_results=1,
            ),
        )

    def _post(self, inputs, original, deadline, seed):
        variables = self.plan["query_variables"]
        nan_rows = np.isnan(inputs[:, variables]).any(axis=1)
        if nan_rows.any():
            bad = int(np.flatnonzero(nan_rows)[0])
            raise ExecutionError(
                f"conditional query requires observed query variables; "
                f"sample {bad} has NaN in query columns {variables} "
                "(NaN evidence marginalizes, NaN query values are invalid)",
                diagnostic=Diagnostic(
                    severity=Severity.ERROR,
                    code=ErrorCode.QUERY_NAN,
                    message="NaN in conditional query variables",
                    stage="execute",
                    target=self.target,
                    detail={
                        "query_variables": list(variables),
                        "first_bad_sample": bad,
                        "bad_samples": int(nan_rows.sum()),
                    },
                ),
            )
        heads = self._heads(inputs, deadline)
        joint = heads[0].astype(np.float64)
        evidence = heads[1].astype(np.float64)
        with np.errstate(invalid="ignore", divide="ignore"):
            if self.inner.signature.log_space:
                return joint - evidence
            return np.log(joint) - np.log(evidence)


class ExpectationExecutable(QueryExecutable):
    """E[x_v^m | E]: normalize the moment heads by the likelihood head.

    Output rows follow feature order; variables outside the root scope
    (the kernel computes no moment for them) and samples whose marginal
    likelihood is non-positive or non-finite come back NaN.
    """

    def __init__(self, inner: Executable, plan: dict):
        inner_sig = inner.signature
        super().__init__(
            inner,
            plan,
            KernelSignature(
                num_features=plan["num_features"],
                input_dtype=inner_sig.input_dtype,
                result_dtype=np.dtype(np.float64),
                log_space=False,
                batch_size=inner_sig.batch_size,
                num_results=plan["num_features"],
            ),
        )

    def _post(self, inputs, original, deadline, seed):
        plan = self.plan
        heads = self._heads(inputs, deadline)
        likelihood = heads[0].astype(np.float64)
        invalid = ~np.isfinite(likelihood) | (likelihood <= 0.0)
        output = np.full(
            (plan["num_features"], inputs.shape[0]), np.nan, dtype=np.float64
        )
        with np.errstate(invalid="ignore", divide="ignore"):
            for row, variable in enumerate(plan["variables"]):
                values = heads[1 + row].astype(np.float64) / likelihood
                values[invalid] = np.nan
                output[variable] = values
        return output


_WRAPPERS = {
    "mpe": MPEExecutable,
    "sample": SampleExecutable,
    "conditional": ConditionalExecutable,
    "expectation": ExpectationExecutable,
}


__all__ = [
    "ConditionalExecutable",
    "ExpectationExecutable",
    "MPEExecutable",
    "QueryExecutable",
    "SampleExecutable",
    "make_query_executable",
]
