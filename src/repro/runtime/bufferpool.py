"""Reusable temporary-buffer pool for generated kernels.

The batch-vectorized CPU kernels (paper Section IV-A, with W = the
chunk size) need per-op intermediates of runtime-dependent width: one
scratch vector per live value, plus any ``memref`` temporaries the
bufferization pass introduced. Allocating those with ``np.empty`` on
every kernel invocation is pure churn — the ChunkedExecutor calls the
same kernel once per chunk, with identical shapes for every full chunk.

A :class:`BufferPool` keeps one array per *slot* (a codegen-assigned
stable name such as ``v0`` or ``m1``) and hands out views:

- first request for a slot allocates exactly the requested shape;
- a request that fits the retained capacity returns a (zero-copy) view;
- a larger request grows the retained array (per-dimension max), so a
  short tail chunk followed by a full chunk at most doubles the
  high-water footprint once.

Worker-affine arenas
--------------------
The multi-threaded runtime runs the same kernel concurrently on pool
workers, and slots must never be shared across threads. Each worker
thread therefore owns an :class:`Arena` — a private slot→array map with
its own (lock-free) counters — created lazily on the thread's first
request and registered with the pool for observability. The hot path
(``buffer()``) touches only thread-confined state: no lock, no shared
counter cache-line bouncing, which is what lets W sharded workers scale
without serializing on the pool itself. Aggregate ``allocations`` /
``requests`` / ``retained_bytes`` sum the per-arena counters on demand
(the steady-state regression tests assert that repeated same-shape
invocations perform zero allocations on *every* worker's arena).

Pooled buffers are strictly kernel-internal. Results returned to the
user are always freshly allocated by the executable, never views into
the pool.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Tuple, Union

import numpy as np

ShapeArg = Union[int, Tuple[int, ...]]


class Arena:
    """One worker's private slot→array map (thread-confined, lock-free).

    An arena is created for — and only ever touched by — a single
    thread; the owning :class:`BufferPool` keeps a registry of live
    arenas for aggregate accounting and shutdown, but never reaches
    into their slots from another thread.
    """

    __slots__ = ("name", "slots", "allocations", "requests")

    def __init__(self, name: str):
        #: Owning worker's thread name (observability: ties arenas to
        #: the ChunkedExecutor's named workers).
        self.name = name
        self.slots: Dict[str, np.ndarray] = {}
        #: Backing-array allocations performed by this arena.
        self.allocations = 0
        #: Total ``buffer()`` calls served by this arena.
        self.requests = 0

    def buffer(self, slot: str, shape: ShapeArg, dtype) -> np.ndarray:
        """Return a reusable uninitialized array of ``shape``/``dtype``."""
        if isinstance(shape, (int, np.integer)):
            shape = (int(shape),)
        else:
            shape = tuple(int(d) for d in shape)
        self.requests += 1
        backing = self.slots.get(slot)
        if (
            backing is None
            or backing.dtype != np.dtype(dtype)
            or backing.ndim != len(shape)
            or any(c < d for c, d in zip(backing.shape, shape))
        ):
            grown = (
                shape
                if backing is None or backing.ndim != len(shape)
                or backing.dtype != np.dtype(dtype)
                else tuple(max(c, d) for c, d in zip(backing.shape, shape))
            )
            backing = np.empty(grown, dtype=dtype)
            self.slots[slot] = backing
            self.allocations += 1
        if backing.shape == shape:
            return backing
        return backing[tuple(slice(0, d) for d in shape)]

    @property
    def retained_bytes(self) -> int:
        """Bytes currently held by this arena's backing arrays."""
        return sum(array.nbytes for array in self.slots.values())

    def clear(self) -> None:
        """Drop the retained buffers (counters are kept)."""
        self.slots.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Arena {self.name!r} slots={len(self.slots)} "
            f"allocs={self.allocations} bytes={self.retained_bytes}>"
        )


class BufferPool:
    """Slot-keyed cache of reusable ndarray temporaries, one arena per
    worker thread."""

    def __init__(self):
        self._local = threading.local()
        self._lock = threading.Lock()
        #: Live arenas, in creation order (guarded by ``_lock``).
        self._arena_registry: List[Arena] = []
        self._closed = False

    # -- accounting (aggregated across arenas) --------------------------------

    @property
    def allocations(self) -> int:
        """Backing-array allocations performed so far, over all arenas."""
        return sum(a.allocations for a in self.arenas())

    @property
    def requests(self) -> int:
        """Total :meth:`buffer` calls served so far, over all arenas."""
        return sum(a.requests for a in self.arenas())

    @property
    def retained_bytes(self) -> int:
        """Bytes currently retained across every live arena."""
        return sum(a.retained_bytes for a in self.arenas())

    def arenas(self) -> List[Arena]:
        """Snapshot of the live arenas (observability and leak tests)."""
        with self._lock:
            return list(self._arena_registry)

    @property
    def arena_count(self) -> int:
        with self._lock:
            return len(self._arena_registry)

    # -- the kernel-facing entry points ----------------------------------------

    def arena(self) -> Arena:
        """This thread's arena, created (and registered) on first use."""
        if self._closed:
            # Plain attribute read, no lock: the hot path pays one
            # predictable branch. Checked even for threads with a cached
            # arena, so post-close requests fail uniformly.
            raise RuntimeError("buffer pool is closed")
        arena = getattr(self._local, "arena", None)
        if arena is None:
            arena = Arena(threading.current_thread().name)
            with self._lock:
                if self._closed:
                    raise RuntimeError("buffer pool is closed")
                self._arena_registry.append(arena)
            self._local.arena = arena
        return arena

    def buffer(self, slot: str, shape: ShapeArg, dtype) -> np.ndarray:
        """Return a reusable uninitialized array of ``shape``/``dtype``.

        The returned array is a view of the calling worker's retained
        backing store for ``slot``; its contents are unspecified (like
        ``np.empty``). Callers must fully define every element they
        read — generated kernels do, by construction.
        """
        return self.arena().buffer(slot, shape, dtype)

    def clear(self) -> None:
        """Drop this thread's retained buffers (counters are kept)."""
        arena = getattr(self._local, "arena", None)
        if arena is not None:
            arena.clear()

    def close(self) -> None:
        """Release every arena's buffers (leak-free shutdown).

        Idempotent. After close, the next ``buffer()`` call raises —
        executables close their pools only after in-flight executions
        have drained, so a request after close is a lifecycle bug.
        """
        with self._lock:
            self._closed = True
            arenas, self._arena_registry = self._arena_registry, []
        for arena in arenas:
            arena.clear()

    @property
    def closed(self) -> bool:
        return self._closed
