"""Reusable temporary-buffer pool for generated kernels.

The batch-vectorized CPU kernels (paper Section IV-A, with W = the
chunk size) need per-op intermediates of runtime-dependent width: one
scratch vector per live value, plus any ``memref`` temporaries the
bufferization pass introduced. Allocating those with ``np.empty`` on
every kernel invocation is pure churn — the ChunkedExecutor calls the
same kernel once per chunk, with identical shapes for every full chunk.

A :class:`BufferPool` keeps one array per *slot* (a codegen-assigned
stable name such as ``v0`` or ``m1``) and hands out views:

- first request for a slot allocates exactly the requested shape;
- a request that fits the retained capacity returns a (zero-copy) view;
- a larger request grows the retained array (per-dimension max), so a
  short tail chunk followed by a full chunk at most doubles the
  high-water footprint once.

Buffers are **thread-local**: the multi-threaded runtime runs the same
kernel concurrently on pool workers, and slots must never be shared
across threads. Counters (``allocations``/``requests``) are aggregated
across threads for observability — the steady-state regression test
asserts that repeated same-shape invocations perform zero allocations.

Pooled buffers are strictly kernel-internal. Results returned to the
user are always freshly allocated by the executable, never views into
the pool.
"""

from __future__ import annotations

import threading
from typing import Dict, Tuple, Union

import numpy as np

ShapeArg = Union[int, Tuple[int, ...]]


class BufferPool:
    """Slot-keyed, thread-local cache of reusable ndarray temporaries."""

    def __init__(self):
        self._local = threading.local()
        self._lock = threading.Lock()
        self._allocations = 0
        self._requests = 0

    # -- accounting (aggregated across threads) ------------------------------

    @property
    def allocations(self) -> int:
        """Number of backing-array allocations performed so far."""
        return self._allocations

    @property
    def requests(self) -> int:
        """Total number of :meth:`buffer` calls served so far."""
        return self._requests

    def _slots(self) -> Dict[str, np.ndarray]:
        slots = getattr(self._local, "slots", None)
        if slots is None:
            slots = self._local.slots = {}
        return slots

    # -- the kernel-facing entry point ----------------------------------------

    def buffer(self, slot: str, shape: ShapeArg, dtype) -> np.ndarray:
        """Return a reusable uninitialized array of ``shape``/``dtype``.

        The returned array is a view of this thread's retained backing
        store for ``slot``; its contents are unspecified (like
        ``np.empty``). Callers must fully define every element they
        read — generated kernels do, by construction.
        """
        if isinstance(shape, (int, np.integer)):
            shape = (int(shape),)
        else:
            shape = tuple(int(d) for d in shape)
        slots = self._slots()
        backing = slots.get(slot)
        with self._lock:
            self._requests += 1
        if (
            backing is None
            or backing.dtype != np.dtype(dtype)
            or backing.ndim != len(shape)
            or any(c < d for c, d in zip(backing.shape, shape))
        ):
            grown = (
                shape
                if backing is None or backing.ndim != len(shape)
                or backing.dtype != np.dtype(dtype)
                else tuple(max(c, d) for c, d in zip(backing.shape, shape))
            )
            backing = np.empty(grown, dtype=dtype)
            slots[slot] = backing
            with self._lock:
                self._allocations += 1
        if backing.shape == shape:
            return backing
        return backing[tuple(slice(0, d) for d in shape)]

    def clear(self) -> None:
        """Drop this thread's retained buffers (counters are kept)."""
        self._slots().clear()
