"""Multi-threaded chunked kernel execution (paper Section IV-B).

The generated CPU code is single-threaded by design; the runtime splits
the input batch into chunks (of the user-provided batch size — "a mere
optimization hint") and processes chunks on a thread pool.

Robustness: when a chunk raises, the executor *fails fast* — every
not-yet-started chunk is cancelled so a poisoned batch does not keep
burning worker time — and failed or cancelled chunks are re-run inline
under a bounded :class:`RetryPolicy` (attempts, exponential backoff,
jitter). Retries target transient faults (the fault-injection suite
simulates them); a deterministically-failing chunk exhausts its budget
and re-raises the last error. Each retry is recorded as a structured
:class:`~repro.diagnostics.Diagnostic` (code ``chunk-retry``) when the
caller supplies a :class:`~repro.diagnostics.DiagnosticLog`.

Deadlines: :meth:`ChunkedExecutor.run` accepts an absolute ``deadline``
(``time.monotonic()`` timestamp). Chunks are not started — and retries
not slept — past the deadline; instead a structured
:class:`~repro.diagnostics.DeadlineError` is raised. The serving
runtime propagates per-request deadlines down to this point so a slow
batch fails bounded rather than late.

Honesty note (DESIGN.md): with Python as the ISA, scalar kernels hold
the GIL, so threading over them is structural only. Batch-vectorized
kernels change that: each chunk is one straight line of whole-chunk
NumPy calls, which release the GIL, so worker threads genuinely overlap
— the configuration where the paper's Section IV-B runtime design pays
off in this reproduction.
"""

from __future__ import annotations

import random
import threading
import time
from concurrent.futures import CancelledError, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ..diagnostics import (
    DeadlineError,
    Diagnostic,
    DiagnosticLog,
    ErrorCode,
    Severity,
)


def chunk_ranges(total: int, chunk_size: int) -> List[Tuple[int, int]]:
    """Split [0, total) into consecutive [start, end) chunks."""
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    return [
        (start, min(start + chunk_size, total))
        for start in range(0, total, chunk_size)
    ]


#: Below this many rows per chunk, the whole-batch vector kernels stop
#: amortizing their per-call dispatch cost (the Python-interpreted
#: straight-line prologue); adaptive sharding never shrinks chunks
#: further just to create parallelism that could not pay anyway.
MIN_PROFITABLE_CHUNK = 256


def plan_chunks(
    total: int,
    hint: int,
    workers: int,
    min_chunk: int = MIN_PROFITABLE_CHUNK,
) -> List[Tuple[int, int]]:
    """Adaptive shard plan: [0, total) split for ``workers`` pool workers.

    The user's ``hint`` (the compiled batch size — "a mere optimization
    hint", paper Section IV-B) caps the chunk width: scratch arenas are
    sized to it, and chunks beyond it would regrow every worker's
    high-water footprint. Within that cap the plan over-decomposes the
    batch so the shared chunk queue stays work-stealing friendly:

    - target at least ``2 * workers`` chunks, so a worker that finishes
      early (short tail, OS preemption, NUMA-unlucky placement) pulls
      another chunk instead of idling at the barrier;
    - never shrink a chunk below ``min_chunk`` rows — parallelism that
      deoptimizes the vector kernels is a net loss;
    - chunks are uniform except the tail, and the tail is *last* in the
      queue, so the longest work is in flight first (LPT-flavoured).

    Degenerates to :func:`chunk_ranges(total, hint)` for one worker.
    """
    if hint <= 0:
        raise ValueError("chunk hint must be positive")
    if workers <= 1 or total <= min_chunk:
        return chunk_ranges(total, min(hint, total) if total else hint)
    target_chunks = 2 * workers
    size = -(-total // target_chunks)  # ceil: ≥2W chunks when it fits
    size = max(min(size, hint), min(min_chunk, hint))
    return chunk_ranges(total, size)


@dataclass
class ShardRecord:
    """One chunk's execution interval, for makespan/overlap accounting."""

    start: int
    end: int
    worker: str
    began_at: float
    ended_at: float

    @property
    def seconds(self) -> float:
        return self.ended_at - self.began_at


class ShardTimeline:
    """Per-run record of which worker ran which chunk, and when.

    Thread-safe append; the scaling benchmark and the contention tests
    read it to compute busy time vs. makespan (achieved parallelism)
    and to assert worker-affine arena isolation.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self.records: List[ShardRecord] = []

    def record(self, start: int, end: int, began_at: float, ended_at: float) -> None:
        entry = ShardRecord(
            start, end, threading.current_thread().name, began_at, ended_at
        )
        with self._lock:
            self.records.append(entry)

    @property
    def busy_seconds(self) -> float:
        """Sum of chunk execution times (work, ignoring idle gaps)."""
        return sum(r.seconds for r in self.records)

    @property
    def makespan_seconds(self) -> float:
        """Wall-clock span from first chunk start to last chunk end."""
        if not self.records:
            return 0.0
        return max(r.ended_at for r in self.records) - min(
            r.began_at for r in self.records
        )

    @property
    def workers(self) -> List[str]:
        """Distinct worker names that executed chunks, sorted."""
        return sorted({r.worker for r in self.records})


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff and jitter.

    ``max_retries=0`` preserves strict fail-immediately semantics.
    ``backoff_base=0`` retries immediately (the pre-policy behaviour);
    otherwise attempt *n* (0-based) sleeps
    ``min(backoff_base * 2**n, backoff_max)`` scaled by a uniform
    ``±jitter`` fraction so synchronized callers do not retry in
    lock-step (thundering herd).
    """

    max_retries: int = 0
    backoff_base: float = 0.0
    backoff_max: float = 0.25
    jitter: float = 0.1

    def __post_init__(self):
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ValueError("backoff must be >= 0")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    def delay(self, attempt: int, rng: Optional[random.Random] = None) -> float:
        """Backoff delay in seconds before retry ``attempt`` (0-based)."""
        if self.backoff_base <= 0.0:
            return 0.0
        base = min(self.backoff_base * (2.0 ** attempt), self.backoff_max)
        if self.jitter:
            scale = (rng.uniform if rng else random.uniform)(
                1.0 - self.jitter, 1.0 + self.jitter
            )
            base *= scale
        return base


def _deadline_error(start: int, end: int, deadline: float) -> DeadlineError:
    message = (
        f"deadline exceeded before chunk [{start}, {end}) completed "
        f"({time.monotonic() - deadline:.3f}s past deadline)"
    )
    return DeadlineError(
        message,
        diagnostic=Diagnostic(
            severity=Severity.ERROR,
            code=ErrorCode.DEADLINE_EXCEEDED,
            message=message,
            stage="execute",
            detail={"chunk": [start, end]},
        ),
    )


@dataclass
class _RunState:
    """Per-run mutable state (diagnostics sink + counters).

    Kept local to each :meth:`ChunkedExecutor.run` call so concurrent
    runs on a shared executor (e.g. multiple batcher workers over one
    executable) cannot cross-wire retry diagnostics or corrupt each
    other's counters.
    """

    diagnostics: Optional[DiagnosticLog] = None
    retries: int = 0
    cancelled: int = 0


class ChunkedExecutor:
    """Runs a per-chunk callable over the batch, optionally in parallel.

    Attributes (for observability and tests):
        last_run_retries: retry attempts of the most recently *finished*
            run. Concurrent runs each count their own retries and write
            a final snapshot here on completion.
        last_run_cancelled: same, for chunks cancelled before starting
            after another chunk failed (they are then re-run inline).
    """

    def __init__(self, num_threads: int = 1):
        if num_threads < 1:
            raise ValueError("num_threads must be >= 1")
        self.num_threads = num_threads
        self._pool: Optional[ThreadPoolExecutor] = (
            ThreadPoolExecutor(
                max_workers=num_threads, thread_name_prefix="spnc-worker"
            )
            if num_threads > 1
            else None
        )
        self.last_run_retries = 0
        self.last_run_cancelled = 0

    def run(
        self,
        total: int,
        chunk_size: int,
        fn: Callable[[int, int], None],
        max_retries: int = 0,
        retry_policy: Optional[RetryPolicy] = None,
        deadline: Optional[float] = None,
        diagnostics: Optional[DiagnosticLog] = None,
        ranges: Optional[List[Tuple[int, int]]] = None,
        timeline: Optional[ShardTimeline] = None,
    ) -> None:
        """Execute ``fn(start, end)`` for every chunk of the batch.

        Args:
            max_retries: extra attempts granted to each failing chunk
                (0 = fail immediately, preserving strict semantics).
                Shorthand for ``RetryPolicy(max_retries=...)`` with
                immediate (no-backoff) retries.
            retry_policy: full bounded-backoff policy; overrides
                ``max_retries`` when provided.
            deadline: absolute ``time.monotonic()`` timestamp after
                which no further chunk is started and a structured
                :class:`DeadlineError` is raised.
            diagnostics: optional log receiving one ``chunk-retry``
                WARNING diagnostic per retry attempt.
            ranges: explicit shard plan (e.g. from :func:`plan_chunks`);
                overrides the uniform ``chunk_size`` split. Must cover
                ``[0, total)`` with disjoint chunks.
            timeline: optional :class:`ShardTimeline` receiving one
                record per executed chunk (worker name + interval).
        """
        if retry_policy is None:
            if max_retries < 0:
                raise ValueError("max_retries must be >= 0")
            retry_policy = RetryPolicy(max_retries=max_retries)
        if timeline is not None:
            timed = fn

            def fn(start: int, end: int, _inner=timed) -> None:
                began = time.monotonic()
                _inner(start, end)
                timeline.record(start, end, began, time.monotonic())

        state = _RunState(diagnostics=diagnostics)
        try:
            self._run(total, chunk_size, fn, retry_policy, deadline, state, ranges)
        finally:
            self.last_run_retries = state.retries
            self.last_run_cancelled = state.cancelled

    def _run(
        self,
        total: int,
        chunk_size: int,
        fn: Callable[[int, int], None],
        retry_policy: RetryPolicy,
        deadline: Optional[float],
        state: _RunState,
        ranges: Optional[List[Tuple[int, int]]] = None,
    ) -> None:
        if ranges is None:
            ranges = chunk_ranges(total, chunk_size)
        if self._pool is None or len(ranges) == 1:
            for start, end in ranges:
                self._check_deadline(deadline, start, end)
                self._run_with_retry(fn, start, end, retry_policy, deadline, state)
            return

        def guarded(start: int, end: int) -> None:
            # Deadline holds on the pool path too: a chunk that reaches
            # a worker past the deadline must not start. The resulting
            # DeadlineError fails fast below and is never retried.
            self._check_deadline(deadline, start, end)
            fn(start, end)

        futures = [(self._pool.submit(guarded, s, e), (s, e)) for s, e in ranges]
        failed: List[Tuple[Tuple[int, int], BaseException]] = []
        cancelled_ids: set = set()
        for index, (future, chunk) in enumerate(futures):
            if index in cancelled_ids:
                continue
            try:
                future.result()
            except CancelledError:  # pragma: no cover - cancel() raced us
                cancelled_ids.add(index)
            except Exception as error:
                failed.append((chunk, error))
                # Fail fast: the moment any chunk raises, sweep the queue
                # and cancel everything that has not started yet; those
                # chunks are re-run inline (or the error re-raised) below.
                for later in range(index + 1, len(futures)):
                    if later not in cancelled_ids and futures[later][0].cancel():
                        cancelled_ids.add(later)
        cancelled = [futures[i][1] for i in sorted(cancelled_ids)]
        state.cancelled = len(cancelled)

        for (start, end), error in failed:
            self._retry_failed(fn, start, end, retry_policy, deadline, error, state)
        for start, end in cancelled:
            self._check_deadline(deadline, start, end)
            self._run_with_retry(fn, start, end, retry_policy, deadline, state)

    @staticmethod
    def _check_deadline(deadline: Optional[float], start: int, end: int) -> None:
        if deadline is not None and time.monotonic() >= deadline:
            raise _deadline_error(start, end, deadline)

    def _run_with_retry(
        self,
        fn: Callable[[int, int], None],
        start: int,
        end: int,
        policy: RetryPolicy,
        deadline: Optional[float],
        state: _RunState,
    ) -> None:
        try:
            fn(start, end)
        except Exception as error:
            self._retry_failed(fn, start, end, policy, deadline, error, state)

    def _retry_failed(
        self,
        fn: Callable[[int, int], None],
        start: int,
        end: int,
        policy: RetryPolicy,
        deadline: Optional[float],
        error: BaseException,
        state: _RunState,
    ) -> None:
        if isinstance(error, DeadlineError):
            # Deadline expiry is terminal, never transient: re-running
            # the chunk cannot un-expire the budget.
            raise error
        attempt = 0
        while True:
            if attempt >= policy.max_retries:
                raise error
            delay = policy.delay(attempt)
            if deadline is not None and time.monotonic() + delay >= deadline:
                # No budget left to even wait out the backoff: surface a
                # deadline error chained to the underlying fault.
                raise _deadline_error(start, end, deadline) from error
            if delay > 0.0:
                time.sleep(delay)
            attempt += 1
            state.retries += 1
            self._emit_retry(state.diagnostics, start, end, attempt, delay, error)
            try:
                fn(start, end)
                return
            except Exception as new_error:
                error = new_error

    def _emit_retry(
        self,
        log: Optional[DiagnosticLog],
        start: int,
        end: int,
        attempt: int,
        delay: float,
        error: BaseException,
    ) -> None:
        if log is None:
            return
        log.emit(
            Diagnostic(
                severity=Severity.WARNING,
                code=ErrorCode.CHUNK_RETRY,
                message=(
                    f"retrying chunk [{start}, {end}) after "
                    f"{type(error).__name__}: {error}"
                ),
                stage="execute",
                detail={
                    "chunk": [start, end],
                    "attempt": attempt,
                    "backoff_s": delay,
                },
            )
        )

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ChunkedExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
