"""Multi-threaded chunked kernel execution (paper Section IV-B).

The generated CPU code is single-threaded by design; the runtime splits
the input batch into chunks (of the user-provided batch size — "a mere
optimization hint") and processes chunks on a thread pool.

Honesty note (DESIGN.md): with Python as the ISA, scalar kernels hold the
GIL, so threading mainly overlaps the NumPy portions of vectorized
kernels. The structure matches the paper's runtime; absolute thread
scaling does not.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Optional, Tuple


def chunk_ranges(total: int, chunk_size: int) -> List[Tuple[int, int]]:
    """Split [0, total) into consecutive [start, end) chunks."""
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    return [
        (start, min(start + chunk_size, total))
        for start in range(0, total, chunk_size)
    ]


class ChunkedExecutor:
    """Runs a per-chunk callable over the batch, optionally in parallel."""

    def __init__(self, num_threads: int = 1):
        if num_threads < 1:
            raise ValueError("num_threads must be >= 1")
        self.num_threads = num_threads
        self._pool: Optional[ThreadPoolExecutor] = (
            ThreadPoolExecutor(max_workers=num_threads) if num_threads > 1 else None
        )

    def run(self, total: int, chunk_size: int, fn: Callable[[int, int], None]) -> None:
        ranges = chunk_ranges(total, chunk_size)
        if self._pool is None or len(ranges) == 1:
            for start, end in ranges:
                fn(start, end)
            return
        futures = [self._pool.submit(fn, start, end) for start, end in ranges]
        for future in futures:
            future.result()  # propagate exceptions

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ChunkedExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
