"""Multi-threaded chunked kernel execution (paper Section IV-B).

The generated CPU code is single-threaded by design; the runtime splits
the input batch into chunks (of the user-provided batch size — "a mere
optimization hint") and processes chunks on a thread pool.

Robustness: when a chunk raises, the executor *fails fast* — every
not-yet-started chunk is cancelled so a poisoned batch does not keep
burning worker time — and failed or cancelled chunks are re-run inline
with a bounded per-chunk retry budget (``max_retries``). Retries target
transient faults (the fault-injection suite simulates them); a
deterministically-failing chunk exhausts its budget and re-raises the
last error.

Honesty note (DESIGN.md): with Python as the ISA, scalar kernels hold
the GIL, so threading over them is structural only. Batch-vectorized
kernels change that: each chunk is one straight line of whole-chunk
NumPy calls, which release the GIL, so worker threads genuinely overlap
— the configuration where the paper's Section IV-B runtime design pays
off in this reproduction.
"""

from __future__ import annotations

from concurrent.futures import CancelledError, ThreadPoolExecutor
from typing import Callable, List, Optional, Tuple


def chunk_ranges(total: int, chunk_size: int) -> List[Tuple[int, int]]:
    """Split [0, total) into consecutive [start, end) chunks."""
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    return [
        (start, min(start + chunk_size, total))
        for start in range(0, total, chunk_size)
    ]


class ChunkedExecutor:
    """Runs a per-chunk callable over the batch, optionally in parallel.

    Attributes (reset per :meth:`run`, for observability and tests):
        last_run_retries: number of retry attempts performed.
        last_run_cancelled: number of chunks cancelled before starting
            after another chunk failed (they are then re-run inline).
    """

    def __init__(self, num_threads: int = 1):
        if num_threads < 1:
            raise ValueError("num_threads must be >= 1")
        self.num_threads = num_threads
        self._pool: Optional[ThreadPoolExecutor] = (
            ThreadPoolExecutor(max_workers=num_threads) if num_threads > 1 else None
        )
        self.last_run_retries = 0
        self.last_run_cancelled = 0

    def run(
        self,
        total: int,
        chunk_size: int,
        fn: Callable[[int, int], None],
        max_retries: int = 0,
    ) -> None:
        """Execute ``fn(start, end)`` for every chunk of the batch.

        Args:
            max_retries: extra attempts granted to each failing chunk
                (0 = fail immediately, preserving strict semantics).
        """
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self.last_run_retries = 0
        self.last_run_cancelled = 0
        ranges = chunk_ranges(total, chunk_size)
        if self._pool is None or len(ranges) == 1:
            for start, end in ranges:
                self._run_with_retry(fn, start, end, max_retries)
            return

        futures = [(self._pool.submit(fn, s, e), (s, e)) for s, e in ranges]
        failed: List[Tuple[Tuple[int, int], BaseException]] = []
        cancelled_ids: set = set()
        for index, (future, chunk) in enumerate(futures):
            if index in cancelled_ids:
                continue
            try:
                future.result()
            except CancelledError:  # pragma: no cover - cancel() raced us
                cancelled_ids.add(index)
            except Exception as error:
                failed.append((chunk, error))
                # Fail fast: the moment any chunk raises, sweep the queue
                # and cancel everything that has not started yet; those
                # chunks are re-run inline (or the error re-raised) below.
                for later in range(index + 1, len(futures)):
                    if later not in cancelled_ids and futures[later][0].cancel():
                        cancelled_ids.add(later)
        cancelled = [futures[i][1] for i in sorted(cancelled_ids)]
        self.last_run_cancelled = len(cancelled)

        for (start, end), error in failed:
            self._retry_failed(fn, start, end, max_retries, error)
        for start, end in cancelled:
            self._run_with_retry(fn, start, end, max_retries)

    def _run_with_retry(
        self, fn: Callable[[int, int], None], start: int, end: int, budget: int
    ) -> None:
        try:
            fn(start, end)
        except Exception as error:
            self._retry_failed(fn, start, end, budget, error)

    def _retry_failed(
        self,
        fn: Callable[[int, int], None],
        start: int,
        end: int,
        budget: int,
        error: BaseException,
    ) -> None:
        while True:
            if budget <= 0:
                raise error
            budget -= 1
            self.last_run_retries += 1
            try:
                fn(start, end)
                return
            except Exception as new_error:
                error = new_error

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ChunkedExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
