"""Loadable compiled kernels: the runtime component.

A :class:`CPUExecutable` wraps the generated kernel entry point; calling
it with a [batch, features] array returns per-sample (log) likelihoods.
The runtime owns output allocation, chunking and multi-threading — the
generated kernel itself processes an arbitrary number of samples
(batch size is only an optimization hint).

Batch-vectorized kernels make the chunk hand-off the unit of
parallelism: each chunk is passed *whole* to the wide kernel as a pair
of array views, every LoSPN op inside runs as one NumPy call over the
full chunk, and NumPy releases the GIL — so the ChunkedExecutor's
worker threads overlap real work. Per-chunk temporaries come from the
generated module's :class:`~repro.runtime.bufferpool.BufferPool`
(thread-local slots), so steady-state execution allocates nothing per
chunk beyond the one output array per call.

Lifecycle: multi-threaded executables own a thread pool. Call
:meth:`Executable.close` (or use the executable as a context manager)
to release it deterministically; otherwise the pool is reclaimed with
the executable (``__del__``) rather than leaking across many compile
sessions. ``close()`` is safe under concurrency: it waits for in-flight
:meth:`execute` calls to drain before releasing resources, and any
``execute`` that arrives at — or races — a closed executable raises a
clean structured :class:`~repro.diagnostics.ExecutableClosedError`
instead of crashing on a released thread pool or buffer pool. The
serving runtime's drain-before-unload model swap is built on exactly
this contract.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..backends.cpu.codegen import GeneratedModule, numpy_dtype
from ..diagnostics import (
    Diagnostic,
    DiagnosticLog,
    ErrorCode,
    ExecutableClosedError,
    Severity,
)
from ..ir.types import Type
from ..testing import faults
from .threadpool import ChunkedExecutor, RetryPolicy, ShardTimeline, plan_chunks


@dataclass
class KernelSignature:
    """Shape/type contract of a compiled query kernel."""

    num_features: int
    input_dtype: np.dtype
    result_dtype: np.dtype
    log_space: bool
    batch_size: int
    #: Result rows per sample (1 for a single query; one per head for
    #: multi-head kernels).
    num_results: int = 1


class Executable:
    """Common contract for compiled kernels, regardless of target.

    Every backend executable shares: a :class:`KernelSignature`, a
    ``source`` listing of the generated code, an explicit lifecycle
    (:meth:`close`, context-manager support), and :meth:`execute` with
    uniform input validation, output allocation, fault-injection
    poisoning and single-result squeezing. Subclasses implement
    :meth:`_run` (fill ``output`` from validated ``inputs``) and
    :attr:`source`; :attr:`target` names the backend so callers (the
    API-layer fallback cascade, the differential oracle) never need
    ``isinstance`` checks against concrete classes.
    """

    #: Backend name ("cpu", "gpu", ...), set by each subclass.
    target: str = "unknown"

    def __init__(self, entry_name: str, signature: KernelSignature):
        self.entry_name = entry_name
        self.signature = signature
        #: Structured runtime events (chunk retries, ...) observed by
        #: this executable; shared with the ChunkedExecutor.
        self.diagnostics = DiagnosticLog()
        self._closed = False
        self._inflight = 0
        self._lifecycle = threading.Condition()

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Release owned resources (idempotent, concurrency-safe).

        Marks the executable closed — rejecting new :meth:`execute`
        calls — then waits for in-flight executions to drain before
        releasing resources via :meth:`_release`, so a racing
        ``execute`` never observes a half-torn-down executable.
        """
        with self._lifecycle:
            already = self._closed
            self._closed = True
            while self._inflight > 0:
                self._lifecycle.wait()
        if not already:
            self._release()

    def _release(self) -> None:
        """Release subclass-owned resources; runs exactly once, after
        every in-flight execution has drained."""

    def __enter__(self) -> "Executable":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    def _enter_execute(self) -> None:
        with self._lifecycle:
            if self._closed:
                raise ExecutableClosedError(
                    "executable closed",
                    diagnostic=Diagnostic(
                        severity=Severity.ERROR,
                        code=ErrorCode.EXECUTABLE_CLOSED,
                        message=f"'{self.entry_name}' invoked after close()",
                        stage="execute",
                        target=self.target,
                    ),
                )
            self._inflight += 1

    def _exit_execute(self) -> None:
        with self._lifecycle:
            self._inflight -= 1
            if self._inflight == 0:
                self._lifecycle.notify_all()

    # -- invocation ---------------------------------------------------------------

    def __call__(self, inputs: np.ndarray, deadline: Optional[float] = None) -> np.ndarray:
        return self.execute(inputs, deadline=deadline)

    def execute(
        self, inputs: np.ndarray, deadline: Optional[float] = None
    ) -> np.ndarray:
        """Run the kernel; returns [batch] (log-)likelihoods.

        ``deadline`` is an absolute ``time.monotonic()`` timestamp
        propagated into chunk scheduling (CPU backend): chunks are not
        started past it and a structured
        :class:`~repro.diagnostics.DeadlineError` is raised instead.
        """
        self._enter_execute()
        try:
            sig = self.signature
            inputs = np.ascontiguousarray(inputs, dtype=sig.input_dtype)
            if inputs.ndim != 2 or inputs.shape[1] != sig.num_features:
                raise ValueError(
                    f"expected input of shape [batch, {sig.num_features}], "
                    f"got {inputs.shape}"
                )
            faults.maybe_fail_kernel(self.entry_name)
            output = np.empty(
                (sig.num_results, inputs.shape[0]), dtype=sig.result_dtype
            )
            self._run(inputs, output, deadline=deadline)
            if faults.kernel_nan_active():
                # Fault injection: simulate a codegen defect at the generated
                # kernel entry — the output buffer comes back NaN-poisoned.
                output.fill(np.nan)
            return output[0] if sig.num_results == 1 else output
        finally:
            self._exit_execute()

    def _run(
        self, inputs: np.ndarray, output: np.ndarray, deadline: Optional[float] = None
    ) -> None:
        raise NotImplementedError

    @property
    def source(self) -> str:
        """The generated code listing (the "object code")."""
        raise NotImplementedError


class CPUExecutable(Executable):
    """A compiled CPU kernel plus its invocation metadata."""

    target = "cpu"

    def __init__(
        self,
        generated: GeneratedModule,
        entry_name: str,
        signature: KernelSignature,
        num_threads: int = 1,
        max_chunk_retries: int = 0,
        retry_policy: Optional[RetryPolicy] = None,
        parallel_plan: Optional[dict] = None,
    ):
        super().__init__(entry_name, signature)
        self.generated = generated
        self.entry = generated.get(entry_name)
        self.num_threads = num_threads
        #: Bounded per-chunk retry budget for transient execution faults
        #: (0 preserves strict fail-immediately semantics).
        self.max_chunk_retries = max_chunk_retries
        #: Full bounded-backoff retry policy; defaults to immediate
        #: retries with the ``max_chunk_retries`` budget.
        self.retry_policy = retry_policy or RetryPolicy(max_retries=max_chunk_retries)
        self._executor = ChunkedExecutor(num_threads) if num_threads > 1 else None
        #: Shard timeline of the most recent multi-threaded execution
        #: (worker names + per-chunk intervals; observability/benchmarks).
        self.last_timeline: Optional[ShardTimeline] = None
        #: Analysis-proven wave schedule from ``parallelize-partitions``
        #: (``None`` = serial task execution through the kernel entry).
        self.parallel_plan = parallel_plan
        self._parallel = self._prepare_parallel(parallel_plan)
        #: Waves of the most recent partition-parallel execution
        #: (``[]`` when the last run took the serial path).
        self.last_waves: list = []

    def _release(self) -> None:
        """Release the worker thread pool and the kernel's buffer-pool
        arenas (runs once, post-drain — leak-free shutdown)."""
        if self._executor is not None:
            self._executor.close()
            self._executor = None
        pool = self.buffer_pool
        if pool is not None:
            pool.close()

    def _prepare_parallel(self, plan: Optional[dict]) -> Optional[dict]:
        """Validate the compiler's wave schedule against this module.

        Resolves the per-partition task functions and normalizes buffer
        specs; any mismatch (missing task function, unexpected wiring,
        unknown dtype) silently degrades to serial execution — the plan
        is an optimization, never a correctness requirement.
        """
        if not plan:
            return None
        try:
            if plan.get("num_args") != 2:
                return None
            buffers = [
                (int(spec["rows"]), np.dtype(spec["dtype"]))
                for spec in plan["buffers"]
            ]
            tasks = []
            for index, spec in enumerate(plan["tasks"]):
                fn = self.generated.get(f"{self.entry_name}_task_{index}")
                wiring = []
                for kind, ref in spec["args"]:
                    if kind == "arg" and ref in (0, plan["num_args"] - 1):
                        wiring.append(("arg", int(ref)))
                    elif kind == "buf" and 0 <= ref < len(buffers):
                        wiring.append(("buf", int(ref)))
                    else:
                        return None
                tasks.append((fn, wiring))
            waves = [
                [int(t) for t in wave] for wave in plan["waves"] if wave
            ]
            if sorted(t for wave in waves for t in wave) != list(
                range(len(tasks))
            ):
                return None
        except (KeyError, TypeError, ValueError, AttributeError):
            return None
        return {"waves": waves, "buffers": buffers, "tasks": tasks}

    def _run_parallel(
        self, inputs: np.ndarray, output: np.ndarray, deadline: Optional[float]
    ) -> None:
        """Execute the kernel wave by wave (partition-level parallelism).

        Tasks within a wave are analysis-proven disjoint (the
        ``concurrency`` check re-verifies the schedule), so they run
        concurrently on the worker pool; waves are barriers. Each task
        processes the *whole* batch and the per-sample arithmetic is
        untouched, so results are bit-identical to the serial path.
        """
        plan = self._parallel
        n = inputs.shape[0]
        buffers = [
            np.empty((rows, n), dtype=dtype) for rows, dtype in plan["buffers"]
        ]
        calls = []
        for fn, wiring in plan["tasks"]:
            resolved = [
                (inputs if ref == 0 else output) if kind == "arg" else buffers[ref]
                for kind, ref in wiring
            ]
            calls.append((fn, resolved))
        self.last_waves = [list(wave) for wave in plan["waves"]]

        def run_tasks(start: int, end: int, wave=None) -> None:
            for index in wave[start:end]:
                faults.maybe_delay_chunk()
                fn, args = calls[index]
                fn(*args)

        for wave in plan["waves"]:
            if self._executor is None or len(wave) == 1:
                run_tasks(0, len(wave), wave=wave)
                continue
            self._executor.run(
                len(wave),
                1,
                lambda start, end, wave=wave: run_tasks(start, end, wave=wave),
                retry_policy=self.retry_policy,
                deadline=deadline,
                diagnostics=self.diagnostics,
                ranges=[(i, i + 1) for i in range(len(wave))],
            )

    def _run(
        self, inputs: np.ndarray, output: np.ndarray, deadline: Optional[float] = None
    ) -> None:
        sig = self.signature
        n = inputs.shape[0]
        # libm semantics for the raw ufuncs in generated code: log(0) is
        # -inf, exp overflow is inf — never a warning or exception.
        with np.errstate(all="ignore"):
            if self._parallel is not None:
                self._run_parallel(inputs, output, deadline)
                return
            self.last_waves = []
            if self._executor is None:
                faults.maybe_delay_chunk()
                self.entry(inputs, output)
                return
            # Shard the batch across the pool workers: the plan
            # over-decomposes to ≥ 2 * workers chunks (work stealing for
            # tail imbalance) without shrinking chunks below the
            # vector-profitable size or above the compiled hint (which
            # would regrow every worker arena's high-water mark). Chunk
            # boundaries never change results: the kernels are
            # per-sample, so sharded output is bit-identical to the
            # single-worker run at every chunk/tail size.
            ranges = faults.maybe_overlap_shards(
                plan_chunks(n, sig.batch_size, self.num_threads), n
            )
            if len(ranges) <= 1:
                faults.maybe_delay_chunk()
                self.entry(inputs, output)
                return
            timeline = ShardTimeline()

            def run_chunk(start: int, end: int) -> None:
                faults.maybe_delay_chunk()
                self.entry(inputs[start:end], output[:, start:end])

            try:
                self._executor.run(
                    n,
                    sig.batch_size,
                    run_chunk,
                    retry_policy=self.retry_policy,
                    deadline=deadline,
                    diagnostics=self.diagnostics,
                    ranges=ranges,
                    timeline=timeline,
                )
            finally:
                self.last_timeline = timeline

    @property
    def source(self) -> str:
        """The generated Python source (the "object code" listing)."""
        return self.generated.source

    @property
    def buffer_pool(self):
        """The kernel's reusable temp-buffer pool (observability/tests)."""
        return self.generated.buffer_pool
