"""Loadable compiled kernels: the runtime component.

A :class:`CPUExecutable` wraps the generated kernel entry point; calling
it with a [batch, features] array returns per-sample (log) likelihoods.
The runtime owns output allocation, chunking and multi-threading — the
generated kernel itself processes an arbitrary number of samples
(batch size is only an optimization hint).

Batch-vectorized kernels make the chunk hand-off the unit of
parallelism: each chunk is passed *whole* to the wide kernel as a pair
of array views, every LoSPN op inside runs as one NumPy call over the
full chunk, and NumPy releases the GIL — so the ChunkedExecutor's
worker threads overlap real work. Per-chunk temporaries come from the
generated module's :class:`~repro.runtime.bufferpool.BufferPool`
(thread-local slots), so steady-state execution allocates nothing per
chunk beyond the one output array per call.

Lifecycle: multi-threaded executables own a thread pool. Call
:meth:`CPUExecutable.close` (or use the executable as a context
manager) to release it deterministically; otherwise the pool is
reclaimed with the executable (``__del__``) rather than leaking across
many compile sessions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from ..backends.cpu.codegen import GeneratedModule, numpy_dtype
from ..ir.types import Type
from ..testing import faults
from .threadpool import ChunkedExecutor


@dataclass
class KernelSignature:
    """Shape/type contract of a compiled query kernel."""

    num_features: int
    input_dtype: np.dtype
    result_dtype: np.dtype
    log_space: bool
    batch_size: int
    #: Result rows per sample (1 for a single query; one per head for
    #: multi-head kernels).
    num_results: int = 1


class Executable:
    """Common contract for compiled kernels, regardless of target.

    Every backend executable shares: a :class:`KernelSignature`, a
    ``source`` listing of the generated code, an explicit lifecycle
    (:meth:`close`, context-manager support), and :meth:`execute` with
    uniform input validation, output allocation, fault-injection
    poisoning and single-result squeezing. Subclasses implement
    :meth:`_run` (fill ``output`` from validated ``inputs``) and
    :attr:`source`; :attr:`target` names the backend so callers (the
    API-layer fallback cascade, the differential oracle) never need
    ``isinstance`` checks against concrete classes.
    """

    #: Backend name ("cpu", "gpu", ...), set by each subclass.
    target: str = "unknown"

    def __init__(self, entry_name: str, signature: KernelSignature):
        self.entry_name = entry_name
        self.signature = signature
        self._closed = False

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Release owned resources (idempotent)."""
        self._closed = True

    def __enter__(self) -> "Executable":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    # -- invocation ---------------------------------------------------------------

    def __call__(self, inputs: np.ndarray) -> np.ndarray:
        return self.execute(inputs)

    def execute(self, inputs: np.ndarray) -> np.ndarray:
        """Run the kernel; returns [batch] (log-)likelihoods."""
        if self._closed:
            raise RuntimeError("executable is closed")
        sig = self.signature
        inputs = np.ascontiguousarray(inputs, dtype=sig.input_dtype)
        if inputs.ndim != 2 or inputs.shape[1] != sig.num_features:
            raise ValueError(
                f"expected input of shape [batch, {sig.num_features}], "
                f"got {inputs.shape}"
            )
        output = np.empty((sig.num_results, inputs.shape[0]), dtype=sig.result_dtype)
        self._run(inputs, output)
        if faults.kernel_nan_active():
            # Fault injection: simulate a codegen defect at the generated
            # kernel entry — the output buffer comes back NaN-poisoned.
            output.fill(np.nan)
        return output[0] if sig.num_results == 1 else output

    def _run(self, inputs: np.ndarray, output: np.ndarray) -> None:
        raise NotImplementedError

    @property
    def source(self) -> str:
        """The generated code listing (the "object code")."""
        raise NotImplementedError


class CPUExecutable(Executable):
    """A compiled CPU kernel plus its invocation metadata."""

    target = "cpu"

    def __init__(
        self,
        generated: GeneratedModule,
        entry_name: str,
        signature: KernelSignature,
        num_threads: int = 1,
        max_chunk_retries: int = 0,
    ):
        super().__init__(entry_name, signature)
        self.generated = generated
        self.entry = generated.get(entry_name)
        self.num_threads = num_threads
        #: Bounded per-chunk retry budget for transient execution faults
        #: (0 preserves strict fail-immediately semantics).
        self.max_chunk_retries = max_chunk_retries
        self._executor = ChunkedExecutor(num_threads) if num_threads > 1 else None

    def close(self) -> None:
        """Release the worker thread pool (idempotent)."""
        if self._executor is not None:
            self._executor.close()
            self._executor = None
        super().close()

    def _run(self, inputs: np.ndarray, output: np.ndarray) -> None:
        sig = self.signature
        n = inputs.shape[0]
        # libm semantics for the raw ufuncs in generated code: log(0) is
        # -inf, exp overflow is inf — never a warning or exception.
        with np.errstate(all="ignore"):
            if self._executor is None or n <= sig.batch_size:
                self.entry(inputs, output)
            else:
                def run_chunk(start: int, end: int) -> None:
                    self.entry(inputs[start:end], output[:, start:end])

                self._executor.run(
                    n, sig.batch_size, run_chunk, max_retries=self.max_chunk_retries
                )

    @property
    def source(self) -> str:
        """The generated Python source (the "object code" listing)."""
        return self.generated.source

    @property
    def buffer_pool(self):
        """The kernel's reusable temp-buffer pool (observability/tests)."""
        return self.generated.buffer_pool
