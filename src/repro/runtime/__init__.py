"""Runtime component: kernel loading, chunking, multi-threading."""

from .bufferpool import Arena, BufferPool
from .executable import CPUExecutable, Executable, KernelSignature
from .threadpool import (
    MIN_PROFITABLE_CHUNK,
    ChunkedExecutor,
    RetryPolicy,
    ShardRecord,
    ShardTimeline,
    chunk_ranges,
    plan_chunks,
)

__all__ = [
    "Arena",
    "BufferPool",
    "CPUExecutable",
    "Executable",
    "KernelSignature",
    "ChunkedExecutor",
    "MIN_PROFITABLE_CHUNK",
    "RetryPolicy",
    "ShardRecord",
    "ShardTimeline",
    "chunk_ranges",
    "plan_chunks",
]
