"""Runtime component: kernel loading, chunking, multi-threading."""

from .executable import CPUExecutable, KernelSignature
from .threadpool import ChunkedExecutor, chunk_ranges

__all__ = ["CPUExecutable", "KernelSignature", "ChunkedExecutor", "chunk_ranges"]
