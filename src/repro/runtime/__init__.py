"""Runtime component: kernel loading, chunking, multi-threading."""

from .bufferpool import BufferPool
from .executable import CPUExecutable, KernelSignature
from .threadpool import ChunkedExecutor, chunk_ranges

__all__ = [
    "BufferPool",
    "CPUExecutable",
    "KernelSignature",
    "ChunkedExecutor",
    "chunk_ranges",
]
