"""Runtime component: kernel loading, chunking, multi-threading."""

from .bufferpool import BufferPool
from .executable import CPUExecutable, Executable, KernelSignature
from .threadpool import ChunkedExecutor, chunk_ranges

__all__ = [
    "BufferPool",
    "CPUExecutable",
    "Executable",
    "KernelSignature",
    "ChunkedExecutor",
    "chunk_ranges",
]
