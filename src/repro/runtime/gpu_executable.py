"""GPU executable: host function + simulator + timing profile.

Multi-stream pipelining (paper Fig. 9): the serialized H2D→kernel→D2H
timeline spends >60 % of execution in transfers. With ``streams > 1``
the executable splits the batch into chunks and issues each chunk's
host sequence on a round-robin stream; the analytic device model then
overlaps chunk *i+1*'s host→device copy (copy engine) with chunk *i*'s
kernels (compute engine), the classic CUDA software pipeline. Results
are bit-identical to the single-stream run — kernels are per-sample and
chunk boundaries do not change arithmetic — only the *reported* timing
changes: ``last_profile.makespan_seconds`` (what
:meth:`simulated_seconds` returns) reflects the overlapped schedule,
while ``serialized_seconds`` keeps the single-timeline view for
comparison, and ``overlap_fraction`` says how much of the serialized
transfer time the pipeline reclaimed.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..backends.cpu.codegen import GeneratedModule
from ..diagnostics import DeviceError, Diagnostic, ErrorCode, Severity
from ..gpusim.device import ExecutionProfile, OutOfDeviceMemory
from ..gpusim.simulator import GPUSimulator
from .executable import Executable, KernelSignature
from .threadpool import plan_chunks

#: Below this many rows per chunk, per-transfer latency and per-launch
#: overhead stop amortizing; the pipeline never slices finer.
MIN_PIPELINE_ROWS = 256


class GPUExecutable(Executable):
    """A compiled GPU kernel: host coordination code driving the simulator.

    Calling it returns the (log-)likelihoods, computed with real NumPy
    arithmetic (bit-compatible with the CPU backend). Timing comes from
    the device model and is exposed via :attr:`last_profile` /
    :meth:`simulated_seconds` — wall-clock time of the call itself is the
    *host* cost of driving the simulator and is not the number the
    benchmarks report.
    """

    target = "gpu"

    def __init__(
        self,
        host: GeneratedModule,
        kernels: GeneratedModule,
        entry_name: str,
        signature: KernelSignature,
        simulator: GPUSimulator,
        streams: int = 1,
    ):
        super().__init__(entry_name, signature)
        if streams < 1:
            raise ValueError("streams must be >= 1")
        self.host = host
        self.kernels = kernels
        self.entry = host.get(entry_name)
        self.simulator = simulator
        #: Number of concurrent device streams the software pipeline
        #: issues chunks on (1 = the historic serialized execution).
        self.streams = streams
        self.last_profile: Optional[ExecutionProfile] = None
        #: Chunk count of the most recent pipelined execution (1 when
        #: the batch ran unsliced).
        self.last_pipeline_chunks = 0

    def _run(
        self, inputs: np.ndarray, output: np.ndarray, deadline: Optional[float] = None
    ) -> None:
        # ``deadline`` is accepted for interface uniformity; the simulated
        # device launch is not chunk-schedulable, so it cannot be cut short.
        self.simulator.reset_profile()
        try:
            # Like the CPU executable: -inf log probabilities flow through
            # guarded log-sum-exp/select chains, so FP warnings are
            # expected and suppressed (NaN *results* are still a defect,
            # caught by the fallback layer's output validation).
            with np.errstate(all="ignore"):
                ranges = self._pipeline_plan(inputs.shape[0])
                if len(ranges) <= 1:
                    self.last_pipeline_chunks = 1
                    self.entry(inputs, output)
                else:
                    self.last_pipeline_chunks = len(ranges)
                    simulator = self.simulator
                    for index, (start, end) in enumerate(ranges):
                        stream = simulator.stream(index % self.streams)
                        with simulator.use_stream(stream):
                            self.entry(inputs[start:end], output[:, start:end])
        except OutOfDeviceMemory as error:
            # The simulator already exhausted its halved-block-size retry
            # budget; surface a structured device error so the fallback
            # cascade (GPU -> CPU kernel -> interpreter) can take over.
            raise DeviceError(
                f"device out of memory executing '{self.entry_name}': {error}",
                diagnostic=Diagnostic(
                    severity=Severity.ERROR,
                    code=ErrorCode.DEVICE_OOM,
                    message=str(error),
                    stage="gpu-execute",
                    target="gpu",
                ),
            ) from error
        self.last_profile = self.simulator.profile

    def _pipeline_plan(self, total: int):
        """Chunk plan for the software pipeline: ≥2 chunks per stream so
        the copy engine always has a next chunk to prefetch while the
        compute engine drains the current one, without slicing below
        :data:`MIN_PIPELINE_ROWS` (where per-op overhead dominates)."""
        if self.streams <= 1 or total <= MIN_PIPELINE_ROWS:
            return [(0, total)] if total else []
        return plan_chunks(
            total, total, self.streams, min_chunk=MIN_PIPELINE_ROWS
        )

    def simulated_seconds(self) -> float:
        """Simulated device time of the most recent execution: the
        overlapped makespan (equal to the serialized sum when running
        on a single stream)."""
        if self.last_profile is None:
            raise RuntimeError("no execution has been profiled yet")
        return self.last_profile.makespan_seconds

    @property
    def source(self) -> str:
        return self.host.source + "\n# --- device kernels ---\n" + self.kernels.source
