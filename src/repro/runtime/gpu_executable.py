"""GPU executable: host function + simulator + timing profile."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..backends.cpu.codegen import GeneratedModule
from ..diagnostics import DeviceError, Diagnostic, ErrorCode, Severity
from ..gpusim.device import ExecutionProfile, OutOfDeviceMemory
from ..gpusim.simulator import GPUSimulator
from .executable import Executable, KernelSignature


class GPUExecutable(Executable):
    """A compiled GPU kernel: host coordination code driving the simulator.

    Calling it returns the (log-)likelihoods, computed with real NumPy
    arithmetic (bit-compatible with the CPU backend). Timing comes from
    the device model and is exposed via :attr:`last_profile` /
    :meth:`simulated_seconds` — wall-clock time of the call itself is the
    *host* cost of driving the simulator and is not the number the
    benchmarks report.
    """

    target = "gpu"

    def __init__(
        self,
        host: GeneratedModule,
        kernels: GeneratedModule,
        entry_name: str,
        signature: KernelSignature,
        simulator: GPUSimulator,
    ):
        super().__init__(entry_name, signature)
        self.host = host
        self.kernels = kernels
        self.entry = host.get(entry_name)
        self.simulator = simulator
        self.last_profile: Optional[ExecutionProfile] = None

    def _run(
        self, inputs: np.ndarray, output: np.ndarray, deadline: Optional[float] = None
    ) -> None:
        # ``deadline`` is accepted for interface uniformity; the simulated
        # device launch is not chunk-schedulable, so it cannot be cut short.
        self.simulator.reset_profile()
        try:
            # Like the CPU executable: -inf log probabilities flow through
            # guarded log-sum-exp/select chains, so FP warnings are
            # expected and suppressed (NaN *results* are still a defect,
            # caught by the fallback layer's output validation).
            with np.errstate(all="ignore"):
                self.entry(inputs, output)
        except OutOfDeviceMemory as error:
            # The simulator already exhausted its halved-block-size retry
            # budget; surface a structured device error so the fallback
            # cascade (GPU -> CPU kernel -> interpreter) can take over.
            raise DeviceError(
                f"device out of memory executing '{self.entry_name}': {error}",
                diagnostic=Diagnostic(
                    severity=Severity.ERROR,
                    code=ErrorCode.DEVICE_OOM,
                    message=str(error),
                    stage="gpu-execute",
                    target="gpu",
                ),
            ) from error
        self.last_profile = self.simulator.profile

    def simulated_seconds(self) -> float:
        """Simulated device time of the most recent execution."""
        if self.last_profile is None:
            raise RuntimeError("no execution has been profiled yet")
        return self.last_profile.total_seconds

    @property
    def source(self) -> str:
        return self.host.source + "\n# --- device kernels ---\n" + self.kernels.source
