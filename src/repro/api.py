"""Single-call user API, mirroring SPNC's Python interface.

The paper (Section IV-A1): "The Python interface of the compiler also
allows to start the compilation and execution of the compiled query
directly from Python with as little as a single API call."

Example::

    from repro import CPUCompiler
    log_probs = CPUCompiler(vectorize=True).log_likelihood(spn, inputs)

Compilers cache the compiled kernel per SPN graph, so repeated
``log_likelihood`` calls on the same model only compile once. Cache
entries are keyed by the SPN object identity *plus* a query/option
fingerprint, and are evicted via weak references when the model is
garbage collected — a recycled ``id()`` can never produce a stale hit.
The full exchange path (binary serialization → compiler frontend) is
exercised when ``via_serialization=True``, matching the real
SPFlow↔SPNC hand-off. The cache is thread-safe with *single-flight*
compilation: concurrent requests for the same (model, options) key
compile exactly once — the serving runtime relies on this when many
requests arrive for a freshly published model.

Graceful degradation (``fallback=`` policy): like SPFlow itself, which
always has a correct (slow) interpreter to fall back to, the compilers
can transparently degrade instead of surfacing a compiler or runtime
defect to the caller:

- ``"raise"`` (default): failures propagate as structured
  :class:`~repro.diagnostics.CompilerError`\\ s naming the failing
  pass/stage, with a reproducer dumped to the artifact directory.
- ``"interpret"``: on any compile-stage, codegen or execution failure,
  fall back down the cascade — GPU kernel → CPU kernel → reference
  interpreter (:mod:`repro.spn.inference`) — recording diagnostics and
  emitting a single :class:`FallbackWarning` per degraded model.
- ``"warn"``: same cascade, but warns on *every* degraded call instead
  of deduplicating per model.
"""

from __future__ import annotations

import dataclasses
import threading
import warnings
import weakref
from typing import Dict, List, Optional, Tuple

import numpy as np

from .compiler.frontend import parse_binary_query
from .compiler.pipeline import CompilationResult, CompilerOptions, compile_spn
from .diagnostics import (
    Diagnostic,
    DiagnosticLog,
    ErrorCode,
    OptionsError,
    Severity,
    diagnostic_from_exception,
)
from .spn import inference, sampling
from .spn.mpe import mpe as reference_mpe
from .spn.nodes import Node
from .spn.query import (
    ConditionalProbability,
    Expectation,
    JointProbability,
    MPEQuery,
    Query,
    SampleQuery,
)
from .spn.serialization import deserialize, serialize


class FallbackWarning(UserWarning):
    """Emitted when a compiled path degrades to a slower rung."""


def _register_eviction(cache: Dict, lock: threading.Lock, spns: Tuple, key) -> None:
    """Evict ``key`` from ``cache`` when any of its SPNs is collected.

    This is what makes identity-based cache keys safe: after the model
    dies, its entry disappears before CPython can recycle the ``id()``
    for an unrelated object. Eviction takes the cache lock so it cannot
    interleave with a concurrent lookup/insert of the same key.
    """

    def evict(_cache=cache, _lock=lock, _key=key):
        with _lock:
            _cache.pop(_key, None)

    for spn in spns:
        try:
            weakref.finalize(spn, evict)
        except TypeError:  # pragma: no cover - non-weakrefable model object
            pass


class _CompileFlight:
    """Single-flight slot: one leader compiles, followers wait on it."""

    def __init__(self):
        self.done = threading.Event()
        self.result: Optional[CompilationResult] = None
        self.error: Optional[BaseException] = None


class _CompilerBase:
    """Shared compile-and-cache behaviour of the CPU/GPU entry points."""

    target = "cpu"

    def __init__(
        self,
        batch_size: int = 4096,
        support_marginal: bool = False,
        opt_level: int = 1,
        max_partition_size: Optional[int] = None,
        use_log_space: bool = True,
        via_serialization: bool = False,
        fallback: str = "raise",
        artifact_dir: Optional[str] = None,
        **target_options,
    ):
        if fallback not in ("raise", "interpret", "warn"):
            raise OptionsError(
                f"unknown fallback policy '{fallback}' "
                "(expected 'raise', 'interpret' or 'warn')"
            )
        self.batch_size = batch_size
        self.support_marginal = support_marginal
        self.opt_level = opt_level
        self.max_partition_size = max_partition_size
        self.use_log_space = use_log_space
        self.via_serialization = via_serialization
        self.fallback = fallback
        self.artifact_dir = artifact_dir
        self.target_options = target_options
        #: Structured record of every failure/degradation this compiler
        #: instance observed (see :class:`repro.diagnostics.Diagnostic`).
        self.diagnostics = DiagnosticLog()
        # The compile cache is shared by concurrent server threads:
        # ``_cache_lock`` guards the dict (and weakref eviction), and
        # ``_inflight`` provides single-flight compilation — concurrent
        # requests for the same (model, options) key compile once, with
        # followers blocking on the leader's result.
        self._cache: Dict[tuple, CompilationResult] = {}
        self._cache_lock = threading.Lock()
        self._inflight: Dict[tuple, _CompileFlight] = {}
        self._warned_keys = set()

    # -- configuration -----------------------------------------------------------

    def _options(self, target: Optional[str] = None) -> CompilerOptions:
        return CompilerOptions(
            target=target or self.target,
            opt_level=self.opt_level,
            max_partition_size=self.max_partition_size,
            use_log_space=self.use_log_space,
            fallback=self.fallback,
            artifact_dir=self.artifact_dir,
            **self.target_options,
        )

    def _default_query(self) -> JointProbability:
        return JointProbability(
            batch_size=self.batch_size, support_marginal=self.support_marginal
        )

    def _query_for(
        self, inputs: np.ndarray, query: Optional[Query] = None
    ) -> Query:
        """The query to compile for a concrete input batch.

        NaN evidence always means "marginalize this feature out" — the
        semantics of the reference evaluator and of SPFlow. A kernel
        compiled without marginal support treats its inputs as fully
        observed and would propagate NaN (Gaussian) or zero probability
        (discrete leaves) instead, so when a batch contains NaN evidence
        the API transparently routes it to a marginal-supporting kernel
        (a separate cache entry; fully-observed batches keep using the
        cheaper non-marginal kernel).

        Only *joint* queries are rerouted. The other modalities define
        their own NaN semantics intrinsically — MPE completes missing
        features, sampling draws them, conditional kernels always
        marginalize NaN *evidence* (a NaN *query* feature is a
        structured ``QUERY_NAN`` error at execute time, never a silent
        marginal), and expectations take the posterior moment — so
        flipping them to a marginal joint kernel would silently compute
        the wrong query.
        """
        query = query if query is not None else self._default_query()
        if (
            query.kind == "joint"
            and not query.support_marginal
            and np.isnan(np.min(inputs))
        ):
            query = dataclasses.replace(query, support_marginal=True)
        return query

    # -- caching -----------------------------------------------------------------

    @staticmethod
    def _as_tuple(spn) -> Tuple[Node, ...]:
        return tuple(spn) if isinstance(spn, (list, tuple)) else (spn,)

    def _fingerprint(self, query: Query, target: str) -> tuple:
        # Normalize through CompilerOptions so equivalent spellings (e.g.
        # vectorize=True vs "lanes") share a cache entry while any change
        # to the vectorization mode/width/veclib configuration — or any
        # other kernel-affecting option — recompiles instead of returning
        # a stale kernel. The query contributes its kind plus every
        # descriptor field (covering kind-specific fields such as
        # ``query_variables`` and ``moment``), so e.g. conditionals over
        # different variable sets never share a kernel.
        options_key = self._options(target).cache_fingerprint()
        return (
            options_key,
            self.via_serialization,
            query.kind,
            dataclasses.astuple(query),
        )

    def _cache_key(self, spn, query: Query, target: str) -> tuple:
        ids = tuple(id(s) for s in self._as_tuple(spn))
        return (ids, self._fingerprint(query, target))

    def compile(self, spn, query: Optional[Query] = None) -> CompilationResult:
        """Compile (or fetch the cached kernel for) an SPN.

        ``spn`` may also be a list of class SPNs: they compile into a
        single multi-head kernel sharing common sub-DAGs, whose
        executable returns a ``[num_heads, batch]`` matrix.
        """
        return self._compile_cached(spn, query, self.target)

    def _compile_cached(
        self, spn, query: Optional[Query], target: str
    ) -> CompilationResult:
        query = query or self._default_query()
        key = self._cache_key(spn, query, target)
        with self._cache_lock:
            cached = self._cache.get(key)
            if cached is not None:
                return cached
            flight = self._inflight.get(key)
            leader = flight is None
            if leader:
                flight = self._inflight[key] = _CompileFlight()
        if not leader:
            # Another thread is already compiling this exact kernel:
            # wait for it instead of compiling twice (single-flight).
            flight.done.wait()
            if flight.error is not None:
                raise flight.error
            return flight.result
        try:
            compile_input = spn
            if self.via_serialization and not isinstance(spn, (list, tuple)):
                # Round-trip through the binary exchange format, as the real
                # SPFlow -> SPNC hand-off does.
                compile_input, query = deserialize(serialize(spn, query))
            result = compile_spn(compile_input, query, self._options(target))
        except BaseException as error:
            flight.error = error
            raise
        else:
            flight.result = result
            with self._cache_lock:
                self._cache[key] = result
            _register_eviction(self._cache, self._cache_lock, self._as_tuple(spn), key)
            return result
        finally:
            with self._cache_lock:
                self._inflight.pop(key, None)
            flight.done.set()

    # -- execution with graceful degradation --------------------------------------

    def log_likelihood(self, spn, inputs: np.ndarray) -> np.ndarray:
        """Compile (cached) and execute a joint/marginal query.

        Returns log likelihoods when compiling in log space (default),
        linear probabilities otherwise. For a list of SPNs, the result
        is a ``[num_heads, batch]`` matrix from one multi-head kernel.

        NaN evidence marks a feature as marginalized out (matching the
        reference evaluator): batches containing NaN are automatically
        served by a marginal-supporting kernel even when the compiler
        was constructed with ``support_marginal=False``.

        With ``fallback="interpret"`` / ``"warn"``, any failure in the
        compile/execute path degrades down the cascade (GPU kernel →
        CPU kernel → reference interpreter) instead of raising.
        """
        inputs = np.asarray(inputs)
        query = self._query_for(inputs)
        return self._run(spn, inputs, query)

    def mpe(self, spn, evidence: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Most Probable Explanation: complete NaN features, score the result.

        Returns ``(completions, scores)``: ``completions`` is the input
        with every NaN feature replaced by its most probable value given
        the observed evidence (``[batch, num_features]``, float64;
        observed values pass through bit-exactly), and ``scores`` is the
        max-product log score of each completed row (``[batch]``).
        """
        evidence = np.asarray(evidence)
        output = self._run(spn, evidence, MPEQuery(batch_size=self.batch_size))
        return output[1:].T, output[0]

    def sample(self, spn, evidence: np.ndarray, seed: int = 0) -> np.ndarray:
        """Seeded ancestral sampling of NaN features, conditioned on the rest.

        Observed (non-NaN) features pass through bit-exactly; NaN
        features are drawn from the SPN posterior given the evidence (an
        all-NaN row draws an unconditional sample). The same ``seed``
        reproduces the same samples on the same compiled kernel; the
        seed is an execute-time parameter, so no recompile per run.
        Returns ``[batch, num_features]`` float64.
        """
        evidence = np.asarray(evidence)
        output = self._run(
            spn, evidence, SampleQuery(batch_size=self.batch_size), seed=seed
        )
        return output.T

    def conditional_log_likelihood(
        self, spn, inputs: np.ndarray, query_variables
    ) -> np.ndarray:
        """``log P(Q = q | E = e)`` for a fixed query-variable set.

        ``query_variables`` indexes the features interpreted as the
        query; all remaining features are evidence. Evidence NaNs are
        marginalized; a NaN on a *query* feature raises a structured
        :class:`~repro.diagnostics.ExecutionError` (code
        ``query-variable-nan``) rather than silently marginalizing.
        Rows with zero-probability evidence yield NaN. Returns
        ``[batch]`` log conditionals.
        """
        inputs = np.asarray(inputs)
        query = ConditionalProbability(
            batch_size=self.batch_size, query_variables=tuple(query_variables)
        )
        return self._run(spn, inputs, query)

    def expectation(self, spn, evidence: np.ndarray, moment: int = 1) -> np.ndarray:
        """Posterior raw moments ``E[X_v^m | e]`` per row and feature.

        Observed features return their value raised to the ``moment``-th
        power; NaN features return the posterior moment given the
        remaining evidence. Features outside the model scope and rows of
        zero-probability evidence come back NaN. Returns
        ``[batch, num_features]`` float64.
        """
        evidence = np.asarray(evidence)
        output = self._run(
            spn, evidence, Expectation(batch_size=self.batch_size, moment=moment)
        )
        return output.T

    def classify(self, spns, inputs: np.ndarray) -> np.ndarray:
        """Arg-max classification over per-class SPNs (one shared kernel)."""
        scores = self.log_likelihood(list(spns), inputs)
        return np.argmax(scores, axis=0)

    def _run(
        self, spn, inputs: np.ndarray, query: Query, seed: Optional[int] = None
    ) -> np.ndarray:
        """Compile (cached) + execute, honoring the fallback policy."""
        if self.fallback == "raise":
            result = self._compile_cached(spn, query, self.target)
            return self._execute(result, inputs, query, seed)
        return self._degradable_run(spn, inputs, query, seed)

    @staticmethod
    def _execute(
        result: CompilationResult,
        inputs: np.ndarray,
        query: Query,
        seed: Optional[int],
    ) -> np.ndarray:
        if query.kind == "sample":
            return result.executable.execute(inputs, seed=seed)
        return result.executable(inputs)

    def _degradable_run(
        self, spn, inputs: np.ndarray, query: Query, seed: Optional[int] = None
    ) -> np.ndarray:
        cascade = ["gpu", "cpu"] if self.target == "gpu" else ["cpu"]
        failures: List[Diagnostic] = []
        for rung, target in enumerate(cascade):
            try:
                result = self._compile_cached(spn, query, target)
                output = self._execute(result, inputs, query, seed)
                self._check_output(output, query, target)
            except Exception as error:
                if self._is_caller_error(error):
                    # Malformed input (e.g. NaN on a conditional query
                    # variable) is the caller's bug, not a compiler
                    # defect: degrading to a slower rung cannot fix it,
                    # so surface the structured error immediately.
                    raise
                failures.append(self._record_failure(error, target))
                continue
            if rung > 0:
                self._announce_fallback(spn, failures, landed=f"{target} kernel")
            return output
        output = self._interpret(spn, inputs, query, seed)
        self._announce_fallback(spn, failures, landed="reference interpreter")
        return output

    @staticmethod
    def _is_caller_error(error: BaseException) -> bool:
        diagnostic = getattr(error, "diagnostic", None)
        return diagnostic is not None and diagnostic.code == ErrorCode.QUERY_NAN

    def _check_output(self, output: np.ndarray, query: Query, target: str) -> None:
        """Reject NaN kernel results (a codegen/runtime defect signal).

        -inf is a legitimate log probability of zero; NaN never is —
        even for marginal queries, NaN *inputs* must not leak through to
        the result. Conditionals and expectations are exempt: there NaN
        is a defined answer (zero-probability evidence, features outside
        the model scope). Only consulted on the degradable path,
        preserving strict ``fallback="raise"`` semantics.
        """
        if query.kind in ("conditional", "expectation"):
            return
        if np.isnan(output).any():
            from .diagnostics import ExecutionError

            raise ExecutionError(
                f"compiled {target} kernel produced NaN results",
                diagnostic=Diagnostic(
                    severity=Severity.ERROR,
                    code=ErrorCode.KERNEL_NAN,
                    message=f"compiled {target} kernel produced NaN results",
                    stage="execute",
                    target=target,
                ),
            )

    def _record_failure(self, error: BaseException, target: str) -> Diagnostic:
        diagnostic = diagnostic_from_exception(
            error, code=ErrorCode.EXECUTION_FAILED, target=target
        )
        self.diagnostics.emit(diagnostic)
        return diagnostic

    def _interpret(
        self, spn, inputs: np.ndarray, query: Query, seed: Optional[int] = None
    ) -> np.ndarray:
        """Reference-evaluator rung, shaped like the compiled kernel output."""
        data = np.asarray(inputs, dtype=np.float64)
        if query.kind == "mpe":
            completions, scores = reference_mpe(spn, data)
            if not self.use_log_space:
                scores = np.exp(scores)
            return np.concatenate([scores[None, :], completions.T], axis=0)
        if query.kind == "sample":
            rng = np.random.default_rng(0 if seed is None else seed)
            return sampling.conditional_sample(spn, data, rng).T
        if query.kind == "conditional":
            return inference.conditional_log_likelihood(
                spn, data, query.query_variables
            )
        if query.kind == "expectation":
            return inference.expectation(spn, data, moment=query.moment).T
        if isinstance(spn, (list, tuple)):
            output = np.stack(
                [inference.log_likelihood(s, data) for s in spn], axis=0
            )
        else:
            output = inference.log_likelihood(spn, data)
        return output if self.use_log_space else np.exp(output)

    def _announce_fallback(
        self, spn, failures: List[Diagnostic], landed: str
    ) -> None:
        first = failures[0] if failures else None
        where = ""
        if first is not None:
            stage = first.stage or first.pass_name
            if stage:
                where = f" (failed at '{stage}')"
        message = (
            f"{type(self).__name__}: compiled execution degraded to the "
            f"{landed}{where}; results remain correct but slower. "
            f"See .diagnostics for details."
        )
        self.diagnostics.emit(
            Diagnostic(
                severity=Severity.WARNING,
                code=(
                    ErrorCode.FALLBACK_INTERPRETER
                    if "interpreter" in landed
                    else ErrorCode.FALLBACK_CPU
                ),
                message=message,
                stage=first.stage if first else None,
                pass_name=first.pass_name if first else None,
                target=self.target,
                detail={"landed": landed, "failures": len(failures)},
            )
        )
        ids = tuple(id(s) for s in self._as_tuple(spn))
        if self.fallback == "interpret" and ids in self._warned_keys:
            return
        self._warned_keys.add(ids)
        warnings.warn(message, FallbackWarning, stacklevel=3)


class CPUCompiler(_CompilerBase):
    """Compile SPN queries to (simulated-ISA) CPU kernels.

    Keyword options beyond the shared ones: ``vectorize``,
    ``vector_isa`` ("avx2" / "avx512" / "neon"), ``use_vector_library``,
    ``use_shuffle``, ``num_threads``, ``superword_factor``.
    """

    target = "cpu"


class GPUCompiler(_CompilerBase):
    """Compile SPN queries to kernels for the simulated CUDA GPU.

    Extra keyword options: ``gpu_block_size`` (defaults to the query
    batch size, as in the paper) and ``streams`` (device streams for the
    chunked transfer/compute software pipeline; 1 = serialized).
    """

    target = "gpu"

    def simulated_seconds(self, spn) -> float:
        """Simulated device time of the most recent execution for ``spn``.

        Accepts a single SPN or the same list of SPNs that was compiled
        into a multi-head kernel.
        """
        ids = tuple(id(s) for s in self._as_tuple(spn))
        result = None
        for (key_ids, _fingerprint), cached in self._cache.items():
            if key_ids == ids and cached.executable.target == "gpu":
                result = cached
                break
        if result is None:
            raise RuntimeError("compile and execute the SPN first")
        return result.executable.simulated_seconds()
