"""Single-call user API, mirroring SPNC's Python interface.

The paper (Section IV-A1): "The Python interface of the compiler also
allows to start the compilation and execution of the compiled query
directly from Python with as little as a single API call."

Example::

    from repro import CPUCompiler
    log_probs = CPUCompiler(vectorize=True).log_likelihood(spn, inputs)

Compilers cache the compiled kernel per SPN graph, so repeated
``log_likelihood`` calls on the same model only compile once. The full
exchange path (binary serialization → compiler frontend) is exercised
when ``via_serialization=True``, matching the real SPFlow↔SPNC hand-off.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from .compiler.frontend import parse_binary_query
from .compiler.pipeline import CompilationResult, CompilerOptions, compile_spn
from .spn.nodes import Node
from .spn.query import JointProbability
from .spn.serialization import deserialize, serialize


class _CompilerBase:
    """Shared compile-and-cache behaviour of the CPU/GPU entry points."""

    target = "cpu"

    def __init__(
        self,
        batch_size: int = 4096,
        support_marginal: bool = False,
        opt_level: int = 1,
        max_partition_size: Optional[int] = None,
        use_log_space: bool = True,
        via_serialization: bool = False,
        **target_options,
    ):
        self.batch_size = batch_size
        self.support_marginal = support_marginal
        self.opt_level = opt_level
        self.max_partition_size = max_partition_size
        self.use_log_space = use_log_space
        self.via_serialization = via_serialization
        self.target_options = target_options
        self._cache: Dict[int, CompilationResult] = {}

    def _options(self) -> CompilerOptions:
        return CompilerOptions(
            target=self.target,
            opt_level=self.opt_level,
            max_partition_size=self.max_partition_size,
            use_log_space=self.use_log_space,
            **self.target_options,
        )

    def compile(self, spn, query: Optional[JointProbability] = None) -> CompilationResult:
        """Compile (or fetch the cached kernel for) an SPN.

        ``spn`` may also be a list of class SPNs: they compile into a
        single multi-head kernel sharing common sub-DAGs, whose
        executable returns a ``[num_heads, batch]`` matrix.
        """
        key = (
            tuple(id(s) for s in spn) if isinstance(spn, (list, tuple)) else id(spn)
        )
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        query = query or JointProbability(
            batch_size=self.batch_size, support_marginal=self.support_marginal
        )
        if self.via_serialization and not isinstance(spn, (list, tuple)):
            # Round-trip through the binary exchange format, as the real
            # SPFlow -> SPNC hand-off does.
            spn, query = deserialize(serialize(spn, query))
        result = compile_spn(spn, query, self._options())
        self._cache[key] = result
        return result

    def log_likelihood(self, spn, inputs: np.ndarray) -> np.ndarray:
        """Compile (cached) and execute a joint/marginal query.

        Returns log likelihoods when compiling in log space (default),
        linear probabilities otherwise. For a list of SPNs, the result
        is a ``[num_heads, batch]`` matrix from one multi-head kernel.
        """
        result = self.compile(spn)
        return result.executable(np.asarray(inputs))

    def classify(self, spns, inputs: np.ndarray) -> np.ndarray:
        """Arg-max classification over per-class SPNs (one shared kernel)."""
        scores = self.log_likelihood(list(spns), inputs)
        return np.argmax(scores, axis=0)


class CPUCompiler(_CompilerBase):
    """Compile SPN queries to (simulated-ISA) CPU kernels.

    Keyword options beyond the shared ones: ``vectorize``,
    ``vector_isa`` ("avx2" / "avx512" / "neon"), ``use_vector_library``,
    ``use_shuffle``, ``num_threads``, ``superword_factor``.
    """

    target = "cpu"


class GPUCompiler(_CompilerBase):
    """Compile SPN queries to kernels for the simulated CUDA GPU.

    Extra keyword option: ``gpu_block_size`` (defaults to the query batch
    size, as in the paper).
    """

    target = "gpu"

    def simulated_seconds(self, spn: Node) -> float:
        """Simulated device time of the most recent execution for ``spn``."""
        result = self._cache.get(id(spn))
        if result is None:
            raise RuntimeError("compile and execute the SPN first")
        return result.executable.simulated_seconds()
