"""Declarative target registry: (target, opt_level, options) → pipeline.

The paper structures SPNC as a target-independent pass sequence followed
by a per-target lowering leg (Section IV). This module captures that
declaratively: a :class:`Target` maps a
:class:`~repro.compiler.pipeline.CompilerOptions` to *one* textual
pipeline spec — buildable by :func:`repro.ir.pipeline_spec.build_pipeline`
and runnable by one :class:`~repro.ir.passes.PassManager` — plus the
codegen step that turns the fully lowered module into an executable.

The -O ladders live in one table (:data:`CLEANUP_LADDER`) shared by
both legs, so CPU and GPU cleanup sequences cannot silently drift.

Adding a backend means: register its lowering stage as a pass
(:mod:`repro.compiler.stages`), subclass :class:`Target` with a
``target_leg`` and a ``codegen``, and call :func:`register_target` —
the driver, CLI (``--print-pipeline`` / ``--pipeline``), caching and
fallback machinery pick it up from the registry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

from ..ir.pipeline_spec import pass_spec
from ..spn.query import JointProbability
from .stages import CPULoweringPass, GPULoweringPass, KernelInfo  # noqa: F401

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..ir.passes import Pass, PassManager
    from .pipeline import CompilerOptions

#: Cleanup passes added *at* each optimization level (cumulative): -O1
#: runs the full canonicalize/CSE/LICM/DCE sweep after target lowering,
#: -O2 adds a second canonicalize+CSE round, -O3 one more greedy
#: canonicalization (Section V-B1). Shared by every target leg.
CLEANUP_LADDER: Dict[int, tuple] = {
    1: ("canonicalize", "cse", "licm", "dce"),
    2: ("canonicalize", "cse"),
    3: ("canonicalize",),
}


def cleanup_passes(opt_level: int, licm: bool = True) -> List[str]:
    """The post-lowering cleanup sequence for an optimization level.

    ``licm=False`` drops loop-invariant code motion (the GPU leg's
    host/device structure has no hoistable loops).
    """
    names: List[str] = []
    for level in sorted(CLEANUP_LADDER):
        if opt_level < level:
            break
        for name in CLEANUP_LADDER[level]:
            if name == "licm" and not licm:
                continue
            names.append(name)
    return names


def _explicit(values: Dict[str, object], defaults: Dict[str, object]) -> Dict[str, object]:
    """Keep only options that deviate from the pass's defaults, so the
    printed pipeline stays minimal and stable."""
    return {
        key: value for key, value in values.items() if defaults.get(key) != value
    }


def structure_pipeline(options: "CompilerOptions") -> List[str]:
    """The structure-level optimization leg (architecture §17).

    Resolved from ``CompilerOptions.structure_passes()``: -O3 enables
    CSE + pruning by default, compression is opt-in via
    ``structure_opt``. Lossy passes split ``accuracy_budget`` evenly;
    the per-pass share is printed only when non-zero so the default
    pipelines stay minimal.
    """
    share = options.structure_budget_share()
    items: List[str] = []
    for name in options.structure_passes():
        if name == "cse":
            items.append("structure-cse")
        else:
            items.append(
                pass_spec(
                    f"structure-{name}",
                    _explicit({"accuracy_budget": share}, {"accuracy_budget": 0.0}),
                )
            )
    return items


def common_pipeline(options: "CompilerOptions") -> List[str]:
    """The target-independent leg (Section IV-A) as pipeline elements."""
    items = ["frontend"]
    if options.opt_level >= 1:
        items.append("hispn-simplify")
    items.extend(structure_pipeline(options))
    items.append(
        pass_spec(
            "lower-to-lospn",
            {} if options.use_log_space else {"use_log_space": False},
        )
    )
    if options.opt_level >= 3:
        items.append("lospn-cse")
    if options.max_partition_size is not None:
        items.append(
            pass_spec(
                "partition", {"max_partition_size": options.max_partition_size}
            )
        )
    if options.opt_level >= 3:
        items.append("balance-chains")
    items.append("bufferize")
    if options.opt_level >= 1:
        items.append("buffer-optimization")
    items.append("buffer-deallocation")
    return items


@dataclass(frozen=True)
class TargetSpec:
    """Declarative facts about a compilation target."""

    name: str
    description: str
    #: Registry name of the target-lowering pass; also the name of the
    #: final analysis checkpoint (phase="final") before codegen.
    lowering_pass: str
    #: Timing key of the codegen step in ``CompilationResult.stage_seconds``.
    codegen_stage: str
    #: Whether the cleanup ladder includes loop-invariant code motion.
    uses_licm: bool = True


class Target:
    """A compilation target: declarative pipeline + codegen step."""

    spec: TargetSpec

    @property
    def name(self) -> str:
        return self.spec.name

    # -- pipeline construction ------------------------------------------------------

    def pipeline(
        self,
        options: "CompilerOptions",
        query: Optional[JointProbability] = None,
    ) -> str:
        """The full textual pipeline spec for this configuration."""
        query = query or JointProbability()
        return ",".join(common_pipeline(options) + self.target_leg(options, query))

    def target_leg(
        self, options: "CompilerOptions", query: JointProbability
    ) -> List[str]:
        raise NotImplementedError

    # -- execution ------------------------------------------------------------------

    def install_checkpoints(self, manager: "PassManager") -> None:
        """Register the analysis checkpoints the old imperative driver
        ran at dialect boundaries: after the LoSPN tensor leg, after
        dealloc insertion, and (phase="final") after the last pass."""
        passes = manager.passes
        for index, pass_ in enumerate(passes):
            if pass_.name == "bufferize" and index > 0:
                manager.checkpoint_after(index - 1, "lower-to-lospn", "mid")
            elif pass_.name == "buffer-deallocation":
                manager.checkpoint_after(index, "buffer-deallocation", "mid")
        if passes:
            manager.checkpoint_after(
                len(passes) - 1, self.spec.lowering_pass, "final"
            )

    def lowering_info(self, passes: "List[Pass]") -> KernelInfo:
        """The :class:`KernelInfo` captured by the target-lowering pass."""
        for pass_ in passes:
            info = getattr(pass_, "kernel_info", None)
            if info is not None:
                return info
        raise ValueError(
            f"pipeline contained no {self.spec.lowering_pass} stage; "
            "cannot generate code without a target lowering"
        )

    def codegen(
        self,
        module,
        passes: "List[Pass]",
        options: "CompilerOptions",
        query: JointProbability,
    ):
        """Turn the fully lowered module into an executable."""
        raise NotImplementedError

    def _signature(self, info: KernelInfo, query: JointProbability):
        from ..runtime.executable import KernelSignature

        return KernelSignature(
            num_features=info.num_features,
            input_dtype=info.input_dtype,
            result_dtype=info.result_dtype,
            log_space=info.log_space,
            batch_size=query.batch_size,
            num_results=info.num_results,
        )


class CPUTarget(Target):
    """CPU leg (Section IV-B): vectorizing lowering + NumPy codegen."""

    spec = TargetSpec(
        name="cpu",
        description="vectorized CPU kernels (Section IV-B)",
        lowering_pass="cpu-lowering",
        codegen_stage="codegen",
        uses_licm=True,
    )

    def target_leg(
        self, options: "CompilerOptions", query: JointProbability
    ) -> List[str]:
        items = []
        if options.partition_parallel:
            # Opt-in: prove task disjointness and attach the wave
            # schedule before the tasks are lowered away.
            items.append("parallelize-partitions")
        items.append(
            pass_spec(
                "cpu-lowering",
                _explicit(
                    {
                        "vectorize": options.vectorize,
                        "vector_isa": options.vector_isa,
                        "use_vector_library": options.use_vector_library,
                        "use_shuffle": options.use_shuffle,
                        "superword_factor": options.superword_factor,
                    },
                    CPULoweringPass.defaults,
                ),
            )
        )
        items.extend(cleanup_passes(options.opt_level, licm=self.spec.uses_licm))
        return items

    def codegen(self, module, passes, options, query):
        from ..backends.cpu.codegen import generate_cpu_module
        from ..runtime.executable import CPUExecutable

        info = self.lowering_info(passes)
        # Scratch (out=) register reuse: at -O2+ for fixed-lane vectors,
        # and already at -O1 for batch vectors — whole-chunk scratch
        # reuse keeps the batch kernel allocation-free in steady state.
        mode = next(
            (p.vectorize for p in passes if isinstance(p, CPULoweringPass)),
            options.vectorize,
        )
        reuse_registers = (mode == "lanes" and options.opt_level >= 2) or (
            mode == "batch" and options.opt_level >= 1
        )
        generated = generate_cpu_module(
            module, reuse_vector_registers=reuse_registers
        )
        return CPUExecutable(
            generated,
            info.kernel_name,
            self._signature(info, query),
            num_threads=options.num_threads,
            parallel_plan=info.parallel_plan if options.partition_parallel else None,
        )


class GPUTarget(Target):
    """GPU leg (Section IV-C): kernel slicing + simulated device codegen."""

    spec = TargetSpec(
        name="gpu",
        description="GPU kernels on the device simulator (Section IV-C)",
        lowering_pass="gpu-lowering",
        codegen_stage="gpu-codegen",
        uses_licm=False,
    )

    def target_leg(
        self, options: "CompilerOptions", query: JointProbability
    ) -> List[str]:
        block_size = options.gpu_block_size or query.batch_size
        items = [pass_spec("gpu-lowering", {"block_size": block_size})]
        if options.opt_level >= 1:
            items.append("gpu-copy-elimination")
        items.extend(cleanup_passes(options.opt_level, licm=self.spec.uses_licm))
        return items

    def codegen(self, module, passes, options, query):
        from ..backends.gpu.codegen import generate_gpu_module
        from ..gpusim.simulator import GPUSimulator
        from ..runtime.gpu_executable import GPUExecutable

        info = self.lowering_info(passes)
        simulator = GPUSimulator()
        host, kernels = generate_gpu_module(module, simulator)
        return GPUExecutable(
            host,
            kernels,
            info.kernel_name,
            self._signature(info, query),
            simulator,
            streams=options.streams,
        )


_TARGETS: Dict[str, Target] = {}


def register_target(target: Target) -> None:
    if target.name in _TARGETS:
        raise ValueError(f"target '{target.name}' is already registered")
    _TARGETS[target.name] = target


def registered_targets() -> List[str]:
    return sorted(_TARGETS)


def get_target(name: str) -> Target:
    target = _TARGETS.get(name)
    if target is None:
        raise ValueError(
            f"unknown target '{name}'; registered: {', '.join(registered_targets())}"
        )
    return target


register_target(CPUTarget())
register_target(GPUTarget())


__all__ = [
    "CLEANUP_LADDER",
    "CPUTarget",
    "GPUTarget",
    "Target",
    "TargetSpec",
    "cleanup_passes",
    "common_pipeline",
    "structure_pipeline",
    "get_target",
    "register_target",
    "registered_targets",
]
