"""Host↔device copy elimination (paper Section IV-C).

The naive GPU lowering downloads every intermediate task result to its
host buffer and uploads it again before each consuming kernel launch.
Because the lowering keeps a single device twin per host buffer, those
transfer pairs are pure round trips whenever the host itself never reads
the buffer: the data is already resident on the device.

This pass removes all ``gpu.memcpy`` operations whose host-side buffer is
an intermediate (a ``memref.alloc`` in the host function, not a kernel
argument) with no host-compute uses, then erases the now-dead host
allocation. The paper reports this "can remove a significant number of
expensive copy operations" — the ablation benchmark quantifies it.
"""

from __future__ import annotations

from typing import List

from ...dialects import func as func_dialect, gpu as gpu_dialect, memref as memref_dialect
from ...ir import ModuleOp
from ...ir.ops import Operation


def eliminate_host_round_trips(module: ModuleOp) -> int:
    """Remove redundant host↔device transfers; returns #memcpys erased."""
    erased = 0
    for fn in module.body_block.ops:
        if fn.op_name != func_dialect.FuncOp.name:
            continue
        for alloc in list(fn.body_block.ops):
            if alloc.op_name != memref_dialect.AllocOp.name:
                continue
            host_buffer = alloc.results[0]
            users = host_buffer.users
            memcpys: List[Operation] = []
            others: List[Operation] = []
            for user in users:
                if user.op_name == gpu_dialect.MemcpyOp.name:
                    memcpys.append(user)
                elif user.op_name == memref_dialect.DeallocOp.name:
                    others.append(user)
                else:
                    others = None
                    break
            if others is None or not memcpys:
                continue
            for memcpy in memcpys:
                memcpy.erase()
                erased += 1
            for dealloc in others:
                dealloc.erase()
            alloc.erase()
    return erased
