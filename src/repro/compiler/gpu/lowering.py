"""GPU target lowering (paper Section IV-C).

Each ``lo_spn.task`` becomes a ``gpu.func`` kernel computing one sample
per thread; the ``lo_spn.kernel`` becomes a host ``func.func``
coordinating device allocation, host↔device transfers and kernel
launches. Differences from the CPU lowering, following the paper:

- computation is parallelized across threads instead of a batch loop
  (global id = block_id * block_dim + thread_id),
- discrete univariate distributions lower to a **cascade of select
  operations** instead of a table lookup,
- the naive host code copies every intermediate task result back to the
  host and to the device again before the consuming task; the copy
  elimination pass (:mod:`copy_elim`) removes those round trips by
  re-using the device-resident buffer.

The user-provided batch size is used as the constant block size for all
kernel launches (Section V-A1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ...dialects import (
    arith,
    func as func_dialect,
    gpu as gpu_dialect,
    lospn,
    memref as memref_dialect,
)
from ...ir import Builder, ModuleOp
from ...ir.ops import IRError, Operation
from ...ir.types import FloatType, MemRefType, index as index_type
from ...ir.value import Value
from ..emitters import ScalarEmitter
from ..cpu.lowering import _storage_memref, _task_compute_info, _emit_body


@dataclass
class GPULoweringOptions:
    block_size: int = 64
    gpu_module_name: str = "gpu_kernels"


def lower_kernel_to_gpu(
    module: ModuleOp, options: Optional[GPULoweringOptions] = None
) -> ModuleOp:
    """Lower all bufferized LoSPN kernels in ``module`` to gpu/host form."""
    options = options or GPULoweringOptions()
    new_module = ModuleOp.build()
    builder = Builder.at_end(new_module.body)
    for op in module.body_block.ops:
        if op.op_name == lospn.KernelOp.name:
            _lower_kernel(op, builder, options)
        else:
            builder.insert(op.clone({}))
    return new_module


def _task_io_split(task: Operation) -> Tuple[List[int], List[int]]:
    """Partition task operand indices into (read-from, written-to)."""
    reads: Set[int] = set()
    writes: Set[int] = set()
    arg_index = {arg: i for i, arg in enumerate(task.input_args)}
    for op in task.body.ops:
        if op.op_name == lospn.BatchReadOp.name:
            reads.add(arg_index[op.input])
        elif op.op_name == lospn.BatchWriteOp.name:
            writes.add(arg_index[op.batch_mem])
    return sorted(reads), sorted(writes)


def _lower_kernel(
    kernel: Operation, builder: Builder, options: GPULoweringOptions
) -> None:
    gpu_module = builder.create(gpu_dialect.GPUModuleOp, options.gpu_module_name)
    gm_builder = Builder.at_end(gpu_module.body_block)

    task_kernels: Dict[int, str] = {}
    for i, task in enumerate(kernel.tasks()):
        name = f"{kernel.sym_name}_task_{i}"
        task_kernels[id(task)] = name
        _lower_task_kernel(
            task, name, gm_builder, _readonly_operand_indices(task, kernel)
        )

    _lower_host_function(kernel, task_kernels, builder, options)


def _readonly_operand_indices(task: Operation, kernel: Operation) -> tuple:
    """Task operand positions bound to read-only kernel arguments."""
    readonly = set(kernel.attributes.get("readonlyArgs", ()))
    if not readonly:
        return ()
    kernel_args = list(kernel.body.arguments)
    indices = []
    for i, operand in enumerate(task.operands):
        try:
            arg_index = kernel_args.index(operand)
        except ValueError:
            continue
        if arg_index in readonly:
            indices.append(i)
    return tuple(indices)


def _lower_task_kernel(
    task: Operation, name: str, builder: Builder, readonly_args: tuple = ()
) -> None:
    arg_types = [_storage_memref(v.type) for v in task.operands]
    fn = builder.create(gpu_dialect.GPUFuncOp, name, arg_types)
    if readonly_args:
        fn.attributes["readonlyArgs"] = tuple(readonly_args)
    fb = Builder.at_end(fn.body)
    args = fn.body.arguments

    tid = fb.create(gpu_dialect.ThreadIdOp, "x").result
    bid = fb.create(gpu_dialect.BlockIdOp, "x").result
    bdim = fb.create(gpu_dialect.BlockDimOp, "x").result
    block_offset = fb.create(arith.MulIOp, bid, bdim).result
    gid = fb.create(arith.AddIOp, block_offset, tid).result

    compute_type, log_space = _task_compute_info(task)
    table_builder = Builder.at_start(fn.body)
    emitter = ScalarEmitter(
        fb, table_builder, compute_type, log_space, discrete_mode="cascade"
    )

    arg_map: Dict[Value, Value] = dict(zip(task.input_args, args))
    value_map: Dict[Value, Value] = {}

    for op in task.body.ops:
        if op.op_name == lospn.BatchReadOp.name:
            buffer = arg_map[op.input]
            col = fb.create(arith.ConstantOp, op.static_index, index_type).result
            indices = [col, gid] if op.transposed else [gid, col]
            value_map[op.results[0]] = fb.create(
                memref_dialect.LoadOp, buffer, indices
            ).result
        elif op.op_name == lospn.BodyOp.name:
            inner_map = {
                arg: value_map[operand]
                for arg, operand in zip(op.body_block.arguments, op.operands)
            }
            results = _emit_body(op, emitter, inner_map)
            for res, value in zip(op.results, results):
                value_map[res] = value
        elif op.op_name == lospn.BatchWriteOp.name:
            buffer = arg_map[op.batch_mem]
            for k, stored in enumerate(op.result_values):
                row = fb.create(arith.ConstantOp, k, index_type).result
                indices = [row, gid] if op.transposed else [gid, row]
                fb.create(
                    memref_dialect.StoreOp, value_map[stored], buffer, indices
                )
        else:
            raise IRError(f"unexpected op '{op.op_name}' in task region")
    fb.create(gpu_dialect.ReturnOp)


def _lower_host_function(
    kernel: Operation,
    task_kernels: Dict[int, str],
    builder: Builder,
    options: GPULoweringOptions,
) -> None:
    host = builder.create(
        func_dialect.FuncOp,
        kernel.sym_name,
        [_storage_memref(t) for t in kernel.arg_types],
        [],
    )
    if "readonlyArgs" in kernel.attributes:
        host.attributes["readonlyArgs"] = kernel.attributes["readonlyArgs"]
    hb = Builder.at_end(host.body)
    value_map: Dict[Value, Value] = dict(
        zip(kernel.body.arguments, host.body.arguments)
    )

    # Host buffer -> device twin (created lazily, one per host buffer).
    device_of: Dict[Value, Value] = {}
    device_allocs: List[Value] = []

    n: Optional[Value] = None

    def batch_extent() -> Value:
        nonlocal n
        if n is None:
            n = hb.create(memref_dialect.DimOp, host.body.arguments[0], 0).result
        return n

    def device_twin(host_buffer: Value) -> Value:
        twin = device_of.get(host_buffer)
        if twin is None:
            mem_type = _storage_memref(host_buffer.type)
            dynamic = [batch_extent()] if None in mem_type.shape else []
            twin = hb.create(gpu_dialect.AllocOp, mem_type, dynamic).result
            device_of[host_buffer] = twin
            device_allocs.append(twin)
        return twin

    # Upload the kernel input(s) once at the start.
    input_args = host.body.arguments[:1]
    for arg in input_args:
        twin = device_twin(arg)
        hb.create(gpu_dialect.MemcpyOp, twin, arg, gpu_dialect.H2D)

    block = hb.create(arith.ConstantOp, options.block_size, index_type).result
    block_m1 = hb.create(
        arith.ConstantOp, options.block_size - 1, index_type
    ).result

    output_args = set(host.body.arguments[1:])

    for op in kernel.body.ops:
        if op.op_name == lospn.TaskOp.name:
            reads, writes = _task_io_split(op)
            mapped = [value_map.get(v, v) for v in op.operands]
            # Naive staging: re-upload every intermediate input before the
            # launch (the copy-elimination pass removes the round trips).
            for i in reads:
                host_buffer = mapped[i]
                if host_buffer in device_of and host_buffer in set(input_args):
                    continue  # the kernel input is already resident
                twin = device_twin(host_buffer)
                hb.create(gpu_dialect.MemcpyOp, twin, host_buffer, gpu_dialect.H2D)
            for i in writes:
                device_twin(mapped[i])

            extent = batch_extent()
            rounded = hb.create(arith.AddIOp, extent, block_m1).result
            grid = hb.create(arith.DivSIOp, rounded, block).result
            hb.create(
                gpu_dialect.LaunchFuncOp,
                options.gpu_module_name,
                task_kernels[id(op)],
                grid,
                block,
                extent,
                [device_of[mapped[i]] for i in range(len(mapped))],
            )
            # Naive staging: download every result to its host buffer.
            for i in writes:
                host_buffer = mapped[i]
                hb.create(
                    gpu_dialect.MemcpyOp,
                    host_buffer,
                    device_of[host_buffer],
                    gpu_dialect.D2H,
                )
        elif op.op_name == lospn.KernelReturnOp.name:
            for twin in device_allocs:
                hb.create(gpu_dialect.DeallocOp, twin)
            hb.create(func_dialect.ReturnOp, [])
        elif op.op_name == memref_dialect.AllocOp.name:
            new_alloc = hb.create(
                memref_dialect.AllocOp,
                _storage_memref(op.results[0].type),
                [value_map.get(v, v) for v in op.operands],
            )
            value_map[op.results[0]] = new_alloc.result
        else:
            hb.insert(op.clone(value_map))
