"""GPU leg of the compilation pipeline (invoked from compiler.pipeline)."""

from __future__ import annotations

from typing import TYPE_CHECKING

from ...backends.gpu.codegen import generate_gpu_module
from ...gpusim.simulator import GPUSimulator
from ...ir import ModuleOp
from ...ir.transforms import run_cse, run_dce
from ...ir.transforms.canonicalize import canonicalize
from ...runtime.gpu_executable import GPUExecutable
from ...spn.query import JointProbability
from .copy_elim import eliminate_host_round_trips
from .lowering import GPULoweringOptions, lower_kernel_to_gpu

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..pipeline import CompilerOptions, _StageTimer


def compile_gpu_module(
    module: ModuleOp,
    query: JointProbability,
    options: "CompilerOptions",
    timer: "_StageTimer",
) -> GPUExecutable:
    from ..pipeline import _kernel_name, _kernel_signature

    signature = _kernel_signature(module, query)
    kernel_name = _kernel_name(module)

    block_size = options.gpu_block_size or query.batch_size
    lowering_options = GPULoweringOptions(block_size=block_size)
    lowered = timer.run(
        "gpu-lowering", lambda: lower_kernel_to_gpu(module, lowering_options)
    )

    if options.opt_level >= 1:
        timer.run(
            "gpu-copy-elimination",
            lambda: eliminate_host_round_trips(lowered),
            lowered,
        )
        timer.run("canonicalize", lambda: canonicalize(lowered), lowered)
        timer.run("cse", lambda: run_cse(lowered), lowered)
        timer.run("dce", lambda: run_dce(lowered), lowered)
    if options.opt_level >= 2:
        timer.run("canonicalize-2", lambda: canonicalize(lowered), lowered)
        timer.run("cse-2", lambda: run_cse(lowered), lowered)
    if options.opt_level >= 3:
        timer.run("canonicalize-3", lambda: canonicalize(lowered), lowered)

    timer.checkpoint("gpu-lowering", lowered, phase="final")

    simulator = GPUSimulator()
    host, kernels = timer.run(
        "gpu-codegen", lambda: generate_gpu_module(lowered, simulator)
    )
    return GPUExecutable(host, kernels, kernel_name, signature, simulator)
