"""Lowering HiSPN → LoSPN (paper Section IV-A3).

The HiSPN query + DAG is turned into a ``lo_spn.kernel`` containing a
single ``lo_spn.task`` whose region holds the per-sample computation in a
``lo_spn.body``:

- variadic HiSPN sums/products are **binarized** into two-operand
  ``lo_spn.add``/``lo_spn.mul`` chains,
- weighted sums are **decomposed** into constant-multiplications and
  additions,
- the abstract ``!hi_spn.probability`` type is resolved to a concrete
  computation type: log-space (``!lo_spn.log<T>``) by default, with the
  float width chosen from graph characteristics (depth — a proxy for how
  small intermediate probabilities become and how much rounding error
  accumulates).

The resulting module uses the tensor form of LoSPN; bufferization later
switches it to memrefs.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..dialects import hispn, lospn
from ..ir import Builder, ModuleOp
from ..ir.ops import IRError, Operation
from ..ir.passes import Pass
from ..ir.types import FloatType, TensorType, f32, f64
from ..ir.value import Value
from ..spn.moments import (
    categorical_mode,
    categorical_moment,
    gaussian_mode,
    gaussian_moment,
    histogram_mode,
    histogram_moment,
)

#: Graphs deeper than this get f64 in log space: each level can lose a few
#: ulps in log-add-exp, and beyond ~60 levels f32's 24-bit mantissa starts
#: showing relative errors above 1e-4 at the root.
DEPTH_F64_THRESHOLD = 60


@dataclass
class TypeDecision:
    """The computation-type choice for a query (Section III-A)."""

    use_log_space: bool
    float_type: FloatType

    @property
    def computation_type(self):
        if self.use_log_space:
            return lospn.LogType(self.float_type)
        return self.float_type


def graph_depth(graph: hispn.GraphOp) -> int:
    depths: Dict[int, int] = {}
    max_depth = 0
    for op in graph.body.ops:
        if op.op_name == hispn.RootOp.name:
            continue
        operand_depths = [
            depths.get(id(v.defining_op), 0)
            for v in op.operands
            if v.defining_op is not None
        ]
        depth = 1 + max(operand_depths, default=0)
        depths[id(op)] = depth
        max_depth = max(max_depth, depth)
    return max_depth


def decide_computation_type(
    query: hispn.JointQueryOp,
    use_log_space: bool = True,
    force_float_type: Optional[FloatType] = None,
) -> TypeDecision:
    """Pick the concrete datatype for the abstract probability type.

    With a ``relativeError`` bound attached to the query, the full error
    analysis (:mod:`error_analysis`) selects the cheapest format whose
    predicted error satisfies the bound and which cannot underflow.
    Without one, the lightweight depth heuristic applies.
    """
    if force_float_type is not None:
        return TypeDecision(use_log_space, force_float_type)

    relative_error = query.relative_error
    if relative_error > 0.0:
        from .error_analysis import select_format

        selected = select_format(
            query, relative_error, prefer_log_space=use_log_space
        ).selected
        return TypeDecision(
            selected.log_space, f32 if selected.float_width == 32 else f64
        )

    depth = graph_depth(query.graph)
    if use_log_space:
        float_type = f64 if depth > DEPTH_F64_THRESHOLD else f32
    else:
        # Linear space underflows quickly; wide type is the only option.
        float_type = f64
    return TypeDecision(use_log_space, float_type)


class LoweringError(IRError):
    pass


def lower_to_lospn(
    module: ModuleOp,
    use_log_space: bool = True,
    force_float_type: Optional[FloatType] = None,
    kernel_name: str = "spn_kernel",
) -> ModuleOp:
    """Lower every HiSPN query in ``module`` to a new LoSPN module.

    Each query modality has its own lowering, but all of them produce
    the same shape of kernel — one ``lo_spn.task`` with per-feature
    ``batch_extract``s, a per-sample ``body``, and a transposed
    ``batch_collect`` — so every downstream stage (bufferize, vectorize,
    CPU/GPU lowering, interpreter) is modality-agnostic. Query-specific
    host-side post-processing (MPE traceback, sampling, conditional
    subtraction, moment normalization) is described by a JSON
    ``queryPlan`` attribute on the kernel.
    """
    new_module = ModuleOp.build()
    builder = Builder.at_end(new_module.body)
    lowered_any = False
    handlers = {
        hispn.JointQueryOp.name: _lower_joint_query,
        hispn.MPEQueryOp.name: _lower_mpe_query,
        hispn.SampleQueryOp.name: _lower_sample_query,
        hispn.ConditionalQueryOp.name: _lower_conditional_query,
        hispn.ExpectationQueryOp.name: _lower_expectation_query,
    }
    for op in module.body_block.ops:
        handler = handlers.get(op.op_name)
        if handler is not None:
            handler(op, builder, use_log_space, force_float_type, kernel_name)
            lowered_any = True
    if not lowered_any:
        raise LoweringError("module contains no hi_spn query to lower")
    return new_module


class _Scaffold:
    """The modality-independent kernel skeleton.

    Builds the kernel/task/extract/body nesting and exposes the body
    builder plus per-feature block arguments; ``finish`` wires the yielded
    head values through the transposed batch-collect and kernel return.
    """

    def __init__(
        self,
        query,
        builder: Builder,
        kernel_name: str,
        ct,
        num_results: int,
        num_input_columns: Optional[int] = None,
        used_features: Optional[List[int]] = None,
    ):
        input_type = query.input_type
        num_columns = (
            query.num_features if num_input_columns is None else num_input_columns
        )
        input_tensor_type = TensorType((None, num_columns), input_type)
        result_tensor_type = TensorType((num_results, None), ct)

        self.kernel = builder.create(
            lospn.KernelOp,
            kernel_name,
            [input_tensor_type],
            [result_tensor_type],
        )
        kernel_builder = Builder.at_end(self.kernel.body)
        input_arg = self.kernel.body.arguments[0]

        self.task = kernel_builder.create(
            lospn.TaskOp,
            [input_arg],
            query.batch_size,
            [result_tensor_type],
        )
        self.task_builder = Builder.at_end(self.task.body)
        self.batch_index = self.task.batch_index
        task_input = self.task.input_args[0]

        if used_features is None:
            # Only extract features actually consumed by leaves.
            used_features = sorted(
                {
                    arg.arg_index
                    for arg in query.graph.body.arguments
                    if arg.has_uses
                }
            )
        feature_values: Dict[int, Value] = {}
        for feature in used_features:
            extract = self.task_builder.create(
                lospn.BatchExtractOp,
                task_input,
                self.batch_index,
                static_index=feature,
                transposed=False,
            )
            feature_values[feature] = extract.result

        body_inputs = [feature_values[f] for f in used_features]
        self.body = self.task_builder.create(
            lospn.BodyOp, body_inputs, [ct] * num_results
        )
        self.body_builder = Builder.at_end(self.body.body)
        self.arg_of_feature = {
            feature: self.body.body.arguments[i]
            for i, feature in enumerate(used_features)
        }
        self._kernel_builder = kernel_builder

    def finish(self, head_values: List[Value], query_plan: Optional[dict] = None):
        self.body_builder.create(lospn.YieldOp, head_values)
        self.task_builder.create(
            lospn.BatchCollectOp, self.batch_index, list(self.body.results), transposed=True
        )
        self._kernel_builder.create(lospn.KernelReturnOp, [self.task.results[0]])
        if query_plan is not None:
            self.kernel.attributes["queryPlan"] = json.dumps(
                query_plan, sort_keys=True
            )
        return self.kernel


def _lower_joint_query(
    query: hispn.JointQueryOp,
    builder: Builder,
    use_log_space: bool,
    force_float_type: Optional[FloatType],
    kernel_name: str,
) -> None:
    decision = decide_computation_type(query, use_log_space, force_float_type)
    ct = decision.computation_type
    num_heads = len(query.graph.root_op.operands)
    scaffold = _Scaffold(query, builder, kernel_name, ct, num_heads)

    graph = query.graph
    support_marginal = query.support_marginal
    mapping: Dict[Value, Value] = {}
    root_values: Optional[List[Value]] = None
    for op in graph.body.ops:
        if op.op_name == hispn.RootOp.name:
            root_values = [mapping[v] for v in op.operands]
            continue
        mapping.update(
            _lower_node(
                op,
                scaffold.body_builder,
                mapping,
                scaffold.arg_of_feature,
                ct,
                decision,
                support_marginal,
            )
        )
    if root_values is None:
        raise LoweringError("hi_spn.graph has no root")
    scaffold.finish(root_values)


def _lower_node(
    op: Operation,
    builder: Builder,
    mapping: Dict[Value, Value],
    arg_of_feature: Dict[int, Value],
    ct,
    decision: TypeDecision,
    support_marginal: bool,
) -> Dict[Value, Value]:
    name = op.op_name
    if name == hispn.GaussianOp.name:
        evidence = arg_of_feature[op.operands[0].arg_index]
        lowered = builder.create(
            lospn.GaussianOp, evidence, op.mean, op.stddev, ct, support_marginal
        )
        return {op.results[0]: lowered.result}
    if name == hispn.CategoricalOp.name:
        index = arg_of_feature[op.operands[0].arg_index]
        lowered = builder.create(
            lospn.CategoricalOp, index, op.probabilities, ct, support_marginal
        )
        return {op.results[0]: lowered.result}
    if name == hispn.HistogramOp.name:
        index = arg_of_feature[op.operands[0].arg_index]
        lowered = builder.create(
            lospn.HistogramOp, index, op.bounds, op.probabilities, ct, support_marginal
        )
        return {op.results[0]: lowered.result}
    if name == hispn.ProductOp.name:
        operands = [mapping[v] for v in op.operands]
        acc = operands[0]
        for operand in operands[1:]:
            acc = builder.create(lospn.MulOp, acc, operand).result
        return {op.results[0]: acc}
    if name == hispn.SumOp.name:
        operands = [mapping[v] for v in op.operands]
        weights = op.weights
        terms: List[Value] = []
        for operand, weight in zip(operands, weights):
            if decision.use_log_space:
                payload = math.log(weight) if weight > 0 else -math.inf
            else:
                payload = weight
            const = builder.create(lospn.ConstantOp, payload, ct)
            terms.append(builder.create(lospn.MulOp, operand, const.result).result)
        acc = terms[0]
        for term in terms[1:]:
            acc = builder.create(lospn.AddOp, acc, term).result
        return {op.results[0]: acc}
    raise LoweringError(f"cannot lower HiSPN op '{name}'")


_LEAF_OP_NAMES = (
    hispn.GaussianOp.name,
    hispn.CategoricalOp.name,
    hispn.HistogramOp.name,
)


def _single_root(graph: hispn.GraphOp, kind: str) -> Value:
    roots = graph.root_op.operands
    if len(roots) != 1:
        raise LoweringError(
            f"{kind} lowering supports single-root graphs only, got {len(roots)} roots"
        )
    return roots[0]


def _graph_plan(graph: hispn.GraphOp):
    """Describe the DAG as JSON-serializable plan nodes.

    Node ids are the op's position in ``graph.body.ops``; every leaf entry
    carries its distribution parameters and mode so host-side traceback
    (MPE completion, sample leaf draws) never needs the original SPN.
    """
    nodes: List[dict] = []
    id_of: Dict[Value, int] = {}
    root_id: Optional[int] = None
    for pos, op in enumerate(graph.body.ops):
        name = op.op_name
        if name == hispn.RootOp.name:
            root_id = id_of[op.operands[0]]
            continue
        entry: dict = {"id": pos}
        if name == hispn.GaussianOp.name:
            entry.update(
                kind="leaf",
                variable=op.operands[0].arg_index,
                mode=gaussian_mode(op.mean, op.stddev),
                leaf={"type": "gaussian", "mean": op.mean, "stdev": op.stddev},
            )
        elif name == hispn.CategoricalOp.name:
            probabilities = list(op.probabilities)
            entry.update(
                kind="leaf",
                variable=op.operands[0].arg_index,
                mode=float(categorical_mode(probabilities)),
                leaf={"type": "categorical", "probabilities": probabilities},
            )
        elif name == hispn.HistogramOp.name:
            bounds = list(op.bounds)
            densities = list(op.probabilities)
            entry.update(
                kind="leaf",
                variable=op.operands[0].arg_index,
                mode=histogram_mode(bounds, densities),
                leaf={"type": "histogram", "bounds": bounds, "densities": densities},
            )
        elif name == hispn.ProductOp.name:
            entry.update(
                kind="product", children=[id_of[v] for v in op.operands]
            )
        elif name == hispn.SumOp.name:
            entry.update(
                kind="sum",
                children=[id_of[v] for v in op.operands],
                weights=list(op.weights),
            )
        else:
            raise LoweringError(f"cannot plan HiSPN op '{name}'")
        id_of[op.results[0]] = pos
        nodes.append(entry)
    if root_id is None:
        raise LoweringError("hi_spn.graph has no root")
    return nodes, id_of, root_id


def _weighted_terms(
    builder: Builder, operands: List[Value], weights, ct, use_log_space: bool
) -> List[Value]:
    terms: List[Value] = []
    for operand, weight in zip(operands, weights):
        if use_log_space:
            payload = math.log(weight) if weight > 0 else -math.inf
        else:
            payload = weight
        const = builder.create(lospn.ConstantOp, payload, ct)
        terms.append(builder.create(lospn.MulOp, operand, const.result).result)
    return terms


def _add_chain(builder: Builder, terms: List[Value]) -> Value:
    acc = terms[0]
    for term in terms[1:]:
        acc = builder.create(lospn.AddOp, acc, term).result
    return acc


def _argmax_chain(builder: Builder, terms: List[Value], ct) -> Tuple[Value, Value]:
    """Running max + argmax over ``terms``.

    The argmax is carried as a raw float payload (the child position) in a
    ``ct``-typed constant; the strict ``>`` in select_max keeps the first
    maximum on ties, matching ``np.argmax`` and the reference traceback.
    """
    best = terms[0]
    index = builder.create(lospn.ConstantOp, 0.0, ct).result
    for position, term in enumerate(terms[1:], start=1):
        candidate = builder.create(lospn.ConstantOp, float(position), ct).result
        index = builder.create(
            lospn.SelectMaxOp, term, best, candidate, index
        ).result
        best = builder.create(lospn.MaxOp, term, best).result
    return best, index


def _lower_mpe_query(
    query,
    builder: Builder,
    use_log_space: bool,
    force_float_type: Optional[FloatType],
    kernel_name: str,
) -> None:
    """Max-product upward pass with per-sum argmax choice rows.

    Head 0 is the max-product score; head ``r`` (r >= 1) holds, for every
    sample, which child won sum node ``row == r`` — the host traceback
    walks these rows top-down and completes missing features with the
    winning leaf's mode.
    """
    decision = decide_computation_type(query, use_log_space, force_float_type)
    ct = decision.computation_type
    graph = query.graph
    root_value = _single_root(graph, "mpe")
    nodes, id_of, root_id = _graph_plan(graph)
    entry_of = {entry["id"]: entry for entry in nodes}

    num_sums = sum(
        1 for op in graph.body.ops if op.op_name == hispn.SumOp.name
    )
    scaffold = _Scaffold(query, builder, kernel_name, ct, 1 + num_sums)
    bb = scaffold.body_builder

    mapping: Dict[Value, Value] = {}
    choice_rows: List[Value] = []
    for op in graph.body.ops:
        name = op.op_name
        if name == hispn.RootOp.name:
            continue
        if name in _LEAF_OP_NAMES:
            entry = entry_of[id_of[op.results[0]]]
            arg = scaffold.arg_of_feature[op.operands[0].arg_index]
            # Missing features evaluate at the leaf's mode: the leaf then
            # contributes its maximum density, which is exactly the
            # max-product semantics for an unobserved variable.
            evidence = bb.create(
                lospn.InputValueOp, arg, float(entry["mode"])
            ).result
            if name == hispn.GaussianOp.name:
                lowered = bb.create(
                    lospn.GaussianOp, evidence, op.mean, op.stddev, ct, False
                )
            elif name == hispn.CategoricalOp.name:
                lowered = bb.create(
                    lospn.CategoricalOp, evidence, op.probabilities, ct, False
                )
            else:
                lowered = bb.create(
                    lospn.HistogramOp,
                    evidence,
                    op.bounds,
                    op.probabilities,
                    ct,
                    False,
                )
            mapping[op.results[0]] = lowered.result
        elif name == hispn.ProductOp.name:
            acc = mapping[op.operands[0]]
            for child in op.operands[1:]:
                acc = bb.create(lospn.MulOp, acc, mapping[child]).result
            mapping[op.results[0]] = acc
        elif name == hispn.SumOp.name:
            terms = _weighted_terms(
                bb,
                [mapping[v] for v in op.operands],
                op.weights,
                ct,
                decision.use_log_space,
            )
            best, index = _argmax_chain(bb, terms, ct)
            mapping[op.results[0]] = best
            entry_of[id_of[op.results[0]]]["row"] = 1 + len(choice_rows)
            choice_rows.append(index)
        else:
            raise LoweringError(f"cannot lower HiSPN op '{name}'")

    plan = {
        "kind": "mpe",
        "num_features": query.num_features,
        "root": root_id,
        "log_space": decision.use_log_space,
        "nodes": nodes,
    }
    scaffold.finish([mapping[root_value]] + choice_rows, plan)


def _lower_sample_query(
    query,
    builder: Builder,
    use_log_space: bool,
    force_float_type: Optional[FloatType],
    kernel_name: str,
) -> None:
    """Gumbel-max ancestral sampling.

    The upward pass is the ordinary marginal likelihood (evidence NaNs
    marginalize); each sum additionally emits an argmax choice row over
    its weighted children perturbed by per-edge Gumbel noise, which the
    host supplies in extra input columns ``F .. F+A-1``. Reading the
    noise through ``input_value`` with a log result type reinterprets the
    raw floats as log-space addends, so ``mul`` adds them to the scores.
    Gumbel-max needs that additive domain — sampling always runs in log
    space regardless of the session's space option.
    """
    float_type = force_float_type
    if float_type is None:
        float_type = f64 if graph_depth(query.graph) > DEPTH_F64_THRESHOLD else f32
    decision = TypeDecision(True, float_type)
    ct = decision.computation_type
    graph = query.graph
    root_value = _single_root(graph, "sample")
    nodes, id_of, root_id = _graph_plan(graph)
    entry_of = {entry["id"]: entry for entry in nodes}

    num_features = query.num_features
    next_column = num_features
    sum_ops = [op for op in graph.body.ops if op.op_name == hispn.SumOp.name]
    for op in sum_ops:
        entry = entry_of[id_of[op.results[0]]]
        entry["noise_columns"] = list(
            range(next_column, next_column + len(op.operands))
        )
        next_column += len(op.operands)

    used = sorted(
        {arg.arg_index for arg in graph.body.arguments if arg.has_uses}
    )
    used += list(range(num_features, next_column))
    scaffold = _Scaffold(
        query,
        builder,
        kernel_name,
        ct,
        1 + len(sum_ops),
        num_input_columns=next_column,
        used_features=used,
    )
    bb = scaffold.body_builder

    mapping: Dict[Value, Value] = {}
    choice_rows: List[Value] = []
    for op in graph.body.ops:
        if op.op_name == hispn.RootOp.name:
            continue
        if op.op_name == hispn.SumOp.name:
            entry = entry_of[id_of[op.results[0]]]
            terms = _weighted_terms(
                bb, [mapping[v] for v in op.operands], op.weights, ct, True
            )
            mapping[op.results[0]] = _add_chain(bb, terms)
            noisy: List[Value] = []
            for term, column in zip(terms, entry["noise_columns"]):
                gumbel = bb.create(
                    lospn.InputValueOp,
                    scaffold.arg_of_feature[column],
                    0.0,
                    ct,
                ).result
                noisy.append(bb.create(lospn.MulOp, term, gumbel).result)
            _, index = _argmax_chain(bb, noisy, ct)
            entry["row"] = 1 + len(choice_rows)
            choice_rows.append(index)
        else:
            mapping.update(
                _lower_node(
                    op, bb, mapping, scaffold.arg_of_feature, ct, decision, True
                )
            )

    plan = {
        "kind": "sample",
        "num_features": num_features,
        "num_aux": next_column - num_features,
        "root": root_id,
        "nodes": nodes,
    }
    scaffold.finish([mapping[root_value]] + choice_rows, plan)


def _lower_conditional_query(
    query,
    builder: Builder,
    use_log_space: bool,
    force_float_type: Optional[FloatType],
    kernel_name: str,
) -> None:
    """P(Q | E) as two marginal heads in one body.

    Head 0 evaluates the full marginal (query values observed, evidence
    NaNs marginalized); head 1 re-evaluates the graph with every
    query-variable leaf replaced by the marginalization constant, giving
    P(E). The host wrapper subtracts (log) or divides (linear).
    """
    decision = decide_computation_type(query, use_log_space, force_float_type)
    ct = decision.computation_type
    graph = query.graph
    root_value = _single_root(graph, "conditional")
    query_set = set(query.query_variables)

    scaffold = _Scaffold(query, builder, kernel_name, ct, 2)
    bb = scaffold.body_builder

    def translate(drop_query_leaves: bool) -> Value:
        mapping: Dict[Value, Value] = {}
        for op in graph.body.ops:
            if op.op_name == hispn.RootOp.name:
                continue
            if (
                drop_query_leaves
                and op.op_name in _LEAF_OP_NAMES
                and op.operands[0].arg_index in query_set
            ):
                payload = 0.0 if decision.use_log_space else 1.0
                const = bb.create(lospn.ConstantOp, payload, ct)
                mapping[op.results[0]] = const.result
                continue
            mapping.update(
                _lower_node(
                    op, bb, mapping, scaffold.arg_of_feature, ct, decision, True
                )
            )
        return mapping[root_value]

    joint_head = translate(False)
    evidence_head = translate(True)
    plan = {
        "kind": "conditional",
        "num_features": query.num_features,
        "query_variables": sorted(query_set),
    }
    scaffold.finish([joint_head, evidence_head], plan)


def _leaf_substitution(op: Operation, moment: int) -> float:
    """The value substituted for a missing feature in a moment kernel.

    For the first moment this is the leaf's mean; for the second it is
    ``sqrt(E[x^2])`` so that squaring inside the kernel reproduces the
    leaf's raw second moment.
    """
    if op.op_name == hispn.GaussianOp.name:
        raw = gaussian_moment(op.mean, op.stddev, moment)
    elif op.op_name == hispn.CategoricalOp.name:
        raw = categorical_moment(list(op.probabilities), moment)
    else:
        raw = histogram_moment(list(op.bounds), list(op.probabilities), moment)
    if moment == 1:
        return float(raw)
    return math.sqrt(max(raw, 0.0))


def _lower_expectation_query(
    query,
    builder: Builder,
    use_log_space: bool,
    force_float_type: Optional[FloatType],
    kernel_name: str,
) -> None:
    """Conditional expectations E[x_v^m | E] for every variable in scope.

    Runs the (L, M_v) pair recursion: L is the marginal likelihood and
    M_v the unnormalized moment integral for variable ``v``. Head 0 is
    L at the root; head ``1+i`` is M for the i-th scope variable, and the
    host wrapper normalizes ``M_v / L``. Moments can be negative (e.g.
    negative means), which log space cannot represent — expectation
    kernels always run in linear f64.
    """
    decision = TypeDecision(False, f64)
    ct = f64
    moment = query.moment
    graph = query.graph
    root_value = _single_root(graph, "expectation")

    scope: Dict[Value, frozenset] = {}
    for op in graph.body.ops:
        if op.op_name == hispn.RootOp.name:
            continue
        if op.op_name in _LEAF_OP_NAMES:
            scope[op.results[0]] = frozenset({op.operands[0].arg_index})
        else:
            scope[op.results[0]] = frozenset().union(
                *(scope[v] for v in op.operands)
            )
    variables = sorted(scope[root_value])

    scaffold = _Scaffold(query, builder, kernel_name, ct, 1 + len(variables))
    bb = scaffold.body_builder

    lik: Dict[Value, Value] = {}
    mom: Dict[Tuple[Value, int], Value] = {}
    for op in graph.body.ops:
        name = op.op_name
        if name == hispn.RootOp.name:
            continue
        result = op.results[0]
        if name in _LEAF_OP_NAMES:
            lik.update(
                _lower_node(
                    op, bb, {}, scaffold.arg_of_feature, ct, decision, True
                )
            )
            variable = op.operands[0].arg_index
            substitution = _leaf_substitution(op, moment)
            factor = bb.create(
                lospn.InputValueOp,
                scaffold.arg_of_feature[variable],
                substitution,
                ct,
            ).result
            if moment == 2:
                factor = bb.create(lospn.MulOp, factor, factor).result
            mom[(result, variable)] = bb.create(
                lospn.MulOp, factor, lik[result]
            ).result
        elif name == hispn.ProductOp.name:
            acc = lik[op.operands[0]]
            for child in op.operands[1:]:
                acc = bb.create(lospn.MulOp, acc, lik[child]).result
            lik[result] = acc
            for variable in scope[result]:
                acc_m: Optional[Value] = None
                for child in op.operands:
                    value = (
                        mom[(child, variable)]
                        if variable in scope[child]
                        else lik[child]
                    )
                    acc_m = (
                        value
                        if acc_m is None
                        else bb.create(lospn.MulOp, acc_m, value).result
                    )
                mom[(result, variable)] = acc_m
        elif name == hispn.SumOp.name:
            consts = [
                bb.create(lospn.ConstantOp, float(w), ct).result
                for w in op.weights
            ]
            lik[result] = _add_chain(
                bb,
                [
                    bb.create(lospn.MulOp, lik[c], const).result
                    for c, const in zip(op.operands, consts)
                ],
            )
            for variable in scope[result]:
                mom[(result, variable)] = _add_chain(
                    bb,
                    [
                        bb.create(
                            lospn.MulOp,
                            mom.get((c, variable), lik[c]),
                            const,
                        ).result
                        for c, const in zip(op.operands, consts)
                    ],
                )
        else:
            raise LoweringError(f"cannot lower HiSPN op '{name}'")

    heads = [lik[root_value]] + [mom[(root_value, v)] for v in variables]
    plan = {
        "kind": "expectation",
        "num_features": query.num_features,
        "moment": moment,
        "variables": variables,
    }
    scaffold.finish(heads, plan)


class LowerToLoSPNPass(Pass):
    """Pass wrapper (note: produces a *new* module; use the function in
    pipelines that thread module values instead)."""

    name = "lower-to-lospn"

    def __init__(self, use_log_space: bool = True):
        super().__init__()
        self.use_log_space = use_log_space
        self.result: Optional[ModuleOp] = None

    def run(self, op: Operation) -> None:
        self.result = lower_to_lospn(op, self.use_log_space)
