"""Lowering HiSPN → LoSPN (paper Section IV-A3).

The HiSPN query + DAG is turned into a ``lo_spn.kernel`` containing a
single ``lo_spn.task`` whose region holds the per-sample computation in a
``lo_spn.body``:

- variadic HiSPN sums/products are **binarized** into two-operand
  ``lo_spn.add``/``lo_spn.mul`` chains,
- weighted sums are **decomposed** into constant-multiplications and
  additions,
- the abstract ``!hi_spn.probability`` type is resolved to a concrete
  computation type: log-space (``!lo_spn.log<T>``) by default, with the
  float width chosen from graph characteristics (depth — a proxy for how
  small intermediate probabilities become and how much rounding error
  accumulates).

The resulting module uses the tensor form of LoSPN; bufferization later
switches it to memrefs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..dialects import hispn, lospn
from ..ir import Builder, ModuleOp
from ..ir.ops import IRError, Operation
from ..ir.passes import Pass
from ..ir.types import FloatType, TensorType, f32, f64
from ..ir.value import Value

#: Graphs deeper than this get f64 in log space: each level can lose a few
#: ulps in log-add-exp, and beyond ~60 levels f32's 24-bit mantissa starts
#: showing relative errors above 1e-4 at the root.
DEPTH_F64_THRESHOLD = 60


@dataclass
class TypeDecision:
    """The computation-type choice for a query (Section III-A)."""

    use_log_space: bool
    float_type: FloatType

    @property
    def computation_type(self):
        if self.use_log_space:
            return lospn.LogType(self.float_type)
        return self.float_type


def graph_depth(graph: hispn.GraphOp) -> int:
    depths: Dict[int, int] = {}
    max_depth = 0
    for op in graph.body.ops:
        if op.op_name == hispn.RootOp.name:
            continue
        operand_depths = [
            depths.get(id(v.defining_op), 0)
            for v in op.operands
            if v.defining_op is not None
        ]
        depth = 1 + max(operand_depths, default=0)
        depths[id(op)] = depth
        max_depth = max(max_depth, depth)
    return max_depth


def decide_computation_type(
    query: hispn.JointQueryOp,
    use_log_space: bool = True,
    force_float_type: Optional[FloatType] = None,
) -> TypeDecision:
    """Pick the concrete datatype for the abstract probability type.

    With a ``relativeError`` bound attached to the query, the full error
    analysis (:mod:`error_analysis`) selects the cheapest format whose
    predicted error satisfies the bound and which cannot underflow.
    Without one, the lightweight depth heuristic applies.
    """
    if force_float_type is not None:
        return TypeDecision(use_log_space, force_float_type)

    relative_error = query.relative_error
    if relative_error > 0.0:
        from .error_analysis import select_format

        selected = select_format(
            query, relative_error, prefer_log_space=use_log_space
        ).selected
        return TypeDecision(
            selected.log_space, f32 if selected.float_width == 32 else f64
        )

    depth = graph_depth(query.graph)
    if use_log_space:
        float_type = f64 if depth > DEPTH_F64_THRESHOLD else f32
    else:
        # Linear space underflows quickly; wide type is the only option.
        float_type = f64
    return TypeDecision(use_log_space, float_type)


class LoweringError(IRError):
    pass


def lower_to_lospn(
    module: ModuleOp,
    use_log_space: bool = True,
    force_float_type: Optional[FloatType] = None,
    kernel_name: str = "spn_kernel",
) -> ModuleOp:
    """Lower every HiSPN query in ``module`` to a new LoSPN module."""
    new_module = ModuleOp.build()
    builder = Builder.at_end(new_module.body)
    lowered_any = False
    for op in module.body_block.ops:
        if op.op_name == hispn.JointQueryOp.name:
            _lower_query(op, builder, use_log_space, force_float_type, kernel_name)
            lowered_any = True
    if not lowered_any:
        raise LoweringError("module contains no hi_spn.joint_query to lower")
    return new_module


def _lower_query(
    query: hispn.JointQueryOp,
    builder: Builder,
    use_log_space: bool,
    force_float_type: Optional[FloatType],
    kernel_name: str,
) -> None:
    decision = decide_computation_type(query, use_log_space, force_float_type)
    ct = decision.computation_type
    input_type = query.input_type
    num_features = query.num_features
    num_heads = len(query.graph.root_op.operands)

    input_tensor_type = TensorType((None, num_features), input_type)
    result_tensor_type = TensorType((num_heads, None), ct)

    kernel = builder.create(
        lospn.KernelOp,
        kernel_name,
        [input_tensor_type],
        [result_tensor_type],
    )
    kernel_builder = Builder.at_end(kernel.body)
    input_arg = kernel.body.arguments[0]

    task = kernel_builder.create(
        lospn.TaskOp,
        [input_arg],
        query.batch_size,
        [result_tensor_type],
    )
    task_builder = Builder.at_end(task.body)
    batch_index = task.batch_index
    task_input = task.input_args[0]

    graph = query.graph
    # Only extract features actually consumed by leaves.
    used_features = sorted(
        {
            arg.arg_index
            for arg in graph.body.arguments
            if arg.has_uses
        }
    )
    feature_values: Dict[int, Value] = {}
    for feature in used_features:
        extract = task_builder.create(
            lospn.BatchExtractOp,
            task_input,
            batch_index,
            static_index=feature,
            transposed=False,
        )
        feature_values[feature] = extract.result

    body_inputs = [feature_values[f] for f in used_features]
    body = task_builder.create(lospn.BodyOp, body_inputs, [ct] * num_heads)
    body_builder = Builder.at_end(body.body)
    arg_of_feature = {
        feature: body.body.arguments[i] for i, feature in enumerate(used_features)
    }

    support_marginal = query.support_marginal
    mapping: Dict[Value, Value] = {}
    root_values: Optional[List[Value]] = None
    for op in graph.body.ops:
        if op.op_name == hispn.RootOp.name:
            root_values = [mapping[v] for v in op.operands]
            continue
        mapping.update(
            _lower_node(
                op, body_builder, mapping, arg_of_feature, ct, decision, support_marginal
            )
        )
    if root_values is None:
        raise LoweringError("hi_spn.graph has no root")
    body_builder.create(lospn.YieldOp, root_values)

    task_builder.create(
        lospn.BatchCollectOp, batch_index, list(body.results), transposed=True
    )
    kernel_builder.create(lospn.KernelReturnOp, [task.results[0]])


def _lower_node(
    op: Operation,
    builder: Builder,
    mapping: Dict[Value, Value],
    arg_of_feature: Dict[int, Value],
    ct,
    decision: TypeDecision,
    support_marginal: bool,
) -> Dict[Value, Value]:
    name = op.op_name
    if name == hispn.GaussianOp.name:
        evidence = arg_of_feature[op.operands[0].arg_index]
        lowered = builder.create(
            lospn.GaussianOp, evidence, op.mean, op.stddev, ct, support_marginal
        )
        return {op.results[0]: lowered.result}
    if name == hispn.CategoricalOp.name:
        index = arg_of_feature[op.operands[0].arg_index]
        lowered = builder.create(
            lospn.CategoricalOp, index, op.probabilities, ct, support_marginal
        )
        return {op.results[0]: lowered.result}
    if name == hispn.HistogramOp.name:
        index = arg_of_feature[op.operands[0].arg_index]
        lowered = builder.create(
            lospn.HistogramOp, index, op.bounds, op.probabilities, ct, support_marginal
        )
        return {op.results[0]: lowered.result}
    if name == hispn.ProductOp.name:
        operands = [mapping[v] for v in op.operands]
        acc = operands[0]
        for operand in operands[1:]:
            acc = builder.create(lospn.MulOp, acc, operand).result
        return {op.results[0]: acc}
    if name == hispn.SumOp.name:
        operands = [mapping[v] for v in op.operands]
        weights = op.weights
        terms: List[Value] = []
        for operand, weight in zip(operands, weights):
            if decision.use_log_space:
                payload = math.log(weight) if weight > 0 else -math.inf
            else:
                payload = weight
            const = builder.create(lospn.ConstantOp, payload, ct)
            terms.append(builder.create(lospn.MulOp, operand, const.result).result)
        acc = terms[0]
        for term in terms[1:]:
            acc = builder.create(lospn.AddOp, acc, term).result
        return {op.results[0]: acc}
    raise LoweringError(f"cannot lower HiSPN op '{name}'")


class LowerToLoSPNPass(Pass):
    """Pass wrapper (note: produces a *new* module; use the function in
    pipelines that thread module values instead)."""

    name = "lower-to-lospn"

    def __init__(self, use_log_space: bool = True):
        super().__init__()
        self.use_log_space = use_log_space
        self.result: Optional[ModuleOp] = None

    def run(self, op: Operation) -> None:
        self.result = lower_to_lospn(op, self.use_log_space)
