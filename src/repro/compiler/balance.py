"""Tree balancing of binarized LoSPN chains (-O3).

Binarizing variadic HiSPN sums/products (§IV-A3) produces left-leaning
chains: ``(((a ⊕ b) ⊕ c) ⊕ d)`` with depth N-1. This pass re-associates
maximal single-use chains of the same operation into balanced binary
trees of depth ⌈log2 N⌉, which

- shortens the dependency chains the backend must execute in order
  (better ILP on real hardware; fewer serialized NumPy ops here), and
- reduces worst-case rounding-error accumulation (error grows with the
  chain depth — see ``error_analysis``).

Re-association changes floating-point results within rounding tolerance;
the pass therefore only runs at -O3 (the paper's "differences between
optimization levels are small" regime), and the tests pin the tolerance.
"""

from __future__ import annotations

from typing import List, Set

from ..dialects import lospn
from ..ir import Builder, ModuleOp
from ..ir.ops import Operation
from ..ir.value import Value

_CHAIN_OPS = {lospn.MulOp.name: lospn.MulOp, lospn.AddOp.name: lospn.AddOp}


def _collect_chain(root: Operation, visited: Set[int]) -> List[Value]:
    """Leaves of the maximal same-op single-use chain rooted at ``root``."""
    kind = root.op_name
    leaves: List[Value] = []
    stack: List[Value] = [root.operands[0], root.operands[1]]
    visited.add(id(root))
    while stack:
        value = stack.pop()
        producer = value.defining_op
        if (
            producer is not None
            and producer.op_name == kind
            and value.has_one_use()
            and id(producer) not in visited
        ):
            visited.add(id(producer))
            stack.append(producer.operands[0])
            stack.append(producer.operands[1])
        else:
            leaves.append(value)
    leaves.reverse()  # keep original operand order (stable numerics)
    return leaves


def _build_balanced(builder: Builder, op_class, values: List[Value]) -> Value:
    if len(values) == 1:
        return values[0]
    mid = len(values) // 2
    left = _build_balanced(builder, op_class, values[:mid])
    right = _build_balanced(builder, op_class, values[mid:])
    return builder.create(op_class, left, right).result


def balance_chains(module: ModuleOp, min_chain: int = 4) -> int:
    """Re-associate mul/add chains into balanced trees; returns #chains."""
    balanced = 0
    for body in module.walk():
        if body.op_name != lospn.BodyOp.name:
            continue
        block = body.body_block
        visited: Set[int] = set()
        for op in list(block.ops):
            if op.op_name not in _CHAIN_OPS or id(op) in visited:
                continue
            # Only start at chain *roots*: ops whose (single) user is not
            # the same kind, or with multiple users.
            users = op.results[0].users
            if (
                len(users) == 1
                and users[0].op_name == op.op_name
                and op.results[0].has_one_use()
            ):
                continue
            leaves = _collect_chain(op, visited)
            if len(leaves) < min_chain:
                continue
            builder = Builder.before_op(op)
            replacement = _build_balanced(builder, _CHAIN_OPS[op.op_name], leaves)
            op.results[0].replace_all_uses_with(replacement)
            balanced += 1
        # Erase the now-dead original chain ops (reverse order: users first).
        for op in reversed(block.op_list()):
            if (
                op.op_name in _CHAIN_OPS
                and op.results
                and not op.results[0].has_uses
            ):
                op.erase()
    return balanced


def max_chain_depth(module: ModuleOp) -> int:
    """Longest mul/add dependency chain in any LoSPN body (diagnostic)."""
    deepest = 0
    for body in module.walk():
        if body.op_name != lospn.BodyOp.name:
            continue
        depths = {}
        for op in body.body_block.ops:
            if op.op_name in _CHAIN_OPS:
                operand_depths = [
                    depths.get(id(v.defining_op), 0) for v in op.operands
                ]
                depths[id(op)] = 1 + max(operand_depths, default=0)
                deepest = max(deepest, depths[id(op)])
    return deepest
