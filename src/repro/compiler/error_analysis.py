"""Arithmetic error analysis for the computation-type decision.

The HiSPN ``!hi_spn.probability`` type defers the choice of the concrete
computation format (paper §III-A: "The decision can then be based on
characteristics, e.g., the depth of the graph, of the SPN"). This module
implements that decision properly, in the spirit of the error model used
by the SPNC authors: a bottom-up static analysis over the HiSPN graph
that, for each candidate format, bounds

- the **value range** each node can produce, detecting *underflow* of
  linear-space formats (deep products of small probabilities vanish in
  f32/f64 linear representation), and
- the accumulated **relative error**, using a first-order rounding model
  (one unit roundoff ``u`` per arithmetic operation; in log space the
  absolute error of the log value bounds the relative error of the
  probability, with roundoff scaled by the magnitude of the log values).

The cheapest format whose error bound satisfies the query's requested
``relative_error`` (and which cannot underflow) is selected; ties prefer
f32 over f64 and log space over linear (log space is also what the
evaluation uses throughout).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..dialects import hispn
from ..ir.ops import Operation
from ..ir.types import FloatType, f32, f64

#: Unit roundoff of the supported float formats.
UNIT_ROUNDOFF = {32: 2.0 ** -24, 64: 2.0 ** -53}

#: Smallest positive normal magnitude (underflow threshold) per format.
SMALLEST_NORMAL = {32: 2.0 ** -126, 64: 2.0 ** -1022}

#: Leaves are evaluated over a bounded domain; Gaussian ranges use this
#: many standard deviations around the mean.
GAUSSIAN_DOMAIN_SIGMAS = 6.0

#: Probability floor for range propagation (zero-probability buckets are
#: clamped; they short-circuit to -inf and carry no rounding error).
PROBABILITY_FLOOR = 1e-300


@dataclass(frozen=True)
class FormatEstimate:
    """Analysis result for one candidate computation format."""

    float_width: int
    log_space: bool
    max_relative_error: float
    min_value_log: float  # log of the smallest reachable probability
    underflows: bool

    @property
    def name(self) -> str:
        space = "log" if self.log_space else "linear"
        return f"f{self.float_width}-{space}"


@dataclass
class ErrorAnalysis:
    """Per-format estimates plus the selected format."""

    estimates: List[FormatEstimate]
    selected: FormatEstimate

    def estimate(self, float_width: int, log_space: bool) -> FormatEstimate:
        for est in self.estimates:
            if est.float_width == float_width and est.log_space == log_space:
                return est
        raise KeyError((float_width, log_space))


def _leaf_range(op: Operation) -> Tuple[float, float]:
    """(log_min, log_max) of the probabilities a leaf can produce."""
    name = op.op_name
    if name == hispn.GaussianOp.name:
        stddev = op.stddev
        peak = 1.0 / (stddev * math.sqrt(2.0 * math.pi))
        # Smallest value over the bounded domain: GAUSSIAN_DOMAIN_SIGMAS out.
        log_min = math.log(peak) - 0.5 * GAUSSIAN_DOMAIN_SIGMAS ** 2
        return log_min, math.log(peak)
    if name in (hispn.CategoricalOp.name, hispn.HistogramOp.name):
        probs = [p for p in op.probabilities if p > 0.0]
        if not probs:
            probs = [PROBABILITY_FLOOR]
        return (
            math.log(max(min(probs), PROBABILITY_FLOOR)),
            math.log(max(max(probs), PROBABILITY_FLOOR)),
        )
    raise ValueError(f"not a leaf op: {name}")


def analyze_query(query: Operation) -> Dict[int, Tuple[float, float]]:
    """Bottom-up (log_min, log_max) value ranges for every graph node."""
    graph = query.graph
    ranges: Dict[int, Tuple[float, float]] = {}
    for op in graph.body.ops:
        name = op.op_name
        if name == hispn.RootOp.name:
            continue
        if name in hispn.LEAF_OP_NAMES:
            ranges[id(op)] = _leaf_range(op)
        elif name == hispn.ProductOp.name:
            los, his = zip(*(ranges[id(v.defining_op)] for v in op.operands))
            ranges[id(op)] = (sum(los), sum(his))
        elif name == hispn.SumOp.name:
            children = [ranges[id(v.defining_op)] for v in op.operands]
            weights = op.weights
            # Lower bound: the smallest weighted child alone; upper bound:
            # log-sum-exp of the weighted upper bounds.
            lo = min(
                lo + (math.log(w) if w > 0 else -math.inf)
                for (lo, _), w in zip(children, weights)
            )
            his = [
                hi + (math.log(w) if w > 0 else -math.inf)
                for (_, hi), w in zip(children, weights)
            ]
            peak = max(his)
            hi = peak + math.log(sum(math.exp(h - peak) for h in his))
            ranges[id(op)] = (lo, hi)
        else:  # pragma: no cover - dialect is closed
            raise ValueError(f"unexpected op {name}")
    return ranges


def _error_bound(query: Operation, width: int, log_space: bool,
                 ranges: Dict[int, Tuple[float, float]]) -> float:
    """First-order bound on the relative error of the root probability."""
    u = UNIT_ROUNDOFF[width]
    graph = query.graph
    errors: Dict[int, float] = {}
    root_error = 0.0
    for op in graph.body.ops:
        name = op.op_name
        if name == hispn.RootOp.name:
            producer = op.operands[0].defining_op
            root_error = errors[id(producer)]
            continue
        if name in hispn.LEAF_OP_NAMES:
            if log_space:
                # One rounding of the stored log value; its absolute error
                # scales with the log magnitude and converts ~1:1 into
                # relative probability error.
                log_lo, log_hi = ranges[id(op)]
                magnitude = max(abs(log_lo), abs(log_hi), 1.0)
                errors[id(op)] = u * magnitude
            else:
                errors[id(op)] = u
        elif name == hispn.ProductOp.name:
            child_err = sum(errors[id(v.defining_op)] for v in op.operands)
            if log_space:
                # Adds of log values: one rounding per add, scaled by the
                # running log magnitude.
                log_lo, log_hi = ranges[id(op)]
                magnitude = max(abs(log_lo), abs(log_hi), 1.0)
                ops_count = max(len(op.operands) - 1, 1)
                errors[id(op)] = child_err + ops_count * u * magnitude
            else:
                errors[id(op)] = child_err + (len(op.operands) - 1) * u
        elif name == hispn.SumOp.name:
            child_err = max(errors[id(v.defining_op)] for v in op.operands)
            terms = len(op.operands)
            if log_space:
                log_lo, log_hi = ranges[id(op)]
                magnitude = max(abs(log_lo), abs(log_hi), 1.0)
                # Per term: weight add + exp + log1p chain ≈ 3 roundings.
                errors[id(op)] = child_err + 3 * terms * u * max(magnitude, 1.0)
            else:
                errors[id(op)] = child_err + 2 * terms * u
        else:  # pragma: no cover
            raise ValueError(f"unexpected op {name}")
    return root_error


def analyze_error(query: Operation) -> Dict[str, FormatEstimate]:
    """Full per-format analysis of a hi_spn query op."""
    ranges = analyze_query(query)
    root_producer = query.graph.root_op.operands[0].defining_op
    root_log_min = ranges[id(root_producer)][0]

    estimates: Dict[str, FormatEstimate] = {}
    for width in (32, 64):
        for log_space in (True, False):
            underflows = (
                not log_space
                and root_log_min < math.log(SMALLEST_NORMAL[width])
            )
            estimate = FormatEstimate(
                float_width=width,
                log_space=log_space,
                max_relative_error=_error_bound(query, width, log_space, ranges),
                min_value_log=root_log_min,
                underflows=underflows,
            )
            estimates[estimate.name] = estimate
    return estimates


def select_format(
    query: Operation,
    relative_error: float,
    prefer_log_space: bool = True,
) -> ErrorAnalysis:
    """Pick the cheapest format meeting ``relative_error`` (no underflow).

    Preference order: f32-log, f64-log, f32-linear, f64-linear when log
    space is preferred (the default, as in the evaluation); linear
    formats first otherwise. Falls back to f64-log when no format meets
    the bound — the best we can offer.
    """
    estimates = analyze_error(query)
    if prefer_log_space:
        order = ["f32-log", "f64-log", "f32-linear", "f64-linear"]
    else:
        order = ["f32-linear", "f64-linear", "f32-log", "f64-log"]
    selected: Optional[FormatEstimate] = None
    for name in order:
        est = estimates[name]
        if est.underflows:
            continue
        if est.max_relative_error <= relative_error:
            selected = est
            break
    if selected is None:
        selected = estimates["f64-log"]
    return ErrorAnalysis(list(estimates.values()), selected)
