"""CPU target lowering (paper Section IV-B).

Each ``lo_spn.kernel`` becomes a ``func.func`` that calls one function per
``lo_spn.task`` in dependence order. Task functions contain a loop over
the batch; SPN operations lower to scalar arithmetic via
:class:`ScalarEmitter`.

Three vectorization modes (``CPULoweringOptions.vectorize``):

- ``"off"``: a plain scalar loop over the batch.
- ``"lanes"``: the paper's literal strategy — a vector loop computes W
  samples per iteration (W = ISA lanes × a register-blocking factor for
  the Python backend, see DESIGN.md), followed by a scalar epilogue for
  the remainder. Input features are fetched either with per-feature
  strided gathers or — in the "+Shuffle" configuration — with one
  contiguous row-tile load per iteration followed by in-register column
  extraction.
- ``"batch"``: the paper's vectorizer reinterpreted with W = the whole
  chunk. The batch loop disappears entirely: every LoSPN op becomes one
  op on a runtime-width vector (``vector<?xf64>``) spanning the chunk
  axis, so the generated kernel is straight-line NumPy code with no
  per-sample interpreter overhead and no scalar epilogue — a short tail
  chunk simply runs the same kernel at a smaller width.

Without a vector math library, vectorized transcendentals are scalarized
(:func:`scalarize_vector_math`), reproducing the paper's observation that
vectorization *without* a veclib is slower than scalar code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from ...dialects import (
    arith,
    func as func_dialect,
    lospn,
    math_dialect,
    memref as memref_dialect,
    scf,
    vector as vector_dialect,
)
from ...ir import Builder, ModuleOp
from ...ir.ops import IRError, Operation
from ...ir.types import (
    FloatType,
    IndexType,
    MemRefType,
    VectorType,
    index as index_type,
)
from ...ir.value import Value
from ..emitters import ScalarEmitter, VectorEmitter


@dataclass(frozen=True)
class VectorISA:
    """A SIMD instruction set's register geometry."""

    name: str
    f32_lanes: int
    f64_lanes: int

    def lanes(self, float_type: FloatType) -> int:
        return self.f32_lanes if float_type.width == 32 else self.f64_lanes


AVX2 = VectorISA("avx2", 8, 4)
AVX512 = VectorISA("avx512", 16, 8)
NEON = VectorISA("neon", 4, 2)

ISAS = {isa.name: isa for isa in (AVX2, AVX512, NEON)}

#: The supported vectorization strategies (see module docstring).
VECTORIZE_MODES = ("off", "lanes", "batch")


def normalize_vectorize_mode(value: Union[bool, str, None]) -> str:
    """Canonicalize a user-facing ``vectorize`` spelling to a mode name.

    Booleans are accepted for backward compatibility: ``True`` selects
    the fixed-lane strategy (the pre-batch meaning of ``vectorize=True``)
    and ``False``/``None`` disable vectorization.
    """
    if value is True:
        return "lanes"
    if value is False or value is None:
        return "off"
    if value in VECTORIZE_MODES:
        return value
    raise ValueError(
        f"unknown vectorize mode {value!r} "
        f"(expected one of {', '.join(VECTORIZE_MODES)}, or a bool)"
    )


@dataclass
class CPULoweringOptions:
    """Configuration of the CPU mapping strategy (paper Section V-A1)."""

    #: "off" | "lanes" | "batch" (bools accepted: True == "lanes").
    vectorize: Union[bool, str] = False
    isa: VectorISA = AVX2
    use_vector_library: bool = True
    use_shuffle: bool = True
    #: Samples processed per vector iteration = lanes * superword_factor.
    #: Register blocking amortizes the Python backend's per-op dispatch
    #: the way real SIMD amortizes instruction overhead (DESIGN.md).
    #: Only meaningful in "lanes" mode; "batch" mode always uses the
    #: full chunk width.
    superword_factor: int = 128

    def vectorize_mode(self) -> str:
        return normalize_vectorize_mode(self.vectorize)


def lower_kernel_to_cpu(
    module: ModuleOp, options: Optional[CPULoweringOptions] = None
) -> ModuleOp:
    """Lower all bufferized LoSPN kernels in ``module`` to func/scf form."""
    options = options or CPULoweringOptions()
    mode = options.vectorize_mode()
    new_module = ModuleOp.build()
    builder = Builder.at_end(new_module.body)
    for op in module.body_block.ops:
        if op.op_name == lospn.KernelOp.name:
            _lower_kernel(op, builder, options)
        else:
            builder.insert(op.clone({}))
    if mode != "off" and not options.use_vector_library:
        scalarize_vector_math(new_module)
    return new_module


def _storage_memref(ty: MemRefType) -> MemRefType:
    """Erase log types: a memref of !lo_spn.log<T> is stored as memref of T."""
    element = ty.element_type
    if isinstance(element, lospn.LogType):
        return MemRefType(ty.shape, element.base)
    return ty


def _readonly_operand_indices(task: Operation, kernel: Operation) -> tuple:
    """Task operand positions that bind read-only kernel arguments."""
    readonly = set(kernel.attributes.get("readonlyArgs", ()))
    if not readonly:
        return ()
    kernel_args = list(kernel.body.arguments)
    indices = []
    for i, operand in enumerate(task.operands):
        try:
            arg_index = kernel_args.index(operand)
        except ValueError:
            continue
        if arg_index in readonly:
            indices.append(i)
    return tuple(indices)


def _lower_kernel(kernel: Operation, builder: Builder, options: CPULoweringOptions) -> None:
    task_funcs: Dict[int, str] = {}
    for i, task in enumerate(kernel.tasks()):
        name = f"{kernel.sym_name}_task_{i}"
        task_funcs[id(task)] = name
        _lower_task(
            task,
            name,
            builder,
            options,
            readonly_args=_readonly_operand_indices(task, kernel),
        )

    kernel_func = builder.create(
        func_dialect.FuncOp,
        kernel.sym_name,
        [_storage_memref(t) for t in kernel.arg_types],
        [],
    )
    if "readonlyArgs" in kernel.attributes:
        kernel_func.attributes["readonlyArgs"] = kernel.attributes["readonlyArgs"]
    kb = Builder.at_end(kernel_func.body)
    value_map: Dict[Value, Value] = dict(
        zip(kernel.body.arguments, kernel_func.body.arguments)
    )
    for op in kernel.body.ops:
        if op.op_name == lospn.TaskOp.name:
            kb.create(
                func_dialect.CallOp,
                task_funcs[id(op)],
                [value_map.get(v, v) for v in op.operands],
                [],
            )
        elif op.op_name == lospn.KernelReturnOp.name:
            kb.create(func_dialect.ReturnOp, [])
        elif op.op_name == memref_dialect.AllocOp.name:
            new_alloc = kb.create(
                memref_dialect.AllocOp,
                _storage_memref(op.results[0].type),
                [value_map.get(v, v) for v in op.operands],
            )
            value_map[op.results[0]] = new_alloc.result
        else:
            kb.insert(op.clone(value_map))


def _batch_dim_source(task: Operation) -> Tuple[int, int]:
    """(operand index, dimension) locating the dynamic batch extent."""
    for i, operand in enumerate(task.operands):
        ty = operand.type
        if isinstance(ty, MemRefType) and None in ty.shape:
            return i, ty.shape.index(None)
    raise IRError("task has no operand with a dynamic batch dimension")


def _lower_task(
    task: Operation,
    name: str,
    builder: Builder,
    options: CPULoweringOptions,
    readonly_args: tuple = (),
) -> None:
    arg_types = [_storage_memref(v.type) for v in task.operands]
    fn = builder.create(func_dialect.FuncOp, name, arg_types, [])
    if readonly_args:
        fn.attributes["readonlyArgs"] = tuple(readonly_args)
    fb = Builder.at_end(fn.body)
    args = fn.body.arguments

    mode = options.vectorize_mode()
    c0 = fb.create(arith.ConstantOp, 0, index_type).result

    # Constant tables (.rodata) go to the function entry, ahead of the loop.
    table_builder = Builder.at_start(fn.body)

    compute_type, log_space = _task_compute_info(task)

    if mode == "batch":
        # W = the whole chunk: no loop, no epilogue. Every op below works
        # on a runtime-width vector spanning the full batch axis starting
        # at sample 0; a short tail chunk just runs at a smaller width.
        emitter = VectorEmitter(fb, table_builder, compute_type, log_space, None)
        _emit_samples(task, fb, emitter, c0, args, options, True, None)
        fb.create(func_dialect.ReturnOp, [])
        return

    dim_operand, dim_axis = _batch_dim_source(task)
    n = fb.create(memref_dialect.DimOp, args[dim_operand], dim_axis).result
    c1 = fb.create(arith.ConstantOp, 1, index_type).result

    if mode == "lanes":
        lanes = options.isa.lanes(compute_type) * options.superword_factor
        width = fb.create(arith.ConstantOp, lanes, index_type).result
        chunks = fb.create(arith.DivSIOp, n, width).result
        nvec = fb.create(arith.MulIOp, chunks, width).result

        vector_loop = fb.create(scf.ForOp, c0, nvec, width)
        vb = Builder.at_end(vector_loop.body_block)
        emitter = VectorEmitter(vb, table_builder, compute_type, log_space, lanes)
        _emit_samples(
            task, vb, emitter, vector_loop.induction_var, args, options, True, lanes
        )
        vb.create(scf.YieldOp, [])

        epilogue = fb.create(scf.ForOp, nvec, n, c1)
        eb = Builder.at_end(epilogue.body_block)
        scalar = ScalarEmitter(eb, table_builder, compute_type, log_space)
        _emit_samples(
            task, eb, scalar, epilogue.induction_var, args, options, False, None
        )
        eb.create(scf.YieldOp, [])
    else:
        loop = fb.create(scf.ForOp, c0, n, c1)
        lb = Builder.at_end(loop.body_block)
        scalar = ScalarEmitter(lb, table_builder, compute_type, log_space)
        _emit_samples(
            task, lb, scalar, loop.induction_var, args, options, False, None
        )
        lb.create(scf.YieldOp, [])

    fb.create(func_dialect.ReturnOp, [])


def _task_compute_info(task: Operation) -> Tuple[FloatType, bool]:
    """Derive (storage float type, log_space) from the task's body ops."""
    for op in task.body.ops:
        if op.op_name == lospn.BodyOp.name:
            ty = op.results[0].type if op.results else None
            if ty is None:
                term = op.body_block.terminator
                ty = term.operands[0].type
            if isinstance(ty, lospn.LogType):
                return ty.base, True
            if isinstance(ty, FloatType):
                return ty, False
    raise IRError("task contains no lo_spn.body")


def _emit_samples(
    task: Operation,
    loop_builder: Builder,
    emitter: ScalarEmitter,
    sample_index: Value,
    func_args,
    options: CPULoweringOptions,
    vectorized: bool,
    lanes: Optional[int],
) -> None:
    """Emit the per-sample (or per-vector-of-samples) computation.

    ``lanes`` is the static vector width, or ``None`` for batch mode
    (runtime-width vectors spanning the whole chunk).
    """
    arg_map: Dict[Value, Value] = dict(zip(task.input_args, func_args))
    value_map: Dict[Value, Value] = {}
    tile_cache: Dict[int, Value] = {}

    def read_value(op: Operation) -> Value:
        buffer = arg_map[op.input]
        column = op.static_index
        if not vectorized:
            if op.transposed:
                row = loop_builder.create(arith.ConstantOp, column, index_type).result
                return loop_builder.create(
                    memref_dialect.LoadOp, buffer, [row, sample_index]
                ).result
            col = loop_builder.create(arith.ConstantOp, column, index_type).result
            return loop_builder.create(
                memref_dialect.LoadOp, buffer, [sample_index, col]
            ).result
        elem = buffer.type.element_type
        vec_type = VectorType((lanes,), elem)
        if op.transposed:
            # Intermediate [K x n] layout: row is contiguous, plain vector load.
            row = loop_builder.create(arith.ConstantOp, column, index_type).result
            return loop_builder.create(
                vector_dialect.LoadOp, buffer, [row, sample_index], vec_type
            ).result
        if options.use_shuffle:
            tile = tile_cache.get(id(buffer))
            if tile is None:
                tile = loop_builder.create(
                    vector_dialect.LoadTileOp, buffer, sample_index, lanes
                ).result
                tile_cache[id(buffer)] = tile
            return loop_builder.create(
                vector_dialect.ExtractColumnOp, tile, column
            ).result
        return loop_builder.create(
            vector_dialect.GatherOp, buffer, sample_index, column, vec_type
        ).result

    for op in task.body.ops:
        if op.op_name == lospn.BatchReadOp.name:
            value_map[op.results[0]] = read_value(op)
        elif op.op_name == lospn.BodyOp.name:
            inner_map: Dict[Value, Value] = {
                arg: value_map[operand]
                for arg, operand in zip(op.body_block.arguments, op.operands)
            }
            results = _emit_body(op, emitter, inner_map)
            for res, value in zip(op.results, results):
                value_map[res] = value
        elif op.op_name == lospn.BatchWriteOp.name:
            buffer = arg_map[op.batch_mem]
            for k, stored in enumerate(op.result_values):
                value = value_map[stored]
                value = _to_storage(value, emitter, loop_builder)
                row = loop_builder.create(arith.ConstantOp, k, index_type).result
                indices = [row, sample_index] if op.transposed else [sample_index, row]
                if vectorized:
                    loop_builder.create(
                        vector_dialect.StoreOp, value, buffer, indices
                    )
                else:
                    loop_builder.create(
                        memref_dialect.StoreOp, value, buffer, indices
                    )
        else:
            raise IRError(f"unexpected op '{op.op_name}' in task region")


def _to_storage(value: Value, emitter: ScalarEmitter, builder: Builder) -> Value:
    """Values are already stored as their base float type; no-op hook."""
    return value


def _emit_body(op: Operation, emitter: ScalarEmitter, value_map: Dict[Value, Value]):
    results: List[Value] = []
    for inner in op.body_block.ops:
        name = inner.op_name
        if name == lospn.GaussianOp.name:
            value = emitter.gaussian(
                value_map[inner.operands[0]],
                inner.mean,
                inner.stddev,
                inner.support_marginal,
            )
        elif name == lospn.CategoricalOp.name:
            value = emitter.categorical(
                value_map[inner.operands[0]],
                inner.probabilities,
                inner.support_marginal,
            )
        elif name == lospn.HistogramOp.name:
            value = emitter.histogram(
                value_map[inner.operands[0]],
                inner.bounds,
                inner.probabilities,
                inner.support_marginal,
            )
        elif name == lospn.MulOp.name:
            value = emitter.mul(
                value_map[inner.operands[0]], value_map[inner.operands[1]]
            )
        elif name == lospn.AddOp.name:
            value = emitter.add(
                value_map[inner.operands[0]], value_map[inner.operands[1]]
            )
        elif name == lospn.MaxOp.name:
            value = emitter.max(
                value_map[inner.operands[0]], value_map[inner.operands[1]]
            )
        elif name == lospn.SelectMaxOp.name:
            value = emitter.select_max(
                value_map[inner.operands[0]],
                value_map[inner.operands[1]],
                value_map[inner.operands[2]],
                value_map[inner.operands[3]],
            )
        elif name == lospn.InputValueOp.name:
            value = emitter.input_value(
                value_map[inner.operands[0]], inner.nan_value
            )
        elif name == lospn.ConstantOp.name:
            value = emitter.lo_constant(inner.value)
        elif name == lospn.YieldOp.name:
            results = [value_map[v] for v in inner.operands]
            continue
        else:
            raise IRError(f"cannot lower body op '{name}' for CPU")
        value_map[inner.results[0]] = value
    return results


# --- veclib scalarization -------------------------------------------------------------


_SCALARIZABLE = {
    math_dialect.LogOp.name: "log",
    math_dialect.ExpOp.name: "exp",
    math_dialect.Log1pOp.name: "log1p",
    math_dialect.SqrtOp.name: "sqrt",
}


def scalarize_vector_math(module: ModuleOp) -> int:
    """Replace vector math ops with lane-by-lane scalarized calls.

    Models compiling without Intel SVML / GLIBC libmvec: each lane is
    extracted, the scalar libm routine called, and the result re-inserted
    (paper Fig. 6). Returns the number of ops rewritten.
    """
    rewritten = 0
    for op in module.walk():
        fn = _SCALARIZABLE.get(op.op_name)
        if fn is None or not isinstance(op.results[0].type, VectorType):
            continue
        builder = Builder.before_op(op)
        call = builder.create(
            vector_dialect.ScalarizedCallOp, fn, op.operands[0]
        )
        op.replace_all_uses_with([call.result])
        op.erase()
        rewritten += 1
    return rewritten
