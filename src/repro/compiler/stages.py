"""Compile-flow stages as registered module-level passes.

Every stage of the end-to-end flow (paper Section IV) is a
:class:`~repro.ir.passes.Pass`, registered in
:mod:`repro.ir.pipeline_spec` so the whole compile flow is expressible
as a textual pipeline::

    frontend,hispn-simplify,lower-to-lospn,bufferize,
    buffer-optimization,buffer-deallocation,
    cpu-lowering{vectorize=batch},canonicalize,cse,licm,dce

Two stage shapes exist:

- *module-replacing* conversions (``frontend``, ``lower-to-lospn``,
  ``partition``, ``bufferize``, ``cpu-lowering``, ``gpu-lowering``)
  return a fresh module; the :class:`~repro.ir.passes.PassManager`
  splices it into the driver's module in place.
- in-place cleanups (``buffer-optimization``, ``buffer-deallocation``,
  ``balance-chains``, ``gpu-copy-elimination``) mutate and return
  ``None``, like any ordinary IR pass.

The target lowerings additionally capture :class:`KernelInfo` — the
kernel's signature-relevant facts — *before* erasing the LoSPN kernel
op, because the target's codegen step (which hangs off the
:class:`~repro.compiler.targets.Target`, not the pipeline) needs them
after the lo_spn ops are gone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..dialects import lospn
from ..ir import ModuleOp
from ..ir.ops import IRError, Operation
from ..ir.passes import Pass
from .balance import balance_chains
from .bufferization import bufferize, insert_deallocations, remove_result_copies
from .frontend import build_hispn_module
from .hispn_passes import HiSPNSimplifyPass as HiSPNSimplifyStage  # noqa: F401
from .structure import (  # noqa: F401
    StructureCSEStage,
    StructureCompressStage,
    StructurePruneStage,
)
from .lower_to_lospn import lower_to_lospn
from .partitioning import PartitioningOptions, PartitioningStats, partition_kernel


@dataclass
class KernelInfo:
    """Query-independent kernel facts captured before target lowering."""

    kernel_name: str
    num_features: int
    input_dtype: "np.dtype"
    result_dtype: "np.dtype"
    log_space: bool
    num_results: int
    num_tasks: int
    #: Host-side query plan (MPE traceback, sampling, ...) attached by
    #: the query lowering as a JSON ``queryPlan`` kernel attribute; the
    #: runtime wrapper in :mod:`repro.runtime.query_executable` reads it.
    query_plan: Optional[dict] = None
    #: Analysis-proven wave schedule attached by ``parallelize-partitions``
    #: as a JSON ``parallelSchedule`` kernel attribute; ``CPUExecutable``
    #: runs the waves concurrently (see :class:`ParallelizePartitionsPass`).
    parallel_plan: Optional[dict] = None


def capture_kernel_info(module: ModuleOp) -> KernelInfo:
    """Read the (first) ``lo_spn.kernel``'s signature facts."""
    import json

    from ..backends.cpu.codegen import numpy_dtype

    num_tasks = 0
    first = None
    for op in module.body_block.ops:
        if op.op_name == lospn.KernelOp.name:
            num_tasks += len(op.tasks())
            if first is None:
                first = op
    if first is None:
        raise IRError("module contains no lo_spn.kernel")
    input_type = first.arg_types[0]
    result_type = first.arg_types[-1]
    plan_text = first.attributes.get("queryPlan")
    parallel_text = first.attributes.get("parallelSchedule")
    return KernelInfo(
        kernel_name=first.sym_name,
        num_features=input_type.shape[1],
        input_dtype=numpy_dtype(input_type.element_type),
        result_dtype=numpy_dtype(result_type.element_type),
        log_space=isinstance(result_type.element_type, lospn.LogType),
        num_results=result_type.shape[0] or 1,
        num_tasks=num_tasks,
        query_plan=json.loads(plan_text) if plan_text else None,
        parallel_plan=json.loads(parallel_text) if parallel_text else None,
    )


class FrontendPass(Pass):
    """SPN graph + query → HiSPN module (paper Section IV-A2).

    The model is *bound* programmatically (the driver calls
    :meth:`bind` with the in-memory SPN); the textual form is just
    ``frontend``, so a parsed pipeline must be bound before running.
    """

    name = "frontend"

    def __init__(self):
        super().__init__()
        self.root = None
        self.query = None
        self._bound = False

    def bind(self, root, query) -> "FrontendPass":
        self.root = root
        self.query = query
        self._bound = True
        return self

    def run(self, op: Operation) -> Operation:
        if not self._bound:
            raise IRError(
                "frontend pass is unbound: compile via compile_spn(), or "
                "bind(root, query) before running a parsed pipeline"
            )
        return build_hispn_module(self.root, self.query)


class LowerToLoSPNPass(Pass):
    """HiSPN → LoSPN lowering with type decision (Section IV-A3)."""

    name = "lower-to-lospn"

    def __init__(self, use_log_space: bool = True):
        super().__init__()
        self.use_log_space = use_log_space

    def run(self, op: Operation) -> Operation:
        return lower_to_lospn(op, self.use_log_space)


class PartitionPass(Pass):
    """Acyclic graph partitioning into multiple tasks (Section IV-A4)."""

    name = "graph-partitioning"

    def __init__(
        self,
        max_partition_size: int = 10_000,
        balance_slack: float = 0.01,
        refinement_rounds: int = 2,
    ):
        super().__init__()
        self.options = PartitioningOptions(
            max_partition_size=max_partition_size,
            balance_slack=balance_slack,
            refinement_rounds=refinement_rounds,
        )
        #: Populated by :meth:`run`; the driver surfaces it on
        #: :class:`~repro.compiler.pipeline.CompilationResult`.
        self.stats: Optional[PartitioningStats] = None

    def run(self, op: Operation) -> Operation:
        new_module, self.stats = partition_kernel(op, self.options)
        return new_module


class BalanceChainsPass(Pass):
    """Re-associate add/mul chains into balanced trees (-O3)."""

    name = "balance-chains"

    def run(self, op: Operation) -> None:
        balance_chains(op)


class BufferizePass(Pass):
    """Tensor → memref bufferization (Section IV-A5)."""

    name = "bufferize"

    def run(self, op: Operation) -> Operation:
        return bufferize(op)


class BufferOptimizationPass(Pass):
    """Remove alloc+copy pairs feeding kernel outputs (-O1+)."""

    name = "buffer-optimization"

    def run(self, op: Operation) -> None:
        remove_result_copies(op)


class BufferDeallocationPass(Pass):
    """Insert ``memref.dealloc`` for every intermediate buffer."""

    name = "buffer-deallocation"

    def run(self, op: Operation) -> None:
        insert_deallocations(op)


class ParallelizePartitionsPass(Pass):
    """Mark provably-independent partitions for concurrent execution.

    Consults the memory-access summaries
    (:mod:`repro.ir.analysis.memory_access`) over the bufferized kernel
    and, when the task dependence DAG has a wave of two or more
    pairwise-disjoint tasks, attaches the wave schedule as a JSON
    ``parallelSchedule`` kernel attribute. ``CPUExecutable`` executes
    the waves on its worker pool; the ``concurrency`` check re-verifies
    any attached schedule from the raw access summaries on every
    ``verify_each`` run, so the proof never goes stale silently.

    The pass refuses to fire — leaving execution serial — whenever the
    summaries are imprecise, a task is wired to anything but the kernel
    input / output / an intermediate allocation, or an intermediate's
    shape is not the expected ``[static rows x dynamic batch]``.
    """

    name = "parallelize-partitions"

    def run(self, op: Operation) -> None:
        import json

        for kernel in op.walk():
            if kernel.op_name != lospn.KernelOp.name:
                continue
            plan = self._build_schedule(kernel)
            if plan is not None:
                kernel.attributes["parallelSchedule"] = json.dumps(
                    plan, sort_keys=True
                )

    @staticmethod
    def _build_schedule(kernel: Operation) -> Optional[dict]:
        from ..backends.cpu.codegen import numpy_dtype
        from ..ir.analysis.memory_access import (
            dependence_waves,
            summarize_kernel,
        )
        from ..ir.types import MemRefType

        summaries = summarize_kernel(kernel)
        if len(summaries) < 2 or not all(s.precise for s in summaries):
            return None
        waves = dependence_waves(summaries)
        if max(len(wave) for wave in waves) < 2:
            return None

        entry = kernel.regions[0].entry_block
        arg_index = {id(arg): i for i, arg in enumerate(entry.arguments)}
        allocs = [o for o in entry.ops if o.op_name == "memref.alloc"]
        buf_index = {id(a.results[0]): i for i, a in enumerate(allocs)}

        buffers = []
        for alloc in allocs:
            ty = alloc.results[0].type
            if (
                not isinstance(ty, MemRefType)
                or ty.rank != 2
                or not isinstance(ty.shape[0], int)
                or ty.shape[1] is not None
            ):
                return None
            buffers.append(
                {
                    "rows": ty.shape[0],
                    "dtype": np.dtype(numpy_dtype(ty.element_type)).name,
                }
            )

        tasks = []
        for summary in summaries:
            wiring = []
            for operand in summary.op.operands:
                if id(operand) in arg_index:
                    wiring.append(["arg", arg_index[id(operand)]])
                elif id(operand) in buf_index:
                    wiring.append(["buf", buf_index[id(operand)]])
                else:
                    return None
            tasks.append({"args": wiring})

        return {
            "waves": waves,
            "buffers": buffers,
            "tasks": tasks,
            "num_args": len(entry.arguments),
        }


class CPULoweringPass(Pass):
    """LoSPN → func/scf/vector CPU form (Section IV-B)."""

    name = "cpu-lowering"

    #: Option defaults; only deviations are printed in pipeline text.
    defaults = {
        "vectorize": "batch",
        "vector_isa": "avx2",
        "use_vector_library": True,
        "use_shuffle": True,
        "superword_factor": 128,
    }

    def __init__(
        self,
        vectorize: "bool | str" = "batch",
        vector_isa: str = "avx2",
        use_vector_library: bool = True,
        use_shuffle: bool = True,
        superword_factor: int = 128,
    ):
        super().__init__()
        from .cpu.lowering import normalize_vectorize_mode

        self.vectorize = normalize_vectorize_mode(vectorize)
        self.vector_isa = vector_isa
        self.use_vector_library = use_vector_library
        self.use_shuffle = use_shuffle
        self.superword_factor = superword_factor
        self.kernel_info: Optional[KernelInfo] = None

    def run(self, op: Operation) -> Operation:
        from .cpu.lowering import CPULoweringOptions, ISAS, lower_kernel_to_cpu

        if self.vector_isa not in ISAS:
            raise IRError(f"unknown vector ISA '{self.vector_isa}'")
        self.kernel_info = capture_kernel_info(op)
        return lower_kernel_to_cpu(
            op,
            CPULoweringOptions(
                vectorize=self.vectorize,
                isa=ISAS[self.vector_isa],
                use_vector_library=self.use_vector_library,
                use_shuffle=self.use_shuffle,
                superword_factor=self.superword_factor,
            ),
        )


class GPULoweringPass(Pass):
    """LoSPN → gpu kernels + host coordination (Section IV-C)."""

    name = "gpu-lowering"

    defaults = {"block_size": 64}

    def __init__(self, block_size: int = 64):
        super().__init__()
        self.block_size = block_size
        self.kernel_info: Optional[KernelInfo] = None

    def run(self, op: Operation) -> Operation:
        from .gpu.lowering import GPULoweringOptions, lower_kernel_to_gpu

        self.kernel_info = capture_kernel_info(op)
        return lower_kernel_to_gpu(
            op, GPULoweringOptions(block_size=self.block_size)
        )


class GPUCopyEliminationPass(Pass):
    """Remove redundant host↔device round trips (-O1+, Section IV-C)."""

    name = "gpu-copy-elimination"

    def run(self, op: Operation) -> None:
        from .gpu.copy_elim import eliminate_host_round_trips

        eliminate_host_round_trips(op)
