"""Early HiSPN-level optimizations (paper Section IV-A2).

After translation into HiSPN, MLIR-style canonicalization handles early
simplifications, most importantly "the transformation of DAG nodes with
only a single input": products and sums with a single operand forward
that operand (a single-operand weighted sum has weight 1 by the sum
normalization invariant).
"""

from __future__ import annotations

from ..dialects import hispn
from ..ir.ops import Operation
from ..ir.passes import Pass
from ..ir.rewrite import RewritePattern, Rewriter, apply_patterns_greedily


class SingleOperandProduct(RewritePattern):
    """product(x) → x."""

    op_name = hispn.ProductOp.name

    def match_and_rewrite(self, op: Operation, rewriter: Rewriter) -> bool:
        if len(op.operands) != 1:
            return False
        rewriter.replace_op(op, [op.operands[0]])
        return True


class SingleOperandSum(RewritePattern):
    """sum(x; w=1) → x."""

    op_name = hispn.SumOp.name

    def match_and_rewrite(self, op: Operation, rewriter: Rewriter) -> bool:
        if len(op.operands) != 1:
            return False
        rewriter.replace_op(op, [op.operands[0]])
        return True


class FlattenNestedProduct(RewritePattern):
    """product(product(a, b), c) → product(a, b, c) when the inner product
    has no other users (reduces DAG depth before binarization)."""

    op_name = hispn.ProductOp.name

    def match_and_rewrite(self, op: Operation, rewriter: Rewriter) -> bool:
        new_operands = []
        changed = False
        for operand in op.operands:
            producer = operand.defining_op
            if (
                producer is not None
                and producer.op_name == hispn.ProductOp.name
                and operand.has_one_use()
            ):
                new_operands.extend(producer.operands)
                changed = True
            else:
                new_operands.append(operand)
        if not changed:
            return False
        builder = rewriter.builder_before(op)
        replacement = builder.create(hispn.ProductOp, new_operands)
        rewriter.replace_op(op, [replacement.result])
        return True


HISPN_PATTERNS = (SingleOperandProduct, SingleOperandSum, FlattenNestedProduct)


def simplify_hispn(module: Operation) -> bool:
    """Apply the HiSPN early-optimization patterns to a fixpoint."""
    return apply_patterns_greedily(module, [cls() for cls in HISPN_PATTERNS])


class HiSPNSimplifyPass(Pass):
    name = "hispn-simplify"

    def run(self, op: Operation) -> None:
        simplify_hispn(op)
