"""Graph-level CSE: merge isomorphic sub-SPNs into shared references.

Unlike the generic SSA CSE (:mod:`repro.ir.transforms.cse`), which only
merges ops whose operand *identities* already coincide, this pass hashes
whole sub-SPNs canonically (:class:`CanonicalIndex`) and therefore merges
subtrees that are isomorphic but built from distinct values — e.g. the
per-class heads of an ensemble built as independent copies of the same
random structure. Because class ids are interned bottom-up, rewriting
every use to the class representative collapses entire duplicate
subtrees in one linear sweep; the orphaned duplicates are then erased
bottom-up.

Merging is *exact*: a shared reference computes the identical
distribution, so this pass needs no accuracy budget and the differential
oracle holds it to the reference tolerance, not a budget.
"""

from __future__ import annotations

from ...dialects import hispn
from ...ir.ops import Operation
from ...ir.passes import Pass
from ...ir.traits import Trait
from .canonical import CanonicalIndex, each_graph


def cse_graph(graph: Operation) -> int:
    """Merge isomorphic sub-SPNs inside one graph. Returns ops removed."""
    index = CanonicalIndex(graph)
    block = graph.regions[0].entry_block
    merged = 0
    for op in list(block.ops):
        if op.op_name not in hispn.NODE_OP_NAMES:
            continue
        representative = index.representative[index.class_id(op.results[0])]
        if representative is op:
            continue
        op.results[0].replace_all_uses_with(representative.results[0])
    # Erase the now-dead duplicates bottom-up (users before producers).
    for op in reversed(list(block.ops)):
        if (
            op.op_name in hispn.NODE_OP_NAMES
            and op.has_trait(Trait.PURE)
            and not op.has_uses
        ):
            op.erase()
            merged += 1
    return merged


def cse_module(module: Operation) -> int:
    """Run graph CSE on every ``hi_spn.graph`` in ``module``."""
    return sum(cse_graph(graph) for graph in each_graph(module))


class StructureCSEStage(Pass):
    name = "structure-cse"

    def run(self, op: Operation) -> None:
        cse_module(op)
