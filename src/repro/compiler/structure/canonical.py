"""Canonical hashing of sub-SPNs inside a ``hi_spn.graph``.

The structure suite (graph CSE, pruning, low-rank compression) needs one
shared answer to "are these two sub-DAGs the same distribution?". This
module value-numbers every SSA value in a graph: two values receive the
same *canonical class id* iff the sub-SPNs rooted at them are isomorphic
up to the algebraic identities HiSPN guarantees —

- ``hi_spn.product`` is commutative, so operand order is ignored;
- ``hi_spn.sum`` mixtures are order-free *as (child, weight) pairs*:
  the pairs are sorted jointly, so reordering children together with
  their weights does not change the class;
- leaves compare by parameters (via the dialect attribute keys), and
  block arguments by feature index.

Keys are interned bottom-up: a value's structural key only ever refers
to the *class ids* of its operands, never to nested keys, so hashing a
DAG is linear in its size (shared sub-DAGs are keyed once) and merging
by class id automatically merges whole isomorphic subtrees.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ...dialects import hispn
from ...ir.attributes import attributes_key
from ...ir.ops import Operation
from ...ir.value import Value


class CanonicalIndex:
    """Value numbering of a ``hi_spn.graph`` body under SPN identities."""

    def __init__(self, graph: Operation):
        self.graph = graph
        #: id(value) -> canonical class id.
        self.class_of: Dict[int, int] = {}
        #: structural key -> canonical class id (the interning table).
        self._classes: Dict[Tuple, int] = {}
        #: class id -> first op observed producing that class (ops only;
        #: block arguments are their own singleton classes).
        self.representative: Dict[int, Operation] = {}
        self._build()

    # -- construction ------------------------------------------------------------

    def _build(self) -> None:
        block = self.graph.regions[0].entry_block
        for index, argument in enumerate(block.arguments):
            self._assign(argument, ("arg", index))
        for op in block.ops:
            if not op.results:
                continue  # the hi_spn.root terminator
            class_id = self._assign(op.results[0], self._op_key(op))
            self.representative.setdefault(class_id, op)

    def _assign(self, value: Value, key: Tuple) -> int:
        class_id = self._classes.setdefault(key, len(self._classes))
        self.class_of[id(value)] = class_id
        return class_id

    def _op_key(self, op: Operation) -> Tuple:
        operands = tuple(self.class_of[id(v)] for v in op.operands)
        if op.op_name == hispn.ProductOp.name:
            # Commutative: operand multiset, not operand order.
            return (op.op_name, tuple(sorted(operands)))
        if op.op_name == hispn.SumOp.name:
            # Mixtures are order-free as (child, weight) pairs.
            pairs = tuple(sorted(zip(operands, op.weights)))
            return (op.op_name, pairs)
        return (op.op_name, operands, attributes_key(op.attributes))

    # -- queries -----------------------------------------------------------------

    def class_id(self, value: Value) -> int:
        return self.class_of[id(value)]

    def num_classes(self) -> int:
        return len(self._classes)


def graph_ops(graph: Operation) -> List[Operation]:
    """The node ops of a graph body (every op except the root marker)."""
    return [
        op
        for op in graph.regions[0].entry_block.ops
        if op.op_name in hispn.NODE_OP_NAMES
    ]


def each_graph(module: Operation):
    """Yield every ``hi_spn.graph`` nested under ``module``."""
    for op in module.walk():
        if op.op_name == hispn.GraphOp.name:
            yield op


def sum_depth(graph: Operation) -> int:
    """Maximum number of sum ops on any root-to-leaf path.

    The pruning pass allocates its accuracy budget across sum *levels*:
    each pruned sum perturbs the log value of everything above it, and
    perturbations compound along a path, so the per-sum budget share is
    ``budget / sum_depth``.
    """
    depth_of: Dict[int, int] = {}
    deepest = 0
    for op in graph.regions[0].entry_block.ops:
        if op.op_name not in hispn.NODE_OP_NAMES:
            continue
        operand_depth = max(
            (depth_of.get(id(v), 0) for v in op.operands), default=0
        )
        here = operand_depth + (1 if op.op_name == hispn.SumOp.name else 0)
        depth_of[id(op.results[0])] = here
        deepest = max(deepest, here)
    return deepest
