"""Near-zero-weight pruning with renormalization, behind an accuracy budget.

Trained SPNs (EM in particular) concentrate mixture mass on few children
and leave long tails of near-zero weights; every such edge still costs a
multiply-add per sample after lowering. This pass drops the smallest
weights of each ``hi_spn.sum`` and renormalizes the survivors so the sum
stays a distribution, under an explicit *accuracy budget*: the maximum
acceptable absolute log-likelihood error of the optimized model over the
modeled input domain.

A weight threshold alone cannot honor such a budget: a tiny-weight
component can still be the sole component covering part of the input
space, and dropping it sends the likelihood there to zero (log -inf).
Each drop is therefore gated on the *value ranges* of
:mod:`.ranges` — per-node (log_min, log_max) bounds over the modeled
leaf domain with true support semantics. Dropping child set D from a
sum is admissible only when

    bound = sum_perturbation_bound(m, U, L) <= per-sum allowance,

where ``m`` is the dropped weight mass, ``U`` the log of the dropped
children's worst-case (weighted, supremum) contribution and ``L`` the
log of the kept children's guaranteed (weighted, infimum) contribution.
If every kept child can simultaneously reach zero, ``L = -inf`` and the
bound is infinite — support can never be lost. The per-sum allowance is
``budget / sum of root-to-sum path multiplicities``
(:func:`.ranges.per_sum_budget`): log perturbations add across product
children and through shared sub-DAGs, so each sum's contribution counts
once per path and the total stays within ``budget`` at the root.

With ``budget = 0`` only exactly-zero weights are dropped (``m = 0``,
``U = -inf``, bound ``0``), which is semantics-preserving. Outside the
modeled domain (inputs beyond GAUSSIAN_DOMAIN_SIGMAS of every mixture
component) the log-space bound does not apply — though the *linear*
probability error is still at most the dropped mass. The differential
oracle enforces the budget on modeled-domain inputs.

Pruning is a single sweep — each sum gives up at most its allowance
once, and replacement sums inherit conservatively widened ranges so
downstream decisions stay sound. Cleanup of the structures pruning
exposes (single-operand sums/products, orphaned subtrees) is delegated
to the greedy driver afterwards, whose dead-op elimination erases any
subtree reachable only through a pruned edge.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from ...dialects import hispn
from ...ir.builder import Builder
from ...ir.ops import Operation
from ...ir.passes import Pass
from ...ir.rewrite import apply_patterns_greedily
from ..hispn_passes import SingleOperandProduct, SingleOperandSum
from .canonical import each_graph
from .ranges import (
    log_sum_exp,
    per_sum_budget,
    sum_perturbation_bound,
    value_log_ranges,
)

_NEG_INF = float("-inf")


def _prune_sum(
    op: Operation,
    allowance: float,
    ranges: Dict[int, Tuple[float, float]],
) -> bool:
    weights = op.weights
    n = len(weights)
    if n <= 1:
        return False
    bounds = [ranges.get(id(v), (_NEG_INF, math.inf)) for v in op.operands]
    logw = [math.log(w) if w > 0.0 else _NEG_INF for w in weights]
    # Greedy, smallest weight first; each candidate must keep the
    # worst-case perturbation of the whole drop set within the allowance.
    order = sorted(range(n), key=lambda i: weights[i])
    dropped: List[int] = []
    dropped_mass = 0.0
    dropped_upper: List[float] = []
    for i in order[:-1]:  # always keep at least one child
        trial_mass = dropped_mass + weights[i]
        trial_upper = dropped_upper + [logw[i] + bounds[i][1]]
        trial_set = set(dropped)
        trial_set.add(i)
        kept_lower = log_sum_exp(
            logw[j] + bounds[j][0] for j in range(n) if j not in trial_set
        )
        bound = sum_perturbation_bound(
            trial_mass, log_sum_exp(trial_upper), kept_lower
        )
        if bound > allowance:
            break
        dropped.append(i)
        dropped_mass = trial_mass
        dropped_upper = trial_upper
    if not dropped:
        return False
    keep = [i for i in range(n) if i not in set(dropped)]
    total = sum(weights[i] for i in keep)
    operands = [op.operands[i] for i in keep]
    new_weights = [weights[i] / total for i in keep]
    replacement = Builder.before_op(op).create(hispn.SumOp, operands, new_weights)
    # Downstream sums consult the replacement's range: the pruned sum
    # stays within `allowance` of the original in log space.
    lo, hi = ranges.get(id(op.results[0]), (_NEG_INF, math.inf))
    ranges[id(replacement.results[0])] = (lo - allowance, hi + allowance)
    op.results[0].replace_all_uses_with(replacement.results[0])
    op.erase()
    return True


def prune_graph(graph: Operation, accuracy_budget: float) -> bool:
    """One pruning sweep over every sum in ``graph``."""
    allowance = per_sum_budget(graph, accuracy_budget)
    ranges = value_log_ranges(graph)
    sums: List[Operation] = [
        op
        for op in graph.regions[0].entry_block.ops
        if op.op_name == hispn.SumOp.name
    ]
    changed = False
    for op in sums:
        changed |= _prune_sum(op, allowance, ranges)
    if changed:
        # Fold the sum(x; w=1) / product(x) shells pruning leaves behind
        # and let the driver's dead-op elimination reap orphaned subtrees.
        apply_patterns_greedily(
            graph, [SingleOperandSum(), SingleOperandProduct()]
        )
    return changed


def prune_module(module: Operation, accuracy_budget: float) -> bool:
    """Prune every graph in ``module`` under ``accuracy_budget``."""
    changed = False
    for graph in each_graph(module):
        changed |= prune_graph(graph, accuracy_budget)
    return changed


class StructurePruneStage(Pass):
    name = "structure-prune"

    def __init__(self, accuracy_budget: float = 0.0):
        super().__init__()
        self.accuracy_budget = float(accuracy_budget)

    def run(self, op: Operation) -> None:
        prune_module(op, self.accuracy_budget)
