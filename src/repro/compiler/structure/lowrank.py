"""Low-rank compression of dense sum layers (Ko et al., tensor networks).

RAT-SPN-style models contain *dense sum layers*: groups of sums that mix
the same ordered child tuple with different weight rows — an N x K
weight matrix W applied to a shared child vector. When W is (nearly)
low-rank, the layer factors into two thinner layers,

    W  ~=  A @ B,     A: N x r,   B: r x K,

i.e. ``r`` *inner* sums over the K children followed by N *outer* sums
over the r inner ones — ``r * (N + K)`` weighted edges instead of
``N * K``. Rank ``r`` is chosen from the truncated SVD spectrum, then
the factors are made non-negative (lowering takes ``log`` of weights,
so negative weights are not representable) with NMF multiplicative
updates seeded from the truncated SVD magnitudes, and normalized so
every new sum is a distribution: B rows sum to one, A absorbs B's row
sums and is renormalized, making each reconstructed row sum to one
exactly.

Accuracy: replacing a row's weights ``w`` by its reconstruction
``(A @ B)`` row perturbs that sum by at most
``|A@B - w|_1 * sup(children) / inf(sum)`` in relative terms over the
modeled input domain, so the admissible row-wise L1 tolerance is
derived from the :mod:`.ranges` value bounds: with per-sum
log-perturbation allowance ``own`` (:func:`.ranges.per_sum_budget`,
the same path-multiplicity allocation pruning uses),

    tolerance = (1 - e^{-own}) * exp(lo_sum - hi_children),

taking the worst row's lower bound. A row whose guaranteed value is
zero somewhere in the domain (``lo = -inf``) admits no perturbation
and blocks its layer. The *measured* max-abs log-likelihood error is
additionally enforced by the differential oracle. A layer with no rank
that fits both the budget and the edge-savings requirement
(``r * (N + K) < N * K``) is left untouched.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from ...dialects import hispn
from ...ir.builder import Builder
from ...ir.ops import Operation
from ...ir.passes import Pass
from .canonical import each_graph, graph_ops
from .ranges import per_sum_budget, value_log_ranges

_NEG_INF = float("-inf")

#: Multiplicative-update iterations; convergence is fast from an SVD seed.
_NMF_ITERATIONS = 200
_EPS = 1e-12


def find_dense_layers(graph: Operation) -> List[List[Operation]]:
    """Groups of >= 2 sums over an identical ordered child tuple."""
    layers: Dict[Tuple[int, ...], List[Operation]] = {}
    for op in graph_ops(graph):
        if op.op_name == hispn.SumOp.name and len(op.operands) >= 2:
            key = tuple(id(v) for v in op.operands)
            layers.setdefault(key, []).append(op)
    return [ops for ops in layers.values() if len(ops) >= 2]


def _nmf(
    matrix: np.ndarray, rank: int, iterations: int = _NMF_ITERATIONS
) -> Tuple[np.ndarray, np.ndarray]:
    """Non-negative factorization seeded from the truncated SVD."""
    u, s, vt = np.linalg.svd(matrix, full_matrices=False)
    scale = np.sqrt(s[:rank])
    a = np.abs(u[:, :rank] * scale) + _EPS
    b = np.abs(scale[:, None] * vt[:rank, :]) + _EPS
    for _ in range(iterations):
        b *= (a.T @ matrix) / (a.T @ a @ b + _EPS)
        a *= (matrix @ b.T) / (a @ (b @ b.T) + _EPS)
    return a, b


def _normalized_factors(
    a: np.ndarray, b: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Scale factors so every row of A and of B sums to one."""
    b_mass = b.sum(axis=1)
    b = b / b_mass[:, None]
    a = a * b_mass[None, :]
    a = a / a.sum(axis=1)[:, None]
    return a, b


def factor_layer(
    weights: np.ndarray, tolerance: float
) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    """Cheapest admissible factorization of a layer's weight matrix.

    Returns normalized ``(A, B)`` for the smallest rank whose max
    row-wise L1 reconstruction error is within ``tolerance`` and that
    actually saves edges (``r * (N + K) < N * K``), or None.
    """
    n, k = weights.shape
    max_rank = (n * k - 1) // (n + k)
    for rank in range(1, min(max_rank, min(n, k) - 1) + 1):
        a, b = _normalized_factors(*_nmf(weights, rank))
        error = np.abs(a @ b - weights).sum(axis=1).max()
        if error <= tolerance:
            return a, b
    return None


def _rewrite_layer(
    layer: List[Operation], a: np.ndarray, b: np.ndarray
) -> None:
    children = list(layer[0].operands)
    builder = Builder.before_op(layer[0])
    inner = [
        builder.create(hispn.SumOp, children, [float(w) for w in row]).result
        for row in b
    ]
    for op, row in zip(layer, a):
        replacement = Builder.before_op(op).create(
            hispn.SumOp, inner, [float(w) for w in row]
        )
        op.results[0].replace_all_uses_with(replacement.results[0])
        op.erase()


def _layer_tolerance(
    layer: List[Operation],
    ranges: Dict[int, Tuple[float, float]],
    allowance: float,
) -> float:
    """Admissible row-wise L1 weight error for one dense layer.

    Derived from the modeled-domain ranges so the layer's worst row
    stays within the per-sum log-perturbation ``allowance``; the
    ``2 * allowance`` deflation covers children that are themselves
    replaced (compressed or pruned) rows, each within ``allowance`` of
    their original value.
    """
    if allowance <= 0.0:
        return 0.0
    hi_children = max(
        ranges.get(id(v), (_NEG_INF, math.inf))[1] for v in layer[0].operands
    )
    worst_row = min(
        ranges.get(id(op.results[0]), (_NEG_INF, math.inf))[0] for op in layer
    )
    if hi_children == math.inf or worst_row == _NEG_INF:
        return 0.0
    return -math.expm1(-allowance) * math.exp(
        worst_row - hi_children - 2.0 * allowance
    )


def compress_graph(graph: Operation, accuracy_budget: float) -> int:
    """Factor every admissible dense layer. Returns layers compressed."""
    allowance = per_sum_budget(graph, accuracy_budget)
    ranges = value_log_ranges(graph)
    compressed = 0
    for layer in find_dense_layers(graph):
        tolerance = _layer_tolerance(layer, ranges, allowance)
        if tolerance <= 0.0:
            continue
        weights = np.array([op.weights for op in layer], dtype=np.float64)
        factors = factor_layer(weights, tolerance)
        if factors is None:
            continue
        _rewrite_layer(layer, *factors)
        compressed += 1
    return compressed


def compress_module(module: Operation, accuracy_budget: float) -> int:
    """Compress dense sum layers in every graph of ``module``."""
    return sum(
        compress_graph(graph, accuracy_budget) for graph in each_graph(module)
    )


class StructureCompressStage(Pass):
    name = "structure-compress"

    def __init__(self, accuracy_budget: float = 0.0):
        super().__init__()
        self.accuracy_budget = float(accuracy_budget)

    def run(self, op: Operation) -> None:
        compress_module(op, self.accuracy_budget)
