"""Structure-level optimization suite for the HiSPN dialect.

Three separately registered passes that rewrite the SPN *structure*
before lowering (ROADMAP item 4; architecture §17):

- ``structure-cse`` (:mod:`.cse`) — graph-level CSE merging isomorphic
  sub-SPNs into shared references; exact.
- ``structure-prune`` (:mod:`.prune`) — near-zero-weight pruning with
  renormalization under an accuracy budget.
- ``structure-compress`` (:mod:`.lowrank`) — low-rank factorization of
  dense sum layers (truncated SVD + NMF) under an accuracy budget.

All three are built on the shared canonical sub-SPN hashing in
:mod:`.canonical`; :mod:`.stats` profiles the opportunities and
:mod:`.export` converts optimized graphs back to serializable node DAGs.
"""

from .canonical import CanonicalIndex, each_graph, graph_ops, sum_depth
from .cse import StructureCSEStage, cse_graph, cse_module
from .export import graph_to_spn, module_to_spn
from .lowrank import (
    StructureCompressStage,
    compress_graph,
    compress_module,
    factor_layer,
    find_dense_layers,
)
from .prune import StructurePruneStage, prune_graph, prune_module
from .ranges import (
    path_multiplicities,
    per_sum_budget,
    sum_perturbation_bound,
    value_log_ranges,
)
from .stats import graph_structure_stats, render_structure_stats, structure_stats

__all__ = [
    "CanonicalIndex",
    "StructureCSEStage",
    "StructureCompressStage",
    "StructurePruneStage",
    "compress_graph",
    "compress_module",
    "cse_graph",
    "cse_module",
    "each_graph",
    "factor_layer",
    "find_dense_layers",
    "graph_ops",
    "graph_structure_stats",
    "graph_to_spn",
    "module_to_spn",
    "path_multiplicities",
    "per_sum_budget",
    "prune_graph",
    "prune_module",
    "render_structure_stats",
    "structure_stats",
    "sum_depth",
    "sum_perturbation_bound",
    "value_log_ranges",
]
