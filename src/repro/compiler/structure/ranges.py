"""Modeled-domain value ranges and budget allocation for lossy passes.

The lossy structure passes (pruning, low-rank compression) promise a
bound on the absolute log-likelihood perturbation of the whole model —
the *accuracy budget*. Weight-space reasoning alone cannot deliver such
a bound: a mixture component with a tiny weight can still be the only
component covering part of the input space, and dropping it collapses
the likelihood there to zero (log -inf). The sound criterion needs
*value ranges*: per-node bounds on the log density each sub-SPN can
produce over the modeled input domain — the same bounded domain the
computation-type decision uses (:mod:`repro.compiler.error_analysis`:
Gaussians over mean ± :data:`GAUSSIAN_DOMAIN_SIGMAS` standard
deviations, discrete leaves over their listed buckets).

Two differences from the error-analysis ranges, both required for
soundness of *structural* rewrites:

- **true support**: a zero-probability category makes a leaf's lower
  bound log 0 = -inf (the error analysis floors it, which is fine for
  rounding bounds but would let pruning delete a sub-SPN's entire
  support);
- **sum lower bounds add**: ``inf(sum w_k c_k) >= sum w_k inf(c_k)``,
  so the sum's lower bound is the log-sum-exp of the weighted child
  lower bounds rather than the single smallest child (tighter, and the
  tightness is what lets pruning keep a meaningful denominator).

Budget allocation: perturbations *add* across the children of a
product and compound through shared sub-DAGs, so a per-path split is
unsound — the right multiplicity of a sum op is the number of
root-to-op paths. With ``mult(s)`` path counts, an easy induction gives

    |dlog root| <= sum over sums s of mult(s) * own(s)

so a uniform per-sum allocation ``own = budget / sum_s mult(s)`` keeps
the root perturbation within ``budget`` over the modeled domain.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Tuple

from ...dialects import hispn
from ...ir.ops import Operation
from ..error_analysis import GAUSSIAN_DOMAIN_SIGMAS

_NEG_INF = float("-inf")


def log_sum_exp(terms: Iterable[float]) -> float:
    """Stable ``log(sum(exp(t)))``; empty or all ``-inf`` gives -inf."""
    terms = [t for t in terms if t != _NEG_INF]
    if not terms:
        return _NEG_INF
    peak = max(terms)
    if peak == math.inf:
        return math.inf
    return peak + math.log(sum(math.exp(t - peak) for t in terms))


def support_leaf_range(op: Operation) -> Tuple[float, float]:
    """(log_min, log_max) of a leaf over the modeled domain, true support.

    Unlike :func:`repro.compiler.error_analysis._leaf_range`, a
    zero-probability bucket yields a genuine ``-inf`` lower bound: the
    leaf's support has a hole, and any rewrite relying on this leaf to
    keep the mixture positive must see that.
    """
    name = op.op_name
    if name == hispn.GaussianOp.name:
        peak = -math.log(op.stddev * math.sqrt(2.0 * math.pi))
        return peak - 0.5 * GAUSSIAN_DOMAIN_SIGMAS ** 2, peak
    if name in (hispn.CategoricalOp.name, hispn.HistogramOp.name):
        probs = list(op.probabilities)
        if not probs:
            return _NEG_INF, _NEG_INF
        lo = min(probs)
        hi = max(probs)
        return (
            math.log(lo) if lo > 0.0 else _NEG_INF,
            math.log(hi) if hi > 0.0 else _NEG_INF,
        )
    raise ValueError(f"not a leaf op: {name}")


def value_log_ranges(graph: Operation) -> Dict[int, Tuple[float, float]]:
    """Bottom-up (log_min, log_max) per node value, keyed by id(value)."""
    ranges: Dict[int, Tuple[float, float]] = {}
    for op in graph.regions[0].entry_block.ops:
        name = op.op_name
        if name not in hispn.NODE_OP_NAMES:
            continue
        if name in hispn.LEAF_OP_NAMES:
            bounds = support_leaf_range(op)
        elif name == hispn.ProductOp.name:
            children = [
                ranges.get(id(v), (_NEG_INF, math.inf)) for v in op.operands
            ]
            bounds = (
                sum(lo for lo, _ in children),
                sum(hi for _, hi in children),
            )
        elif name == hispn.SumOp.name:
            children = [
                ranges.get(id(v), (_NEG_INF, math.inf)) for v in op.operands
            ]
            logw = [
                math.log(w) if w > 0.0 else _NEG_INF for w in op.weights
            ]
            bounds = (
                log_sum_exp(w + lo for w, (lo, _) in zip(logw, children)),
                log_sum_exp(w + hi for w, (_, hi) in zip(logw, children)),
            )
        else:  # pragma: no cover - dialect is closed
            raise ValueError(f"unexpected op {name}")
        ranges[id(op.results[0])] = bounds
    return ranges


def path_multiplicities(graph: Operation) -> Dict[int, int]:
    """Root-to-op path counts, keyed by id(op). Unreachable ops get 0.

    A sub-SPN referenced from ``k`` places perturbs the root ``k``
    times over (log perturbations add across product children), so its
    budget share must shrink by the same factor. Counts are capped to
    keep pathological DAGs from overflowing — the cap only makes the
    allocation *more* conservative.
    """
    cap = 1 << 40
    count: Dict[int, int] = {}

    def bump(value, amount: int) -> None:
        op = value.defining_op
        if op is not None:
            count[id(op)] = min(cap, count.get(id(op), 0) + amount)

    for op in reversed(list(graph.regions[0].entry_block.ops)):
        if op.op_name == hispn.RootOp.name:
            for value in op.operands:
                bump(value, 1)
        elif op.op_name in (hispn.SumOp.name, hispn.ProductOp.name):
            here = count.get(id(op), 0)
            if here:
                for value in op.operands:
                    bump(value, here)
    return count


def per_sum_budget(graph: Operation, accuracy_budget: float) -> float:
    """Uniform per-sum log-perturbation allowance under the budget.

    ``budget / sum of path multiplicities over all reachable sums`` —
    the allocation under which the path-multiplicity induction bounds
    the root log perturbation by ``accuracy_budget``.
    """
    if accuracy_budget <= 0.0:
        return 0.0
    mults = path_multiplicities(graph)
    total = sum(
        mults.get(id(op), 0)
        for op in graph.regions[0].entry_block.ops
        if op.op_name == hispn.SumOp.name
    )
    if total == 0:
        return 0.0
    return accuracy_budget / total


def sum_perturbation_bound(
    dropped_mass: float, dropped_upper_log: float, kept_lower_log: float
) -> float:
    """Worst-case |dlog| of replacing a sum by its renormalized survivors.

    With dropped weight mass ``m``, ``U = log sum_D w_k sup(c_k)`` and
    ``L = log sum_keep w_j inf(c_j)`` over the modeled domain, the
    dropped share of the sum's value is at most
    ``alpha = e^U / (e^U + e^L)``, so after renormalization by
    ``1/(1-m)`` the log value moves within
    ``[log(1-alpha) - log(1-m), -log(1-m)]``.
    """
    if dropped_mass >= 1.0:
        return math.inf
    if dropped_upper_log == _NEG_INF:
        alpha = 0.0
    elif kept_lower_log == _NEG_INF:
        return math.inf
    else:
        alpha = 1.0 / (1.0 + math.exp(kept_lower_log - dropped_upper_log))
    if alpha >= 1.0:
        return math.inf
    up = -math.log1p(-dropped_mass)
    down = -math.log1p(-alpha) + math.log1p(-dropped_mass)
    return max(up, down)
