"""Structure statistics: what would the optimization suite buy here?

Computed on HiSPN before any structure pass runs, so the report is an
*opportunity* profile: how much duplicate structure graph CSE would
merge, how much near-zero weight mass pruning could drop at a given
budget, and which dense sum layers are candidates for low-rank
compression. Surfaced as ``python -m repro analyze --structure-stats
<model>`` with both text and JSON output.
"""

from __future__ import annotations

import math
from typing import Dict, List

from ...dialects import hispn
from ...ir.ops import Operation
from .canonical import CanonicalIndex, each_graph, graph_ops, sum_depth
from .lowrank import find_dense_layers

#: Weight-histogram bucket edges (decades); weights below the smallest
#: edge land in the first bucket, the rest in [edge, next_edge).
_DECADES = (1e-8, 1e-6, 1e-4, 1e-2, 1e-1, 1.0)


def _weight_histogram(weights: List[float]) -> Dict[str, int]:
    histogram: Dict[str, int] = {"zero": 0}
    previous = 0.0
    for edge in _DECADES:
        histogram[f"[{previous:g}, {edge:g})"] = 0
        previous = edge
    histogram[">= 1"] = 0
    for weight in weights:
        if weight == 0.0:
            histogram["zero"] += 1
            continue
        previous = 0.0
        for edge in _DECADES:
            if weight < edge:
                histogram[f"[{previous:g}, {edge:g})"] += 1
                break
            previous = edge
        else:
            histogram[">= 1"] += 1
    return histogram


def graph_structure_stats(graph: Operation) -> Dict[str, object]:
    """Structure profile of one ``hi_spn.graph``."""
    ops = graph_ops(graph)
    counts: Dict[str, int] = {}
    weights: List[float] = []
    uses = 0
    shared = 0
    for op in ops:
        counts[op.op_name] = counts.get(op.op_name, 0) + 1
        if op.op_name == hispn.SumOp.name:
            weights.extend(op.weights)
        num_uses = op.results[0].num_uses
        uses += num_uses
        if num_uses > 1:
            shared += 1
    index = CanonicalIndex(graph)
    distinct = len(
        {index.class_id(op.results[0]) for op in ops}
    )
    layers = find_dense_layers(graph)
    return {
        "ops": len(ops),
        "ops_by_kind": dict(sorted(counts.items())),
        "sum_depth": sum_depth(graph),
        # DAG reuse already present: mean users per node, shared-node count.
        "sharing_factor": round(uses / len(ops), 4) if ops else 0.0,
        "shared_nodes": shared,
        # CSE opportunity: ops minus canonical classes = mergeable duplicates.
        "duplicate_ops": len(ops) - distinct,
        "sum_weights": len(weights),
        "weight_histogram": _weight_histogram(weights),
        "dense_layers": [
            {"sums": len(layer), "children": len(layer[0].operands)}
            for layer in layers
        ],
    }


def structure_stats(module: Operation) -> Dict[str, object]:
    """Aggregate structure profile across every graph in ``module``."""
    graphs = [graph_structure_stats(graph) for graph in each_graph(module)]
    total_ops = sum(g["ops"] for g in graphs)
    duplicates = sum(g["duplicate_ops"] for g in graphs)
    return {
        "graphs": graphs,
        "total_ops": total_ops,
        "duplicate_ops": duplicates,
        "cse_reduction_estimate": (
            round(duplicates / total_ops, 4) if total_ops else 0.0
        ),
    }


def render_structure_stats(stats: Dict[str, object]) -> str:
    """Human-readable rendering of :func:`structure_stats` output."""
    lines = [
        f"structure-stats: {stats['total_ops']} ops, "
        f"{stats['duplicate_ops']} duplicates "
        f"(CSE would remove ~{stats['cse_reduction_estimate'] * 100:.1f}%)"
    ]
    for number, graph in enumerate(stats["graphs"]):
        lines.append(
            f"  graph {number}: {graph['ops']} ops, "
            f"sum depth {graph['sum_depth']}, "
            f"sharing factor {graph['sharing_factor']:.2f} "
            f"({graph['shared_nodes']} shared nodes)"
        )
        for kind, count in graph["ops_by_kind"].items():
            lines.append(f"    {kind:24s} {count}")
        lines.append(
            f"    weight histogram ({graph['sum_weights']} sum weights):"
        )
        for bucket, count in graph["weight_histogram"].items():
            if count:
                lines.append(f"      {bucket:16s} {count}")
        for layer in graph["dense_layers"]:
            lines.append(
                f"    dense layer: {layer['sums']} sums x "
                f"{layer['children']} children"
            )
    return "\n".join(lines)
