"""Export an optimized HiSPN graph back to a ``repro.spn`` node DAG.

The frontend translation (:func:`repro.compiler.frontend.build_hispn_module`)
maps node DAGs to HiSPN 1:1; this is its inverse, so a structurally
optimized module can be persisted through the existing
:mod:`repro.spn.serialization` binary format and recompiled later —
shared sub-SPNs stay shared (one :class:`Node` per SSA value) and
factored sum layers come back as the two thinner layers the compression
pass created.
"""

from __future__ import annotations

from typing import Dict, List

from ...dialects import hispn
from ...ir.ops import Operation
from ...spn.nodes import Categorical, Gaussian, Histogram, Node, Product, Sum
from ...ir.value import Value
from .canonical import each_graph


def graph_to_spn(graph: Operation) -> List[Node]:
    """Rebuild the node DAG of one ``hi_spn.graph``; one root per head."""
    block = graph.regions[0].entry_block
    nodes: Dict[int, Node] = {}

    def child(value: Value) -> Node:
        return nodes[id(value)]

    root_op = None
    for op in block.ops:
        if op.op_name == hispn.GaussianOp.name:
            node: Node = Gaussian(_variable(op), op.mean, op.stddev)
        elif op.op_name == hispn.CategoricalOp.name:
            node = Categorical(_variable(op), op.probabilities)
        elif op.op_name == hispn.HistogramOp.name:
            node = Histogram(_variable(op), op.bounds, op.probabilities)
        elif op.op_name == hispn.ProductOp.name:
            node = Product([child(v) for v in op.operands])
        elif op.op_name == hispn.SumOp.name:
            node = Sum([child(v) for v in op.operands], op.weights)
        elif op.op_name == hispn.RootOp.name:
            root_op = op
            continue
        else:  # pragma: no cover - the graph body vocabulary is closed
            raise TypeError(f"unhandled op '{op.op_name}' in hi_spn.graph")
        nodes[id(op.results[0])] = node
    if root_op is None:
        raise ValueError("hi_spn.graph has no root op")
    return [child(value) for value in root_op.operands]


def module_to_spn(module: Operation) -> List[Node]:
    """Roots of the first (and in practice only) graph in ``module``."""
    for graph in each_graph(module):
        return graph_to_spn(graph)
    raise ValueError("module contains no hi_spn.graph")


def _variable(op: Operation) -> int:
    argument = op.operands[0]
    index = getattr(argument, "arg_index", None)
    if index is None:
        raise TypeError(
            f"leaf '{op.op_name}' does not read a graph block argument"
        )
    return index
