"""Shared lowering emitters: LoSPN body arithmetic → arith/math/vector ops.

Both target lowerings (CPU scalar loop, CPU vectorized loop, GPU kernel
body) need the same translation of SPN node semantics into elementary
operations, differing only in the value *shape* (scalar vs W-lane vector)
and in the discrete-leaf strategy (table lookup on CPU, select cascade on
GPU — paper Section IV-C). The two emitter classes below capture those
variations behind one interface:

- probability multiplication: ``mulf`` in linear space, ``addf`` in log
  space,
- probability addition: ``addf`` in linear space, a numerically stable
  ``max + log1p(exp(min - max))`` expansion in log space,
- Gaussian leaves: PDF evaluation (linear) or the fused
  ``c1 - (x-m)^2 * c2`` form (log),
- discrete leaves: clamped table lookup or select cascade, and
- marginalization: NaN evidence short-circuits to probability 1 (log 0),
  with a NaN-safe placeholder feeding the index/PDF computation.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..dialects import arith, math_dialect, memref as memref_dialect, vector as vector_dialect
from ..ir.builder import Builder
from ..ir.ops import IRError, Operation
from ..ir.types import FloatType, IntegerType, Type, VectorType, i1, i64, index as index_type
from ..ir.value import Value

LOG_2PI = math.log(2.0 * math.pi)

#: Mass assigned to values outside a histogram's covered range; mirrors
#: the reference implementation (spn.nodes.Histogram.EPSILON).
HISTOGRAM_EPSILON = 1e-12


class ScalarEmitter:
    """Emits scalar arith/math ops for LoSPN body semantics.

    Args:
        builder: insertion point for per-sample ops (inside the loop).
        table_builder: insertion point for hoisted constant tables
            (function entry); tables must not be re-materialized per
            sample.
        compute_type: the storage float type (f32/f64) of the computation.
        log_space: whether values represent log probabilities.
        discrete_mode: "lookup" (CPU table load) or "cascade" (GPU selects).
    """

    def __init__(
        self,
        builder: Builder,
        table_builder: Builder,
        compute_type: FloatType,
        log_space: bool,
        discrete_mode: str = "lookup",
    ):
        if discrete_mode not in ("lookup", "cascade"):
            raise IRError(f"unknown discrete leaf mode '{discrete_mode}'")
        self.builder = builder
        self.table_builder = table_builder
        self.compute_type = compute_type
        self.log_space = log_space
        self.discrete_mode = discrete_mode
        self._table_cache: Dict[Tuple, Value] = {}

    # -- shape hooks (overridden by the vector emitter) -------------------------

    @property
    def value_type(self) -> Type:
        return self.compute_type

    def index_type(self) -> Type:
        return i64

    def splat(self, value: Value) -> Value:
        """Adapt a scalar constant to the emitter's value shape."""
        return value

    # -- basics -------------------------------------------------------------------

    def constant(self, value: float) -> Value:
        scalar = self.builder.create(arith.ConstantOp, value, self.compute_type).result
        return self.splat(scalar)

    def int_constant(self, value: int) -> Value:
        scalar = self.builder.create(arith.ConstantOp, value, i64).result
        return self.splat_int(scalar)

    def splat_int(self, value: Value) -> Value:
        return value

    def convert_input(self, x: Value) -> Value:
        """Convert a loaded input feature to the computation float type."""
        xt = x.type
        elem = xt.element_type if isinstance(xt, VectorType) else xt
        if elem == self.compute_type:
            return x
        target = (
            VectorType(xt.shape, self.compute_type)
            if isinstance(xt, VectorType)
            else self.compute_type
        )
        if isinstance(elem, FloatType) and elem.width < self.compute_type.width:
            return self.builder.create(arith.ExtFOp, x, target).result
        if isinstance(elem, FloatType):
            return self.builder.create(arith.TruncFOp, x, target).result
        return self.builder.create(arith.SIToFPOp, x, target).result

    # -- probability arithmetic -------------------------------------------------------

    def mul(self, a: Value, b: Value) -> Value:
        if self.log_space:
            return self.builder.create(arith.AddFOp, a, b).result
        return self.builder.create(arith.MulFOp, a, b).result

    def add(self, a: Value, b: Value) -> Value:
        if not self.log_space:
            return self.builder.create(arith.AddFOp, a, b).result
        # log-add-exp: max(a,b) + log1p(exp(min - max)), guarded so that
        # (-inf, -inf) stays -inf instead of becoming NaN.
        b_ = self.builder
        a_ge_b = b_.create(arith.CmpFOp, "oge", a, b).result
        hi = b_.create(arith.SelectOp, a_ge_b, a, b).result
        lo = b_.create(arith.SelectOp, a_ge_b, b, a).result
        diff = b_.create(arith.SubFOp, lo, hi).result
        exp = b_.create(math_dialect.ExpOp, diff).result
        log1p = b_.create(math_dialect.Log1pOp, exp).result
        combined = b_.create(arith.AddFOp, hi, log1p).result
        neg_inf = self.constant(-math.inf)
        is_neg_inf = b_.create(arith.CmpFOp, "oeq", hi, neg_inf).result
        return b_.create(arith.SelectOp, is_neg_inf, neg_inf, combined).result

    def max(self, a: Value, b: Value) -> Value:
        """Probability maximum (raw-value max in both spaces)."""
        b_ = self.builder
        a_ge_b = b_.create(arith.CmpFOp, "oge", a, b).result
        return b_.create(arith.SelectOp, a_ge_b, a, b).result

    def select_max(self, a: Value, b: Value, t: Value, f: Value) -> Value:
        """Running-argmax select: ``t`` where ``a > b`` (strictly), else ``f``.

        The strict comparison keeps the *first* maximum across a chain of
        selects, matching the reference tracebacks and ``np.argmax``.
        """
        b_ = self.builder
        a_gt_b = b_.create(arith.CmpFOp, "ogt", a, b).result
        return b_.create(arith.SelectOp, a_gt_b, t, f).result

    def input_value(self, x: Value, nan_value: float) -> Value:
        """The raw feature value, with NaN replaced by ``nan_value``."""
        b_ = self.builder
        x = self.convert_input(x)
        is_nan = b_.create(arith.CmpFOp, "une", x, x).result
        return b_.create(arith.SelectOp, is_nan, self.constant(nan_value), x).result

    def lo_constant(self, payload: float) -> Value:
        """A lo_spn.constant payload (already in target space)."""
        return self.constant(payload)

    # -- marginalization helper ----------------------------------------------------------

    def _with_marginal(self, x: Value, emit_fn) -> Value:
        """Evaluate ``emit_fn(safe_x)`` with NaN evidence marginalized out."""
        b_ = self.builder
        is_nan = b_.create(arith.CmpFOp, "une", x, x).result
        zero = self.constant(0.0)
        safe_x = b_.create(arith.SelectOp, is_nan, zero, x).result
        raw = emit_fn(safe_x)
        one = self.constant(0.0 if self.log_space else 1.0)
        return b_.create(arith.SelectOp, is_nan, one, raw).result

    # -- leaves ------------------------------------------------------------------------

    def gaussian(
        self, x: Value, mean: float, stddev: float, support_marginal: bool
    ) -> Value:
        x = self.convert_input(x)
        if support_marginal:
            return self._with_marginal(x, lambda v: self._gaussian_raw(v, mean, stddev))
        return self._gaussian_raw(x, mean, stddev)

    def _gaussian_raw(self, x: Value, mean: float, stddev: float) -> Value:
        b_ = self.builder
        mean_c = self.constant(mean)
        centered = b_.create(arith.SubFOp, x, mean_c).result
        squared = b_.create(arith.MulFOp, centered, centered).result
        inv_two_var = 1.0 / (2.0 * stddev * stddev)
        if self.log_space:
            # log N(x) = c1 - (x-m)^2 * c2
            c1 = -math.log(stddev) - 0.5 * LOG_2PI
            scaled = b_.create(
                arith.MulFOp, squared, self.constant(inv_two_var)
            ).result
            return b_.create(arith.SubFOp, self.constant(c1), scaled).result
        coefficient = 1.0 / (stddev * math.sqrt(2.0 * math.pi))
        neg_scaled = b_.create(
            arith.MulFOp, squared, self.constant(-inv_two_var)
        ).result
        exp = b_.create(math_dialect.ExpOp, neg_scaled).result
        return b_.create(arith.MulFOp, exp, self.constant(coefficient)).result

    def categorical(
        self, x: Value, probabilities: Sequence[float], support_marginal: bool
    ) -> Value:
        count = len(probabilities)
        zero_prob = -math.inf if self.log_space else 0.0

        def emit(v: Value) -> Value:
            # Domain rule shared with spn.nodes.Categorical.log_density:
            # values outside [0, K) — including NaN, which fails both
            # ordered comparisons — carry zero probability. The index is
            # computed from a domain-safe placeholder so NaN/huge values
            # never reach the float→int conversion.
            b_ = self.builder
            ge_lo = b_.create(arith.CmpFOp, "oge", v, self.constant(0.0)).result
            lt_hi = b_.create(
                arith.CmpFOp, "olt", v, self.constant(float(count))
            ).result
            in_domain = b_.create(arith.AndIOp, ge_lo, lt_hi).result
            safe = b_.create(
                arith.SelectOp, in_domain, v, self.constant(0.0)
            ).result
            idx = self._index_from(safe, offset=0.0, scale=1.0)
            idx = self._clamp_index(idx, count)
            value = self._discrete_value(idx, self._target_space(probabilities))
            return b_.create(
                arith.SelectOp, in_domain, value, self.constant(zero_prob)
            ).result

        x = self.convert_input(x)
        if support_marginal:
            return self._with_marginal(x, emit)
        return emit(x)

    def histogram(
        self,
        x: Value,
        bounds: Sequence[float],
        probabilities: Sequence[float],
        support_marginal: bool,
    ) -> Value:
        bounds = list(bounds)
        widths = np.diff(bounds)
        if not np.allclose(widths, widths[0], rtol=1e-6):
            raise IRError(
                "histogram lowering requires uniform bucket widths; "
                "re-discretize the leaf or use a categorical leaf"
            )
        lo, width = float(bounds[0]), float(widths[0])
        hi = float(bounds[-1])
        eps = math.log(HISTOGRAM_EPSILON) if self.log_space else HISTOGRAM_EPSILON
        # The reference (spn.nodes.Histogram, mirroring SPFlow) floors
        # every bucket at EPSILON so zero-density buckets never produce
        # -inf; the compiled table must match.
        probabilities = np.maximum(
            np.asarray(probabilities, dtype=np.float64), HISTOGRAM_EPSILON
        )

        def emit(v: Value) -> Value:
            # Out-of-range values (including NaN without marginal
            # support) receive the epsilon mass; the bucket index is
            # computed from an in-range placeholder so NaN/huge values
            # never reach the float→int conversion.
            b_ = self.builder
            ge_lo = b_.create(arith.CmpFOp, "oge", v, self.constant(lo)).result
            lt_hi = b_.create(arith.CmpFOp, "olt", v, self.constant(hi)).result
            in_range = b_.create(arith.AndIOp, ge_lo, lt_hi).result
            safe = b_.create(
                arith.SelectOp, in_range, v, self.constant(lo)
            ).result
            idx = self._index_from(safe, offset=lo, scale=1.0 / width)
            idx = self._clamp_index(idx, len(probabilities))
            value = self._discrete_value(idx, self._target_space(probabilities))
            return b_.create(
                arith.SelectOp, in_range, value, self.constant(eps)
            ).result

        x = self.convert_input(x)
        if support_marginal:
            return self._with_marginal(x, emit)
        return emit(x)

    # -- discrete machinery ----------------------------------------------------------------

    def _target_space(self, probabilities: Sequence[float]) -> np.ndarray:
        probs = np.asarray(probabilities, dtype=np.float64)
        if self.log_space:
            with np.errstate(divide="ignore"):
                probs = np.log(probs)
        dtype = np.float32 if self.compute_type.width == 32 else np.float64
        return probs.astype(dtype)

    def _index_from(self, v: Value, offset: float, scale: float) -> Value:
        """Compute clamped bucket index floor((v - offset) * scale)."""
        b_ = self.builder
        shifted = v
        if offset != 0.0:
            shifted = b_.create(arith.SubFOp, v, self.constant(offset)).result
        if scale != 1.0:
            shifted = b_.create(arith.MulFOp, shifted, self.constant(scale)).result
        return b_.create(arith.FPToSIOp, shifted, self.index_type()).result

    def _clamp_index(self, idx: Value, count: int) -> Value:
        b_ = self.builder
        zero = self.int_constant(0)
        top = self.int_constant(count - 1)
        lt_zero = b_.create(arith.CmpIOp, "slt", idx, zero).result
        idx = b_.create(arith.SelectOp, lt_zero, zero, idx).result
        gt_top = b_.create(arith.CmpIOp, "sgt", idx, top).result
        return b_.create(arith.SelectOp, gt_top, top, idx).result

    def _discrete_value(self, idx: Value, table: np.ndarray) -> Value:
        if self.discrete_mode == "cascade":
            return self._select_cascade(idx, table)
        return self._table_lookup(idx, table)

    def _table_lookup(self, idx: Value, table: np.ndarray) -> Value:
        buffer = self._get_table(table)
        b_ = self.builder
        as_index = b_.create(arith.IndexCastOp, idx, index_type).result
        return b_.create(memref_dialect.LoadOp, buffer, [as_index]).result

    def _get_table(self, table: np.ndarray) -> Value:
        key = (table.dtype.str, table.tobytes())
        cached = self._table_cache.get(key)
        if cached is None:
            cached = self.table_builder.create(
                memref_dialect.ConstantBufferOp, table, self.compute_type
            ).result
            self._table_cache[key] = cached
        return cached

    def _select_cascade(self, idx: Value, table: np.ndarray) -> Value:
        b_ = self.builder
        result = self.constant(float(table[-1]))
        for position in range(len(table) - 2, -1, -1):
            matches = b_.create(
                arith.CmpIOp, "eq", idx, self.int_constant(position)
            ).result
            result = b_.create(
                arith.SelectOp, matches, self.constant(float(table[position])), result
            ).result
        return result


class VectorEmitter(ScalarEmitter):
    """Emits W-lane vector ops for LoSPN body semantics.

    Reuses every ScalarEmitter recipe; the overrides below lift constants
    to broadcasts, indexes to integer vectors, and table lookups to
    vector gathers.

    ``lanes`` is the static vector width, or ``None`` for batch
    vectorization: values become runtime-width vectors
    (``vector<?xf64>``) spanning the whole chunk.
    """

    def __init__(
        self,
        builder: Builder,
        table_builder: Builder,
        compute_type: FloatType,
        log_space: bool,
        lanes: Optional[int],
        discrete_mode: str = "lookup",
    ):
        super().__init__(builder, table_builder, compute_type, log_space, discrete_mode)
        self.lanes = lanes

    @property
    def value_type(self) -> VectorType:
        return VectorType((self.lanes,), self.compute_type)

    def index_type(self) -> VectorType:
        return VectorType((self.lanes,), i64)

    def splat(self, value: Value) -> Value:
        return self.builder.create(
            vector_dialect.BroadcastOp, value, VectorType((self.lanes,), value.type)
        ).result

    def splat_int(self, value: Value) -> Value:
        return self.builder.create(
            vector_dialect.BroadcastOp, value, VectorType((self.lanes,), i64)
        ).result

    def _table_lookup(self, idx: Value, table: np.ndarray) -> Value:
        buffer = self._get_table(table)
        return self.builder.create(
            vector_dialect.GatherTableOp, buffer, idx
        ).result
