"""Compiler frontend: SPN graph + query → HiSPN module.

This is the paper's "HiSPN translation" step (Section IV-A2): during
de-serialization of the binary exchange format, the query and SPN DAG are
translated into the HiSPN dialect, which closely mirrors the frontend's
internal representation, making the translation straightforward. Shared
subgraphs map to shared SSA values, so the DAG structure is preserved
1:1.
"""

from __future__ import annotations

from typing import Dict, Union

from ..dialects import hispn
from ..ir import Builder, ModuleOp
from ..ir.ops import Operation
from ..ir.value import Value
from ..spn.nodes import Categorical, Gaussian, Histogram, Node, Product, Sum, topological_order
from ..spn.query import (
    ConditionalProbability,
    Expectation,
    JointProbability,
    MPEQuery,
    Query,
    SampleQuery,
)
from ..spn.serialization import deserialize

#: Query descriptor class → HiSPN query op class.
_QUERY_OPS = {
    JointProbability: hispn.JointQueryOp,
    MPEQuery: hispn.MPEQueryOp,
    SampleQuery: hispn.SampleQueryOp,
    ConditionalProbability: hispn.ConditionalQueryOp,
    Expectation: hispn.ExpectationQueryOp,
}


def build_hispn_module(root, query: Query) -> ModuleOp:
    """Translate (root, query) into a fresh HiSPN module.

    ``root`` may also be a *list* of class SPNs (multi-head queries):
    shared sub-DAGs across the heads translate to shared SSA values, so
    the whole ensemble is evaluated in one kernel pass — the advantage
    the paper attributes to the native Tensorflow RAT implementation.
    """
    roots = list(root) if isinstance(root, (list, tuple)) else [root]
    if not roots:
        raise ValueError("at least one SPN root is required")
    module = ModuleOp.build()
    builder = Builder.at_end(module.body)

    op_class = _QUERY_OPS.get(type(query), hispn.JointQueryOp)
    if op_class is not hispn.JointQueryOp and len(roots) > 1:
        raise ValueError(
            f"multi-head ensembles only support joint queries, not '{query.kind}'"
        )

    # Feature indices are input-column indices: an SPN over a sparse
    # variable subset still reads from the full-width input rows.
    num_features = max(max(r.scope) for r in roots) + 1
    extra = {}
    if isinstance(query, ConditionalProbability):
        if max(query.query_variables) >= num_features:
            raise ValueError(
                "conditional query variable out of range for the SPN scope"
            )
        extra["queryVariables"] = tuple(query.query_variables)
    elif isinstance(query, Expectation):
        extra["moment"] = int(query.moment)
    query_op = builder.create(
        op_class,
        num_features=num_features,
        input_type=query.input_type,
        batch_size=query.batch_size,
        support_marginal=query.support_marginal,
        relative_error=query.relative_error,
        **extra,
    )
    graph_builder = Builder.at_end(query_op.body_block)
    graph_op = graph_builder.create(hispn.GraphOp, num_features, query.input_type)

    body = Builder.at_end(graph_op.body)
    features = graph_op.body.arguments
    values: Dict[int, Value] = {}
    translation_order = []
    seen = set()
    for head in roots:
        for node in topological_order(head):
            if id(node) not in seen:
                seen.add(id(node))
                translation_order.append(node)
    for node in translation_order:
        if isinstance(node, Gaussian):
            value = body.create(
                hispn.GaussianOp, features[node.variable], node.mean, node.stdev
            ).result
        elif isinstance(node, Categorical):
            value = body.create(
                hispn.CategoricalOp, features[node.variable], node.probabilities
            ).result
        elif isinstance(node, Histogram):
            value = body.create(
                hispn.HistogramOp,
                features[node.variable],
                node.bounds,
                node.densities,
            ).result
        elif isinstance(node, Product):
            value = body.create(
                hispn.ProductOp, [values[id(c)] for c in node.children]
            ).result
        elif isinstance(node, Sum):
            value = body.create(
                hispn.SumOp, [values[id(c)] for c in node.children], node.weights
            ).result
        else:  # pragma: no cover - node hierarchy is closed
            raise TypeError(f"unhandled node type {type(node).__name__}")
        values[id(node)] = value
    body.create(hispn.RootOp, [values[id(head)] for head in roots])
    return module


def parse_binary_query(payload: Union[bytes, bytearray]) -> ModuleOp:
    """Entry point from the serialized exchange format (Section IV-A1/2)."""
    root, query = deserialize(bytes(payload))
    return build_hispn_module(root, query)
