"""The SPNC compiler: frontend, dialect lowerings, partitioning, targets."""

from .frontend import build_hispn_module, parse_binary_query
from .lower_to_lospn import lower_to_lospn
from .partitioning import PartitioningOptions, partition_kernel
from .bufferization import bufferize, insert_deallocations, remove_result_copies
from .pipeline import CompilationResult, CompilerOptions, compile_spn

__all__ = [
    "build_hispn_module",
    "parse_binary_query",
    "lower_to_lospn",
    "PartitioningOptions",
    "partition_kernel",
    "bufferize",
    "insert_deallocations",
    "remove_result_copies",
    "CompilationResult",
    "CompilerOptions",
    "compile_spn",
]
