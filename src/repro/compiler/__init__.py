"""The SPNC compiler: frontend, dialect lowerings, partitioning, targets."""

from .frontend import build_hispn_module, parse_binary_query
from .lower_to_lospn import lower_to_lospn
from .partitioning import PartitioningOptions, partition_kernel
from .bufferization import bufferize, insert_deallocations, remove_result_copies
from .pipeline import (
    STAGE_NAMES,
    CompilationResult,
    CompilerOptions,
    build_compile_pipeline,
    compile_spn,
)
from .targets import (
    Target,
    TargetSpec,
    get_target,
    register_target,
    registered_targets,
)

__all__ = [
    "build_hispn_module",
    "parse_binary_query",
    "lower_to_lospn",
    "PartitioningOptions",
    "partition_kernel",
    "bufferize",
    "insert_deallocations",
    "remove_result_copies",
    "STAGE_NAMES",
    "CompilationResult",
    "CompilerOptions",
    "build_compile_pipeline",
    "compile_spn",
    "Target",
    "TargetSpec",
    "get_target",
    "register_target",
    "registered_targets",
]
