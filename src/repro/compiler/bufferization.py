"""Bufferization of LoSPN modules (paper Section IV-A5).

Up to this point the LoSPN module uses the ``tensor`` type for batches,
because value semantics are easier to reason about. In preparation for
target lowering, bufferization rewrites kernels and tasks to operate on
``memref`` buffers:

- the kernel signature gains one output memref argument per result tensor
  and returns nothing,
- every intermediate task result tensor becomes a ``memref.alloc`` sized
  by the dynamic batch dimension,
- ``batch_extract`` becomes ``batch_read``, ``batch_collect`` becomes
  ``batch_write`` into the task's output buffer argument.

Bufferization itself is deliberately naive: the final task writes into a
fresh buffer which is then ``memref.copy``'d into the kernel's output
argument. Two follow-up passes (run at -O1 and above) complete the
picture, mirroring the paper:

- :func:`remove_result_copies` — write directly into the final output
  buffer instead of copying an intermediate buffer, and
- :func:`insert_deallocations` — the ``BufferDeallocation`` equivalent,
  releasing every remaining intermediate buffer at the end of the kernel.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..dialects import lospn, memref as memref_dialect
from ..ir import Builder, ModuleOp
from ..ir.ops import IRError, Operation
from ..ir.types import MemRefType, TensorType
from ..ir.value import Value


def _memref_of(tensor_type: TensorType) -> MemRefType:
    if not isinstance(tensor_type, TensorType):
        raise IRError(f"expected a tensor type, got {tensor_type}")
    return MemRefType(tensor_type.shape, tensor_type.element_type)


def bufferize(module: ModuleOp) -> ModuleOp:
    """Rewrite all kernels in ``module`` from tensor to memref form."""
    new_module = ModuleOp.build()
    builder = Builder.at_end(new_module.body)
    for op in module.body_block.ops:
        if op.op_name == lospn.KernelOp.name:
            _bufferize_kernel(op, builder)
        else:
            builder.insert(op.clone({}))
    return new_module


def _bufferize_kernel(kernel: Operation, builder: Builder) -> None:
    arg_memrefs = [_memref_of(t) for t in kernel.arg_types]
    result_memrefs = [_memref_of(t) for t in kernel.result_types]
    new_kernel = builder.create(
        lospn.KernelOp,
        kernel.sym_name,
        arg_memrefs + result_memrefs,
        [],
    )
    # Bufferization erases the input/output distinction from the type
    # signature (everything becomes a memref argument); record it as
    # attributes so later lowerings and the buffer-safety sanitizer can
    # still tell which arguments must never be written.
    new_kernel.attributes["numInputs"] = len(arg_memrefs)
    new_kernel.attributes["readonlyArgs"] = tuple(range(len(arg_memrefs)))
    if "queryPlan" in kernel.attributes:
        # The host-side query plan (MPE traceback, sampling, ...) rides
        # on the kernel through every rewrite.
        new_kernel.attributes["queryPlan"] = kernel.attributes["queryPlan"]
    kb = Builder.at_end(new_kernel.body)

    value_map: Dict[Value, Value] = {}
    for old_arg, new_arg in zip(
        kernel.body.arguments, new_kernel.body.arguments
    ):
        value_map[old_arg] = new_arg
    output_args = new_kernel.body.arguments[len(arg_memrefs):]

    # Batch count for dynamic allocation sizes, taken from the first input.
    batch_dim: Optional[Value] = None

    def get_batch_dim() -> Value:
        nonlocal batch_dim
        if batch_dim is None:
            batch_dim = kb.create(
                memref_dialect.DimOp, new_kernel.body.arguments[0], 0
            ).result
        return batch_dim

    # Which tensor values are returned by the kernel (positionally)?
    returned: Dict[Value, int] = {}
    terminator = kernel.body.terminator
    if terminator is not None and terminator.op_name == lospn.KernelReturnOp.name:
        for i, value in enumerate(terminator.operands):
            returned[value] = i

    buffer_of: Dict[Value, Value] = {}

    for op in kernel.body.ops:
        if op.op_name == lospn.TaskOp.name:
            _bufferize_task(op, kb, value_map, buffer_of, get_batch_dim)
        elif op.op_name == lospn.KernelReturnOp.name:
            for value, index in returned.items():
                buffer = buffer_of.get(value)
                if buffer is None:
                    raise IRError("kernel returns a tensor with no backing buffer")
                kb.create(memref_dialect.CopyOp, buffer, output_args[index])
            kb.create(lospn.KernelReturnOp, [])
        else:
            kb.insert(op.clone(value_map))


def _bufferize_task(
    task: Operation,
    kb: Builder,
    value_map: Dict[Value, Value],
    buffer_of: Dict[Value, Value],
    get_batch_dim,
) -> None:
    # Inputs: kernel args map directly; task-result tensors map to their
    # backing buffers.
    new_inputs: List[Value] = []
    for operand in task.operands:
        if operand in value_map:
            new_inputs.append(value_map[operand])
        elif operand in buffer_of:
            new_inputs.append(buffer_of[operand])
        else:
            raise IRError("task input has no bufferized equivalent")

    # Allocate a buffer per task result.
    result_buffers: List[Value] = []
    for res in task.results:
        mem_type = _memref_of(res.type)
        dynamic = [get_batch_dim()] if None in mem_type.shape else []
        alloc = kb.create(memref_dialect.AllocOp, mem_type, dynamic)
        result_buffers.append(alloc.result)
        buffer_of[res] = alloc.result

    new_task = kb.create(
        lospn.TaskOp, new_inputs + result_buffers, task.batch_size, []
    )
    tb = Builder.at_end(new_task.body)

    inner_map: Dict[Value, Value] = {
        task.batch_index: new_task.batch_index,
    }
    for old_arg, new_arg in zip(task.input_args, new_task.input_args):
        inner_map[old_arg] = new_arg
    output_buffer_args = new_task.input_args[len(new_inputs):]

    # The i-th batch_collect in the region materializes the i-th task result.
    collect_ops = [
        op for op in task.body.ops if op.op_name == lospn.BatchCollectOp.name
    ]
    if len(collect_ops) != len(task.results):
        raise IRError("task must collect exactly one tensor per result")
    collect_target: Dict[int, int] = {
        id(collect): i for i, collect in enumerate(collect_ops)
    }

    for op in task.body.ops:
        if op.op_name == lospn.BatchExtractOp.name:
            read = tb.create(
                lospn.BatchReadOp,
                inner_map[op.operands[0]],
                inner_map.get(op.operands[1], op.operands[1]),
                static_index=op.static_index,
                transposed=op.transposed,
            )
            inner_map[op.results[0]] = read.result
        elif op.op_name == lospn.BatchCollectOp.name:
            buffer_arg = output_buffer_args[collect_target[id(op)]]
            tb.create(
                lospn.BatchWriteOp,
                buffer_arg,
                inner_map.get(op.batch_index, op.batch_index),
                [inner_map[v] for v in op.result_values],
                transposed=op.transposed,
            )
        else:
            tb.insert(op.clone(inner_map))


# --- copy removal (write directly to the kernel output) -----------------------------


def remove_result_copies(module: ModuleOp) -> int:
    """Eliminate alloc+copy pairs feeding kernel outputs (in place).

    Pattern: a task writes buffer A (its last operand), A's only other use
    is ``memref.copy(A, out)`` where ``out`` is a kernel argument. The task
    is redirected to write ``out`` directly; the copy and the allocation
    are erased. Returns the number of copies removed.
    """
    removed = 0
    for kernel in module.body_block.ops:
        if kernel.op_name != lospn.KernelOp.name:
            continue
        kernel_args = set(kernel.body.arguments)
        for op in kernel.body.ops:
            if op.op_name != memref_dialect.CopyOp.name:
                continue
            source, target = op.source, op.target
            if target not in kernel_args:
                continue
            alloc = source.defining_op
            if alloc is None or alloc.op_name != memref_dialect.AllocOp.name:
                continue
            users = source.users
            if len(users) != 2:  # the producing task + this copy
                continue
            task = next((u for u in users if u.op_name == lospn.TaskOp.name), None)
            if task is None:
                continue
            aliased = []
            for i, operand in enumerate(task.operands):
                if operand is source:
                    task.set_operand(i, target)
                    aliased.append(i)
            # The task's output argument now *is* the kernel output
            # buffer. Record the intentional aliasing so static analyses
            # (and readers of the IR) know this is by construction, not
            # an accidental buffer reuse.
            existing = task.attributes.get("outputAliases", ())
            task.attributes["outputAliases"] = tuple(existing) + tuple(aliased)
            op.erase()
            if not alloc.results[0].has_uses:
                alloc.erase()
            removed += 1
    return removed


# --- buffer deallocation ----------------------------------------------------------


def insert_deallocations(module: ModuleOp) -> int:
    """Insert ``memref.dealloc`` for every intermediate buffer (in place).

    Equivalent of MLIR's BufferDeallocation pass, with kernel-scope
    lifetimes: every ``memref.alloc`` inside a kernel is released right
    before the kernel's terminator. Returns the number of deallocations
    inserted.
    """
    inserted = 0
    for kernel in module.body_block.ops:
        if kernel.op_name != lospn.KernelOp.name:
            continue
        terminator = kernel.body.terminator
        allocs = [
            op for op in kernel.body.ops
            if op.op_name == memref_dialect.AllocOp.name
        ]
        builder = (
            Builder.before_op(terminator)
            if terminator is not None
            else Builder.at_end(kernel.body)
        )
        for alloc in allocs:
            builder.create(memref_dialect.DeallocOp, alloc.results[0])
            inserted += 1
    return inserted
