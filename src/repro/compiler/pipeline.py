"""End-to-end compilation driver (paper Section IV).

Since PR 5 the driver is *thin*: the entire flow is one declarative
pass pipeline, resolved from the target registry
(:mod:`repro.compiler.targets`) and run by a single
:class:`~repro.ir.passes.PassManager`. For the default CPU
configuration (-O1) the pipeline is::

    frontend,hispn-simplify,lower-to-lospn,bufferize,
    buffer-optimization,buffer-deallocation,
    cpu-lowering,canonicalize,cse,licm,dce

followed by the target's codegen step (which is not a pass — it leaves
IR-land). ``spnc compile --print-pipeline`` prints the spec for any
configuration and ``--pipeline`` overrides it.

Optimization levels mirror the paper's -O0…-O3 (Section V-B1), encoded
declaratively in :data:`repro.compiler.targets.CLEANUP_LADDER` and the
per-level stages of :func:`repro.compiler.targets.common_pipeline`:

========  ==========================================================
-O0       structural lowering only; no CSE/canonicalization/LICM,
          naive bufferization copies remain
-O1       ``hispn-simplify`` + ``buffer-optimization`` + the
          canonicalize/cse/licm/dce sweep after target lowering (the
          configuration the paper selects as the best trade-off)
-O2       a second canonicalize/cse round after target lowering
-O3       -O2 plus a LoSPN-level CSE round, chain re-balancing, and
          one more greedy canonicalization sweep
========  ==========================================================

The PassManager records unified per-pass instrumentation — wall time,
op-count deltas, optional IR snapshots — surfaced on
:class:`CompilationResult` (``stage_seconds`` keeps the historic
accumulated-per-stage view the compile-time experiments, Figs. 10-13,
read; ``timings`` carries the full per-pass records).
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..diagnostics import (
    Diagnostic,
    ErrorCode,
    OptionsError,
    PassError,
    Severity,
    StageError,
    dump_reproducer,
)
from ..ir import ModuleOp, print_op
from ..ir.analysis import AnalysisFinding
from ..ir.passes import PassInstrumentation, PassManager
from ..ir.pipeline_spec import build_pipeline
from ..spn.nodes import Node
from ..spn.query import (
    QUERY_KINDS,
    ConditionalProbability,
    Expectation,
    JointProbability,
    Query,
)
from ..testing import faults
from .cpu.lowering import ISAS, normalize_vectorize_mode
from .partitioning import PartitioningStats
from .stages import FrontendPass, PartitionPass
from .targets import get_target, registered_targets

#: The frozen public stage-timing vocabulary: every key that can appear
#: in ``CompilationResult.stage_seconds`` for a registry-built pipeline.
#: Benchmarks and the EXPERIMENTS figures read these names — changing
#: one is an interface break (see tests/compiler/test_targets.py).
STAGE_NAMES = (
    "frontend",
    "hispn-simplify",
    "structure-cse",
    "structure-prune",
    "structure-compress",
    "lower-to-lospn",
    "lospn-cse",
    "graph-partitioning",
    "balance-chains",
    "bufferize",
    "buffer-optimization",
    "buffer-deallocation",
    "cpu-lowering",
    "gpu-lowering",
    "gpu-copy-elimination",
    "canonicalize",
    "cse",
    "licm",
    "dce",
    "canonicalize-2",
    "cse-2",
    "canonicalize-3",
    "codegen",
    "gpu-codegen",
)


@dataclass
class CompilerOptions:
    """User-facing compiler configuration (the Python interface knobs)."""

    target: str = "cpu"  # "cpu" | "gpu"
    opt_level: int = 1
    # CPU mapping strategy (Section V-A1). ``vectorize`` selects the
    # batch-loop strategy: "batch" (default — whole-chunk NumPy vector
    # kernels), "lanes" (fixed ISA-width vectors + scalar epilogue, for
    # the fig06/fig11 design-space exploration) or "off" (scalar loop).
    # Bools are accepted for backward compatibility (True == "lanes").
    vectorize: "bool | str" = "batch"
    vector_isa: str = "avx2"
    use_vector_library: bool = True
    use_shuffle: bool = True
    superword_factor: int = 128
    num_threads: int = 1
    #: Analysis-gated partition-level task parallelism (CPU): run the
    #: ``parallelize-partitions`` pass, which proves partitions of the
    #: task graph disjoint via the memory-access summaries and attaches
    #: a wave schedule; ``CPUExecutable`` then executes each wave's
    #: tasks concurrently on its worker pool. Off by default — the pass
    #: only ever fires where disjointness is proven, and results stay
    #: bit-identical to serial execution.
    partition_parallel: bool = False
    # Target-independent knobs.
    max_partition_size: Optional[int] = None
    use_log_space: bool = True
    #: Structure-level optimization suite (architecture §17): which of
    #: the HiSPN graph rewrites run before lowering. ``None`` derives
    #: the set from the -O ladder (-O3 enables "cse,prune"; lower levels
    #: none); "none"/"off" disables explicitly; otherwise a comma list
    #: drawn from {cse, prune, compress} applied in the given order.
    #: "cse" is exact; "prune"/"compress" are lossy and honor
    #: ``accuracy_budget``.
    structure_opt: Optional[str] = None
    #: Maximum acceptable absolute log-likelihood error introduced by
    #: the lossy structure passes, split evenly among the enabled lossy
    #: passes. 0.0 (default) restricts pruning to exactly-zero weights
    #: (semantics-preserving) and forbids compression, which needs a
    #: positive budget to be legal.
    accuracy_budget: float = 0.0
    #: Query modality compiled when no explicit Query object is passed:
    #: "joint" (default), "mpe", "sample", "conditional", "expectation".
    #: Every modality flows through the same registered pass pipeline;
    #: only the frontend op and the runtime wrapper differ.
    query: str = "joint"
    #: Conditioned variables for ``query="conditional"`` (P(Q | E)).
    query_variables: tuple = ()
    #: Raw moment order for ``query="expectation"`` (1 or 2).
    moment: int = 1
    # GPU knobs (block size defaults to the query batch size).
    gpu_block_size: Optional[int] = None
    #: Concurrent device streams for the GPU software pipeline: with
    #: ``streams > 1`` the executable slices batches into chunks and
    #: overlaps host↔device copies with kernel compute (Fig. 9 reclaim).
    #: 1 preserves the historic serialized execution.
    streams: int = 1
    #: Textual pipeline override (mlir-opt style). ``None`` resolves the
    #: declarative pipeline from the target registry; a spec string
    #: replaces the pass sequence wholesale (codegen still comes from
    #: the target). See ``spnc compile --print-pipeline``.
    pipeline: Optional[str] = None
    # Diagnostics.
    collect_ir: bool = False
    verify_each_stage: bool = False
    #: Static-analysis instrumentation level (see repro.ir.analysis):
    #: "off" (default), "structural" (IR verifier after every pass, no
    #: analyses), "boundaries" (verifier + the registered checks —
    #: buffer safety, log-space range, lint — at the pipeline's dialect
    #: boundaries: after LoSPN lowering, after bufferization and on the
    #: final lowered module) or "every-pass" (after every stage).
    #: ERROR findings abort compilation with a StageError; WARNING/NOTE
    #: findings are collected on CompilationResult.analysis_findings.
    verify_each: str = "off"
    #: Degradation policy when a compile stage, codegen or execution
    #: fails: "raise" propagates a structured CompilerError (the default,
    #: preserving strict semantics), "interpret" transparently falls back
    #: to the reference evaluator (warning once per model), "warn" does
    #: the same but warns on every degraded call.
    fallback: str = "raise"
    #: Directory for reproducer dumps on failure; ``None`` resolves via
    #: ``$SPNC_ARTIFACT_DIR`` / the system temp dir (see
    #: :func:`repro.diagnostics.artifact_directory`).
    artifact_dir: Optional[str] = None

    def __post_init__(self):
        if self.target not in registered_targets():
            raise OptionsError(f"unknown target '{self.target}'")
        if not 0 <= self.opt_level <= 3:
            raise OptionsError("opt_level must be in 0..3")
        try:
            self.vectorize = normalize_vectorize_mode(self.vectorize)
        except ValueError as error:
            raise OptionsError(str(error)) from None
        if self.vector_isa not in ISAS:
            raise OptionsError(f"unknown vector ISA '{self.vector_isa}'")
        if self.fallback not in ("raise", "interpret", "warn"):
            raise OptionsError(
                f"unknown fallback policy '{self.fallback}' "
                "(expected 'raise', 'interpret' or 'warn')"
            )
        if self.verify_each is True:  # bool back-compat
            self.verify_each = "boundaries"
        elif self.verify_each is False or self.verify_each is None:
            self.verify_each = "off"
        if self.verify_each not in ("off", "structural", "boundaries", "every-pass"):
            raise OptionsError(
                f"unknown verify_each mode '{self.verify_each}' "
                "(expected 'off', 'structural', 'boundaries' or 'every-pass')"
            )
        if self.num_threads < 1:
            raise OptionsError("num_threads must be >= 1")
        if self.streams < 1:
            raise OptionsError("streams must be >= 1")
        if self.partition_parallel and self.target != "cpu":
            raise OptionsError(
                "partition_parallel is only supported on the cpu target"
            )
        if self.query not in QUERY_KINDS:
            raise OptionsError(
                f"unknown query kind '{self.query}' "
                f"(expected one of {', '.join(sorted(QUERY_KINDS))})"
            )
        try:
            self.query_variables = tuple(
                sorted({int(v) for v in self.query_variables})
            )
        except (TypeError, ValueError):
            raise OptionsError("query_variables must be a sequence of ints") from None
        if self.query == "conditional" and not self.query_variables:
            raise OptionsError(
                "query='conditional' requires non-empty query_variables"
            )
        if self.moment not in (1, 2):
            raise OptionsError("moment must be 1 or 2")
        try:
            self.accuracy_budget = float(self.accuracy_budget)
        except (TypeError, ValueError):
            raise OptionsError("accuracy_budget must be a number") from None
        if self.accuracy_budget < 0:
            raise OptionsError("accuracy_budget must be >= 0")
        passes = self.structure_passes()  # validates structure_opt
        if "compress" in passes and self.accuracy_budget <= 0:
            raise OptionsError(
                "structure_opt='compress' requires accuracy_budget > 0 "
                "(low-rank factorization perturbs the distribution)"
            )

    def cache_fingerprint(self) -> tuple:
        """Normalized tuple of every option that affects the compiled
        kernel — the compiler caches key on this, so two spellings of the
        same configuration share an entry and any change in vectorization
        mode/width/veclib recompiles."""
        return (
            self.target,
            self.opt_level,
            self.vectorize,  # already normalized to "off"/"lanes"/"batch"
            self.vector_isa,
            self.use_vector_library,
            self.use_shuffle,
            self.superword_factor,
            self.num_threads,
            self.partition_parallel,
            self.max_partition_size,
            self.use_log_space,
            self.gpu_block_size,
            self.streams,
            self.pipeline,
            self.collect_ir,
            self.query,
            self.query_variables,
            self.moment,
            # Fingerprint the *resolved* structure suite so explicit and
            # ladder-derived spellings of the same configuration share a
            # cache entry (and serving versions key on the real passes).
            self.structure_passes(),
            self.accuracy_budget,
        )

    #: Recognized structure-suite pass names, in canonical run order.
    STRUCTURE_PASSES = ("cse", "prune", "compress")

    def structure_passes(self) -> tuple:
        """Resolved structure-suite pass names, in run order.

        ``structure_opt=None`` derives from the -O ladder: -O3 enables
        the exact + semantics-preserving pair ("cse", "prune"); lower
        levels run nothing. Explicit specs are honored verbatim (order
        preserved, duplicates dropped).
        """
        if self.structure_opt is None:
            return ("cse", "prune") if self.opt_level >= 3 else ()
        spec = self.structure_opt.strip()
        if spec in ("", "none", "off"):
            return ()
        passes = []
        for name in spec.split(","):
            name = name.strip()
            if name not in self.STRUCTURE_PASSES:
                raise OptionsError(
                    f"unknown structure pass '{name}' (expected a comma "
                    f"list of {', '.join(self.STRUCTURE_PASSES)}, or "
                    "'none')"
                )
            if name not in passes:
                passes.append(name)
        return tuple(passes)

    def structure_budget_share(self) -> float:
        """Per-pass accuracy budget: the total split across lossy passes."""
        lossy = [p for p in self.structure_passes() if p != "cse"]
        if not lossy:
            return 0.0
        return self.accuracy_budget / len(lossy)

    def make_query(self) -> Query:
        """The :class:`~repro.spn.query.Query` these options describe."""
        if self.query == "conditional":
            return ConditionalProbability(query_variables=self.query_variables)
        if self.query == "expectation":
            return Expectation(moment=self.moment)
        return QUERY_KINDS[self.query]()

    def verify_mode(self) -> str:
        """The effective PassManager ``verify_each`` mode: the analysis
        level when set, else structural when the legacy bool asked."""
        if self.verify_each != "off":
            return self.verify_each
        return "structural" if self.verify_each_stage else "off"


@dataclass
class CompilationResult:
    """A compiled kernel plus compile-time diagnostics."""

    executable: object
    options: CompilerOptions
    query: JointProbability
    stage_seconds: "OrderedDict[str, float]"
    partitioning: Optional[PartitioningStats]
    num_tasks: int
    ir_dumps: Dict[str, str] = field(default_factory=dict)
    #: WARNING/NOTE static-analysis findings collected by the
    #: verify_each instrumentation (ERROR findings abort compilation).
    analysis_findings: List["AnalysisFinding"] = field(default_factory=list)
    #: Unified per-pass instrumentation (wall time + op-count deltas +
    #: optional IR snapshots) from the PassManager run. ``stage_seconds``
    #: is its accumulated-per-stage view plus the codegen step.
    timings: Optional[PassInstrumentation] = None
    #: The textual pipeline spec the driver ran (round-trips through
    #: ``repro.ir.pipeline_spec.build_pipeline``).
    pipeline: str = ""

    @property
    def compile_time(self) -> float:
        return sum(self.stage_seconds.values())


def build_compile_pipeline(
    options: CompilerOptions,
    query: Optional[JointProbability] = None,
) -> "tuple[Target, str]":
    """Resolve (target, textual pipeline spec) for a configuration."""
    target = get_target(options.target)
    spec = options.pipeline or target.pipeline(options, query)
    return target, spec


def compile_spn(
    root: Node,
    query: Optional[JointProbability] = None,
    options: Optional[CompilerOptions] = None,
) -> CompilationResult:
    """Compile an SPN query to an executable kernel.

    ``query`` may be any :class:`~repro.spn.query.Query` modality; when
    omitted it is derived from ``options.query`` (default: joint).
    """
    options = options or CompilerOptions()
    query = query or options.make_query()
    target, spec = build_compile_pipeline(options, query)

    try:
        passes = build_pipeline(spec)
    except ValueError as error:
        raise OptionsError(f"invalid pipeline: {error}") from None
    for pass_ in passes:
        if isinstance(pass_, FrontendPass):
            pass_.bind(root, query)

    manager = PassManager(
        verify_each=options.verify_mode(),
        artifact_dir=options.artifact_dir,
        collect_ir=options.collect_ir,
    )
    manager.reproducer_options = options
    manager.diagnostic_target = target.name
    manager.extend(passes)
    target.install_checkpoints(manager)

    module = ModuleOp.build()
    try:
        manager.run(module)
    except PassError as error:
        # Pipeline stages *are* passes; surface the failure as the
        # stage-level error the driver has always raised, reusing the
        # diagnostic (which names both pass and stage) and reproducer.
        raise StageError(
            error.args[0],
            diagnostic=error.diagnostic,
            reproducer_path=error.reproducer_path,
        ) from error

    # Codegen is not a pass (it leaves IR-land); the driver runs it as a
    # timed, fault-checked stage recorded into the same instrumentation,
    # so stage_seconds/report() cover the whole flow.
    codegen_stage = target.spec.codegen_stage
    start = time.perf_counter()
    try:
        faults.maybe_fail_stage(codegen_stage)
        executable = target.codegen(module, passes, options, query)
    except Exception as error:
        raise _codegen_error(codegen_stage, error, module, options) from error
    # Non-joint modalities carry a host-side query plan on the kernel;
    # wrap the backend executable with the matching post-processor (MPE
    # traceback, sampling, ...). Joint kernels pass through unchanged.
    from ..runtime.query_executable import make_query_executable

    executable = make_query_executable(executable, target.lowering_info(passes))
    manager.timing.record(codegen_stage, time.perf_counter() - start)

    stage_seconds: "OrderedDict[str, float]" = OrderedDict(
        manager.timing.stage_seconds()
    )
    return CompilationResult(
        executable=executable,
        options=options,
        query=query,
        stage_seconds=stage_seconds,
        partitioning=next(
            (p.stats for p in passes if isinstance(p, PartitionPass)), None
        ),
        num_tasks=target.lowering_info(passes).num_tasks,
        ir_dumps=manager.timing.ir_dumps(),
        analysis_findings=manager.analysis_findings,
        timings=manager.timing,
        pipeline=spec,
    )


def _codegen_error(
    name: str,
    error: BaseException,
    module: ModuleOp,
    options: CompilerOptions,
) -> StageError:
    if isinstance(error, faults.FaultInjectionError):
        code = ErrorCode.FAULT_INJECTED
    else:
        code = ErrorCode.CODEGEN_FAILED
    message = f"stage '{name}' failed: {type(error).__name__}: {error}"
    diagnostic = Diagnostic(
        severity=Severity.ERROR,
        code=code,
        message=message,
        stage=name,
        op_path=getattr(error, "op_path", None),
        target=options.target,
        detail={"exception_type": type(error).__name__},
    )
    try:
        module_text = print_op(module)
    except Exception:  # a broken module must not mask the error
        module_text = None
    reproducer = dump_reproducer(
        diagnostic,
        module_text=module_text,
        options=options,
        artifact_dir=options.artifact_dir,
    )
    return StageError(message, diagnostic=diagnostic, reproducer_path=reproducer)
