"""End-to-end compilation driver (paper Section IV).

Runs the full SPNC flow::

    SPN + query ──frontend──▶ HiSPN ──simplify──▶ HiSPN
        ──lower──▶ LoSPN (tensor) ──partition──▶ LoSPN (multi-task)
        ──bufferize──▶ LoSPN (memref) ──target lowering──▶ func/scf/...
        ──codegen──▶ executable kernel

Optimization levels mirror the paper's -O0…-O3 (Section V-B1):

========  ==========================================================
-O0       structural lowering only; no CSE/canonicalization/LICM,
          naive bufferization copies remain
-O1       canonicalize + CSE + LICM + buffer copy removal (the
          configuration the paper selects as the best trade-off)
-O2       a second canonicalize/CSE round after target lowering
-O3       -O2 plus an extra LoSPN-level CSE round and one more
          greedy canonicalization sweep
========  ==========================================================

The driver records wall-clock time per stage; the compile-time
experiments (Figs. 10-13) read those numbers.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

import numpy as np

from ..diagnostics import (
    CompilerError,
    Diagnostic,
    ErrorCode,
    OptionsError,
    Severity,
    StageError,
    dump_reproducer,
)
from ..dialects import lospn
from ..ir import ModuleOp, print_op, verify
from ..ir.analysis import AnalysisFinding, run_checks, severity_at_least
from ..ir.transforms import run_cse, run_dce
from ..ir.verifier import VerificationError
from ..testing import faults
from ..ir.transforms.canonicalize import canonicalize
from ..ir.transforms.licm import hoist_loop_invariants
from ..spn.nodes import Node
from ..spn.query import JointProbability
from ..backends.cpu.codegen import generate_cpu_module, numpy_dtype
from ..runtime.executable import CPUExecutable, KernelSignature
from .bufferization import bufferize, insert_deallocations, remove_result_copies
from .cpu.lowering import (
    CPULoweringOptions,
    ISAS,
    VECTORIZE_MODES,
    lower_kernel_to_cpu,
    normalize_vectorize_mode,
)
from .frontend import build_hispn_module
from .hispn_passes import simplify_hispn
from .lower_to_lospn import lower_to_lospn
from .partitioning import PartitioningOptions, PartitioningStats, partition_kernel


@dataclass
class CompilerOptions:
    """User-facing compiler configuration (the Python interface knobs)."""

    target: str = "cpu"  # "cpu" | "gpu"
    opt_level: int = 1
    # CPU mapping strategy (Section V-A1). ``vectorize`` selects the
    # batch-loop strategy: "batch" (default — whole-chunk NumPy vector
    # kernels), "lanes" (fixed ISA-width vectors + scalar epilogue, for
    # the fig06/fig11 design-space exploration) or "off" (scalar loop).
    # Bools are accepted for backward compatibility (True == "lanes").
    vectorize: "bool | str" = "batch"
    vector_isa: str = "avx2"
    use_vector_library: bool = True
    use_shuffle: bool = True
    superword_factor: int = 128
    num_threads: int = 1
    # Target-independent knobs.
    max_partition_size: Optional[int] = None
    use_log_space: bool = True
    # GPU knobs (block size defaults to the query batch size).
    gpu_block_size: Optional[int] = None
    # Diagnostics.
    collect_ir: bool = False
    verify_each_stage: bool = False
    #: Static-analysis instrumentation level (see repro.ir.analysis):
    #: "off" (default), "boundaries" (run the registered checks — buffer
    #: safety, log-space range, lint — at the pipeline's dialect
    #: boundaries: after LoSPN lowering, after bufferization and on the
    #: final lowered module) or "every-pass" (after every stage).
    #: ERROR findings abort compilation with a StageError; WARNING/NOTE
    #: findings are collected on CompilationResult.analysis_findings.
    #: Any mode other than "off" implies structural verification too.
    verify_each: str = "off"
    #: Degradation policy when a compile stage, codegen or execution
    #: fails: "raise" propagates a structured CompilerError (the default,
    #: preserving strict semantics), "interpret" transparently falls back
    #: to the reference evaluator (warning once per model), "warn" does
    #: the same but warns on every degraded call.
    fallback: str = "raise"
    #: Directory for reproducer dumps on failure; ``None`` resolves via
    #: ``$SPNC_ARTIFACT_DIR`` / the system temp dir (see
    #: :func:`repro.diagnostics.artifact_directory`).
    artifact_dir: Optional[str] = None

    def __post_init__(self):
        if self.target not in ("cpu", "gpu"):
            raise OptionsError(f"unknown target '{self.target}'")
        if not 0 <= self.opt_level <= 3:
            raise OptionsError("opt_level must be in 0..3")
        try:
            self.vectorize = normalize_vectorize_mode(self.vectorize)
        except ValueError as error:
            raise OptionsError(str(error)) from None
        if self.vector_isa not in ISAS:
            raise OptionsError(f"unknown vector ISA '{self.vector_isa}'")
        if self.fallback not in ("raise", "interpret", "warn"):
            raise OptionsError(
                f"unknown fallback policy '{self.fallback}' "
                "(expected 'raise', 'interpret' or 'warn')"
            )
        if self.verify_each is True:  # bool back-compat
            self.verify_each = "boundaries"
        elif self.verify_each is False or self.verify_each is None:
            self.verify_each = "off"
        if self.verify_each not in ("off", "boundaries", "every-pass"):
            raise OptionsError(
                f"unknown verify_each mode '{self.verify_each}' "
                "(expected 'off', 'boundaries' or 'every-pass')"
            )

    def cache_fingerprint(self) -> tuple:
        """Normalized tuple of every option that affects the compiled
        kernel — the compiler caches key on this, so two spellings of the
        same configuration share an entry and any change in vectorization
        mode/width/veclib recompiles."""
        return (
            self.target,
            self.opt_level,
            self.vectorize,  # already normalized to "off"/"lanes"/"batch"
            self.vector_isa,
            self.use_vector_library,
            self.use_shuffle,
            self.superword_factor,
            self.num_threads,
            self.max_partition_size,
            self.use_log_space,
            self.gpu_block_size,
            self.collect_ir,
        )


@dataclass
class CompilationResult:
    """A compiled kernel plus compile-time diagnostics."""

    executable: object
    options: CompilerOptions
    query: JointProbability
    stage_seconds: "OrderedDict[str, float]"
    partitioning: Optional[PartitioningStats]
    num_tasks: int
    ir_dumps: Dict[str, str] = field(default_factory=dict)
    #: WARNING/NOTE static-analysis findings collected by the
    #: verify_each instrumentation (ERROR findings abort compilation).
    analysis_findings: List["AnalysisFinding"] = field(default_factory=list)

    @property
    def compile_time(self) -> float:
        return sum(self.stage_seconds.values())


class _StageTimer:
    """Stage driver: timing, optional verification, structured failures.

    Any exception escaping a stage callable (or per-stage verification)
    is wrapped into a :class:`~repro.diagnostics.StageError` naming the
    stage, and a reproducer — the most recent printable IR plus the
    active options — is dumped to the artifact directory.
    """

    def __init__(self, options: "CompilerOptions"):
        self.stage_seconds: "OrderedDict[str, float]" = OrderedDict()
        self.ir_dumps: Dict[str, str] = {}
        self.collect_ir = options.collect_ir
        self.analysis_mode = options.verify_each
        # Structural verification: the legacy bool knob, implied by any
        # analysis instrumentation level.
        self.verify_each = options.verify_each_stage or self.analysis_mode != "off"
        self.options = options
        #: Most recent module seen by any stage; the reproducer dump uses
        #: it when the failing stage has no module of its own (codegen).
        self.last_module: Optional[ModuleOp] = None
        #: WARNING/NOTE findings from the analysis instrumentation.
        self.analysis_findings: List[AnalysisFinding] = []
        self._findings_seen: set = set()

    def run(self, name: str, fn, module: Optional[ModuleOp] = None):
        if module is not None:
            self.last_module = module
        start = time.perf_counter()
        try:
            faults.maybe_fail_stage(name)
            result = fn()
        except CompilerError as error:
            # Already structured (e.g. a PassError from a nested pass
            # manager); annotate the stage if it is missing.
            if error.diagnostic.stage is None:
                error.diagnostic.stage = name
            raise
        except Exception as error:
            raise self._stage_error(name, error, module) from error
        elapsed = time.perf_counter() - start
        self.stage_seconds[name] = self.stage_seconds.get(name, 0.0) + elapsed
        dump_target = result if isinstance(result, ModuleOp) else module
        if isinstance(dump_target, ModuleOp):
            self.last_module = dump_target
        if self.verify_each and isinstance(dump_target, ModuleOp):
            try:
                verify(dump_target)
            except VerificationError as error:
                raise self._stage_error(
                    name, error, dump_target, after_verify=True
                ) from error
        if self.analysis_mode == "every-pass" and isinstance(
            dump_target, ModuleOp
        ):
            self._run_checks(name, dump_target, phase="mid")
        if self.collect_ir and isinstance(dump_target, ModuleOp):
            self.ir_dumps[name] = print_op(dump_target)
        return result

    def checkpoint(self, name: str, module: ModuleOp, phase: str = "mid"):
        """Run the static analyses at a pipeline boundary.

        Active in both "boundaries" and "every-pass" mode; the final
        checkpoint (on the fully lowered module, before codegen) uses
        ``phase="final"`` so phase-gated rules (leak detection, dead
        pure results) apply with full strictness.
        """
        if self.analysis_mode == "off":
            return
        self._run_checks(name, module, phase=phase)

    def _run_checks(self, name: str, module: ModuleOp, phase: str) -> None:
        findings = run_checks(module, phase=phase)
        errors = [
            f for f in findings if severity_at_least(f.severity, Severity.ERROR)
        ]
        if errors:
            summary = "; ".join(f.render() for f in errors[:5])
            violation = _AnalysisStageViolation(
                f"static analysis found {len(errors)} violation(s) after "
                f"stage '{name}': {summary}",
                op_path=errors[0].op_path,
            )
            raise self._stage_error(
                name, violation, module, after_analysis=True
            ) from None
        for finding in findings:
            key = (finding.check, finding.op_path, finding.message)
            if key not in self._findings_seen:
                self._findings_seen.add(key)
                self.analysis_findings.append(finding)

    def _stage_error(
        self,
        name: str,
        error: BaseException,
        module: Optional[ModuleOp],
        after_verify: bool = False,
        after_analysis: bool = False,
    ) -> StageError:
        if after_analysis:
            code = ErrorCode.ANALYSIS_FAILED
            message = str(error)
        elif after_verify:
            code = ErrorCode.VERIFY_FAILED
            message = f"IR verification failed after stage '{name}': {error}"
        elif isinstance(error, faults.FaultInjectionError):
            code = ErrorCode.FAULT_INJECTED
            message = f"stage '{name}' failed: {error}"
        else:
            code = (
                ErrorCode.CODEGEN_FAILED
                if "codegen" in name
                else ErrorCode.STAGE_FAILED
            )
            message = f"stage '{name}' failed: {type(error).__name__}: {error}"
        diagnostic = Diagnostic(
            severity=Severity.ERROR,
            code=code,
            message=message,
            stage=name,
            op_path=getattr(error, "op_path", None),
            target=self.options.target,
            detail={"exception_type": type(error).__name__},
        )
        dump_module = module if module is not None else self.last_module
        module_text = None
        if dump_module is not None:
            try:
                module_text = print_op(dump_module)
            except Exception:  # a broken module must not mask the error
                module_text = None
        reproducer = dump_reproducer(
            diagnostic,
            module_text=module_text,
            options=self.options,
            artifact_dir=self.options.artifact_dir,
        )
        return StageError(message, diagnostic=diagnostic, reproducer_path=reproducer)


class _AnalysisStageViolation(Exception):
    """Carrier for a static-analysis instrumentation failure."""

    def __init__(self, message: str, op_path: Optional[str] = None):
        super().__init__(message)
        self.op_path = op_path


def compile_spn(
    root: Node,
    query: Optional[JointProbability] = None,
    options: Optional[CompilerOptions] = None,
) -> CompilationResult:
    """Compile an SPN joint-probability query to an executable kernel."""
    query = query or JointProbability()
    options = options or CompilerOptions()
    timer = _StageTimer(options)

    # Target-independent pipeline (Section IV-A).
    module = timer.run("frontend", lambda: build_hispn_module(root, query))
    if options.opt_level >= 1:
        timer.run("hispn-simplify", lambda: simplify_hispn(module), module)
    module = timer.run(
        "lower-to-lospn", lambda: lower_to_lospn(module, options.use_log_space)
    )
    if options.opt_level >= 3:
        timer.run("lospn-cse", lambda: run_cse(module), module)

    partition_stats: Optional[PartitioningStats] = None
    if options.max_partition_size is not None:
        part_options = PartitioningOptions(
            max_partition_size=options.max_partition_size
        )

        def run_partitioning():
            return partition_kernel(module, part_options)

        module, partition_stats = timer.run("graph-partitioning", run_partitioning)

    if options.opt_level >= 3:
        from .balance import balance_chains

        timer.run("balance-chains", lambda: balance_chains(module), module)

    timer.checkpoint("lower-to-lospn", module)

    module = timer.run("bufferize", lambda: bufferize(module))
    if options.opt_level >= 1:
        timer.run(
            "buffer-optimization", lambda: remove_result_copies(module), module
        )
    timer.run("buffer-deallocation", lambda: insert_deallocations(module), module)
    timer.checkpoint("buffer-deallocation", module)

    num_tasks = _count_tasks(module)

    if options.target == "cpu":
        executable = _compile_cpu(module, query, options, timer)
    else:
        from .gpu.pipeline import compile_gpu_module

        executable = compile_gpu_module(module, query, options, timer)

    return CompilationResult(
        executable=executable,
        options=options,
        query=query,
        stage_seconds=timer.stage_seconds,
        partitioning=partition_stats,
        num_tasks=num_tasks,
        ir_dumps=timer.ir_dumps,
        analysis_findings=timer.analysis_findings,
    )


def _count_tasks(module: ModuleOp) -> int:
    count = 0
    for op in module.body_block.ops:
        if op.op_name == lospn.KernelOp.name:
            count += len(op.tasks())
    return count


def _kernel_signature(module: ModuleOp, query: JointProbability) -> KernelSignature:
    for op in module.body_block.ops:
        if op.op_name == lospn.KernelOp.name:
            input_type = op.arg_types[0]
            result_type = op.arg_types[-1]
            return KernelSignature(
                num_features=input_type.shape[1],
                input_dtype=numpy_dtype(input_type.element_type),
                result_dtype=numpy_dtype(result_type.element_type),
                log_space=isinstance(result_type.element_type, lospn.LogType),
                batch_size=query.batch_size,
                num_results=result_type.shape[0] or 1,
            )
    raise ValueError("module contains no lo_spn.kernel")


def _compile_cpu(
    module: ModuleOp,
    query: JointProbability,
    options: CompilerOptions,
    timer: _StageTimer,
) -> CPUExecutable:
    signature = _kernel_signature(module, query)
    kernel_name = _kernel_name(module)

    lowering_options = CPULoweringOptions(
        vectorize=options.vectorize,
        isa=ISAS[options.vector_isa],
        use_vector_library=options.use_vector_library,
        use_shuffle=options.use_shuffle,
        superword_factor=options.superword_factor,
    )
    lowered = timer.run(
        "cpu-lowering", lambda: lower_kernel_to_cpu(module, lowering_options)
    )

    if options.opt_level >= 1:
        timer.run("canonicalize", lambda: canonicalize(lowered), lowered)
        timer.run("cse", lambda: run_cse(lowered), lowered)
        timer.run("licm", lambda: hoist_loop_invariants(lowered), lowered)
        timer.run("dce", lambda: run_dce(lowered), lowered)
    if options.opt_level >= 2:
        timer.run("canonicalize-2", lambda: canonicalize(lowered), lowered)
        timer.run("cse-2", lambda: run_cse(lowered), lowered)
    if options.opt_level >= 3:
        timer.run("canonicalize-3", lambda: canonicalize(lowered), lowered)

    # Scratch (out=) register reuse: at -O2+ for fixed-lane vectors, and
    # already at -O1 for batch vectors — whole-chunk scratch reuse is
    # what keeps the batch kernel allocation-free in steady state.
    timer.checkpoint("cpu-lowering", lowered, phase="final")

    mode = normalize_vectorize_mode(options.vectorize)
    reuse_registers = (mode == "lanes" and options.opt_level >= 2) or (
        mode == "batch" and options.opt_level >= 1
    )
    generated = timer.run(
        "codegen",
        lambda: generate_cpu_module(lowered, reuse_vector_registers=reuse_registers),
    )
    return CPUExecutable(
        generated, kernel_name, signature, num_threads=options.num_threads
    )


def _kernel_name(module: ModuleOp) -> str:
    for op in module.body_block.ops:
        if op.op_name == lospn.KernelOp.name:
            return op.sym_name
    raise ValueError("module contains no lo_spn.kernel")
