"""Acyclic graph partitioning of LoSPN tasks (paper Section IV-A4).

Very large SPNs (the RAT-SPN stress test reaches hundreds of thousands of
operations) are infeasible to compile as a single unit, so the single big
``lo_spn.task`` is split into multiple smaller tasks. The algorithm
adapts the heuristic acyclic DAG partitioning of Moreira et al. [10] as
described in the paper:

- **Initial ordering**: instead of a random topological ordering, a
  depth-first, child-first traversal is used — a node enters the ordering
  as soon as all its children (operands) have been processed, so subtrees
  tend to land in the same partition. The ordering preserves the
  invariant that no node in partition ``V_j`` has an edge to ``V_i`` with
  ``i < j``, which guarantees the partition dependence graph is acyclic.
- **Balance slack**: partitions may exceed the balanced size by 1 %
  (configurable), enabling more refinement moves.
- **Cost model**: all edges carrying one SSA value from partition ``V_j``
  into partition ``V_i`` have a *combined* cost of 1 — the value is
  stored once in ``V_j``'s task and loaded once in ``V_i``'s task. Values
  produced by constant-like ops are free (they are re-materialized in the
  consumer).
- **Refinement**: the *Simple Moves* heuristic — single-node moves
  between neighbouring partitions that reduce cut cost while preserving
  acyclicity and balance.
- **Spine extraction**: the combining arithmetic nearest the root (the
  weighted-sum chain joining otherwise-independent subtrees) is grown
  into a users-closed "spine" and pinned to the final partition. With
  the spine out of the way, the remaining ops are pure subtree content,
  and partition boundaries are snapped to *clean cuts* — positions where
  no SSA value is live across the boundary — so independent subtrees
  land in separate partitions with no cross imports. The resulting
  partition dependence graph is wide rather than a chain, which is what
  lets the `parallelize-partitions` pass prove partitions independent
  and run them concurrently (ROADMAP item 5 stretch goal).

After assignment the kernel is rewritten: one ``lo_spn.task`` per
partition, with cross-partition values communicated through intermediate
result tensors (``batch_collect`` in the producer, ``batch_extract`` in
the consumers).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..dialects import lospn
from ..ir import Builder, ModuleOp
from ..ir.ops import IRError, Operation
from ..ir.traits import Trait
from ..ir.types import TensorType
from ..ir.value import BlockArgument, Value


@dataclass
class PartitioningOptions:
    max_partition_size: int = 10_000
    balance_slack: float = 0.01
    refinement_rounds: int = 2


@dataclass
class PartitioningStats:
    num_partitions: int = 0
    partition_sizes: List[int] = field(default_factory=list)
    initial_cut_cost: int = 0
    final_cut_cost: int = 0
    moves_applied: int = 0


class GraphPartitioner:
    """Partitions the op list of one lo_spn.body into acyclic parts."""

    def __init__(
        self,
        ops: Sequence[Operation],
        options: PartitioningOptions,
        pinned_last: Sequence[Operation] = (),
    ):
        self.ops: List[Operation] = [
            op for op in ops if op.op_name != lospn.YieldOp.name
        ]
        self.options = options
        # Ops that must stay in the final partition (the root producer, so
        # the kernel's single-row result tensor invariant holds).
        self.pinned_last: Set[int] = {id(op) for op in pinned_last}
        self.position: Dict[int, int] = {}
        self.assignment: Dict[int, int] = {}
        self.num_partitions = 0
        self.capacity = 0
        self.sizes: List[int] = []
        self.stats = PartitioningStats()

    # -- pipeline -------------------------------------------------------------

    def run(self) -> Dict[int, int]:
        order = self._child_first_ordering()
        self._compute_spine(order)
        self._initial_partitioning(order)
        self.stats.initial_cut_cost = self._total_cut_cost()
        self._refine()
        self._merge_exportless()
        self.stats.final_cut_cost = self._total_cut_cost()
        self.stats.num_partitions = self.num_partitions
        self.stats.partition_sizes = list(self.sizes)
        return self.assignment

    # -- initial ordering -------------------------------------------------------

    def _child_first_ordering(self) -> List[Operation]:
        """Depth-first post-order: children immediately precede parents."""
        op_set = {id(op) for op in self.ops}
        visited: Set[int] = set()
        order: List[Operation] = []
        # Roots: ops whose results have no users inside the op set.
        roots = [
            op
            for op in self.ops
            if not any(
                id(use.owner) in op_set for res in op.results for use in res.uses
            )
        ]
        stack: List[Tuple[Operation, bool]] = [(op, False) for op in reversed(roots)]
        while stack:
            op, expanded = stack.pop()
            if expanded:
                order.append(op)
                continue
            if id(op) in visited:
                continue
            visited.add(id(op))
            stack.append((op, True))
            for operand in reversed(op.operands):
                producer = operand.defining_op
                if producer is not None and id(producer) in op_set:
                    if id(producer) not in visited:
                        stack.append((producer, False))
        # Any ops unreachable from the roots (shouldn't happen) keep order.
        if len(order) != len(self.ops):
            remaining = [op for op in self.ops if id(op) not in visited]
            order.extend(remaining)
        return order

    # -- spine extraction -------------------------------------------------------

    def _compute_spine(self, order: List[Operation]) -> None:
        """Grow the pinned head producers into a users-closed spine.

        Starting from the pinned root producers, ops whose every in-DAG
        user is already in the spine are absorbed, largest approximate
        operand-closure first — so the weighted-sum chain near the root
        (whose closures span the whole graph) is absorbed before any
        subtree content. Growth stops at one balanced partition's worth
        of ops. The spine is users-closed, so pinning it to the final
        partition keeps every edge pointing forward.
        """
        total = len(self.ops)
        estimated = max(1, -(-total // self.options.max_partition_size))
        if estimated <= 1 or not self.pinned_last:
            return
        budget = -(-total // estimated)
        if len(self.pinned_last) >= budget:
            return
        op_set = {id(op): op for op in self.ops}
        closure: Dict[int, int] = {}
        for op in order:  # child-first: producers are sized before users
            closure[id(op)] = 1 + sum(
                closure.get(id(o.defining_op), 0)
                for o in op.operands
                if o.defining_op is not None and id(o.defining_op) in op_set
            )
        users: Dict[int, List[Operation]] = {
            id(op): [
                use.owner
                for res in op.results
                for use in res.uses
                if id(use.owner) in op_set
            ]
            for op in self.ops
        }
        spine: Set[int] = set(self.pinned_last)
        heap: List[Tuple[int, int, int]] = []
        tie = 0

        def consider(op: Operation) -> None:
            nonlocal tie
            if id(op) in spine:
                return
            consumers = users[id(op)]
            if consumers and all(id(u) in spine for u in consumers):
                heapq.heappush(heap, (-closure[id(op)], tie, id(op)))
                tie += 1

        for op in self.ops:
            if id(op) in spine:
                for operand in op.operands:
                    producer = operand.defining_op
                    if producer is not None and id(producer) in op_set:
                        consider(producer)
        while heap and len(spine) < budget:
            _, _, op_id = heapq.heappop(heap)
            if op_id in spine:
                continue
            if any(id(u) not in spine for u in users[op_id]):
                continue  # stale entry: a user left the frontier
            spine.add(op_id)
            for operand in op_set[op_id].operands:
                producer = operand.defining_op
                if producer is not None and id(producer) in op_set:
                    consider(producer)
        self.pinned_last = spine

    # -- initial partitioning ------------------------------------------------------

    def _initial_partitioning(self, order: List[Operation]) -> None:
        for position, op in enumerate(order):
            self.position[id(op)] = position
        if len(self.ops) <= self.options.max_partition_size:
            self.num_partitions = 1
            self.sizes = [len(self.ops)]
            self.capacity = max(
                1, int(len(self.ops) * (1.0 + self.options.balance_slack))
            )
            for op in self.ops:
                self.assignment[id(op)] = 0
            return
        spine = self.pinned_last
        rest = [op for op in order if id(op) not in spine]
        total = len(rest)
        max_size = self.options.max_partition_size
        num_rest = max(1, -(-total // max_size)) if total else 0
        target = -(-total // num_rest) if num_rest else 1
        self.capacity = max(
            1,
            int(target * (1.0 + self.options.balance_slack)),
            len(spine),
        )
        clean = self._clean_cuts(rest)
        bounds: List[Tuple[int, int]] = []
        start = 0
        while start < total:
            if total - start <= self.capacity:
                end = total
            else:
                # Snap to the latest clean cut that still fills at least
                # half the target; fall back to a plain balanced cut.
                end = None
                hi = min(start + self.capacity, total) - 1
                lo = start + max(1, -(-target // 2)) - 1
                for cut in range(hi, lo - 1, -1):
                    if clean[cut]:
                        end = cut + 1
                        break
                if end is None:
                    end = start + target
            bounds.append((start, end))
            start = end
        self.num_partitions = len(bounds) + (1 if spine else 0)
        self.sizes = []
        for partition, (lo, hi) in enumerate(bounds):
            for index in range(lo, hi):
                self.assignment[id(rest[index])] = partition
            self.sizes.append(hi - lo)
        if spine:
            last = len(bounds)
            for op in self.ops:
                if id(op) in spine:
                    self.assignment[id(op)] = last
            self.sizes.append(len(spine))

    def _merge_exportless(self) -> None:
        """Fold partitions that would emit no task into their successor.

        A partition whose every non-rematerializable value is consumed
        inside the partition itself (e.g. a slice of constants, or dead
        ops) has nothing to export, so the kernel rewrite would skip it
        and the emitted task count would diverge from
        ``stats.num_partitions``. Merging forward is always legal: such
        a partition has no outgoing edges, and incoming edges keep
        pointing forward.
        """
        if self.num_partitions <= 1:
            return
        exporting = [False] * self.num_partitions
        exporting[self.num_partitions - 1] = True  # holds the pinned heads
        for op in self.ops:
            if _rematerializable(op):
                continue
            part = self.assignment[id(op)]
            if exporting[part]:
                continue
            for res in op.results:
                if any(
                    self.assignment.get(id(use.owner)) not in (None, part)
                    for use in res.uses
                ):
                    exporting[part] = True
                    break
        if all(exporting):
            return
        successor: Dict[int, int] = {}
        new_index = sum(exporting)
        for part in range(self.num_partitions - 1, -1, -1):
            if exporting[part]:
                new_index -= 1
                current = new_index
            successor[part] = current
        for op in self.ops:
            self.assignment[id(op)] = successor[self.assignment[id(op)]]
        self.num_partitions = sum(exporting)
        self.sizes = [0] * self.num_partitions
        for op in self.ops:
            self.sizes[self.assignment[id(op)]] += 1
        self.capacity = max(self.capacity, max(self.sizes))

    @staticmethod
    def _clean_cuts(rest: List[Operation]) -> List[bool]:
        """``clean[i]`` — no SSA value is live across the cut after
        ``rest[i]`` (values consumed only by the spine do not count)."""
        total = len(rest)
        positions = {id(op): i for i, op in enumerate(rest)}
        crossing = [0] * (total + 1)
        for consumer_pos, op in enumerate(rest):
            for operand in op.operands:
                producer = operand.defining_op
                if producer is None:
                    continue
                producer_pos = positions.get(id(producer))
                if producer_pos is not None and producer_pos < consumer_pos:
                    crossing[producer_pos] += 1
                    crossing[consumer_pos] -= 1
        live = 0
        clean = [False] * total
        for i in range(total):
            live += crossing[i]
            clean[i] = live == 0
        return clean

    # -- cost model ---------------------------------------------------------------

    def _value_cost(self, op: Operation) -> int:
        """Cut cost contributed by the results of ``op``."""
        if _rematerializable(op):
            return 0
        producer_part = self.assignment[id(op)]
        cost = 0
        for res in op.results:
            consumer_parts = {
                self.assignment[id(use.owner)]
                for use in res.uses
                if id(use.owner) in self.assignment
            }
            consumer_parts.discard(producer_part)
            if consumer_parts:
                cost += 1 + len(consumer_parts)  # store once + one load per task
        return cost

    def _total_cut_cost(self) -> int:
        return sum(self._value_cost(op) for op in self.ops)

    # -- refinement (Simple Moves) ---------------------------------------------------

    def _neighborhood_cost(self, op: Operation) -> int:
        cost = self._value_cost(op)
        for operand in op.operands:
            producer = operand.defining_op
            if producer is not None and id(producer) in self.assignment:
                cost += self._value_cost(producer)
        return cost

    def _move_legal(self, op: Operation, target: int) -> bool:
        if target < 0 or target >= self.num_partitions:
            return False
        if self.sizes[target] + 1 > self.capacity:
            return False
        source = self.assignment[id(op)]
        if target > source:
            # All users must live in partitions >= target.
            for res in op.results:
                for use in res.uses:
                    user_part = self.assignment.get(id(use.owner))
                    if user_part is not None and user_part < target:
                        return False
        else:
            # All producers must live in partitions <= target.
            for operand in op.operands:
                producer = operand.defining_op
                if producer is None:
                    continue
                producer_part = self.assignment.get(id(producer))
                if producer_part is not None and producer_part > target:
                    return False
        return True

    def _refine(self) -> None:
        if self.num_partitions < 2:
            return
        for _ in range(self.options.refinement_rounds):
            moves_this_round = 0
            for op in self.ops:
                if id(op) in self.pinned_last:
                    continue
                source = self.assignment[id(op)]
                best_target = None
                best_delta = 0
                for target in (source - 1, source + 1):
                    if not self._move_legal(op, target):
                        continue
                    before = self._neighborhood_cost(op)
                    self.assignment[id(op)] = target
                    after = self._neighborhood_cost(op)
                    self.assignment[id(op)] = source
                    delta = after - before
                    if delta < best_delta:
                        best_delta = delta
                        best_target = target
                if best_target is not None:
                    self.assignment[id(op)] = best_target
                    self.sizes[source] -= 1
                    self.sizes[best_target] += 1
                    moves_this_round += 1
            self.stats.moves_applied += moves_this_round
            if moves_this_round == 0:
                break


def _rematerializable(op: Operation) -> bool:
    """Ops cloned into consumer partitions instead of exported.

    Constants are free to re-materialize. ``lo_spn.input_value`` must be:
    its result is a *raw* feature value (not the computation type), and
    cross-partition tensors carry a single element type — exporting a raw
    value through a log-typed tensor would silently reinterpret it. Its
    only operand is a feature block argument, available in any partition.
    """
    return op.has_trait(Trait.CONSTANT_LIKE) or op.op_name == lospn.InputValueOp.name


# --- IR rewriting ------------------------------------------------------------------


def partition_kernel(
    module: ModuleOp, options: Optional[PartitioningOptions] = None
) -> Tuple[ModuleOp, PartitioningStats]:
    """Split each kernel's single task into per-partition tasks.

    Returns a new module; kernels whose task fits in one partition are
    copied unchanged (cloned).
    """
    options = options or PartitioningOptions()
    new_module = ModuleOp.build()
    builder = Builder.at_end(new_module.body)
    stats = PartitioningStats()
    for op in module.body_block.ops:
        if op.op_name != lospn.KernelOp.name:
            builder.insert(op.clone({}))
            continue
        stats = _partition_one_kernel(op, builder, options)
    return new_module, stats


def _partition_one_kernel(
    kernel: Operation, builder: Builder, options: PartitioningOptions
) -> PartitioningStats:
    tasks = kernel.tasks()
    if len(tasks) != 1:
        raise IRError("partitioning expects a kernel with exactly one task")
    task = tasks[0]
    bodies = [op for op in task.body.ops if op.op_name == lospn.BodyOp.name]
    if len(bodies) != 1:
        raise IRError("partitioning expects a task with exactly one body")
    body = bodies[0]

    dag_ops = [op for op in body.body.ops if op.op_name != lospn.YieldOp.name]
    # Pin every head's producer to the final partition so the kernel's
    # [num_heads x batch] result tensor invariant holds.
    pinned = [
        v.defining_op
        for v in body.body.terminator.operands
        if v.defining_op is not None
    ]
    partitioner = GraphPartitioner(dag_ops, options, pinned_last=pinned)
    assignment = partitioner.run()
    stats = partitioner.stats

    if partitioner.num_partitions <= 1:
        builder.insert(kernel.clone({}))
        return stats

    _rewrite_kernel(kernel, task, body, assignment, partitioner.num_partitions, builder)
    return stats


def _rewrite_kernel(
    kernel: Operation,
    task: Operation,
    body: Operation,
    assignment: Dict[int, int],
    num_partitions: int,
    builder: Builder,
) -> None:
    ct = body.results[0].type
    batch_size = task.batch_size

    # Map: feature block-arg of the old body -> feature index (staticIndex
    # of the batch_extract feeding it).
    feature_of_arg: Dict[Value, int] = {}
    for extract in task.body.ops:
        if extract.op_name != lospn.BatchExtractOp.name:
            continue
        for use in extract.results[0].uses:
            if use.owner is body:
                feature_of_arg[body.body.arguments[use.operand_index]] = (
                    extract.static_index
                )

    dag_ops = [op for op in body.body.ops if op.op_name != lospn.YieldOp.name]
    yield_op = body.body.terminator
    root_values: List[Value] = list(yield_op.operands)
    if len(set(map(id, root_values))) != len(root_values):
        raise IRError(
            "partitioning does not support duplicate head values in a "
            "multi-head kernel"
        )
    root_set = set(map(id, root_values))

    per_part_ops: List[List[Operation]] = [[] for _ in range(num_partitions)]
    for op in dag_ops:
        per_part_ops[assignment[id(op)]].append(op)

    # Values each partition must export: used by a later partition or the root.
    exports: List[List[Value]] = [[] for _ in range(num_partitions)]
    export_index: Dict[Value, Tuple[int, int]] = {}
    for op in dag_ops:
        if _rematerializable(op):
            continue
        part = assignment[id(op)]
        for res in op.results:
            needed = id(res) in root_set or any(
                id(use.owner) in assignment and assignment[id(use.owner)] != part
                for use in res.uses
            )
            if needed:
                export_index[res] = (part, len(exports[part]))
                exports[part].append(res)

    # The final partition's exports are exactly the head values; order
    # them like the kernel's result rows.
    for part, values in enumerate(exports):
        if values and all(id(v) in root_set for v in values):
            root_order = {id(v): i for i, v in enumerate(root_values)}
            values.sort(key=lambda v: root_order[id(v)])
            for i, v in enumerate(values):
                export_index[v] = (part, i)

    new_kernel = builder.create(
        lospn.KernelOp,
        kernel.sym_name,
        list(kernel.arg_types),
        list(kernel.result_types),
    )
    if "queryPlan" in kernel.attributes:
        # Host-side query plans (MPE traceback, sampling, ...) describe
        # head rows, which partitioning preserves — carry the plan over.
        new_kernel.attributes["queryPlan"] = kernel.attributes["queryPlan"]
    kb = Builder.at_end(new_kernel.body)
    input_arg = new_kernel.body.arguments[0]

    # Intermediate tensors indexed by partition.
    part_result: Dict[int, Value] = {}
    final_result: Optional[Value] = None

    for part in range(num_partitions):
        ops = per_part_ops[part]
        if not ops or not exports[part]:
            continue
        # Which external values does this partition consume?
        needed_features: List[int] = []
        needed_imports: List[Value] = []
        for op in ops:
            for operand in op.operands:
                if isinstance(operand, BlockArgument):
                    feature = feature_of_arg[operand]
                    if feature not in needed_features:
                        needed_features.append(feature)
                else:
                    producer = operand.defining_op
                    if producer is None or id(producer) not in assignment:
                        continue
                    if _rematerializable(producer):
                        # Cloned into this partition rather than imported;
                        # make its feature operands available here.
                        if assignment[id(producer)] != part:
                            for sub in producer.operands:
                                if isinstance(sub, BlockArgument):
                                    feature = feature_of_arg[sub]
                                    if feature not in needed_features:
                                        needed_features.append(feature)
                        continue
                    if assignment[id(producer)] != part and operand not in needed_imports:
                        needed_imports.append(operand)

        import_parts = sorted({export_index[v][0] for v in needed_imports})
        task_inputs: List[Value] = []
        if needed_features:
            task_inputs.append(input_arg)
        task_inputs.extend(part_result[p] for p in import_parts)

        is_final = any(id(res) in root_set for op in ops for res in op.results)
        num_exports = len(exports[part])
        result_tensor = TensorType((num_exports, None), ct)
        new_task = kb.create(
            lospn.TaskOp, task_inputs, batch_size, [result_tensor]
        )
        tb = Builder.at_end(new_task.body)
        batch_index = new_task.batch_index

        arg_cursor = 0
        feature_values: Dict[int, Value] = {}
        if needed_features:
            input_block_arg = new_task.input_args[arg_cursor]
            arg_cursor += 1
            for feature in needed_features:
                feature_values[feature] = tb.create(
                    lospn.BatchExtractOp,
                    input_block_arg,
                    batch_index,
                    static_index=feature,
                    transposed=False,
                ).result
        import_values: Dict[Value, Value] = {}
        for p in import_parts:
            tensor_arg = new_task.input_args[arg_cursor]
            arg_cursor += 1
            for value in needed_imports:
                src_part, idx = export_index[value]
                if src_part != p:
                    continue
                import_values[value] = tb.create(
                    lospn.BatchExtractOp,
                    tensor_arg,
                    batch_index,
                    static_index=idx,
                    transposed=True,
                ).result

        # Build the body: inputs are features + imported intermediate values.
        body_inputs: List[Value] = [feature_values[f] for f in needed_features]
        body_inputs.extend(import_values[v] for v in needed_imports)
        body_result_types = [v.type for v in exports[part]]
        new_body = tb.create(lospn.BodyOp, body_inputs, body_result_types)
        bb = Builder.at_end(new_body.body)

        value_map: Dict[Value, Value] = {}
        for i, feature in enumerate(needed_features):
            # Feature block-args of the original body that map to this feature.
            for old_arg, feat in feature_of_arg.items():
                if feat == feature:
                    value_map[old_arg] = new_body.body.arguments[i]
        offset = len(needed_features)
        for i, value in enumerate(needed_imports):
            value_map[value] = new_body.body.arguments[offset + i]

        cloned_remats: Dict[int, Operation] = {}
        for op in ops:
            # Re-materialize constant/input-value operands from other
            # partitions (their inputs — nothing, or feature args — are
            # available in every partition).
            for operand in op.operands:
                producer = operand.defining_op
                if (
                    producer is not None
                    and _rematerializable(producer)
                    and assignment.get(id(producer)) != part
                    and operand not in value_map
                ):
                    if id(producer) not in cloned_remats:
                        cloned_remats[id(producer)] = bb.insert(
                            producer.clone(value_map)
                        )
                    value_map[operand] = cloned_remats[id(producer)].results[0]
            bb.insert(op.clone(value_map))
        bb.create(
            lospn.YieldOp, [value_map.get(v, v) for v in exports[part]]
        )

        tb.create(
            lospn.BatchCollectOp,
            batch_index,
            list(new_body.results),
            transposed=True,
        )
        part_result[part] = new_task.results[0]
        if is_final:
            final_result = new_task.results[0]

    if final_result is None:
        raise IRError("partitioning lost the root value")
    kb.create(lospn.KernelReturnOp, [final_result])
